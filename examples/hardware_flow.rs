//! Hardware flow walkthrough: follow one custom-instruction candidate all
//! the way from IR to configuration bitstream — datapath VHDL, netlist
//! extraction, top-level synthesis, placement, routing, timing, bitgen —
//! printing the artifacts at every stage (paper Fig. 2, phases 2 and 3).
//!
//! Run with: `cargo run --release --example hardware_flow`

use jitise::cad::{run_flow, Fabric, FlowOptions};
use jitise::ir::{BlockId, Dfg, FuncId, FunctionBuilder, Operand as Op, Type};
use jitise::ise::{maxmiso, ForbiddenPolicy};
use jitise::pivpav::{create_project, CircuitDb, NetlistCache};
use jitise::vm::BlockKey;

fn main() {
    // A small fixed-point filter kernel: y = clamp((a*13 + b*7) >> 4 ^ b).
    let mut b = FunctionBuilder::new("kernel", vec![Type::I32, Type::I32], Type::I32);
    let m1 = b.mul(Op::Arg(0), Op::ci32(13));
    let m2 = b.mul(Op::Arg(1), Op::ci32(7));
    let s = b.add(m1, m2);
    let sh = b.ashr(s, Op::ci32(4));
    let x = b.xor(sh, Op::Arg(1));
    b.ret(x);
    let f = b.finish();
    println!(
        "--- candidate source ---\n{}",
        jitise::ir::printer::print_function(&f)
    );

    let dfg = Dfg::build(&f, BlockId(0));
    let cand = maxmiso(
        &f,
        &dfg,
        BlockKey::new(FuncId(0), BlockId(0)),
        &ForbiddenPolicy::default(),
        2,
    )
    .candidates
    .remove(0);
    println!(
        "MAXMISO candidate: {} ops, {} inputs, {} output(s), signature {:016x}",
        cand.len(),
        cand.inputs,
        cand.outputs,
        cand.signature(&f, &dfg)
    );

    // Phase 2: Netlist Generation (PivPav).
    let db = CircuitDb::build();
    let cache = NetlistCache::new();
    let (project, c2v) = create_project(&db, &cache, &f, &dfg, &cand).expect("project");
    println!("\n--- generated structural VHDL ---\n{}", project.vhdl_text);
    println!(
        "C2V: generate {} + extract {} + project {} = {}",
        c2v.generate_vhdl,
        c2v.extract_netlists,
        c2v.create_project,
        c2v.total()
    );
    println!(
        "component netlists: {} (total {} cells)",
        project.netlists.len(),
        project
            .netlists
            .iter()
            .map(|n| n.cells.len())
            .sum::<usize>()
    );

    // Phase 3: Instruction Implementation (FPGA CAD flow).
    let fabric = Fabric::pr_region();
    let report = run_flow(&fabric, &project, &FlowOptions::default()).expect("flow");
    println!("\n--- tool-flow report ---");
    println!("syntax     {}", report.syntax);
    println!(
        "xst        {}  (flattened to {} slices)",
        report.xst, report.slices
    );
    println!("translate  {}", report.translate);
    println!(
        "map        {}  (complexity {:.0})",
        report.map, report.complexity
    );
    println!(
        "par        {}  (wirelength {} hops)",
        report.par, report.wirelength
    );
    println!("bitgen     {}", report.bitgen);
    println!("total      {}", report.total());
    println!(
        "timing: critical path {:.2} ns -> fmax {:.0} MHz (meets 300 MHz CPU clock: {})",
        report.timing.critical_path_ns, report.timing.fmax_mhz, report.timing.meets_300mhz
    );
    println!(
        "bitstream: {} bytes in {} frames, CRC {:08x}, verifies: {}",
        report.bitstream.len(),
        report.bitstream.frames,
        report.bitstream.crc,
        report.bitstream.verify()
    );
}
