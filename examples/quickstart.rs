//! Quickstart: build a small program, profile it in the VM, run the
//! just-in-time ASIP specialization process, and measure the speedup of
//! the specialized binary on the Woolcano architecture model.
//!
//! Run with: `cargo run --release --example quickstart`

use jitise::core::{specialize, BitstreamCache, EvalContext, SpecializeConfig};
use jitise::ir::{FunctionBuilder, Module, Operand as Op, Type};
use jitise::vm::{Interpreter, Value};
use jitise::woolcano::{measure_speedup, Woolcano};

fn main() {
    // 1. Write a program against the IR builder: a hot loop with a
    //    multiply-heavy reduction kernel — exactly the kind of data-flow
    //    pattern ISE algorithms mine.
    let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
    let cell = b.alloca(4);
    b.store(Op::ci32(1), cell);
    b.counted_loop("i", Op::ci32(0), Op::Arg(0), |b, i| {
        let acc = b.load(Type::I32, cell);
        let x = b.mul(acc, i);
        let y = b.mul(x, Op::ci32(3));
        let z = b.add(y, i);
        let w = b.xor(z, Op::ci32(0x5a));
        b.store(w, cell);
    });
    let out = b.load(Type::I32, cell);
    b.ret(out);
    let mut module = Module::new("quickstart");
    module.add_func(b.finish());
    println!("--- IR ---\n{}", jitise::ir::printer::print_module(&module));

    // 2. Execute on the VM, collecting a basic-block profile.
    let args = [Value::I(50_000)];
    let mut vm = Interpreter::new(&module);
    let base_run = vm.run("main", &args).expect("program runs");
    let profile = vm.take_profile();
    println!(
        "base run: result={:?}, {} cycles over {} dynamic instructions",
        base_run.ret, base_run.cycles, base_run.steps
    );

    // 3. Run the ASIP specialization process: candidate search (MAXMISO +
    //    @50pS3L pruning + PivPav estimation), netlist generation, the
    //    FPGA CAD flow, and adaptation.
    let ctx = EvalContext::new();
    let cache = BitstreamCache::new();
    let base_module = module.clone();
    let machine = Woolcano::new(16);
    let report = specialize(
        &mut module,
        &profile,
        &machine,
        &ctx.estimator,
        &ctx.db,
        &ctx.netlists,
        &cache,
        &SpecializeConfig::default(),
    )
    .expect("specialization succeeds");

    println!("\n--- ASIP specialization ---");
    println!(
        "pruning filter kept {} block(s)",
        report.search.prune.blocks.len()
    );
    println!(
        "{} candidate(s) selected, {} identified",
        report.candidates.len(),
        report.search.identified
    );
    for c in &report.candidates {
        println!(
            "  slot {}: {} instructions, signature {:016x}, gen time {}",
            c.slot,
            c.size,
            c.signature,
            c.total()
        );
    }
    println!(
        "tool-flow overhead: const {} + map {} + par {} = {}",
        report.const_time, report.map_time, report.par_time, report.sum_time
    );
    println!("ICAP reconfiguration: {}", report.reconfig_time);

    // 4. Execute the patched binary on the specialized ASIP and compare.
    let meas = measure_speedup(&base_module, &module, &machine, "main", &args)
        .expect("results must agree");
    println!("\n--- speedup ---");
    println!(
        "base {} cycles -> ASIP {} cycles: {:.2}x speedup",
        meas.base_cycles, meas.asip_cycles, meas.speedup
    );
}
