//! Design-space exploration: the ablations DESIGN.md §7 calls out.
//!
//! 1. Pruning-filter sweep — coverage p and block cap k of the `@{p}pS{k}L`
//!    family vs achieved speedup and analyzed bitcode (the trade the paper
//!    quantifies as "two orders of magnitude for 1/4 of the speedup").
//! 2. Identification-algorithm comparison on the same profile.
//! 3. CI interface-latency sensitivity — how the FCB invocation overhead
//!    erodes candidate profitability (the reason small candidates dominate
//!    the break-even discussion in §V-D).
//!
//! Run with: `cargo run --release --example design_space`

use jitise::apps::App;
use jitise::base::table::{fnum, TextTable};
use jitise::ise::{candidate_search, Algorithm, DepthEstimator, PruneFilter, SearchConfig};
use jitise::pivpav::PivPavEstimator;

fn main() {
    let app = App::build("whetstone").expect("whetstone builds");
    let profile = app.run_dataset(0);
    let estimator = PivPavEstimator::new();

    // --- 1. pruning-filter sweep ---
    println!("=== pruning-filter sweep on {} ===", app.name);
    let mut t = TextTable::new(vec![
        "filter",
        "blocks",
        "ins",
        "candidates",
        "speedup",
        "search[us]",
    ]);
    let mut filters = vec![PruneFilter::none()];
    for (p, k) in [(0.25, 1), (0.5, 3), (0.75, 5), (0.9, 8)] {
        filters.push(PruneFilter {
            coverage: p,
            max_blocks: k,
        });
    }
    for filter in filters {
        let cfg = SearchConfig {
            filter,
            ..SearchConfig::default()
        };
        let out = candidate_search(&app.module, &profile, &estimator, &cfg);
        t.row(vec![
            filter.to_string(),
            out.prune.blocks.len().to_string(),
            out.prune.insts_after.to_string(),
            out.selection.selected.len().to_string(),
            fnum(out.asip_ratio, 2),
            format!("{}", out.real_time.as_micros()),
        ]);
    }
    println!("{}\n", t.render());

    // --- 2. identification algorithms ---
    println!("=== identification algorithms (pruned blocks) ===");
    let mut t = TextTable::new(vec!["algorithm", "candidates", "speedup", "search[us]"]);
    for alg in [
        Algorithm::MaxMiso,
        Algorithm::SingleCut,
        Algorithm::UnionMiso,
    ] {
        let cfg = SearchConfig {
            algorithm: alg,
            ..SearchConfig::default()
        };
        let out = candidate_search(&app.module, &profile, &estimator, &cfg);
        t.row(vec![
            alg.to_string(),
            out.selection.selected.len().to_string(),
            fnum(out.asip_ratio, 2),
            format!("{}", out.real_time.as_micros()),
        ]);
    }
    println!("{}\n", t.render());

    // --- 3. CI invocation-overhead sensitivity ---
    println!("=== FCB invocation-overhead sensitivity ===");
    let mut t = TextTable::new(vec!["overhead[cycles]", "candidates", "speedup"]);
    for overhead in [0u64, 1, 3, 6, 12, 24] {
        let est = DepthEstimator {
            invoke_overhead: overhead,
            ..DepthEstimator::default()
        };
        let out = candidate_search(&app.module, &profile, &est, &SearchConfig::default());
        t.row(vec![
            overhead.to_string(),
            out.selection.selected.len().to_string(),
            fnum(out.asip_ratio, 2),
        ]);
    }
    println!("{}", t.render());
    println!(
        "\nhigher interface latency -> fewer profitable candidates and lower speedup,\n\
         which is why Woolcano's tightly-coupled FCB beats bus-attached designs (paper §II)."
    );
}
