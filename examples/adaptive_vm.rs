//! Adaptive VM scenario (paper Fig. 1): an embedded workload executes run
//! after run while the ASIP specialization process works **concurrently**
//! in a background thread; once the custom instructions are implemented,
//! the runtime hot-swaps to the specialized binary. A second session of
//! the same application is served from the bitstream cache with zero
//! generation overhead (§VI-A).
//!
//! Run with: `cargo run --release --example adaptive_vm`

use jitise::apps::App;
use jitise::core::{run_adaptive, BitstreamCache, EvalContext};
use jitise::vm::Value;

fn main() {
    let ctx = EvalContext::new();
    let cache = BitstreamCache::new();
    let app = App::build("sor").expect("sor is in the registry");
    println!(
        "application: {} ({} blocks, {} instructions)",
        app.name,
        app.module.num_blocks(),
        app.module.num_insts()
    );

    // Session 1: cold cache — the specialization pipeline runs in full.
    println!("\n=== session 1 (cold bitstream cache) ===");
    let out = run_adaptive(&ctx, &cache, &app.module, "main", &[Value::I(8)], 8, 2)
        .expect("adaptive run");
    println!(
        "runs before adaptation: {} @ {} cycles | runs after: {} @ {} cycles",
        out.runs_before, out.cycles_before, out.runs_after, out.cycles_after
    );
    println!(
        "observed speedup {:.2}x, specialization overhead {} ({} candidates, {} cache hits)",
        out.observed_speedup,
        out.overhead,
        out.report.as_ref().map_or(0, |r| r.candidates.len()),
        out.report.as_ref().map_or(0, |r| r.cache_hits)
    );

    // Session 2: every candidate's bitstream is already cached.
    println!("\n=== session 2 (warm bitstream cache) ===");
    let out2 = run_adaptive(&ctx, &cache, &app.module, "main", &[Value::I(8)], 8, 2)
        .expect("adaptive run");
    println!(
        "observed speedup {:.2}x, specialization overhead {} ({} of {} candidates from cache)",
        out2.observed_speedup,
        out2.overhead,
        out2.report.as_ref().map_or(0, |r| r.cache_hits),
        out2.report.as_ref().map_or(0, |r| r.candidates.len())
    );
    let (hits, misses) = cache.stats();
    println!(
        "bitstream cache: {hits} hits, {misses} misses, {} entries",
        cache.len()
    );

    println!(
        "\nbreak-even intuition: session 1 paid {} of tool flow; session 2 paid {}.",
        out.overhead, out2.overhead
    );
}
