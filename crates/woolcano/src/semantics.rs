//! Custom-instruction semantics.
//!
//! When a candidate becomes hardware, the architecture still needs a
//! functional model to *execute* it (our substitute for the real FPGA
//! datapath, which is functionally identical by construction — the
//! datapath generator instantiates one core per IR operation). A
//! [`CiSemantics`] is the candidate's data-flow recipe frozen at patch
//! time: member operations in topological order with operands remapped to
//! CI input ports, earlier members, or baked-in constants.
//!
//! Evaluation reuses the constant-folding kernels so hardware, interpreter
//! and optimizer semantics can never diverge.

use jitise_base::{Error, Result};
use jitise_ir::passes::constfold::{fold_cmp, fold_float_bin, fold_int_bin, fold_un};
use jitise_ir::{BinOp, CmpOp, Dfg, Function, Imm, InstKind, Operand, Type, UnOp};
use jitise_ise::Candidate;
use jitise_vm::Value;

/// An operand of a frozen CI operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CiArg {
    /// The n-th CI input port.
    Input(u32),
    /// The result of an earlier member operation.
    Node(u32),
    /// A baked-in constant.
    Const(Imm),
}

/// One frozen member operation.
#[derive(Debug, Clone, PartialEq)]
pub enum CiOp {
    /// Binary ALU op.
    Bin(BinOp, Type, CiArg, CiArg),
    /// Unary / cast op; the `Type` pair is (result, source).
    Un(UnOp, Type, Type, CiArg),
    /// Comparison (operand type recorded for signedness).
    Cmp(CmpOp, Type, CiArg, CiArg),
    /// 2:1 mux.
    Select(CiArg, CiArg, CiArg),
}

/// The frozen datapath of one custom instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct CiSemantics {
    /// Operations in topological order.
    pub ops: Vec<CiOp>,
    /// Number of input ports.
    pub num_inputs: u32,
    /// Which op produces the CI result (index into `ops`).
    pub output_op: u32,
}

impl CiSemantics {
    /// Freezes a single-output candidate into executable semantics.
    ///
    /// Fails for multi-output candidates (the IR's `Custom` instruction
    /// returns one value; the Woolcano patcher only offloads single-output
    /// candidates, which is all MAXMISO produces).
    pub fn freeze(f: &Function, dfg: &Dfg, cand: &Candidate) -> Result<CiSemantics> {
        if cand.outputs != 1 {
            return Err(Error::Arch(format!(
                "cannot freeze candidate with {} outputs into a 1-result CI",
                cand.outputs
            )));
        }
        // Input port table, in first-appearance order (must match the
        // operand order the patcher emits).
        let mut inputs: Vec<Operand> = Vec::new();
        let member_pos = |def: jitise_ir::InstId| -> Option<u32> {
            cand.insts.iter().position(|&i| i == def).map(|p| p as u32)
        };

        let mut ops = Vec::with_capacity(cand.nodes.len());
        for &iid in &cand.insts {
            let inst = f.inst(iid);
            let mut arg_of = |op: Operand| -> CiArg {
                match op {
                    Operand::Const(imm) => CiArg::Const(imm),
                    other => {
                        if let Operand::Inst(def) = other {
                            if let Some(pos) = member_pos(def) {
                                return CiArg::Node(pos);
                            }
                        }
                        match inputs.iter().position(|&o| o == other) {
                            Some(i) => CiArg::Input(i as u32),
                            None => {
                                inputs.push(other);
                                CiArg::Input((inputs.len() - 1) as u32)
                            }
                        }
                    }
                }
            };
            let op = match &inst.kind {
                InstKind::Bin(op, a, b) => CiOp::Bin(*op, inst.ty, arg_of(*a), arg_of(*b)),
                InstKind::Un(op, a) => {
                    let src_ty = jitise_ir::verify::operand_ty(f, *a);
                    CiOp::Un(*op, inst.ty, src_ty, arg_of(*a))
                }
                InstKind::Cmp(op, a, b) => {
                    let ty = jitise_ir::verify::operand_ty(f, *a);
                    CiOp::Cmp(*op, ty, arg_of(*a), arg_of(*b))
                }
                InstKind::Select(c, a, b) => CiOp::Select(arg_of(*c), arg_of(*a), arg_of(*b)),
                other => {
                    return Err(Error::Arch(format!(
                        "hardware-infeasible op {other:?} in candidate"
                    )))
                }
            };
            ops.push(op);
        }

        // The output op: the member whose value escapes.
        let member_set: std::collections::HashSet<u32> = cand.nodes.iter().copied().collect();
        let mut output_op = None;
        for (pos, &n) in cand.nodes.iter().enumerate() {
            let node = &dfg.nodes[n as usize];
            let feeds_outside = node.succs.iter().any(|&s| !member_set.contains(&s));
            if node.escapes || feeds_outside {
                output_op = Some(pos as u32);
            }
        }
        let output_op = output_op.ok_or_else(|| Error::Arch("candidate has no output".into()))?;

        Ok(CiSemantics {
            ops,
            num_inputs: inputs.len() as u32,
            output_op,
        })
    }

    /// The input operands (in port order) the patcher must pass at the
    /// call site. Recomputed the same way `freeze` discovered them.
    pub fn input_operands(f: &Function, cand: &Candidate) -> Vec<Operand> {
        let mut inputs: Vec<Operand> = Vec::new();
        for &iid in &cand.insts {
            for op in f.inst(iid).operands() {
                match op {
                    Operand::Const(_) => {}
                    other => {
                        let from_member =
                            other.as_inst().is_some_and(|def| cand.insts.contains(&def));
                        if !from_member && !inputs.contains(&other) {
                            inputs.push(other);
                        }
                    }
                }
            }
        }
        inputs
    }

    /// Evaluates the CI on input values.
    pub fn eval(&self, args: &[Value]) -> Result<Value> {
        if args.len() != self.num_inputs as usize {
            return Err(Error::Arch(format!(
                "CI expects {} inputs, got {}",
                self.num_inputs,
                args.len()
            )));
        }
        let mut results: Vec<Value> = Vec::with_capacity(self.ops.len());
        let get = |arg: CiArg, results: &[Value]| -> Value {
            match arg {
                CiArg::Input(i) => args[i as usize],
                CiArg::Node(n) => results[n as usize],
                CiArg::Const(imm) => Value::from_imm(imm),
            }
        };
        for op in &self.ops {
            let v = match op {
                CiOp::Bin(b, ty, a1, a2) => {
                    let (x, y) = (get(*a1, &results), get(*a2, &results));
                    if b.is_float() {
                        Value::F(fold_float_bin(*b, x.as_f(), y.as_f()).expect("float binop"))
                            .normalize(*ty)
                    } else {
                        let r = fold_int_bin(*b, *ty, x.as_i(), y.as_i()).ok_or_else(|| {
                            Error::Arch("division by zero in custom instruction".into())
                        })?;
                        Value::I(r)
                    }
                }
                CiOp::Un(u, ty, src_ty, a) => {
                    let x = get(*a, &results);
                    let imm = match x {
                        Value::I(v) => {
                            Imm::int(if src_ty.is_int() { *src_ty } else { Type::I64 }, v)
                        }
                        Value::F(v) => {
                            if *src_ty == Type::F32 {
                                Imm::f32(v as f32)
                            } else {
                                Imm::f64(v)
                            }
                        }
                    };
                    let out = fold_un(*u, *ty, &imm)
                        .ok_or_else(|| Error::Arch("invalid cast in CI".into()))?;
                    Value::from_imm(out)
                }
                CiOp::Cmp(c, ty, a1, a2) => {
                    let (x, y) = (get(*a1, &results), get(*a2, &results));
                    let to_imm = |v: Value| match v {
                        Value::I(i) => Imm::int(if ty.is_int() { *ty } else { Type::I64 }, i),
                        Value::F(fl) => {
                            if *ty == Type::F32 {
                                Imm::f32(fl as f32)
                            } else {
                                Imm::f64(fl)
                            }
                        }
                    };
                    Value::I(fold_cmp(*c, *ty, &to_imm(x), &to_imm(y)) as i64)
                }
                CiOp::Select(c, a, b) => {
                    if get(*c, &results).as_bool() {
                        get(*a, &results)
                    } else {
                        get(*b, &results)
                    }
                }
            };
            results.push(v);
        }
        Ok(results[self.output_op as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::{BlockId, FuncId, FunctionBuilder, Operand as Op};
    use jitise_ise::ForbiddenPolicy;
    use jitise_vm::BlockKey;

    fn freeze_first(build: impl FnOnce(&mut FunctionBuilder)) -> (Function, CiSemantics) {
        let mut b = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        build(&mut b);
        let f = b.finish();
        let dfg = Dfg::build(&f, BlockId(0));
        let cand = jitise_ise::maxmiso(
            &f,
            &dfg,
            BlockKey::new(FuncId(0), BlockId(0)),
            &ForbiddenPolicy::default(),
            2,
        )
        .candidates
        .remove(0);
        let sem = CiSemantics::freeze(&f, &dfg, &cand).unwrap();
        (f, sem)
    }

    #[test]
    fn freeze_and_eval_matches_direct_computation() {
        let (_, sem) = freeze_first(|b| {
            let x = b.add(Op::Arg(0), Op::Arg(1));
            let y = b.mul(x, Op::ci32(3));
            let z = b.xor(y, x);
            b.ret(z);
        });
        assert_eq!(sem.num_inputs, 2);
        assert_eq!(sem.ops.len(), 3);
        let out = sem.eval(&[Value::I(5), Value::I(7)]).unwrap();
        let x = 5 + 7;
        let y = x * 3;
        assert_eq!(out, Value::I((y ^ x) as i64));
    }

    #[test]
    fn constants_are_baked_in() {
        let (_, sem) = freeze_first(|b| {
            let x = b.mul(Op::Arg(0), Op::ci32(10));
            let y = b.add(x, Op::ci32(100));
            b.ret(y);
        });
        assert_eq!(sem.num_inputs, 1);
        assert_eq!(sem.eval(&[Value::I(4)]).unwrap(), Value::I(140));
    }

    #[test]
    fn repeated_input_uses_one_port() {
        let (_, sem) = freeze_first(|b| {
            let x = b.mul(Op::Arg(0), Op::Arg(0));
            let y = b.add(x, Op::Arg(0));
            b.ret(y);
        });
        assert_eq!(sem.num_inputs, 1);
        assert_eq!(sem.eval(&[Value::I(6)]).unwrap(), Value::I(42));
    }

    #[test]
    fn select_and_cmp_semantics() {
        let (_, sem) = freeze_first(|b| {
            let c = b.cmp(CmpOp::Slt, Op::Arg(0), Op::Arg(1));
            let big = b.select(c, Op::Arg(1), Op::Arg(0));
            let r = b.shl(big, Op::ci32(1));
            b.ret(r);
        });
        assert_eq!(sem.eval(&[Value::I(3), Value::I(9)]).unwrap(), Value::I(18));
        assert_eq!(sem.eval(&[Value::I(9), Value::I(3)]).unwrap(), Value::I(18));
    }

    #[test]
    fn wrong_arity_rejected() {
        let (_, sem) = freeze_first(|b| {
            let x = b.add(Op::Arg(0), Op::Arg(1));
            let y = b.mul(x, Op::ci32(3));
            b.ret(y);
        });
        assert!(sem.eval(&[Value::I(1)]).is_err());
    }

    #[test]
    fn division_by_zero_traps_in_hw_model() {
        let (_, sem) = freeze_first(|b| {
            let x = b.sdiv(Op::Arg(0), Op::Arg(1));
            let y = b.add(x, Op::ci32(1));
            b.ret(y);
        });
        assert!(sem.eval(&[Value::I(10), Value::I(0)]).is_err());
        assert_eq!(sem.eval(&[Value::I(10), Value::I(2)]).unwrap(), Value::I(6));
    }

    #[test]
    fn input_operand_order_matches_ports() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        let x = b.mul(Op::Arg(1), Op::ci32(3)); // arg1 first!
        let y = b.add(x, Op::Arg(0));
        b.ret(y);
        let f = b.finish();
        let dfg = Dfg::build(&f, BlockId(0));
        let cand = jitise_ise::maxmiso(
            &f,
            &dfg,
            BlockKey::new(FuncId(0), BlockId(0)),
            &ForbiddenPolicy::default(),
            2,
        )
        .candidates
        .remove(0);
        let sem = CiSemantics::freeze(&f, &dfg, &cand).unwrap();
        let inputs = CiSemantics::input_operands(&f, &cand);
        assert_eq!(inputs, vec![Op::Arg(1), Op::Arg(0)]);
        // eval with (arg1, arg0) order: arg1=2, arg0=5 -> 2*3+5 = 11.
        assert_eq!(sem.eval(&[Value::I(2), Value::I(5)]).unwrap(), Value::I(11));
    }
}
