//! Partial-reconfiguration controller and CI slot file.
//!
//! Woolcano loads custom-instruction bitstreams at runtime "using partial
//! reconfiguration" (§I) through the Virtex-4's ICAP port. This module
//! models the slot file (a bounded set of reconfigurable instruction
//! sites) and the reconfiguration latency (bitstream size / ICAP
//! bandwidth), and enforces bitstream integrity (CRC) before activation.

use crate::semantics::CiSemantics;
use jitise_base::{Error, Result, SimTime};
use jitise_cad::{Bitstream, InstallTier};

/// ICAP throughput: 32-bit word per cycle at 100 MHz = 400 MB/s
/// theoretical; sustained practice is lower.
pub const ICAP_BYTES_PER_SEC: u64 = 100_000_000;

/// One loaded custom instruction.
#[derive(Debug, Clone)]
pub struct LoadedCi {
    /// Slot index (the opcode space the patcher references).
    pub slot: u32,
    /// Candidate signature (bitstream-cache key, identity of the CI).
    pub signature: u64,
    /// Functional model.
    pub semantics: CiSemantics,
    /// Hardware latency in CPU cycles (from the implemented design's
    /// timing plus the FCB interface overhead).
    pub hw_cycles: u64,
    /// The configuration bitstream.
    pub bitstream: Bitstream,
    /// Which artifact currently backs the slot: an overlay assembly or
    /// the fully routed design (see [`Self::hw_cycles`] — the two tiers
    /// differ only in timing, never in semantics).
    pub tier: InstallTier,
    /// Load counter for LRU eviction.
    last_use: u64,
}

/// The reconfiguration controller: slot management + ICAP timing.
#[derive(Debug)]
pub struct ReconfigController {
    slots: Vec<Option<LoadedCi>>,
    clock: u64,
    /// Accumulated reconfiguration time.
    pub total_reconfig_time: SimTime,
    /// Number of loads performed.
    pub loads: u64,
    /// Number of evictions.
    pub evictions: u64,
    /// Number of overlay→full tier swaps performed.
    pub upgrades: u64,
}

impl ReconfigController {
    /// A controller with `num_slots` CI sites (Woolcano's FCB exposes a
    /// small fixed set of user-defined-instruction opcodes).
    pub fn new(num_slots: usize) -> Self {
        ReconfigController {
            slots: (0..num_slots).map(|_| None).collect(),
            clock: 0,
            total_reconfig_time: SimTime::ZERO,
            loads: 0,
            evictions: 0,
            upgrades: 0,
        }
    }

    /// Reconfiguration latency for a bitstream.
    pub fn reconfig_time(bitstream: &Bitstream) -> SimTime {
        let ns = bitstream.len() as u128 * 1_000_000_000u128 / ICAP_BYTES_PER_SEC as u128;
        SimTime::from_nanos(ns as u64)
    }

    /// Loads a fully routed CI ([`InstallTier::Full`]), evicting the
    /// least-recently-used slot if full. Returns the slot index.
    pub fn load(
        &mut self,
        signature: u64,
        semantics: CiSemantics,
        hw_cycles: u64,
        bitstream: Bitstream,
    ) -> Result<u32> {
        self.load_tiered(
            signature,
            semantics,
            hw_cycles,
            bitstream,
            InstallTier::Full,
        )
    }

    /// Loads a CI at an explicit tier, evicting the least-recently-used
    /// slot if full. Returns the slot index. A same-signature reload is a
    /// free refresh and does *not* change the installed tier — upgrades go
    /// through [`Self::upgrade`], which swaps atomically.
    pub fn load_tiered(
        &mut self,
        signature: u64,
        semantics: CiSemantics,
        hw_cycles: u64,
        bitstream: Bitstream,
        tier: InstallTier,
    ) -> Result<u32> {
        if !bitstream.verify() {
            return Err(Error::Arch(format!(
                "bitstream CRC failure for CI {signature:#018x}"
            )));
        }
        self.clock += 1;
        // Already loaded? Refresh and return.
        if let Some(slot) = self.slot_of(signature) {
            self.slots[slot as usize]
                .as_mut()
                .expect("occupied")
                .last_use = self.clock;
            return Ok(slot);
        }
        // Free slot or LRU victim.
        let slot = match self.slots.iter().position(|s| s.is_none()) {
            Some(i) => i,
            None => {
                let victim = self
                    .slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.as_ref().map(|c| c.last_use).unwrap_or(0))
                    .map(|(i, _)| i)
                    .ok_or_else(|| Error::Arch("controller has zero slots".into()))?;
                self.evictions += 1;
                victim
            }
        };
        self.total_reconfig_time += Self::reconfig_time(&bitstream);
        self.loads += 1;
        self.slots[slot] = Some(LoadedCi {
            slot: slot as u32,
            signature,
            semantics,
            hw_cycles,
            bitstream,
            tier,
            last_use: self.clock,
        });
        Ok(slot as u32)
    }

    /// Atomically swaps an installed overlay CI for its fully routed
    /// upgrade. The CRC check runs *before* the slot is touched: a
    /// corrupted upgrade bitstream leaves the overlay installed and
    /// serving (still correct, just slower) — there is no window where the
    /// slot is empty or holds unverified configuration. Charges one ICAP
    /// transfer for the upgrade bitstream. A slot already at
    /// [`InstallTier::Full`] is left unchanged (idempotent; no transfer).
    pub fn upgrade(&mut self, signature: u64, hw_cycles: u64, bitstream: Bitstream) -> Result<u32> {
        if !bitstream.verify() {
            return Err(Error::Arch(format!(
                "upgrade bitstream CRC failure for CI {signature:#018x}"
            )));
        }
        let slot = self.slot_of(signature).ok_or_else(|| {
            Error::Arch(format!("upgrade target CI {signature:#018x} not installed"))
        })?;
        let ci = self.slots[slot as usize].as_mut().expect("occupied");
        if ci.tier == InstallTier::Full {
            return Ok(slot);
        }
        self.total_reconfig_time += Self::reconfig_time(&bitstream);
        self.clock += 1;
        ci.bitstream = bitstream;
        ci.hw_cycles = hw_cycles;
        ci.tier = InstallTier::Full;
        ci.last_use = self.clock;
        self.upgrades += 1;
        Ok(slot)
    }

    /// Slot currently holding the CI with `signature`.
    pub fn slot_of(&self, signature: u64) -> Option<u32> {
        self.slots
            .iter()
            .position(|s| s.as_ref().map(|c| c.signature) == Some(signature))
            .map(|i| i as u32)
    }

    /// The CI in a slot.
    pub fn get(&self, slot: u32) -> Option<&LoadedCi> {
        self.slots.get(slot as usize).and_then(|s| s.as_ref())
    }

    /// Marks a slot as used (LRU bookkeeping on execution).
    pub fn touch(&mut self, slot: u32) {
        self.clock += 1;
        if let Some(Some(ci)) = self.slots.get_mut(slot as usize) {
            ci.last_use = self.clock;
        }
    }

    /// Number of occupied slots.
    pub fn occupied(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::{BlockId, Dfg, FuncId, FunctionBuilder, Operand as Op, Type};
    use jitise_ise::ForbiddenPolicy;
    use jitise_vm::BlockKey;

    fn dummy_ci(tag: i32) -> (u64, CiSemantics, Bitstream) {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let x = b.mul(Op::Arg(0), Op::ci32(tag));
        let y = b.add(x, Op::ci32(1));
        b.ret(y);
        let f = b.finish();
        let dfg = Dfg::build(&f, BlockId(0));
        let cand = jitise_ise::maxmiso(
            &f,
            &dfg,
            BlockKey::new(FuncId(0), BlockId(0)),
            &ForbiddenPolicy::default(),
            2,
        )
        .candidates
        .remove(0);
        let sig = cand.signature(&f, &dfg);
        let sem = CiSemantics::freeze(&f, &dfg, &cand).unwrap();
        // A tiny real bitstream via the CAD flow's pieces.
        let fabric = jitise_cad::Fabric::tiny();
        let nl = jitise_pivpav::netlist::synthesize_core("c", 4, 8, 0, 0, tag as u64);
        let p = jitise_cad::place(&fabric, &nl, jitise_cad::PlaceEffort::fast(), 1).unwrap();
        let r = jitise_cad::route(&fabric, &nl, &p, jitise_cad::RouteEffort::fast()).unwrap();
        let bs = jitise_cad::bitgen(&fabric, &nl, &p, &r, true);
        (sig, sem, bs)
    }

    #[test]
    fn load_and_execute_slot() {
        let mut ctl = ReconfigController::new(4);
        let (sig, sem, bs) = dummy_ci(3);
        let slot = ctl.load(sig, sem, 5, bs).unwrap();
        assert_eq!(ctl.occupied(), 1);
        assert_eq!(ctl.slot_of(sig), Some(slot));
        let ci = ctl.get(slot).unwrap();
        assert_eq!(
            ci.semantics.eval(&[jitise_vm::Value::I(10)]).unwrap(),
            jitise_vm::Value::I(31)
        );
        assert!(ctl.total_reconfig_time > SimTime::ZERO);
    }

    #[test]
    fn reload_same_signature_is_free() {
        let mut ctl = ReconfigController::new(2);
        let (sig, sem, bs) = dummy_ci(3);
        let s1 = ctl.load(sig, sem.clone(), 5, bs.clone()).unwrap();
        let t1 = ctl.total_reconfig_time;
        let s2 = ctl.load(sig, sem, 5, bs).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(ctl.total_reconfig_time, t1, "no second ICAP transfer");
        assert_eq!(ctl.loads, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut ctl = ReconfigController::new(2);
        let (s1, sem1, bs1) = dummy_ci(1);
        let (s2, sem2, bs2) = dummy_ci(2);
        let (s3, sem3, bs3) = dummy_ci(5);
        ctl.load(s1, sem1, 5, bs1).unwrap();
        ctl.load(s2, sem2, 5, bs2).unwrap();
        // Touch s1 so s2 becomes LRU.
        let slot1 = ctl.slot_of(s1).unwrap();
        ctl.touch(slot1);
        ctl.load(s3, sem3, 5, bs3).unwrap();
        assert_eq!(ctl.evictions, 1);
        assert!(ctl.slot_of(s1).is_some(), "recently used survives");
        assert!(ctl.slot_of(s2).is_none(), "LRU evicted");
        assert!(ctl.slot_of(s3).is_some());
    }

    #[test]
    fn corrupt_bitstream_rejected() {
        let mut ctl = ReconfigController::new(2);
        let (sig, sem, mut bs) = dummy_ci(7);
        let n = bs.bytes.len();
        bs.bytes[n / 2] ^= 0x01;
        assert!(ctl.load(sig, sem, 5, bs).is_err());
        assert_eq!(ctl.occupied(), 0);
    }

    #[test]
    fn upgrade_swaps_tier_and_charges_one_transfer() {
        let mut ctl = ReconfigController::new(2);
        let (sig, sem, bs) = dummy_ci(3);
        let slot = ctl
            .load_tiered(sig, sem, 20, bs.clone(), InstallTier::Overlay)
            .unwrap();
        assert_eq!(ctl.get(slot).unwrap().tier, InstallTier::Overlay);
        let t_overlay = ctl.total_reconfig_time;

        let slot2 = ctl.upgrade(sig, 6, bs.clone()).unwrap();
        assert_eq!(slot, slot2, "upgrade swaps in place");
        let ci = ctl.get(slot).unwrap();
        assert_eq!(ci.tier, InstallTier::Full);
        assert_eq!(ci.hw_cycles, 6, "upgrade installs the full-tier timing");
        assert!(ctl.total_reconfig_time > t_overlay, "upgrade pays ICAP");
        assert_eq!(ctl.upgrades, 1);

        // Idempotent: upgrading a full slot is a no-op without a transfer.
        let t_full = ctl.total_reconfig_time;
        ctl.upgrade(sig, 6, bs).unwrap();
        assert_eq!(ctl.total_reconfig_time, t_full);
        assert_eq!(ctl.upgrades, 1);
    }

    #[test]
    fn failed_upgrade_leaves_overlay_slot_untouched() {
        let mut ctl = ReconfigController::new(2);
        let (sig, sem, bs) = dummy_ci(4);
        let slot = ctl
            .load_tiered(sig, sem, 20, bs.clone(), InstallTier::Overlay)
            .unwrap();
        let before = ctl.get(slot).unwrap().clone();
        let t0 = ctl.total_reconfig_time;

        let mut bad = bs;
        let n = bad.bytes.len();
        bad.bytes[n / 2] ^= 0x01;
        assert!(ctl.upgrade(sig, 6, bad).is_err());

        let after = ctl.get(slot).unwrap();
        assert_eq!(after.tier, InstallTier::Overlay);
        assert_eq!(after.hw_cycles, before.hw_cycles);
        assert_eq!(after.bitstream, before.bitstream);
        assert_eq!(ctl.total_reconfig_time, t0, "no charge for rejected swap");
        assert_eq!(ctl.upgrades, 0);
    }

    #[test]
    fn upgrade_of_uninstalled_signature_errors() {
        let mut ctl = ReconfigController::new(2);
        let (sig, _, bs) = dummy_ci(5);
        assert!(ctl.upgrade(sig, 6, bs).is_err());
    }

    #[test]
    fn reconfig_time_scales_with_size() {
        let (_, _, bs) = dummy_ci(9);
        let t = ReconfigController::reconfig_time(&bs);
        let expect = bs.len() as f64 / ICAP_BYTES_PER_SEC as f64;
        assert!((t.as_secs_f64() - expect).abs() < 1e-6);
    }
}
