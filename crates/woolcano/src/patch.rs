//! Binary patching (the *adaptation phase*).
//!
//! "the application binary is modified such that the newly available
//! custom instructions are used" (§III). Patching replaces a candidate's
//! member instructions inside its basic block with one
//! [`jitise_ir::InstKind::Custom`] invocation whose operands are the
//! candidate's external inputs, and rewires every consumer of the
//! candidate's output to the new instruction.

use crate::semantics::CiSemantics;
use jitise_base::{Error, Result};
use jitise_ir::{Dfg, Function, Inst, InstId, InstKind, Operand};
use jitise_ise::Candidate;

/// Outcome of patching one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct PatchReport {
    /// The new custom instruction's id.
    pub custom_inst: InstId,
    /// Instructions removed from the block.
    pub removed: usize,
    /// The slot the custom instruction invokes.
    pub slot: u32,
}

/// Replaces `cand`'s members in `f` with a `Custom(slot, inputs)`
/// instruction.
///
/// Requirements (checked): the candidate is single-output and its members
/// are all still present, in order, in the block. The root (output) member
/// position receives the custom instruction so program order is preserved.
pub fn patch_candidate(f: &mut Function, cand: &Candidate, slot: u32) -> Result<PatchReport> {
    if cand.outputs != 1 {
        return Err(Error::Arch(
            "only single-output candidates can be patched".into(),
        ));
    }
    let block_id = cand.key.block;
    // All members must be attached to the block.
    {
        let block = f.block(block_id);
        for &iid in &cand.insts {
            if !block.insts.contains(&iid) {
                return Err(Error::Arch(format!(
                    "member {iid:?} not in block (already patched?)"
                )));
            }
        }
    }

    // The output member: the one whose value is used outside the set.
    let uses = f.use_counts();
    let member_set: std::collections::HashSet<InstId> = cand.insts.iter().copied().collect();
    let mut internal_uses: std::collections::HashMap<InstId, u32> = Default::default();
    for &iid in &cand.insts {
        for op in f.inst(iid).operands() {
            if let Operand::Inst(def) = op {
                if member_set.contains(&def) {
                    *internal_uses.entry(def).or_insert(0) += 1;
                }
            }
        }
    }
    let root = cand
        .insts
        .iter()
        .copied()
        .find(|&iid| uses[iid.idx()] > internal_uses.get(&iid).copied().unwrap_or(0))
        .or_else(|| cand.insts.last().copied())
        .ok_or_else(|| Error::Arch("empty candidate".into()))?;

    // Build the invocation.
    let inputs = CiSemantics::input_operands(f, cand);
    let result_ty = f.inst(root).ty;
    let custom = Inst {
        kind: InstKind::Custom(slot, inputs),
        ty: result_ty,
    };
    let custom_id = InstId(f.insts.len() as u32);
    f.insts.push(custom);

    // Splice: replace root with the custom instruction, drop other members.
    let block = f.block_mut(block_id);
    let mut removed = 0usize;
    let mut replaced = false;
    let mut new_insts = Vec::with_capacity(block.insts.len());
    for &iid in &block.insts {
        if iid == root {
            new_insts.push(custom_id);
            replaced = true;
            removed += 1;
        } else if member_set.contains(&iid) {
            removed += 1;
        } else {
            new_insts.push(iid);
        }
    }
    debug_assert!(replaced, "root must be in the block");
    block.insts = new_insts;

    // Rewire all uses of the root to the custom result.
    let map: std::collections::HashMap<InstId, Operand> =
        [(root, Operand::Inst(custom_id))].into_iter().collect();
    jitise_ir::passes::substitute_operands(f, &map);

    Ok(PatchReport {
        custom_inst: custom_id,
        removed,
        slot,
    })
}

/// Convenience: freeze semantics and patch in one step, returning both.
pub fn freeze_and_patch(
    f: &mut Function,
    dfg: &Dfg,
    cand: &Candidate,
    slot: u32,
) -> Result<(CiSemantics, PatchReport)> {
    let sem = CiSemantics::freeze(f, dfg, cand)?;
    let report = patch_candidate(f, cand, slot)?;
    Ok((sem, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::verify::verify_function;
    use jitise_ir::{BlockId, FuncId, FunctionBuilder, Operand as Op, Type};
    use jitise_ise::ForbiddenPolicy;
    use jitise_vm::BlockKey;

    fn build_and_patch() -> (Function, CiSemantics, PatchReport) {
        let mut b = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        let p = b.alloca(4);
        let x = b.add(Op::Arg(0), Op::Arg(1));
        let y = b.mul(x, Op::ci32(3));
        let z = b.xor(y, x);
        b.store(z, p);
        let back = b.load(Type::I32, p);
        b.ret(back);
        let mut f = b.finish();
        let dfg = Dfg::build(&f, BlockId(0));
        let cand = jitise_ise::maxmiso(
            &f,
            &dfg,
            BlockKey::new(FuncId(0), BlockId(0)),
            &ForbiddenPolicy::default(),
            2,
        )
        .candidates
        .remove(0);
        let (sem, rep) = freeze_and_patch(&mut f, &dfg, &cand, 2).unwrap();
        (f, sem, rep)
    }

    #[test]
    fn patch_preserves_structure() {
        let (f, _, rep) = build_and_patch();
        assert_eq!(rep.removed, 3);
        assert_eq!(rep.slot, 2);
        assert!(verify_function(&f).is_ok());
        // Block now: alloca, custom, store, load = 4 instructions.
        assert_eq!(f.block(BlockId(0)).len(), 4);
        // Exactly one custom instruction present.
        let customs = f
            .block(BlockId(0))
            .insts
            .iter()
            .filter(|&&iid| matches!(f.inst(iid).kind, InstKind::Custom(..)))
            .count();
        assert_eq!(customs, 1);
    }

    #[test]
    fn consumers_rewired_to_custom() {
        let (f, _, rep) = build_and_patch();
        // The store's value operand must now be the custom result.
        let store = f
            .block(BlockId(0))
            .insts
            .iter()
            .find(|&&iid| matches!(f.inst(iid).kind, InstKind::Store(..)))
            .copied()
            .unwrap();
        match &f.inst(store).kind {
            InstKind::Store(Operand::Inst(v), _) => assert_eq!(*v, rep.custom_inst),
            other => panic!("unexpected store shape {other:?}"),
        }
    }

    #[test]
    fn double_patch_rejected() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let x = b.add(Op::Arg(0), Op::ci32(1));
        let y = b.mul(x, Op::ci32(3));
        b.ret(y);
        let mut f = b.finish();
        let dfg = Dfg::build(&f, BlockId(0));
        let cand = jitise_ise::maxmiso(
            &f,
            &dfg,
            BlockKey::new(FuncId(0), BlockId(0)),
            &ForbiddenPolicy::default(),
            2,
        )
        .candidates
        .remove(0);
        patch_candidate(&mut f, &cand, 0).unwrap();
        let err = patch_candidate(&mut f, &cand, 0).unwrap_err();
        assert!(err.to_string().contains("already patched"));
    }

    #[test]
    fn patched_function_computes_same_result() {
        use jitise_vm::{CustomHandler, Interpreter, Value};
        // Original.
        let build = || {
            let mut b = FunctionBuilder::new("main", vec![Type::I32, Type::I32], Type::I32);
            let x = b.add(Op::Arg(0), Op::Arg(1));
            let y = b.mul(x, Op::ci32(3));
            let z = b.xor(y, x);
            b.ret(z);
            b.finish()
        };
        let mut m_orig = jitise_ir::Module::new("t");
        m_orig.add_func(build());
        let mut vm = Interpreter::new(&m_orig);
        let expect = vm.run("main", &[Value::I(11), Value::I(31)]).unwrap().ret;

        // Patched.
        let mut f = build();
        let dfg = Dfg::build(&f, BlockId(0));
        let cand = jitise_ise::maxmiso(
            &f,
            &dfg,
            BlockKey::new(FuncId(0), BlockId(0)),
            &ForbiddenPolicy::default(),
            2,
        )
        .candidates
        .remove(0);
        let (sem, rep) = freeze_and_patch(&mut f, &dfg, &cand, 0).unwrap();
        let mut m_patched = jitise_ir::Module::new("t");
        m_patched.add_func(f);

        struct H(CiSemantics);
        impl CustomHandler for H {
            fn exec_custom(&self, _slot: u32, args: &[Value]) -> jitise_base::Result<(Value, u64)> {
                Ok((self.0.eval(args)?, 2))
            }
        }
        let h = H(sem);
        let mut vm = Interpreter::new(&m_patched);
        vm.set_custom_handler(&h);
        let got = vm.run("main", &[Value::I(11), Value::I(31)]).unwrap();
        assert_eq!(got.ret, expect);
        let _ = rep;
    }
}
