//! # jitise-woolcano — the reconfigurable ASIP architecture model
//!
//! Woolcano (paper [6], used as the target here) augments the PowerPC-405
//! core of a Xilinx Virtex-4 FX with user-defined instructions that are
//! loaded at runtime via partial reconfiguration. This crate models the
//! architecture-level pieces:
//!
//! * [`semantics`] — functional models of implemented custom instructions
//!   (frozen candidate datapaths), evaluated with the exact interpreter
//!   arithmetic.
//! * [`reconfig`] — the CI slot file and ICAP partial-reconfiguration
//!   controller (bandwidth-based load latency, CRC verification, LRU
//!   eviction).
//! * [`patch`] — the adaptation phase's binary patcher: replaces candidate
//!   subgraphs with `Custom` opcodes.
//! * [`asip`] — [`asip::Woolcano`] itself: base CPU + loaded CIs,
//!   implementing the VM's [`jitise_vm::CustomHandler`], plus measured
//!   base-vs-ASIP speedup comparisons.

pub mod asip;
pub mod patch;
pub mod reconfig;
pub mod semantics;

pub use asip::{measure_speedup, SpeedupMeasurement, Woolcano};
pub use patch::{freeze_and_patch, patch_candidate, PatchReport};
pub use reconfig::{LoadedCi, ReconfigController, ICAP_BYTES_PER_SEC};
pub use semantics::{CiArg, CiOp, CiSemantics};
