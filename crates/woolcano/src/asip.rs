//! The Woolcano reconfigurable ASIP.
//!
//! The architecture model: a PowerPC-405 base core (the VM's cost model)
//! augmented with runtime-reconfigurable custom instructions loaded through
//! the ICAP controller. It implements [`jitise_vm::CustomHandler`], so a
//! patched binary executes on the ordinary interpreter with CI opcodes
//! dispatched to loaded slots — functionally the hardware datapath,
//! cost-wise the implemented design's timing.

use crate::reconfig::ReconfigController;
use crate::semantics::CiSemantics;
use jitise_base::{Error, Result, SimTime};
use jitise_cad::{Bitstream, InstallTier, TimingReport};
use jitise_ir::{Dfg, Function};
use jitise_ise::Candidate;
use jitise_telemetry::{names, Telemetry, Value as TelValue};
use jitise_vm::{CostModel, CustomHandler, Value};
use std::sync::Mutex;

/// The Woolcano machine.
#[derive(Debug)]
pub struct Woolcano {
    /// Reconfiguration controller (interior mutability: the interpreter
    /// holds a shared handler reference).
    controller: Mutex<ReconfigController>,
    /// Base CPU model.
    pub cost: CostModel,
    /// FCB/APU interface overhead per CI invocation (cycles).
    pub fcb_overhead: u64,
    /// Observability handle (disabled by default).
    telemetry: Telemetry,
}

impl Woolcano {
    /// A machine with `slots` CI sites and default interface costs.
    pub fn new(slots: usize) -> Woolcano {
        Woolcano::with_telemetry(slots, Telemetry::disabled())
    }

    /// A machine that records `woolcano.install` spans and ICAP counters
    /// (`icap.bytes`, `icap.loads`, `icap.evictions`) to `telemetry`.
    pub fn with_telemetry(slots: usize, telemetry: Telemetry) -> Woolcano {
        Woolcano {
            controller: Mutex::new(ReconfigController::new(slots)),
            cost: CostModel::ppc405(),
            fcb_overhead: 3,
            telemetry,
        }
    }

    /// Hardware cycles a timing report implies at the base-core clock:
    /// critical path clocked at the CPU frequency plus the interface
    /// overhead. A diagnostic view — the pipeline installs CIs with the
    /// PivPav estimator's latency, which is calibrated to the real cores,
    /// whereas the scaled-down stand-in netlists' STA is only
    /// shape-accurate (see DESIGN.md §1).
    pub fn ci_cycles(&self, timing: &TimingReport) -> u64 {
        let period_ns = 1e9 / self.cost.clock_hz as f64;
        (timing.critical_path_ns / period_ns).ceil().max(1.0) as u64 + self.fcb_overhead
    }

    /// Loads an implemented candidate into a slot: freezes semantics,
    /// verifies and transfers the bitstream, and returns the slot index.
    /// `hw_cycles` is the CI's execution latency in CPU cycles (interface
    /// overhead included), normally the estimator's `hw_cycles`.
    pub fn install(
        &self,
        f: &Function,
        dfg: &Dfg,
        cand: &Candidate,
        hw_cycles: u64,
        bitstream: Bitstream,
    ) -> Result<u32> {
        self.install_tiered(f, dfg, cand, hw_cycles, bitstream, InstallTier::Full)
    }

    /// [`Self::install`] at an explicit tier: the overlay fast path passes
    /// [`InstallTier::Overlay`] with the assembled descriptor and the
    /// overlay-clock `hw_cycles`; the background upgrade later swaps the
    /// slot via [`Self::upgrade`].
    pub fn install_tiered(
        &self,
        f: &Function,
        dfg: &Dfg,
        cand: &Candidate,
        hw_cycles: u64,
        bitstream: Bitstream,
        tier: InstallTier,
    ) -> Result<u32> {
        let semantics = CiSemantics::freeze(f, dfg, cand)?;
        let signature = cand.signature(f, dfg);
        let mut span = self.telemetry.span("woolcano.install");
        let bytes = bitstream.len() as u64;
        let mut ctl = self.controller.lock().expect("controller lock");
        let (loads0, evictions0, time0) = (ctl.loads, ctl.evictions, ctl.total_reconfig_time);
        let slot = ctl.load_tiered(signature, semantics, hw_cycles, bitstream, tier)?;
        let (loads1, evictions1, time1) = (ctl.loads, ctl.evictions, ctl.total_reconfig_time);
        drop(ctl);
        if self.telemetry.is_enabled() {
            self.telemetry.add(names::ICAP_LOADS, loads1 - loads0);
            self.telemetry
                .add(names::ICAP_EVICTIONS, evictions1 - evictions0);
            if loads1 > loads0 {
                self.telemetry.add(names::ICAP_BYTES, bytes);
            }
            span.set_sim_time(SimTime::from_nanos(time1.as_nanos() - time0.as_nanos()));
            span.field("slot", TelValue::U64(slot as u64));
            span.field("signature", TelValue::U64(signature));
            span.field("tier", TelValue::Str(tier.name().into()));
        }
        Ok(slot)
    }

    /// Atomically upgrades an installed overlay CI to its fully routed
    /// bitstream (CRC-verified before the slot is touched — a corrupt
    /// upgrade leaves the overlay serving). Returns the slot index.
    pub fn upgrade(&self, signature: u64, hw_cycles: u64, bitstream: Bitstream) -> Result<u32> {
        let mut span = self.telemetry.span("woolcano.upgrade");
        let bytes = bitstream.len() as u64;
        let mut ctl = self.controller.lock().expect("controller lock");
        let (upgrades0, time0) = (ctl.upgrades, ctl.total_reconfig_time);
        let slot = ctl.upgrade(signature, hw_cycles, bitstream)?;
        let (upgrades1, time1) = (ctl.upgrades, ctl.total_reconfig_time);
        drop(ctl);
        if self.telemetry.is_enabled() {
            if upgrades1 > upgrades0 {
                self.telemetry
                    .add(names::ICAP_UPGRADES, upgrades1 - upgrades0);
                self.telemetry.add(names::ICAP_BYTES, bytes);
            }
            span.set_sim_time(SimTime::from_nanos(time1.as_nanos() - time0.as_nanos()));
            span.field("slot", TelValue::U64(slot as u64));
            span.field("signature", TelValue::U64(signature));
        }
        Ok(slot)
    }

    /// The tier currently installed for a signature, if loaded.
    pub fn tier_of(&self, signature: u64) -> Option<InstallTier> {
        let ctl = self.controller.lock().expect("lock");
        let slot = ctl.slot_of(signature)?;
        ctl.get(slot).map(|ci| ci.tier)
    }

    /// Slot of an already-loaded CI, by signature.
    pub fn slot_of(&self, signature: u64) -> Option<u32> {
        self.controller.lock().expect("lock").slot_of(signature)
    }

    /// Accumulated reconfiguration time (ICAP transfers).
    pub fn total_reconfig_time(&self) -> SimTime {
        self.controller.lock().expect("lock").total_reconfig_time
    }

    /// `(loads, evictions, occupied, capacity)` of the slot file.
    pub fn slot_stats(&self) -> (u64, u64, usize, usize) {
        let c = self.controller.lock().expect("lock");
        (c.loads, c.evictions, c.occupied(), c.capacity())
    }
}

impl CustomHandler for Woolcano {
    fn exec_custom(&self, slot: u32, args: &[Value]) -> Result<(Value, u64)> {
        let mut ctl = self.controller.lock().expect("lock");
        let ci = ctl
            .get(slot)
            .ok_or_else(|| Error::Arch(format!("no CI loaded in slot {slot}")))?;
        let value = ci.semantics.eval(args)?;
        let cycles = ci.hw_cycles;
        ctl.touch(slot);
        Ok((value, cycles))
    }
}

/// Measured base-vs-ASIP comparison for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupMeasurement {
    /// Cycles on the unmodified base CPU.
    pub base_cycles: u64,
    /// Cycles on the specialized ASIP.
    pub asip_cycles: u64,
    /// `base / asip`.
    pub speedup: f64,
}

/// Runs `entry(args)` on both the base module and the patched module (the
/// latter with `machine` handling CI opcodes) and reports the measured
/// speedup. Results must agree — a mismatch is an architecture-model bug
/// and returns an error.
pub fn measure_speedup(
    base: &jitise_ir::Module,
    patched: &jitise_ir::Module,
    machine: &Woolcano,
    entry: &str,
    args: &[Value],
) -> Result<SpeedupMeasurement> {
    let mut vm = jitise_vm::Interpreter::new(base);
    let base_out = vm.run(entry, args)?;
    let mut vm2 = jitise_vm::Interpreter::new(patched);
    vm2.set_custom_handler(machine);
    let asip_out = vm2.run(entry, args)?;
    if base_out.ret != asip_out.ret {
        return Err(Error::Arch(format!(
            "specialized binary diverged: base {:?} vs asip {:?}",
            base_out.ret, asip_out.ret
        )));
    }
    Ok(SpeedupMeasurement {
        base_cycles: base_out.cycles,
        asip_cycles: asip_out.cycles,
        speedup: base_out.cycles as f64 / asip_out.cycles.max(1) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patch::freeze_and_patch;
    use jitise_ir::{BlockId, FuncId, FunctionBuilder, Module, Operand as Op, Type};
    use jitise_ise::ForbiddenPolicy;
    use jitise_vm::BlockKey;

    /// Build a hot-loop module; return (module, candidate context).
    fn hot_module() -> Module {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let cell = b.alloca(4);
        b.store(Op::ci32(1), cell);
        b.counted_loop("i", Op::ci32(0), Op::Arg(0), |b, i| {
            let acc = b.load(Type::I32, cell);
            let x = b.mul(acc, i);
            let y = b.mul(x, Op::ci32(3));
            let z = b.add(y, i);
            let w = b.xor(z, Op::ci32(0x5a));
            b.store(w, cell);
        });
        let out = b.load(Type::I32, cell);
        b.ret(out);
        let mut m = Module::new("hot");
        m.add_func(b.finish());
        m
    }

    fn implement_first_candidate(m: &mut Module, machine: &Woolcano) {
        // Find the multiply-chain candidate in the loop body.
        let f = m.func(FuncId(0)).clone();
        let mut best: Option<(BlockId, Candidate)> = None;
        for bid in f.block_ids() {
            let dfg = Dfg::build(&f, bid);
            for c in jitise_ise::maxmiso(
                &f,
                &dfg,
                BlockKey::new(FuncId(0), bid),
                &ForbiddenPolicy::default(),
                3,
            )
            .candidates
            {
                if best
                    .as_ref()
                    .map(|(_, b)| c.len() > b.len())
                    .unwrap_or(true)
                {
                    best = Some((bid, c));
                }
            }
        }
        let (bid, cand) = best.expect("candidate in the loop");
        let dfg = Dfg::build(&f, bid);

        // Implement it through the real CAD flow on a real netlist.
        let db = jitise_pivpav::CircuitDb::build();
        let cache = jitise_pivpav::NetlistCache::new();
        let (project, _) = jitise_pivpav::create_project(&db, &cache, &f, &dfg, &cand).unwrap();
        let fabric = jitise_cad::Fabric::pr_region();
        let report =
            jitise_cad::run_flow(&fabric, &project, &jitise_cad::FlowOptions::fast()).unwrap();

        let func = m.func_mut(FuncId(0));
        let (_sem, patch) = freeze_and_patch(func, &dfg, &cand, 0).unwrap();
        // Install with the slot the patcher referenced.
        let hw = machine.ci_cycles(&report.timing).min(8);
        let slot = machine
            .install(&f, &dfg, &cand, hw, report.bitstream)
            .unwrap();
        assert_eq!(slot, patch.slot, "first load lands in slot 0");
    }

    #[test]
    fn end_to_end_speedup_on_hot_loop() {
        let base = hot_module();
        let mut patched = base.clone();
        let machine = Woolcano::new(4);
        implement_first_candidate(&mut patched, &machine);
        let m = measure_speedup(&base, &patched, &machine, "main", &[Value::I(20_000)]).unwrap();
        assert!(
            m.speedup > 1.0,
            "hardware should win: {} vs {} cycles",
            m.base_cycles,
            m.asip_cycles
        );
        let (loads, _, occupied, _) = machine.slot_stats();
        assert_eq!((loads, occupied), (1, 1));
        assert!(machine.total_reconfig_time() > SimTime::ZERO);
    }

    #[test]
    fn results_identical_base_vs_asip() {
        // measure_speedup itself asserts equality; run a few inputs.
        let base = hot_module();
        let mut patched = base.clone();
        let machine = Woolcano::new(4);
        implement_first_candidate(&mut patched, &machine);
        for n in [0i64, 1, 7, 333] {
            measure_speedup(&base, &patched, &machine, "main", &[Value::I(n)]).unwrap();
        }
    }

    #[test]
    fn missing_slot_errors() {
        let machine = Woolcano::new(2);
        let err = machine.exec_custom(1, &[]).unwrap_err();
        assert!(err.to_string().contains("no CI loaded"));
    }

    #[test]
    fn ci_cycles_from_timing() {
        let machine = Woolcano::new(1);
        let t = TimingReport {
            critical_path_ns: 10.0,
            fmax_mhz: 100.0,
            critical_cells: 5,
            meets_300mhz: false,
        };
        // 10 ns at 300 MHz = 3 cycles; + 3 overhead = 6.
        assert_eq!(machine.ci_cycles(&t), 6);
    }
}
