//! Single-cut enumeration vs. brute force.
//!
//! On random small DFGs (≤ 12 valid nodes, so 2^n subsets stay cheap) a
//! brute-force subset enumerator computes the exact set of maximal
//! feasible cuts; `single_cut_with` must reproduce it bit-for-bit with the
//! branch-and-bound port bound on *and* off — the bound may only skip
//! subtrees that cannot contain a feasible leaf. Graphs include
//! `cmp`/`select` pairs on purpose: a select has three producers, the
//! shape that breaks the naive "one output absorbed per remaining node"
//! slack argument (see the singlecut module docs).

use jitise_ir::{BlockId, CmpOp, Dfg, FuncId, Function, FunctionBuilder, Operand as Op, Type};
use jitise_ise::{single_cut_with, Candidate, ForbiddenPolicy, PortConstraints};
use jitise_vm::BlockKey;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct GraphSpec {
    ops: Vec<(u8, u8, u8)>,
    mem_every: u8,
}

fn graph() -> impl Strategy<Value = GraphSpec> {
    (
        prop::collection::vec((0u8..10, any::<u8>(), any::<u8>()), 1..10),
        2u8..8,
    )
        .prop_map(|(ops, mem_every)| GraphSpec { ops, mem_every })
}

/// Builds a single-block function: binary ops, the occasional
/// `cmp`+`select` pair, and store/load forbidden breakers.
fn build(spec: &GraphSpec) -> Function {
    let mut b = FunctionBuilder::new("g", vec![Type::I32, Type::I32], Type::I32);
    let cell = b.alloca(4);
    let mut vals = vec![Op::Arg(0), Op::Arg(1)];
    for (i, &(sel, ai, bi)) in spec.ops.iter().enumerate() {
        let a = vals[ai as usize % vals.len()];
        let c = vals[bi as usize % vals.len()];
        let v = match sel {
            0 => b.add(a, c),
            1 => b.sub(a, c),
            2 => b.mul(a, c),
            3 => b.xor(a, c),
            4 => b.and(a, c),
            5 => b.or(a, c),
            6 => b.shl(a, Op::ci32(3)),
            7 => b.mul(a, Op::ci32(5)),
            _ => {
                let cond = b.cmp(CmpOp::Slt, a, c);
                b.select(cond, a, c)
            }
        };
        vals.push(v);
        if i % spec.mem_every as usize == spec.mem_every as usize - 1 {
            b.store(v, cell);
            let r = b.load(Type::I32, cell);
            vals.push(r);
        }
    }
    b.ret(*vals.last().unwrap());
    b.finish()
}

fn key() -> BlockKey {
    BlockKey::new(FuncId(0), BlockId(0))
}

/// The ground truth: enumerate every subset of the valid nodes, keep the
/// feasible ones (convex, within ports, at least `min_size`), then keep
/// only those with no feasible strict superset.
fn brute_force(
    f: &Function,
    dfg: &Dfg,
    policy: &ForbiddenPolicy,
    ports: PortConstraints,
    min_size: usize,
) -> Vec<Vec<u32>> {
    let forbidden = policy.mask(dfg);
    let valid: Vec<u32> = (0..dfg.len() as u32)
        .filter(|&i| !forbidden[i as usize])
        .collect();
    let mut feasible: Vec<Vec<u32>> = Vec::new();
    for bits in 1u32..(1u32 << valid.len()) {
        let nodes: Vec<u32> = valid
            .iter()
            .enumerate()
            .filter(|&(q, _)| bits & (1 << q) != 0)
            .map(|(_, &v)| v)
            .collect();
        if nodes.len() < min_size {
            continue;
        }
        let cand = Candidate::from_nodes(f, dfg, key(), nodes.clone());
        if cand.is_convex(dfg)
            && cand.inputs <= ports.max_inputs
            && cand.outputs <= ports.max_outputs
        {
            feasible.push(nodes);
        }
    }
    let mut maximal: Vec<Vec<u32>> = feasible
        .iter()
        .filter(|s| {
            !feasible
                .iter()
                .any(|t| t.len() > s.len() && s.iter().all(|x| t.contains(x)))
        })
        .cloned()
        .collect();
    maximal.sort();
    maximal
}

fn sorted_nodes(candidates: &[Candidate]) -> Vec<Vec<u32>> {
    let mut v: Vec<Vec<u32>> = candidates.iter().map(|c| c.nodes.clone()).collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn singlecut_matches_brute_force_bound_on_and_off(
        spec in graph(),
        max_inputs in 2u32..5,
        max_outputs in 1u32..3,
        min_size in 1usize..3,
    ) {
        let f = build(&spec);
        let dfg = Dfg::build(&f, BlockId(0));
        let policy = ForbiddenPolicy::default();
        let forbidden = policy.mask(&dfg);
        let valid = forbidden.iter().filter(|&&x| !x).count();
        prop_assume!(valid <= 12);
        let ports = PortConstraints { max_inputs, max_outputs };

        let expected = brute_force(&f, &dfg, &policy, ports, min_size);
        let with = single_cut_with(
            &f, &dfg, key(), &policy, ports, min_size, true, u64::MAX,
        );
        let without = single_cut_with(
            &f, &dfg, key(), &policy, ports, min_size, false, u64::MAX,
        );
        prop_assert!(!with.cap_hit && !without.cap_hit);
        prop_assert_eq!(&sorted_nodes(&with.candidates), &expected,
            "bound on diverged from brute force");
        prop_assert_eq!(&sorted_nodes(&without.candidates), &expected,
            "bound off diverged from brute force");
        // The bound may only remove work, never leaves.
        prop_assert!(with.explored <= without.explored);
    }
}
