//! Parallel/memoized candidate search must be bit-identical to the
//! sequential, memo-less search: same `SearchOutcome` fingerprint (which
//! covers everything except `real_time`) at every worker count, memo cold
//! or warm, for every identification algorithm — and a memo shared across
//! *edited* modules must invalidate, never serve stale results.

use jitise_ir::{FunctionBuilder, Module, Operand as Op, Type};
use jitise_ise::{
    candidate_search, Algorithm, DepthEstimator, PruneFilter, SearchConfig, SearchMemo,
    SearchOutcome,
};
use jitise_vm::{Interpreter, Profile, Value};
use std::sync::Arc;

/// A module with several hot loops → several pruned blocks, so the
/// parallel fan-out actually has lanes' worth of work to race over.
/// `seed > 1` deepens every loop body by one extra op: same block keys,
/// different instruction streams (and different candidates).
fn multi_loop_module(seed: i32) -> Module {
    let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
    let cell = b.alloca(4);
    b.store(Op::ci32(seed), cell);
    for k in 0..4 {
        b.counted_loop(&format!("i{k}"), Op::ci32(0), Op::Arg(0), |b, i| {
            let acc = b.load(Type::I32, cell);
            let x = b.mul(acc, i);
            let y = b.mul(x, Op::ci32(3 + k));
            let mut z = b.add(y, i);
            if seed > 1 {
                z = b.or(z, Op::ci32(seed));
            }
            let w = b.xor(z, Op::ci32(0x5a + k));
            b.store(w, cell);
        });
    }
    let out = b.load(Type::I32, cell);
    b.ret(out);
    let mut m = Module::new("multi");
    m.add_func(b.finish());
    m
}

fn profile_of(m: &Module) -> Profile {
    let mut vm = Interpreter::new(m);
    vm.run("main", &[Value::I(500)]).unwrap();
    vm.take_profile()
}

fn search(
    m: &Module,
    p: &Profile,
    algorithm: Algorithm,
    workers: usize,
    memo: Option<Arc<SearchMemo>>,
) -> SearchOutcome {
    let cfg = SearchConfig {
        filter: PruneFilter::none(),
        algorithm,
        workers,
        memo,
        ..SearchConfig::default()
    };
    candidate_search(m, p, &DepthEstimator::default(), &cfg)
}

#[test]
fn workers_and_memo_never_change_the_outcome() {
    let m = multi_loop_module(1);
    let p = profile_of(&m);
    for algorithm in [
        Algorithm::SingleCut,
        Algorithm::MaxMiso,
        Algorithm::UnionMiso,
    ] {
        let reference = search(&m, &p, algorithm, 1, None);
        assert!(
            !reference.selection.selected.is_empty(),
            "{algorithm}: fixture must select candidates for the test to mean anything"
        );
        let fp = reference.fingerprint();
        let memo = Arc::new(SearchMemo::new());
        for workers in [1usize, 2, 8] {
            // Memo-less at this lane count.
            assert_eq!(
                search(&m, &p, algorithm, workers, None).fingerprint(),
                fp,
                "{algorithm}: workers={workers} memo=off diverged"
            );
            // Cold on the first iteration, warm after — all identical.
            let out = search(&m, &p, algorithm, workers, Some(Arc::clone(&memo)));
            assert_eq!(
                out.fingerprint(),
                fp,
                "{algorithm}: workers={workers} memo=on diverged"
            );
        }
        assert!(
            memo.hits() > 0,
            "{algorithm}: warm re-searches must hit the memo"
        );
        assert_eq!(memo.invalidations(), 0, "{algorithm}: nothing was edited");
    }
}

#[test]
fn edited_module_invalidates_instead_of_serving_stale_results() {
    let before = multi_loop_module(1);
    let after = multi_loop_module(2);
    let p_before = profile_of(&before);
    let p_after = profile_of(&after);

    let memo = Arc::new(SearchMemo::new());
    let cold = search(
        &before,
        &p_before,
        Algorithm::SingleCut,
        2,
        Some(Arc::clone(&memo)),
    );
    // Same block keys, different instruction streams: every warm entry is
    // stale now and must be recomputed, not served.
    let warm_after_edit = search(
        &after,
        &p_after,
        Algorithm::SingleCut,
        2,
        Some(Arc::clone(&memo)),
    );
    assert!(memo.invalidations() > 0, "edits must invalidate");
    let fresh = search(&after, &p_after, Algorithm::SingleCut, 1, None);
    assert_eq!(
        warm_after_edit.fingerprint(),
        fresh.fingerprint(),
        "post-edit search through the memo must equal a memo-less search"
    );
    assert_ne!(
        cold.fingerprint(),
        warm_after_edit.fingerprint(),
        "the edit deepens every loop body, hence candidates/selection"
    );
}

#[test]
fn memo_is_shared_across_worker_counts_without_divergence() {
    // One memo, many configurations touching it concurrently-ish: the
    // outcome must match the reference regardless of interleaving history.
    let m = multi_loop_module(3);
    let p = profile_of(&m);
    let fp = search(&m, &p, Algorithm::SingleCut, 1, None).fingerprint();
    let memo = Arc::new(SearchMemo::new());
    for workers in [8usize, 1, 2, 8, 2, 1] {
        assert_eq!(
            search(
                &m,
                &p,
                Algorithm::SingleCut,
                workers,
                Some(Arc::clone(&memo))
            )
            .fingerprint(),
            fp
        );
    }
    assert_eq!(memo.misses(), memo.len() as u64, "one miss per block");
}
