//! Property tests for the ISE algorithms on randomized DFGs: MAXMISO
//! structural invariants, SingleCut feasibility guarantees, candidate
//! signature stability, and pruning-filter algebra.

use jitise_ir::{BlockId, Dfg, FuncId, Function, FunctionBuilder, Operand as Op, Type};
use jitise_ise::{
    maxmiso, prune, single_cut, Candidate, ForbiddenPolicy, PortConstraints, PruneFilter,
};
use jitise_vm::{BlockKey, Profile};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct GraphSpec {
    ops: Vec<(u8, u8, u8)>,
    mem_every: u8,
}

fn graph() -> impl Strategy<Value = GraphSpec> {
    (
        prop::collection::vec((0u8..8, any::<u8>(), any::<u8>()), 1..30),
        1u8..8,
    )
        .prop_map(|(ops, mem_every)| GraphSpec { ops, mem_every })
}

fn build(spec: &GraphSpec) -> Function {
    let mut b = FunctionBuilder::new("g", vec![Type::I32, Type::I32], Type::I32);
    let cell = b.alloca(4);
    let mut vals = vec![Op::Arg(0), Op::Arg(1)];
    for (i, &(sel, ai, bi)) in spec.ops.iter().enumerate() {
        let a = vals[ai as usize % vals.len()];
        let c = vals[bi as usize % vals.len()];
        let v = match sel {
            0 => b.add(a, c),
            1 => b.sub(a, c),
            2 => b.mul(a, c),
            3 => b.xor(a, c),
            4 => b.and(a, c),
            5 => b.or(a, c),
            6 => b.shl(a, Op::ci32(3)),
            _ => b.mul(a, Op::ci32(5)),
        };
        vals.push(v);
        if i % spec.mem_every as usize == spec.mem_every as usize - 1 {
            // Forbidden breaker, like real code's memory traffic.
            b.store(v, cell);
            let r = b.load(Type::I32, cell);
            vals.push(r);
        }
    }
    b.ret(*vals.last().unwrap());
    b.finish()
}

fn key() -> BlockKey {
    BlockKey::new(FuncId(0), BlockId(0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn maxmiso_partitions_valid_nodes(spec in graph()) {
        let f = build(&spec);
        let dfg = Dfg::build(&f, BlockId(0));
        let policy = ForbiddenPolicy::default();
        let res = maxmiso(&f, &dfg, key(), &policy, 1);
        let forbidden = policy.mask(&dfg);
        let mut covered = vec![0u8; dfg.len()];
        for c in &res.candidates {
            prop_assert_eq!(c.outputs, 1);
            prop_assert!(c.is_convex(&dfg));
            for &n in &c.nodes {
                covered[n as usize] += 1;
            }
        }
        // A node is *observable* if its value reaches an escape or a
        // forbidden consumer (dead cones are dropped by maxmiso, as -O3
        // would drop them from real input).
        let mut observable = vec![false; dfg.len()];
        for i in (0..dfg.len()).rev() {
            let node = &dfg.nodes[i];
            observable[i] = node.escapes
                || node.succs.iter().any(|&s| {
                    forbidden[s as usize] || observable[s as usize]
                });
        }
        for (i, &cnt) in covered.iter().enumerate() {
            // (a) forbidden nodes are never covered; (b) disjointness;
            // (c) observable valid nodes are covered exactly once. A valid
            // node observable only through *dead* cones may legitimately be
            // covered (it roots a kept MISO feeding the dead nodes) or not
            // (it sits inside a dropped dead cone), so only one-sided
            // bounds hold there.
            if forbidden[i] {
                prop_assert_eq!(cnt, 0, "forbidden node {} covered", i);
            } else {
                prop_assert!(cnt <= 1, "node {} in {} MISOs", i, cnt);
                if observable[i] {
                    prop_assert_eq!(cnt, 1, "observable node {} uncovered", i);
                }
            }
        }
    }

    #[test]
    fn maxmiso_maximality(spec in graph()) {
        // Growing any candidate by one upstream producer must violate an
        // invariant (single output / validity / disjointness).
        let f = build(&spec);
        let dfg = Dfg::build(&f, BlockId(0));
        let policy = ForbiddenPolicy::default();
        let res = maxmiso(&f, &dfg, key(), &policy, 1);
        let forbidden = policy.mask(&dfg);
        for c in &res.candidates {
            let member: std::collections::HashSet<u32> = c.nodes.iter().copied().collect();
            for &n in &c.nodes {
                for &p in &dfg.nodes[n as usize].preds {
                    if member.contains(&p) || forbidden[p as usize] {
                        continue;
                    }
                    // Candidate grown by p: must now have >1 output or lose
                    // convexity — p's value must still escape somewhere.
                    let mut grown: Vec<u32> = c.nodes.clone();
                    grown.push(p);
                    let g = Candidate::from_nodes(&f, &dfg, key(), grown);
                    prop_assert!(
                        g.outputs > 1 || !g.is_convex(&dfg),
                        "MISO {:?} grew by {} without violating invariants",
                        c.nodes, p
                    );
                }
            }
        }
    }

    #[test]
    fn singlecut_respects_ports(spec in graph()) {
        let f = build(&spec);
        let dfg = Dfg::build(&f, BlockId(0));
        prop_assume!(dfg.len() <= 22); // keep the exponential search bounded
        let ports = PortConstraints { max_inputs: 3, max_outputs: 1 };
        let res = single_cut(&f, &dfg, key(), &ForbiddenPolicy::default(), ports, 1);
        for c in &res.candidates {
            prop_assert!(c.inputs <= 3);
            prop_assert!(c.outputs <= 1);
            prop_assert!(c.is_convex(&dfg));
        }
    }

    #[test]
    fn signatures_stable_and_order_independent(spec in graph()) {
        let f = build(&spec);
        let dfg = Dfg::build(&f, BlockId(0));
        let res = maxmiso(&f, &dfg, key(), &ForbiddenPolicy::default(), 2);
        for c in &res.candidates {
            let sig = c.signature(&f, &dfg);
            let mut shuffled = c.nodes.clone();
            shuffled.reverse();
            let c2 = Candidate::from_nodes(&f, &dfg, key(), shuffled);
            prop_assert_eq!(sig, c2.signature(&f, &dfg));
        }
    }

    #[test]
    fn prune_coverage_and_cap_hold(
        weights in prop::collection::vec(1u64..1000, 1..20),
        cap in 1usize..6,
        coverage in 0.1f64..1.0,
    ) {
        // Synthetic module: one block per weight.
        let mut b = FunctionBuilder::new("m", vec![Type::I32], Type::I32);
        let blocks: Vec<BlockId> = (1..weights.len()).map(|i| b.new_block(format!("b{i}"))).collect();
        let mut v = b.add(Op::Arg(0), Op::ci32(1));
        for &blk in &blocks {
            b.br(blk);
            b.switch_to(blk);
            v = b.add(v, Op::ci32(1));
        }
        b.ret(v);
        let mut module = jitise_ir::Module::new("m");
        module.add_func(b.finish());

        let mut profile = Profile::new();
        for (i, &w) in weights.iter().enumerate() {
            profile.record(BlockKey::new(FuncId(0), BlockId(i as u32)), w, 1);
        }
        let filter = PruneFilter { coverage, max_blocks: cap };
        let r = prune(&module, &profile, filter);
        prop_assert!(r.blocks.len() <= cap);
        // Either the cap binds, or coverage is met.
        prop_assert!(
            r.blocks.len() == cap || r.time_covered >= coverage - 1e-9,
            "kept {} of cap {}, covered {:.3} of {:.3}",
            r.blocks.len(), cap, r.time_covered, coverage
        );
        // Selected blocks are the hottest ones: no unselected block is
        // strictly hotter than a selected one.
        let selected_min = r
            .blocks
            .iter()
            .map(|k| profile.block_cycles(*k))
            .min()
            .unwrap_or(0);
        for (i, _) in weights.iter().enumerate() {
            let k = BlockKey::new(FuncId(0), BlockId(i as u32));
            if !r.blocks.contains(&k) {
                prop_assert!(profile.block_cycles(k) <= selected_min);
            }
        }
    }
}
