//! Hardware-feasibility policy.
//!
//! §V-D: "even these larger blocks include a sizable number of the
//! hardware-infeasible instructions, such as, accesses to global variables
//! or memory, which cannot be included in a hardware custom instruction."
//!
//! The policy below mirrors the standard ISE literature (and the paper's
//! Woolcano constraints): anything touching memory, the call stack, global
//! state, or control flow cannot go into a datapath-only custom
//! instruction. Pure arithmetic — including multi-cycle division — can.

use jitise_ir::{Dfg, Opcode};

/// Decides which operations may be absorbed into a custom instruction.
#[derive(Debug, Clone)]
pub struct ForbiddenPolicy {
    /// Whether integer division/remainder are allowed (they are large but
    /// implementable datapath blocks; the paper's PivPav library contains
    /// dividers — "the implementation of the shift operator is trivial in
    /// contrast to a division").
    pub allow_division: bool,
    /// Whether floating-point operations are allowed (Woolcano instantiates
    /// FP cores in the fabric; disable to model integer-only datapaths).
    pub allow_float: bool,
}

impl Default for ForbiddenPolicy {
    fn default() -> Self {
        ForbiddenPolicy {
            allow_division: true,
            allow_float: true,
        }
    }
}

impl ForbiddenPolicy {
    /// True if `op` must stay on the CPU.
    pub fn is_forbidden(&self, op: Opcode) -> bool {
        use jitise_ir::BinOp;
        match op {
            // Memory and global state.
            Opcode::Load | Opcode::Store | Opcode::Alloca | Opcode::GlobalAddr => true,
            // Address arithmetic is pure arithmetic, but its value is a
            // pointer consumed by loads/stores that stay on the CPU; fusing
            // it buys nothing and complicates register transfer, so the
            // standard policy forbids it as well.
            Opcode::Gep => true,
            // Control flow and calls.
            Opcode::Call | Opcode::CallExt | Opcode::Phi => true,
            // Already-customized instructions can't nest.
            Opcode::Custom => true,
            Opcode::Bin(b) => match b {
                BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem => !self.allow_division,
                BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv => !self.allow_float,
                _ => false,
            },
            Opcode::Un(u) => {
                use jitise_ir::UnOp;
                match u {
                    UnOp::FNeg | UnOp::FpExt | UnOp::FpTrunc | UnOp::FpToSi | UnOp::SiToFp => {
                        !self.allow_float
                    }
                    _ => false,
                }
            }
            Opcode::Cmp(c) => c.is_float() && !self.allow_float,
            Opcode::Select => false,
        }
    }

    /// Per-node forbidden mask for a DFG.
    pub fn mask(&self, dfg: &Dfg) -> Vec<bool> {
        dfg.nodes
            .iter()
            .map(|n| self.is_forbidden(n.opcode))
            .collect()
    }

    /// Fraction of a DFG's nodes that are forbidden.
    pub fn forbidden_frac(&self, dfg: &Dfg) -> f64 {
        if dfg.is_empty() {
            return 0.0;
        }
        let n = self.mask(dfg).iter().filter(|&&b| b).count();
        n as f64 / dfg.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::{BinOp, BlockId, CmpOp, FunctionBuilder, Operand as Op, Type, UnOp};

    #[test]
    fn memory_and_control_forbidden() {
        let p = ForbiddenPolicy::default();
        for op in [
            Opcode::Load,
            Opcode::Store,
            Opcode::Gep,
            Opcode::Alloca,
            Opcode::GlobalAddr,
            Opcode::Call,
            Opcode::CallExt,
            Opcode::Phi,
            Opcode::Custom,
        ] {
            assert!(p.is_forbidden(op), "{op:?} must be forbidden");
        }
    }

    #[test]
    fn arithmetic_allowed() {
        let p = ForbiddenPolicy::default();
        for op in [
            Opcode::Bin(BinOp::Add),
            Opcode::Bin(BinOp::Mul),
            Opcode::Bin(BinOp::SDiv),
            Opcode::Bin(BinOp::FAdd),
            Opcode::Un(UnOp::SExt),
            Opcode::Cmp(CmpOp::Slt),
            Opcode::Select,
        ] {
            assert!(!p.is_forbidden(op), "{op:?} must be allowed");
        }
    }

    #[test]
    fn policy_toggles() {
        let p = ForbiddenPolicy {
            allow_division: false,
            allow_float: false,
        };
        assert!(p.is_forbidden(Opcode::Bin(BinOp::UDiv)));
        assert!(p.is_forbidden(Opcode::Bin(BinOp::FMul)));
        assert!(p.is_forbidden(Opcode::Cmp(CmpOp::FOlt)));
        assert!(p.is_forbidden(Opcode::Un(UnOp::SiToFp)));
        assert!(!p.is_forbidden(Opcode::Bin(BinOp::Add)));
    }

    #[test]
    fn mask_over_dfg() {
        let mut b = FunctionBuilder::new("f", vec![Type::Ptr, Type::I32], Type::I32);
        let v = b.load(Type::I32, Op::Arg(0)); // forbidden
        let w = b.add(v, Op::Arg(1)); // allowed
        let x = b.mul(w, w); // allowed
        b.store(x, Op::Arg(0)); // forbidden
        b.ret(x);
        let f = b.finish();
        let dfg = jitise_ir::Dfg::build(&f, BlockId(0));
        let policy = ForbiddenPolicy::default();
        assert_eq!(policy.mask(&dfg), vec![true, false, false, true]);
        assert!((policy.forbidden_frac(&dfg) - 0.5).abs() < 1e-9);
    }
}
