//! The Candidate Search phase (Fig. 2, first box).
//!
//! Drives pruning → identification → estimation → selection over one
//! profiled module and reports the same quantities the paper's Table II
//! does for this phase: real wall-clock milliseconds, surviving
//! blocks/instructions, candidate count, and the post-selection ASIP
//! speedup.

use crate::estimate::{CandidateEstimate, Estimator};
use crate::forbidden::ForbiddenPolicy;
use crate::maxmiso::maxmiso;
use crate::prune::{prune, PruneFilter, PruneResult};
use crate::select::{select, speedup, AreaBudget, SelectionResult};
use crate::singlecut::{single_cut, PortConstraints};
use crate::union::union_miso;
use jitise_ir::{Dfg, Module};
use jitise_telemetry::{names, Telemetry, Value as TelValue};
use jitise_vm::Profile;
use std::time::{Duration, Instant};

/// Which identification algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Linear-time maximal MISO identification (the paper's choice).
    MaxMiso,
    /// Exponential exact enumeration (baseline).
    SingleCut,
    /// MaxMISO + greedy input-sharing merges (baseline).
    UnionMiso,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Algorithm::MaxMiso => "MAXMISO",
            Algorithm::SingleCut => "SINGLECUT",
            Algorithm::UnionMiso => "UNIONMISO",
        })
    }
}

/// Configuration of one candidate search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Pruning filter (use [`PruneFilter::none`] to disable).
    pub filter: PruneFilter,
    /// Identification algorithm.
    pub algorithm: Algorithm,
    /// Feasibility policy.
    pub policy: ForbiddenPolicy,
    /// Port constraints (SingleCut / UnionMiso only).
    pub ports: PortConstraints,
    /// Minimum candidate size in instructions.
    pub min_size: usize,
    /// Area budget for selection.
    pub budget: AreaBudget,
    /// Observability handle (disabled by default; zero overhead).
    pub telemetry: Telemetry,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            filter: PruneFilter::paper_default(),
            algorithm: Algorithm::MaxMiso,
            policy: ForbiddenPolicy::default(),
            ports: PortConstraints::default(),
            min_size: 2,
            budget: AreaBudget::default(),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Everything the Candidate Search phase produced.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Pruning statistics (Table II `blk`, `ins` columns).
    pub prune: PruneResult,
    /// Selected candidates with estimates (Table II `can` column).
    pub selection: SelectionResult,
    /// Candidates identified before selection.
    pub identified: usize,
    /// Real wall-clock time of the whole search (Table II `real [ms]`).
    pub real_time: Duration,
    /// Application speedup with the selected candidates (Table II `ASIP
    /// ratio` column).
    pub asip_ratio: f64,
    /// Average block size passing pruning (paper §V-D: 155.65 / 29.71).
    pub avg_pruned_block_size: f64,
    /// Average candidate size in instructions (paper: 7.31 / 6.5).
    pub avg_candidate_size: f64,
}

/// Runs the full Candidate Search phase.
pub fn candidate_search(
    module: &Module,
    profile: &Profile,
    estimator: &dyn Estimator,
    config: &SearchConfig,
) -> SearchOutcome {
    let start = Instant::now();
    let tel = &config.telemetry;
    let search_span = tel.span("ise.search");
    let tel = tel.under(&search_span);

    // 1. Prune: restrict identification to the most promising blocks.
    let pruned = {
        let mut span = search_span.child("ise.prune");
        let pruned = prune(module, profile, config.filter);
        span.field("blocks_after", TelValue::U64(pruned.blocks.len() as u64));
        span.field("insts_after", TelValue::U64(pruned.insts_after as u64));
        pruned
    };

    // 2. Identify candidates in every surviving block.
    let identify_span = tel.span("ise.identify");
    let mut per_block: Vec<(
        &jitise_ir::Function,
        Dfg,
        u64,
        Vec<crate::candidate::Candidate>,
    )> = Vec::with_capacity(pruned.blocks.len());
    let mut identified = 0usize;
    for &key in &pruned.blocks {
        let f = module.func(key.func);
        let dfg = Dfg::build(f, key.block);
        let cands = match config.algorithm {
            Algorithm::MaxMiso => maxmiso(f, &dfg, key, &config.policy, config.min_size).candidates,
            Algorithm::SingleCut => {
                single_cut(f, &dfg, key, &config.policy, config.ports, config.min_size).candidates
            }
            Algorithm::UnionMiso => {
                union_miso(f, &dfg, key, &config.policy, config.ports, config.min_size).candidates
            }
        };
        identified += cands.len();
        per_block.push((f, dfg, profile.count(key), cands));
    }
    tel.add(names::CANDIDATES_IDENTIFIED, identified as u64);
    identify_span.end();

    // 3. Estimate each candidate's hardware merit.
    let estimate_span = tel.span("ise.estimate");
    let mut pool: Vec<(crate::candidate::Candidate, CandidateEstimate)> =
        Vec::with_capacity(identified);
    for (f, dfg, count, cands) in per_block {
        for cand in cands {
            tel.observe("ise.candidate_size", cand.len() as u64);
            let est = estimator.estimate(f, &dfg, &cand, count);
            pool.push((cand, est));
        }
    }
    estimate_span.end();

    // 4. Select under the area budget.
    let selection = {
        let _span = tel.span("ise.select");
        select(pool, config.budget)
    };
    tel.add(names::CANDIDATES_PRUNED, selection.rejected as u64);
    tel.add(names::CANDIDATES_SELECTED, selection.selected.len() as u64);
    let marginal = selection
        .selected
        .iter()
        .filter(|s| s.estimate.merit() == 0)
        .count();
    tel.add(names::CANDIDATES_MARGINAL, marginal as u64);
    drop(search_span);
    let real_time = start.elapsed();

    let asip_ratio = speedup(profile.total_cycles(), &selection);
    let avg_pruned_block_size = if pruned.blocks.is_empty() {
        0.0
    } else {
        pruned.insts_after as f64 / pruned.blocks.len() as f64
    };
    let avg_candidate_size = if selection.selected.is_empty() {
        0.0
    } else {
        selection
            .selected
            .iter()
            .map(|s| s.candidate.len())
            .sum::<usize>() as f64
            / selection.selected.len() as f64
    };

    SearchOutcome {
        prune: pruned,
        selection,
        identified,
        real_time,
        asip_ratio,
        avg_pruned_block_size,
        avg_candidate_size,
    }
}

/// Pruning efficiency (Table II, 3rd column): the gain in the
/// speedup-to-identification-time ratio that pruning buys.
///
/// `eff = (S_pruned / T_pruned) / (S_full / T_full)` where `S` is the ASIP
/// speedup and `T` the identification runtime.
pub fn pruning_efficiency(pruned: (f64, Duration), full: (f64, Duration)) -> f64 {
    let (s_p, t_p) = pruned;
    let (s_f, t_f) = full;
    let denom = s_f / t_f.as_secs_f64().max(1e-9);
    let num = s_p / t_p.as_secs_f64().max(1e-9);
    if denom == 0.0 {
        return 0.0;
    }
    num / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::DepthEstimator;
    use jitise_ir::{FunctionBuilder, Operand as Op, Type};
    use jitise_vm::{Interpreter, Value};

    /// A module with one hot multiply-heavy loop and one cold block.
    fn hot_loop_module() -> Module {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let cell = b.alloca(4);
        b.store(Op::ci32(1), cell);
        b.counted_loop("i", Op::ci32(0), Op::Arg(0), |b, i| {
            let acc = b.load(Type::I32, cell);
            let x = b.mul(acc, i);
            let y = b.mul(x, Op::ci32(3));
            let z = b.add(y, i);
            let w = b.xor(z, Op::ci32(0x5a));
            b.store(w, cell);
        });
        let out = b.load(Type::I32, cell);
        b.ret(out);
        let mut m = Module::new("hot");
        m.add_func(b.finish());
        m
    }

    fn profile_of(m: &Module, n: i64) -> Profile {
        let mut vm = Interpreter::new(m);
        vm.run("main", &[Value::I(n)]).unwrap();
        vm.take_profile()
    }

    #[test]
    fn end_to_end_search_finds_profitable_candidates() {
        let m = hot_loop_module();
        let p = profile_of(&m, 10_000);
        let out = candidate_search(&m, &p, &DepthEstimator::default(), &SearchConfig::default());
        assert!(!out.selection.selected.is_empty(), "must select something");
        assert!(
            out.asip_ratio > 1.0,
            "speedup {} must exceed 1",
            out.asip_ratio
        );
        assert!(out.prune.blocks.len() <= 3, "@50pS3L caps at 3 blocks");
        assert!(out.avg_candidate_size >= 2.0);
        assert!(out.real_time.as_millis() < 5_000);
    }

    #[test]
    fn pruning_reduces_work_but_keeps_most_speedup() {
        let m = hot_loop_module();
        let p = profile_of(&m, 10_000);
        let est = DepthEstimator::default();
        let pruned_cfg = SearchConfig::default();
        let full_cfg = SearchConfig {
            filter: PruneFilter::none(),
            ..SearchConfig::default()
        };
        let pruned = candidate_search(&m, &p, &est, &pruned_cfg);
        let full = candidate_search(&m, &p, &est, &full_cfg);
        assert!(pruned.prune.insts_after <= full.prune.insts_after);
        // The hot loop dominates; pruning should retain >= 90 % of speedup
        // here (the paper's filter sacrifices ~25 % on real apps).
        assert!(pruned.asip_ratio >= 1.0);
        assert!(full.asip_ratio >= pruned.asip_ratio * 0.99);
    }

    #[test]
    fn algorithms_agree_on_simple_loop() {
        let m = hot_loop_module();
        let p = profile_of(&m, 1000);
        let est = DepthEstimator::default();
        for alg in [
            Algorithm::MaxMiso,
            Algorithm::SingleCut,
            Algorithm::UnionMiso,
        ] {
            let cfg = SearchConfig {
                algorithm: alg,
                ..Default::default()
            };
            let out = candidate_search(&m, &p, &est, &cfg);
            assert!(
                out.asip_ratio >= 1.0,
                "{alg} found nothing on an obviously good loop"
            );
        }
    }

    #[test]
    fn efficiency_metric() {
        use std::time::Duration;
        // Pruned: speedup 3 in 1 ms. Full: speedup 4 in 100 ms.
        let eff = pruning_efficiency(
            (3.0, Duration::from_millis(1)),
            (4.0, Duration::from_millis(100)),
        );
        assert!((eff - 75.0).abs() < 1.0, "eff {eff}");
        assert!(
            pruning_efficiency(
                (0.0, Duration::from_millis(1)),
                (1.0, Duration::from_millis(1))
            ) == 0.0
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(Algorithm::MaxMiso.to_string(), "MAXMISO");
        assert_eq!(Algorithm::SingleCut.to_string(), "SINGLECUT");
        assert_eq!(Algorithm::UnionMiso.to_string(), "UNIONMISO");
    }
}
