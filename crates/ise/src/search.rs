//! The Candidate Search phase (Fig. 2, first box).
//!
//! Drives pruning → identification → estimation → selection over one
//! profiled module and reports the same quantities the paper's Table II
//! does for this phase: real wall-clock milliseconds, surviving
//! blocks/instructions, candidate count, and the post-selection ASIP
//! speedup.
//!
//! # Parallel, deterministic, incremental
//!
//! Identification (per block) and estimation (per candidate) are
//! independent, so both fan out across [`SearchConfig::workers`] OS
//! threads via [`parallel_map_indexed`] and merge **in pruned-block
//! order** — the same contract as the CAD scheduler: every observable of
//! the [`SearchOutcome`] (checked by [`SearchOutcome::fingerprint`], which
//! covers everything except `real_time`) is bit-identical at any lane
//! count. Telemetry is emitted only from the merging thread, so the
//! canonical journal is schedule-oblivious too. With a
//! [`SearchConfig::memo`] attached, per-block DFGs and identification
//! results are reused across the repeated searches the adaptive runtime
//! performs — see [`crate::memo`] for the keying/invalidation rule.

use crate::estimate::{CandidateEstimate, Estimator};
use crate::forbidden::ForbiddenPolicy;
use crate::maxmiso::maxmiso;
use crate::memo::{self, IdentOutcome, SearchMemo};
use crate::prune::{prune, PruneFilter, PruneResult};
use crate::select::{select, speedup, AreaBudget, SelectionResult};
use crate::singlecut::{single_cut, PortConstraints};
use crate::union::union_miso;
use jitise_base::hash::SigHasher;
use jitise_base::par::parallel_map_indexed;
use jitise_ir::{Dfg, FuncId, Module};
use jitise_telemetry::{names, Telemetry, Value as TelValue};
use jitise_vm::{BlockKey, Profile};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which identification algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Linear-time maximal MISO identification (the paper's choice).
    MaxMiso,
    /// Exponential exact enumeration (baseline).
    SingleCut,
    /// MaxMISO + greedy input-sharing merges (baseline).
    UnionMiso,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Algorithm::MaxMiso => "MAXMISO",
            Algorithm::SingleCut => "SINGLECUT",
            Algorithm::UnionMiso => "UNIONMISO",
        })
    }
}

/// Configuration of one candidate search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Pruning filter (use [`PruneFilter::none`] to disable).
    pub filter: PruneFilter,
    /// Identification algorithm.
    pub algorithm: Algorithm,
    /// Feasibility policy.
    pub policy: ForbiddenPolicy,
    /// Port constraints (SingleCut / UnionMiso only).
    pub ports: PortConstraints,
    /// Minimum candidate size in instructions.
    pub min_size: usize,
    /// Area budget for selection.
    pub budget: AreaBudget,
    /// Observability handle (disabled by default; zero overhead).
    pub telemetry: Telemetry,
    /// Worker lanes for identification and estimation. `1` (the default)
    /// runs fully sequentially on the caller; higher counts change only
    /// `real_time`, never the outcome.
    pub workers: usize,
    /// Identification memo shared across searches (`None` = no caching).
    pub memo: Option<Arc<SearchMemo>>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            filter: PruneFilter::paper_default(),
            algorithm: Algorithm::MaxMiso,
            policy: ForbiddenPolicy::default(),
            ports: PortConstraints::default(),
            min_size: 2,
            budget: AreaBudget::default(),
            telemetry: Telemetry::disabled(),
            workers: 1,
            memo: None,
        }
    }
}

/// Everything the Candidate Search phase produced.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Pruning statistics (Table II `blk`, `ins` columns).
    pub prune: PruneResult,
    /// Selected candidates with estimates (Table II `can` column).
    pub selection: SelectionResult,
    /// Candidates identified before selection.
    pub identified: usize,
    /// True if any block's identification was truncated by its exploration
    /// cap — the candidate set is then a lower bound, not the full answer.
    pub cap_hit: bool,
    /// Per-block identification work, in pruned-block order: the
    /// algorithm's deterministic work measure (subsets explored / nodes
    /// examined / merges) plus the block's DFG size. Schedule- and
    /// memo-invariant; the bench's makespan model consumes it.
    pub identify_work: Vec<(BlockKey, u64)>,
    /// Real wall-clock time of the whole search (Table II `real [ms]`).
    pub real_time: Duration,
    /// Application speedup with the selected candidates (Table II `ASIP
    /// ratio` column).
    pub asip_ratio: f64,
    /// Average block size passing pruning (paper §V-D: 155.65 / 29.71).
    pub avg_pruned_block_size: f64,
    /// Average candidate size in instructions (paper: 7.31 / 6.5).
    pub avg_candidate_size: f64,
}

impl SearchOutcome {
    /// Structural fingerprint of every field except `real_time` (the one
    /// quantity that legitimately varies run to run). The determinism
    /// suite and the `search` sweep assert this is bit-identical across
    /// worker counts and memo warm/cold.
    pub fn fingerprint(&self) -> u64 {
        let mut h = SigHasher::new();
        h.write_usize(self.prune.blocks.len());
        for k in &self.prune.blocks {
            h.write_str(&format!("{k:?}"));
        }
        h.write_usize(self.prune.blocks_before)
            .write_usize(self.prune.insts_before)
            .write_usize(self.prune.insts_after)
            .write_u64(self.prune.time_covered.to_bits())
            .write_usize(self.identified)
            .write_u32(self.cap_hit as u32);
        for (k, w) in &self.identify_work {
            h.write_str(&format!("{k:?}"));
            h.write_u64(*w);
        }
        h.write_usize(self.selection.selected.len());
        for s in &self.selection.selected {
            h.write_str(&format!("{:?}", s.candidate.key));
            h.write_usize(s.candidate.nodes.len());
            for &n in &s.candidate.nodes {
                h.write_u32(n);
            }
            h.write_u32(s.candidate.inputs)
                .write_u32(s.candidate.outputs)
                .write_u32(s.candidate.const_inputs)
                .write_u64(s.estimate.sw_cycles)
                .write_u64(s.estimate.hw_cycles)
                .write_u64(s.estimate.exec_count)
                .write_u32(s.estimate.luts)
                .write_u32(s.estimate.ffs)
                .write_u32(s.estimate.dsps);
        }
        h.write_usize(self.selection.rejected)
            .write_u64(self.selection.total_saved_cycles)
            .write_u32(self.selection.luts_used)
            .write_u32(self.selection.ffs_used)
            .write_u32(self.selection.dsps_used)
            .write_u64(self.asip_ratio.to_bits())
            .write_u64(self.avg_pruned_block_size.to_bits())
            .write_u64(self.avg_candidate_size.to_bits());
        h.finish()
    }
}

/// Greedy least-loaded-lane makespan of the identification stage, in work
/// units (same schedule model as the CAD scheduler's `lane_makespan`).
/// Deterministic in the input order; the `search` sweep uses it to report
/// machine-independent speedup alongside measured wall-clock.
pub fn identify_makespan(work: &[(BlockKey, u64)], lanes: usize) -> u64 {
    let mut load = vec![0u64; lanes.max(1)];
    for &(_, w) in work {
        if let Some(min) = load.iter_mut().min_by_key(|l| **l) {
            *min += w;
        }
    }
    load.into_iter().max().unwrap_or(0)
}

/// One block's identification result, as merged in pruned-block order.
struct BlockIdent {
    dfg: Arc<Dfg>,
    exec_count: u64,
    ident: Arc<IdentOutcome>,
    memo_hit: bool,
}

/// Runs the full Candidate Search phase.
pub fn candidate_search(
    module: &Module,
    profile: &Profile,
    estimator: &dyn Estimator,
    config: &SearchConfig,
) -> SearchOutcome {
    let start = Instant::now();
    let tel = &config.telemetry;
    let search_span = tel.span("ise.search");
    let tel = tel.under(&search_span);
    let workers = config.workers.max(1);

    // 1. Prune: restrict identification to the most promising blocks.
    let pruned = {
        let mut span = search_span.child("ise.prune");
        let pruned = prune(module, profile, config.filter);
        span.field("blocks_after", TelValue::U64(pruned.blocks.len() as u64));
        span.field("insts_after", TelValue::U64(pruned.insts_after as u64));
        pruned
    };

    // 2. Identify candidates in every surviving block, fanned out across
    //    the worker lanes. Memo content signatures cover whole functions
    //    (escape analysis sees every block), so hash each function once,
    //    serially, before the fan-out.
    let mut identify_span = search_span.child("ise.identify");
    let func_sigs: HashMap<FuncId, u64> = if config.memo.is_some() {
        let mut sigs = HashMap::new();
        for &key in &pruned.blocks {
            sigs.entry(key.func)
                .or_insert_with(|| memo::function_signature(module.func(key.func)));
        }
        sigs
    } else {
        HashMap::new()
    };
    let cfg_sig = memo::config_signature(
        config.algorithm,
        &config.policy,
        config.ports,
        config.min_size,
    );
    let identify = |key: BlockKey, dfg: &Dfg| -> IdentOutcome {
        let f = module.func(key.func);
        match config.algorithm {
            Algorithm::MaxMiso => {
                let r = maxmiso(f, dfg, key, &config.policy, config.min_size);
                IdentOutcome {
                    candidates: r.candidates,
                    explored: r.nodes_examined as u64,
                    cap_hit: false,
                }
            }
            Algorithm::SingleCut => {
                let r = single_cut(f, dfg, key, &config.policy, config.ports, config.min_size);
                IdentOutcome {
                    candidates: r.candidates,
                    explored: r.explored,
                    cap_hit: r.cap_hit,
                }
            }
            Algorithm::UnionMiso => {
                let r = union_miso(f, dfg, key, &config.policy, config.ports, config.min_size);
                IdentOutcome {
                    candidates: r.candidates,
                    explored: r.merges as u64,
                    cap_hit: false,
                }
            }
        }
    };
    let per_block: Vec<BlockIdent> = parallel_map_indexed(workers, &pruned.blocks, |_, &key| {
        let exec_count = profile.count(key);
        match &config.memo {
            Some(memo) => {
                let content = memo::block_signature(func_sigs[&key.func], key.block);
                let (dfg, ident, memo_hit) = memo.lookup_or_compute(
                    key,
                    content,
                    cfg_sig,
                    || Dfg::build(module.func(key.func), key.block),
                    |dfg| identify(key, dfg),
                );
                BlockIdent {
                    dfg,
                    exec_count,
                    ident,
                    memo_hit,
                }
            }
            None => {
                let dfg = Dfg::build(module.func(key.func), key.block);
                let ident = identify(key, &dfg);
                BlockIdent {
                    dfg: Arc::new(dfg),
                    exec_count,
                    ident: Arc::new(ident),
                    memo_hit: false,
                }
            }
        }
    });

    // Merge serially, in pruned-block order — telemetry must never observe
    // the scheduling interleaving.
    let mut identified = 0usize;
    let mut cap_hit = false;
    let mut explored_total = 0u64;
    let (mut memo_hits, mut memo_misses) = (0u64, 0u64);
    let mut identify_work: Vec<(BlockKey, u64)> = Vec::with_capacity(per_block.len());
    for (&key, b) in pruned.blocks.iter().zip(&per_block) {
        identified += b.ident.candidates.len();
        explored_total += b.ident.explored;
        if b.ident.cap_hit {
            cap_hit = true;
            tel.add(names::SINGLECUT_CAP_HIT, 1);
        }
        if b.memo_hit {
            memo_hits += 1;
        } else if config.memo.is_some() {
            memo_misses += 1;
        }
        identify_work.push((key, b.ident.explored.max(1) + b.dfg.len() as u64));
    }
    tel.add(names::CANDIDATES_IDENTIFIED, identified as u64);
    if config.memo.is_some() {
        tel.add(names::SEARCH_MEMO_HITS, memo_hits);
        tel.add(names::SEARCH_MEMO_MISSES, memo_misses);
    }
    identify_span.field("workers", TelValue::U64(workers as u64));
    identify_span.field("blocks", TelValue::U64(pruned.blocks.len() as u64));
    identify_span.field("explored", TelValue::U64(explored_total));
    identify_span.field("cap_hit", TelValue::Bool(cap_hit));
    if config.memo.is_some() {
        identify_span.field("memo_hits", TelValue::U64(memo_hits));
        identify_span.field("memo_misses", TelValue::U64(memo_misses));
    }
    identify_span.end();

    // 3. Estimate each candidate's hardware merit, fanned out per
    //    candidate; the pool is assembled in (block, candidate) order.
    let mut estimate_span = tel.span("ise.estimate");
    let jobs: Vec<(usize, usize)> = per_block
        .iter()
        .enumerate()
        .flat_map(|(bi, b)| (0..b.ident.candidates.len()).map(move |ci| (bi, ci)))
        .collect();
    let estimates: Vec<CandidateEstimate> = parallel_map_indexed(workers, &jobs, |_, &(bi, ci)| {
        let b = &per_block[bi];
        let f = module.func(b.ident.candidates[ci].key.func);
        estimator.estimate(f, &b.dfg, &b.ident.candidates[ci], b.exec_count)
    });
    let mut pool: Vec<(crate::candidate::Candidate, CandidateEstimate)> =
        Vec::with_capacity(jobs.len());
    for (&(bi, ci), est) in jobs.iter().zip(estimates) {
        let cand = per_block[bi].ident.candidates[ci].clone();
        tel.observe("ise.candidate_size", cand.len() as u64);
        pool.push((cand, est));
    }
    estimate_span.field("candidates", TelValue::U64(jobs.len() as u64));
    estimate_span.end();

    // 4. Select under the area budget.
    let selection = {
        let _span = tel.span("ise.select");
        select(pool, config.budget)
    };
    tel.add(names::CANDIDATES_PRUNED, selection.rejected as u64);
    tel.add(names::CANDIDATES_SELECTED, selection.selected.len() as u64);
    let marginal = selection
        .selected
        .iter()
        .filter(|s| s.estimate.merit() == 0)
        .count();
    tel.add(names::CANDIDATES_MARGINAL, marginal as u64);
    drop(search_span);
    let real_time = start.elapsed();

    let asip_ratio = speedup(profile.total_cycles(), &selection);
    let avg_pruned_block_size = if pruned.blocks.is_empty() {
        0.0
    } else {
        pruned.insts_after as f64 / pruned.blocks.len() as f64
    };
    let avg_candidate_size = if selection.selected.is_empty() {
        0.0
    } else {
        selection
            .selected
            .iter()
            .map(|s| s.candidate.len())
            .sum::<usize>() as f64
            / selection.selected.len() as f64
    };

    SearchOutcome {
        prune: pruned,
        selection,
        identified,
        cap_hit,
        identify_work,
        real_time,
        asip_ratio,
        avg_pruned_block_size,
        avg_candidate_size,
    }
}

/// Pruning efficiency (Table II, 3rd column): the gain in the
/// speedup-to-identification-time ratio that pruning buys.
///
/// `eff = (S_pruned / T_pruned) / (S_full / T_full)` where `S` is the ASIP
/// speedup and `T` the identification runtime.
pub fn pruning_efficiency(pruned: (f64, Duration), full: (f64, Duration)) -> f64 {
    let (s_p, t_p) = pruned;
    let (s_f, t_f) = full;
    let denom = s_f / t_f.as_secs_f64().max(1e-9);
    let num = s_p / t_p.as_secs_f64().max(1e-9);
    if denom == 0.0 {
        return 0.0;
    }
    num / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::DepthEstimator;
    use jitise_ir::{FunctionBuilder, Operand as Op, Type};
    use jitise_vm::{Interpreter, Value};

    /// A module with one hot multiply-heavy loop and one cold block.
    fn hot_loop_module() -> Module {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let cell = b.alloca(4);
        b.store(Op::ci32(1), cell);
        b.counted_loop("i", Op::ci32(0), Op::Arg(0), |b, i| {
            let acc = b.load(Type::I32, cell);
            let x = b.mul(acc, i);
            let y = b.mul(x, Op::ci32(3));
            let z = b.add(y, i);
            let w = b.xor(z, Op::ci32(0x5a));
            b.store(w, cell);
        });
        let out = b.load(Type::I32, cell);
        b.ret(out);
        let mut m = Module::new("hot");
        m.add_func(b.finish());
        m
    }

    fn profile_of(m: &Module, n: i64) -> Profile {
        let mut vm = Interpreter::new(m);
        vm.run("main", &[Value::I(n)]).unwrap();
        vm.take_profile()
    }

    #[test]
    fn end_to_end_search_finds_profitable_candidates() {
        let m = hot_loop_module();
        let p = profile_of(&m, 10_000);
        let out = candidate_search(&m, &p, &DepthEstimator::default(), &SearchConfig::default());
        assert!(!out.selection.selected.is_empty(), "must select something");
        assert!(
            out.asip_ratio > 1.0,
            "speedup {} must exceed 1",
            out.asip_ratio
        );
        assert!(out.prune.blocks.len() <= 3, "@50pS3L caps at 3 blocks");
        assert!(out.avg_candidate_size >= 2.0);
        assert!(out.real_time.as_millis() < 5_000);
        assert!(!out.cap_hit);
        assert_eq!(out.identify_work.len(), out.prune.blocks.len());
    }

    #[test]
    fn pruning_reduces_work_but_keeps_most_speedup() {
        let m = hot_loop_module();
        let p = profile_of(&m, 10_000);
        let est = DepthEstimator::default();
        let pruned_cfg = SearchConfig::default();
        let full_cfg = SearchConfig {
            filter: PruneFilter::none(),
            ..SearchConfig::default()
        };
        let pruned = candidate_search(&m, &p, &est, &pruned_cfg);
        let full = candidate_search(&m, &p, &est, &full_cfg);
        assert!(pruned.prune.insts_after <= full.prune.insts_after);
        // The hot loop dominates; pruning should retain >= 90 % of speedup
        // here (the paper's filter sacrifices ~25 % on real apps).
        assert!(pruned.asip_ratio >= 1.0);
        assert!(full.asip_ratio >= pruned.asip_ratio * 0.99);
    }

    #[test]
    fn algorithms_agree_on_simple_loop() {
        let m = hot_loop_module();
        let p = profile_of(&m, 1000);
        let est = DepthEstimator::default();
        for alg in [
            Algorithm::MaxMiso,
            Algorithm::SingleCut,
            Algorithm::UnionMiso,
        ] {
            let cfg = SearchConfig {
                algorithm: alg,
                ..Default::default()
            };
            let out = candidate_search(&m, &p, &est, &cfg);
            assert!(
                out.asip_ratio >= 1.0,
                "{alg} found nothing on an obviously good loop"
            );
        }
    }

    #[test]
    fn worker_lanes_change_nothing_but_real_time() {
        let m = hot_loop_module();
        let p = profile_of(&m, 5_000);
        let est = DepthEstimator::default();
        let run = |workers: usize| {
            candidate_search(
                &m,
                &p,
                &est,
                &SearchConfig {
                    filter: PruneFilter::none(),
                    workers,
                    ..SearchConfig::default()
                },
            )
            .fingerprint()
        };
        let reference = run(1);
        for workers in [2, 8] {
            assert_eq!(run(workers), reference, "workers={workers}");
        }
    }

    #[test]
    fn memo_warm_search_is_identical_and_hits() {
        let m = hot_loop_module();
        let p = profile_of(&m, 5_000);
        let est = DepthEstimator::default();
        let memo = Arc::new(SearchMemo::new());
        let cfg = SearchConfig {
            filter: PruneFilter::none(),
            memo: Some(Arc::clone(&memo)),
            ..SearchConfig::default()
        };
        let cold = candidate_search(&m, &p, &est, &cfg);
        assert_eq!(memo.hits(), 0);
        assert!(memo.misses() > 0);
        let warm = candidate_search(&m, &p, &est, &cfg);
        assert_eq!(cold.fingerprint(), warm.fingerprint());
        assert_eq!(memo.hits(), cold.prune.blocks.len() as u64);
        let bare = candidate_search(
            &m,
            &p,
            &est,
            &SearchConfig {
                filter: PruneFilter::none(),
                ..SearchConfig::default()
            },
        );
        assert_eq!(bare.fingerprint(), warm.fingerprint());
    }

    #[test]
    fn makespan_model_is_greedy_and_monotone() {
        let k = |i: u32| BlockKey::new(jitise_ir::FuncId(i), jitise_ir::BlockId(0));
        let work = [(k(0), 4u64), (k(1), 3), (k(2), 2), (k(3), 1)];
        assert_eq!(identify_makespan(&work, 1), 10);
        assert_eq!(identify_makespan(&work, 2), 5);
        assert_eq!(identify_makespan(&work, 4), 4);
        assert_eq!(identify_makespan(&work, 8), 4, "idle lanes are free");
        assert_eq!(identify_makespan(&work, 0), 10, "clamped to one lane");
        assert_eq!(identify_makespan(&[], 3), 0);
    }

    #[test]
    fn efficiency_metric() {
        use std::time::Duration;
        // Pruned: speedup 3 in 1 ms. Full: speedup 4 in 100 ms.
        let eff = pruning_efficiency(
            (3.0, Duration::from_millis(1)),
            (4.0, Duration::from_millis(100)),
        );
        assert!((eff - 75.0).abs() < 1.0, "eff {eff}");
        assert!(
            pruning_efficiency(
                (0.0, Duration::from_millis(1)),
                (1.0, Duration::from_millis(1))
            ) == 0.0
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(Algorithm::MaxMiso.to_string(), "MAXMISO");
        assert_eq!(Algorithm::SingleCut.to_string(), "SINGLECUT");
        assert_eq!(Algorithm::UnionMiso.to_string(), "UNIONMISO");
    }
}
