//! Custom-instruction candidates.
//!
//! A candidate is a set of data-flow-graph nodes of one basic block,
//! destined to become a single atomic hardware instruction. Candidates must
//! be *convex* (no data-flow path leaves and re-enters the set) and contain
//! no forbidden nodes; the identification algorithms guarantee both.

use jitise_base::hash::SigHasher;
use jitise_ir::{Dfg, Function, InstId, Operand};
use jitise_vm::BlockKey;

/// A custom-instruction candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The block the candidate was cut from.
    pub key: BlockKey,
    /// Member node indices into the block's [`Dfg`], sorted ascending
    /// (i.e. topological order).
    pub nodes: Vec<u32>,
    /// Instruction ids of the members, in the same order.
    pub insts: Vec<InstId>,
    /// Number of distinct non-constant value inputs.
    pub inputs: u32,
    /// Number of member values consumed outside the candidate.
    pub outputs: u32,
    /// Number of distinct constant inputs (baked into the datapath).
    pub const_inputs: u32,
}

impl Candidate {
    /// Builds a candidate from a member set, computing its I/O counts.
    /// Panics (debug) if the set is empty.
    pub fn from_nodes(f: &Function, dfg: &Dfg, key: BlockKey, mut nodes: Vec<u32>) -> Candidate {
        debug_assert!(!nodes.is_empty(), "empty candidate");
        nodes.sort_unstable();
        nodes.dedup();
        let member = member_mask(dfg, &nodes);

        // Distinct external value inputs: operands of member instructions
        // that are (a) results of non-member nodes in the block, (b) values
        // from other blocks, or (c) function arguments. Distinctness is by
        // operand identity.
        let mut ext_values: Vec<OperandKey> = Vec::new();
        let mut consts = 0u32;
        for &n in &nodes {
            let inst = f.inst(dfg.nodes[n as usize].inst);
            for op in inst.operands() {
                match op {
                    Operand::Const(_) => consts += 1,
                    other => {
                        // Is it produced by a member?
                        let from_member = other.as_inst().is_some_and(|def| {
                            dfg.nodes
                                .iter()
                                .position(|dn| dn.inst == def)
                                .is_some_and(|idx| member[idx])
                        });
                        if !from_member {
                            let k = OperandKey::of(other);
                            if !ext_values.contains(&k) {
                                ext_values.push(k);
                            }
                        }
                    }
                }
            }
        }

        // Outputs: member nodes whose value escapes the block or feeds a
        // non-member node.
        let mut outputs = 0u32;
        for &n in &nodes {
            let node = &dfg.nodes[n as usize];
            let feeds_outside = node.succs.iter().any(|&s| !member[s as usize]);
            if node.escapes || feeds_outside {
                outputs += 1;
            }
        }

        let insts = nodes.iter().map(|&n| dfg.nodes[n as usize].inst).collect();
        Candidate {
            key,
            nodes,
            insts,
            inputs: ext_values.len() as u32,
            outputs,
            const_inputs: consts,
        }
    }

    /// Number of member instructions (paper: "custom instructions … cover
    /// only 6.9 LLVM instructions on average").
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the candidate has no members (never produced by the
    /// identification algorithms; exists for container hygiene).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Membership mask over the DFG.
    pub fn mask(&self, dfg: &Dfg) -> Vec<bool> {
        member_mask(dfg, &self.nodes)
    }

    /// True if the candidate is convex in its DFG.
    pub fn is_convex(&self, dfg: &Dfg) -> bool {
        dfg.is_convex(&self.mask(dfg))
    }

    /// Structural signature of the candidate, used as the bitstream-cache
    /// key (§VI-A: "compute a signature of the LLVM bitcode that describes
    /// the candidate"). Two candidates with the same operation structure,
    /// types, internal wiring, and constant inputs collide — which is
    /// exactly what the cache wants: their hardware is identical.
    pub fn signature(&self, f: &Function, dfg: &Dfg) -> u64 {
        let mut h = SigHasher::new();
        h.write_usize(self.nodes.len());
        // Local renumbering: member index within the candidate.
        let local_of = |def: InstId| -> Option<usize> { self.insts.iter().position(|&i| i == def) };
        for &n in &self.nodes {
            let node = &dfg.nodes[n as usize];
            let inst = f.inst(node.inst);
            h.write_str(opcode_tag(node.opcode));
            h.write_u32(inst.ty.bits());
            for op in inst.operands() {
                match op {
                    Operand::Const(imm) => {
                        h.write_str("c");
                        h.write_u32(imm.ty.bits());
                        h.write_u64(imm.bits);
                    }
                    Operand::Inst(def) => match local_of(def) {
                        Some(local) => {
                            h.write_str("m");
                            h.write_usize(local);
                        }
                        None => {
                            h.write_str("x"); // external input port
                        }
                    },
                    Operand::Arg(_) => {
                        h.write_str("x");
                    }
                }
            }
        }
        h.finish()
    }
}

/// Stable identity of an operand for distinct-input counting. Shared with
/// the single-cut enumeration so its incremental input accounting counts
/// distinctness exactly like [`Candidate::from_nodes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum OperandKey {
    Inst(u32),
    Arg(u32),
}

impl OperandKey {
    fn of(op: Operand) -> OperandKey {
        match op {
            Operand::Inst(id) => OperandKey::Inst(id.0),
            Operand::Arg(i) => OperandKey::Arg(i),
            Operand::Const(_) => unreachable!("constants are not input ports"),
        }
    }
}

fn member_mask(dfg: &Dfg, nodes: &[u32]) -> Vec<bool> {
    let mut mask = vec![false; dfg.len()];
    for &n in nodes {
        mask[n as usize] = true;
    }
    mask
}

fn opcode_tag(op: jitise_ir::Opcode) -> &'static str {
    use jitise_ir::Opcode::*;
    match op {
        Bin(b) => b.mnemonic(),
        Un(u) => u.mnemonic(),
        Cmp(c) => c.mnemonic(),
        Select => "select",
        Load => "load",
        Store => "store",
        Gep => "gep",
        Alloca => "alloca",
        GlobalAddr => "global",
        Call => "call",
        CallExt => "callext",
        Phi => "phi",
        Custom => "custom",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::{BlockId, FuncId, FunctionBuilder, Operand as Op, Type};

    fn key() -> BlockKey {
        BlockKey::new(FuncId(0), BlockId(0))
    }

    /// a = arg0+arg1; b = a*3; c = a^b; ret c
    fn sample() -> (Function, Dfg) {
        let mut bld = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        let a = bld.add(Op::Arg(0), Op::Arg(1));
        let b = bld.mul(a, Op::ci32(3));
        let c = bld.xor(a, b);
        bld.ret(c);
        let f = bld.finish();
        let dfg = Dfg::build(&f, BlockId(0));
        (f, dfg)
    }

    #[test]
    fn io_counting_full_set() {
        let (f, dfg) = sample();
        let c = Candidate::from_nodes(&f, &dfg, key(), vec![0, 1, 2]);
        assert_eq!(c.len(), 3);
        // Inputs: arg0, arg1 (distinct). Constant 3 is not an input port.
        assert_eq!(c.inputs, 2);
        assert_eq!(c.const_inputs, 1);
        // Only c escapes.
        assert_eq!(c.outputs, 1);
        assert!(c.is_convex(&dfg));
    }

    #[test]
    fn io_counting_partial_set() {
        let (f, dfg) = sample();
        // {b, c}: inputs = a (used by both, distinct -> 1); outputs = c.
        let c = Candidate::from_nodes(&f, &dfg, key(), vec![1, 2]);
        assert_eq!(c.inputs, 1);
        assert_eq!(c.outputs, 1);
        // {a}: output feeds b and c outside -> 1 output (a itself).
        let c = Candidate::from_nodes(&f, &dfg, key(), vec![0]);
        assert_eq!(c.inputs, 2);
        assert_eq!(c.outputs, 1);
    }

    #[test]
    fn duplicate_nodes_deduped() {
        let (f, dfg) = sample();
        let c = Candidate::from_nodes(&f, &dfg, key(), vec![1, 1, 2, 2]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn signature_is_structural() {
        let (f, dfg) = sample();
        let full = Candidate::from_nodes(&f, &dfg, key(), vec![0, 1, 2]);
        let again = Candidate::from_nodes(&f, &dfg, key(), vec![2, 0, 1]);
        assert_eq!(full.signature(&f, &dfg), again.signature(&f, &dfg));

        // A structurally identical function elsewhere hashes identically.
        let mut bld = FunctionBuilder::new("other", vec![Type::I32, Type::I32], Type::I32);
        let a = bld.add(Op::Arg(0), Op::Arg(1));
        let b = bld.mul(a, Op::ci32(3));
        let cc = bld.xor(a, b);
        bld.ret(cc);
        let f2 = bld.finish();
        let dfg2 = Dfg::build(&f2, BlockId(0));
        let c2 = Candidate::from_nodes(&f2, &dfg2, key(), vec![0, 1, 2]);
        assert_eq!(full.signature(&f, &dfg), c2.signature(&f2, &dfg2));

        // Changing a constant changes the hardware, hence the signature.
        let mut bld = FunctionBuilder::new("other2", vec![Type::I32, Type::I32], Type::I32);
        let a = bld.add(Op::Arg(0), Op::Arg(1));
        let b = bld.mul(a, Op::ci32(4));
        let cc = bld.xor(a, b);
        bld.ret(cc);
        let f3 = bld.finish();
        let dfg3 = Dfg::build(&f3, BlockId(0));
        let c3 = Candidate::from_nodes(&f3, &dfg3, key(), vec![0, 1, 2]);
        assert_ne!(full.signature(&f, &dfg), c3.signature(&f3, &dfg3));
    }

    #[test]
    fn subset_signature_differs() {
        let (f, dfg) = sample();
        let full = Candidate::from_nodes(&f, &dfg, key(), vec![0, 1, 2]);
        let part = Candidate::from_nodes(&f, &dfg, key(), vec![0, 1]);
        assert_ne!(full.signature(&f, &dfg), part.signature(&f, &dfg));
    }

    #[test]
    fn non_convex_detected() {
        let (f, dfg) = sample();
        // {a, c}: a -> b (outside) -> c re-enters.
        let c = Candidate::from_nodes(&f, &dfg, key(), vec![0, 2]);
        assert!(!c.is_convex(&dfg));
    }
}
