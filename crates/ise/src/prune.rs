//! Search-space pruning filters.
//!
//! "we are using our pruning mechanisms [9] to reduce the search space for
//! instruction candidates … In this paper, we use the @50pS3L pruning
//! filter" (§III, §V-A). The filter family `@{p}pS{k}L` selects, from the
//! profiled basic blocks of an application:
//!
//! * blocks in decreasing order of **profiled execution time**,
//! * until **p %** of total execution time is covered,
//! * capped at **k** blocks,
//! * tie-breaking toward **L**arger blocks (more instructions → more
//!   candidate material).
//!
//! Table II shows the effect for `@50pS3L`: at most 3 blocks survive per
//! application, shrinking the bitcode that identification must analyze by
//! 36.5× (scientific) / 4.9× (embedded).

use jitise_ir::Module;
use jitise_vm::{BlockKey, Profile};

/// A `@{p}pS{k}L` pruning filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneFilter {
    /// Fraction of total execution time to cover (0.50 for `@50p`).
    pub coverage: f64,
    /// Maximum number of blocks to keep (3 for `S3`).
    pub max_blocks: usize,
}

impl PruneFilter {
    /// The paper's filter: 50 % coverage, at most 3 blocks.
    pub fn paper_default() -> Self {
        PruneFilter {
            coverage: 0.50,
            max_blocks: 3,
        }
    }

    /// A pass-through filter (no pruning): 100 % coverage, unbounded.
    pub fn none() -> Self {
        PruneFilter {
            coverage: 1.0,
            max_blocks: usize::MAX,
        }
    }
}

impl std::fmt::Display for PruneFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.max_blocks == usize::MAX {
            write!(f, "@nofilter")
        } else {
            write!(
                f,
                "@{}pS{}L",
                (self.coverage * 100.0).round() as u32,
                self.max_blocks
            )
        }
    }
}

/// Outcome of pruning: the surviving blocks plus reduction statistics.
#[derive(Debug, Clone)]
pub struct PruneResult {
    /// Surviving blocks, hottest first (Table II `blk` column counts these).
    pub blocks: Vec<BlockKey>,
    /// Blocks before pruning.
    pub blocks_before: usize,
    /// Instructions before pruning.
    pub insts_before: usize,
    /// Instructions inside the surviving blocks (Table II `ins` column).
    pub insts_after: usize,
    /// Fraction of execution time the surviving blocks cover.
    pub time_covered: f64,
}

impl PruneResult {
    /// Bitcode-size reduction factor achieved by pruning (paper: "reduced
    /// the size of the bitcode … by a factor of 36.49× and 4.9×").
    pub fn reduction_factor(&self) -> f64 {
        if self.insts_after == 0 {
            return f64::INFINITY;
        }
        self.insts_before as f64 / self.insts_after as f64
    }
}

/// Applies a pruning filter to a profiled module.
pub fn prune(module: &Module, profile: &Profile, filter: PruneFilter) -> PruneResult {
    let total_cycles = profile.total_cycles();
    let blocks_before = module.num_blocks();
    let insts_before = module.num_insts();

    // Order: execution time desc, then block size desc (the "L" rule), then
    // key for determinism.
    let mut ranked: Vec<(BlockKey, u64, usize)> = profile
        .hottest_blocks()
        .into_iter()
        .map(|(k, cycles)| {
            let size = module.func(k.func).block(k.block).len();
            (k, cycles, size)
        })
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(b.2.cmp(&a.2)).then(a.0.cmp(&b.0)));

    let mut blocks = Vec::new();
    let mut covered: u64 = 0;
    let mut insts_after = 0usize;
    // Selection rule: take the hottest blocks until the coverage target p
    // is reached; past the target, keep adding a block only while it still
    // contributes a large share — at least (1-p)/2 of total time — up to
    // the block cap. This matches the paper's observed behaviour of
    // @50pS3L: sor keeps a single dominant block, whetstone keeps its two
    // big kernels (94 % combined), nothing keeps cold blocks.
    let big_share = (1.0 - filter.coverage).max(0.0) / 2.0;
    for (key, cycles, size) in ranked {
        if blocks.len() >= filter.max_blocks || cycles == 0 {
            break;
        }
        let target_met =
            total_cycles > 0 && covered as f64 >= filter.coverage * total_cycles as f64;
        if target_met {
            let share = cycles as f64 / total_cycles as f64;
            if share < big_share {
                break;
            }
        }
        covered += cycles;
        insts_after += size;
        blocks.push(key);
    }

    PruneResult {
        blocks,
        blocks_before,
        insts_before,
        insts_after,
        time_covered: if total_cycles == 0 {
            0.0
        } else {
            covered as f64 / total_cycles as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::{BlockId, FuncId, FunctionBuilder, Operand as Op, Type};

    fn module_with_blocks(sizes: &[usize]) -> Module {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let blocks: Vec<_> = (1..sizes.len())
            .map(|i| b.new_block(format!("b{i}")))
            .collect();
        let emit = |b: &mut FunctionBuilder, n: usize| {
            let mut v = Op::Arg(0);
            for _ in 0..n {
                v = b.add(v, Op::ci32(1));
            }
            v
        };
        let mut last = emit(&mut b, sizes[0]);
        for (i, &blk) in blocks.iter().enumerate() {
            b.br(blk);
            b.switch_to(blk);
            last = emit(&mut b, sizes[i + 1]);
        }
        b.ret(last);
        let mut m = Module::new("t");
        m.add_func(b.finish());
        m
    }

    fn key(b: u32) -> BlockKey {
        BlockKey::new(FuncId(0), BlockId(b))
    }

    #[test]
    fn display_names() {
        assert_eq!(PruneFilter::paper_default().to_string(), "@50pS3L");
        assert_eq!(
            PruneFilter {
                coverage: 0.9,
                max_blocks: 5
            }
            .to_string(),
            "@90pS5L"
        );
        assert_eq!(PruneFilter::none().to_string(), "@nofilter");
    }

    #[test]
    fn selects_hottest_until_coverage() {
        let m = module_with_blocks(&[10, 20, 30, 40]);
        let mut p = Profile::new();
        p.record(key(0), 10, 1);
        p.record(key(1), 60, 1);
        p.record(key(2), 20, 1);
        p.record(key(3), 10, 1);
        let r = prune(&m, &p, PruneFilter::paper_default());
        // Block 1 alone covers 60 % >= 50 %.
        assert_eq!(r.blocks, vec![key(1)]);
        assert_eq!(r.insts_after, 20);
        assert!((r.time_covered - 0.6).abs() < 1e-9);
        assert!((r.reduction_factor() - 100.0 / 20.0).abs() < 1e-9);
    }

    #[test]
    fn cap_limits_block_count() {
        let m = module_with_blocks(&[5, 5, 5, 5, 5]);
        let mut p = Profile::new();
        for b in 0..5 {
            p.record(key(b), 20, 1); // uniform: needs 3 blocks for 50 %
        }
        let r = prune(
            &m,
            &p,
            PruneFilter {
                coverage: 0.9,
                max_blocks: 2,
            },
        );
        assert_eq!(r.blocks.len(), 2, "S2 cap must bind before 90 % coverage");
        assert!((r.time_covered - 0.4).abs() < 1e-9);
    }

    #[test]
    fn large_tiebreak() {
        let m = module_with_blocks(&[3, 30]);
        let mut p = Profile::new();
        p.record(key(0), 50, 1);
        p.record(key(1), 50, 1); // tie on cycles; block 1 is larger
        let r = prune(
            &m,
            &p,
            PruneFilter {
                coverage: 0.4,
                max_blocks: 1,
            },
        );
        assert_eq!(r.blocks, vec![key(1)]);
    }

    #[test]
    fn nofilter_keeps_all_executed() {
        let m = module_with_blocks(&[1, 1, 1]);
        let mut p = Profile::new();
        p.record(key(0), 1, 1);
        p.record(key(1), 1, 1);
        p.record(key(2), 1, 1);
        let r = prune(&m, &p, PruneFilter::none());
        assert_eq!(r.blocks.len(), 3);
        assert!((r.time_covered - 1.0).abs() < 1e-9);
        assert!((r.reduction_factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_profile() {
        let m = module_with_blocks(&[1, 1]);
        let r = prune(&m, &Profile::new(), PruneFilter::paper_default());
        assert!(r.blocks.is_empty());
        assert_eq!(r.time_covered, 0.0);
    }
}
