//! Candidate selection.
//!
//! "the selection process selects only the best of them with the help of
//! the performance estimation data" (§III). Selection is a knapsack over
//! the reconfigurable fabric's resources; we use the standard greedy
//! merit-density heuristic, which is near-optimal for the small candidate
//! counts per application and — crucially for JIT use — linear-time after
//! the sort.

use crate::candidate::Candidate;
use crate::estimate::CandidateEstimate;

/// Resource budget of the partial-reconfiguration region.
///
/// Defaults approximate the PR region Woolcano reserves in a Virtex-4
/// FX100 (a fraction of the device's 42k slices / 160 DSP48s).
#[derive(Debug, Clone, Copy)]
pub struct AreaBudget {
    /// Available LUTs.
    pub luts: u32,
    /// Available flip-flops.
    pub ffs: u32,
    /// Available DSP slices.
    pub dsps: u32,
    /// Maximum number of custom instructions (CI slot count).
    pub max_instructions: usize,
    /// Also implement *marginal* candidates — hardware no faster than
    /// software (within `marginal_slack` cycles) but not slower. The
    /// paper's flow implements every candidate its estimator picks, which
    /// is why its scientific rows show many candidates at ≈1.00 speedup;
    /// disable to keep only strictly profitable ones.
    pub keep_marginal: bool,
    /// Tolerated `hw - sw` cycles for a marginal candidate.
    pub marginal_slack: u64,
}

impl Default for AreaBudget {
    fn default() -> Self {
        AreaBudget {
            luts: 20_000,
            ffs: 20_000,
            dsps: 64,
            max_instructions: 256,
            keep_marginal: true,
            marginal_slack: 2,
        }
    }
}

/// A candidate chosen for hardware implementation.
#[derive(Debug, Clone)]
pub struct Selected {
    /// The candidate.
    pub candidate: Candidate,
    /// Its estimate.
    pub estimate: CandidateEstimate,
}

/// Selection outcome.
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// Chosen candidates, highest merit first.
    pub selected: Vec<Selected>,
    /// Candidates rejected for zero merit or budget exhaustion.
    pub rejected: usize,
    /// Total cycles the selection saves over the profiled run.
    pub total_saved_cycles: u64,
    /// LUTs consumed.
    pub luts_used: u32,
    /// Flip-flops consumed.
    pub ffs_used: u32,
    /// DSPs consumed.
    pub dsps_used: u32,
}

/// Greedy selection by total merit under an area budget.
pub fn select(
    mut pool: Vec<(Candidate, CandidateEstimate)>,
    budget: AreaBudget,
) -> SelectionResult {
    // Highest merit first; ties toward smaller area, then structural order
    // for determinism.
    pool.sort_by(|a, b| {
        b.1.merit()
            .cmp(&a.1.merit())
            .then(a.1.luts.cmp(&b.1.luts))
            .then(a.0.key.cmp(&b.0.key))
            .then(a.0.nodes.cmp(&b.0.nodes))
    });

    let mut selected = Vec::new();
    let mut rejected = 0usize;
    let (mut luts, mut ffs, mut dsps) = (0u32, 0u32, 0u32);
    let mut saved = 0u64;

    for (candidate, estimate) in pool {
        // The budget is *per candidate*: every custom instruction is
        // implemented as its own partial bitstream targeting the PR
        // region, and CIs are swapped through the slot file at runtime —
        // they are not resident simultaneously. (This is why the paper can
        // implement 179 candidates for 470.lbm on one Virtex-4.) The
        // cumulative `luts_used`/`dsps_used` tallies below are reported
        // for area accounting, not enforced.
        let fits = selected.len() < budget.max_instructions
            && estimate.luts <= budget.luts
            && estimate.ffs <= budget.ffs
            && estimate.dsps <= budget.dsps;
        let acceptable = estimate.merit() > 0
            || (budget.keep_marginal
                && estimate.hw_cycles <= estimate.sw_cycles + budget.marginal_slack);
        if !acceptable || !fits {
            rejected += 1;
            continue;
        }
        luts += estimate.luts;
        ffs += estimate.ffs;
        dsps += estimate.dsps;
        saved += estimate.merit();
        selected.push(Selected {
            candidate,
            estimate,
        });
    }

    SelectionResult {
        selected,
        rejected,
        total_saved_cycles: saved,
        luts_used: luts,
        ffs_used: ffs,
        dsps_used: dsps,
    }
}

/// Application speedup if the given selection is implemented: the ASIP
/// ratio columns of Tables I and II.
///
/// `total_cycles` is the profiled whole-application cycle count; each
/// selected candidate removes `merit()` cycles from it.
pub fn speedup(total_cycles: u64, selection: &SelectionResult) -> f64 {
    if total_cycles == 0 {
        return 1.0;
    }
    let saved = selection.total_saved_cycles.min(total_cycles - 1);
    total_cycles as f64 / (total_cycles - saved) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::{BlockId, FuncId};
    use jitise_vm::BlockKey;

    fn cand(block: u32, nodes: Vec<u32>) -> Candidate {
        Candidate {
            key: BlockKey::new(FuncId(0), BlockId(block)),
            insts: nodes.iter().map(|&n| jitise_ir::InstId(n)).collect(),
            nodes,
            inputs: 2,
            outputs: 1,
            const_inputs: 0,
        }
    }

    fn est(sw: u64, hw: u64, count: u64, luts: u32) -> CandidateEstimate {
        CandidateEstimate {
            sw_cycles: sw,
            hw_cycles: hw,
            exec_count: count,
            luts,
            ffs: 0,
            dsps: 0,
        }
    }

    #[test]
    fn picks_highest_merit_first() {
        let pool = vec![
            (cand(0, vec![0]), est(10, 5, 100, 10)), // merit 500
            (cand(1, vec![0]), est(20, 5, 100, 10)), // merit 1500
            (cand(2, vec![0]), est(10, 9, 100, 10)), // merit 100
        ];
        let r = select(pool, AreaBudget::default());
        assert_eq!(r.selected.len(), 3);
        assert_eq!(r.selected[0].candidate.key.block, BlockId(1));
        assert_eq!(r.total_saved_cycles, 2100);
    }

    #[test]
    fn oversized_candidate_rejected_region_budget_is_per_candidate() {
        let pool = vec![
            (cand(0, vec![0]), est(20, 5, 100, 900)),  // fits the region
            (cand(1, vec![0]), est(10, 5, 100, 1200)), // exceeds the region
            (cand(2, vec![0]), est(10, 5, 100, 900)),  // fits again
        ];
        let r = select(
            pool,
            AreaBudget {
                luts: 1000,
                ..Default::default()
            },
        );
        // Per-candidate feasibility: both 900-LUT candidates are kept even
        // though their sum exceeds the region (they are time-multiplexed
        // through the slot file); only the 1200-LUT one is rejected.
        assert_eq!(r.selected.len(), 2);
        assert_eq!(r.rejected, 1);
        assert_eq!(r.luts_used, 1800);
    }

    #[test]
    fn marginal_policy() {
        let mk = || {
            vec![
                (cand(0, vec![0]), est(5, 10, 100, 10)), // hw clearly slower
                (cand(1, vec![0]), est(5, 5, 100, 10)),  // break even
            ]
        };
        // Default (paper behaviour): break-even candidates implemented,
        // clearly-slower ones rejected.
        let r = select(mk(), AreaBudget::default());
        assert_eq!(r.selected.len(), 1);
        assert_eq!(r.rejected, 1);
        assert_eq!(r.total_saved_cycles, 0);
        // Strict mode: only strictly profitable candidates.
        let r = select(
            mk(),
            AreaBudget {
                keep_marginal: false,
                ..Default::default()
            },
        );
        assert!(r.selected.is_empty());
        assert_eq!(r.rejected, 2);
    }

    #[test]
    fn slot_cap_applies() {
        let pool: Vec<_> = (0..10)
            .map(|i| (cand(i, vec![0]), est(10, 5, 100, 1)))
            .collect();
        let r = select(
            pool,
            AreaBudget {
                max_instructions: 4,
                ..Default::default()
            },
        );
        assert_eq!(r.selected.len(), 4);
        assert_eq!(r.rejected, 6);
    }

    #[test]
    fn speedup_formula() {
        let pool = vec![(cand(0, vec![0]), est(10, 5, 100, 10))]; // saves 500
        let r = select(pool, AreaBudget::default());
        // 1000 cycles total, 500 saved -> 2x.
        assert!((speedup(1000, &r) - 2.0).abs() < 1e-9);
        // Saved capped below total.
        assert!(speedup(400, &r).is_finite());
        assert_eq!(speedup(0, &r), 1.0);
    }

    #[test]
    fn deterministic_on_ties() {
        let mk = || {
            vec![
                (cand(1, vec![0]), est(10, 5, 100, 10)),
                (cand(0, vec![0]), est(10, 5, 100, 10)),
            ]
        };
        let a = select(mk(), AreaBudget::default());
        let b = select(mk(), AreaBudget::default());
        assert_eq!(
            a.selected[0].candidate.key, b.selected[0].candidate.key,
            "tie-break must be stable"
        );
        assert_eq!(a.selected[0].candidate.key.block, BlockId(0));
    }
}
