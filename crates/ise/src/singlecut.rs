//! Exact single-cut enumeration (baseline).
//!
//! The paper contrasts MAXMISO with "leading state-of-the-art algorithms
//! for this purpose [which] have an exponential algorithmic complexity"
//! (§II). This module implements that baseline: an Atasu-style exact
//! enumeration of convex cuts under input/output port constraints, with
//! branch-and-bound pruning. It is exponential in the block size — the
//! `ise_algorithms` bench demonstrates the gap that motivates the paper's
//! choice of MAXMISO + pruning.

use crate::candidate::Candidate;
use crate::forbidden::ForbiddenPolicy;
use jitise_ir::{Dfg, Function};
use jitise_vm::BlockKey;

/// Port constraints of the target architecture's register-file interface.
///
/// Woolcano's FCB interface provides a small number of read/write ports per
/// custom instruction; 4-in/2-out is the classic ISE configuration.
#[derive(Debug, Clone, Copy)]
pub struct PortConstraints {
    /// Maximum distinct value inputs.
    pub max_inputs: u32,
    /// Maximum outputs.
    pub max_outputs: u32,
}

impl Default for PortConstraints {
    fn default() -> Self {
        PortConstraints {
            max_inputs: 4,
            max_outputs: 2,
        }
    }
}

/// Result of the exact enumeration.
#[derive(Debug, Clone)]
pub struct SingleCutResult {
    /// All maximal feasible cuts found, largest first.
    pub candidates: Vec<Candidate>,
    /// Number of subsets explored (search-space size measure for the
    /// benches; grows exponentially with block size).
    pub explored: u64,
}

/// Hard cap on explored subsets; beyond this the search aborts and returns
/// what it has (the paper notes runtimes "ranging from seconds to days" —
/// we bound the pain).
pub const EXPLORATION_CAP: u64 = 2_000_000;

/// Enumerates convex, forbidden-free cuts of `dfg` satisfying `ports`,
/// keeping only maximal ones (no feasible strict superset found).
pub fn single_cut(
    f: &Function,
    dfg: &Dfg,
    key: BlockKey,
    policy: &ForbiddenPolicy,
    ports: PortConstraints,
    min_size: usize,
) -> SingleCutResult {
    let n = dfg.len();
    let forbidden = policy.mask(dfg);
    let valid: Vec<u32> = (0..n as u32).filter(|&i| !forbidden[i as usize]).collect();

    let mut best: Vec<Vec<u32>> = Vec::new();
    let mut explored: u64 = 0;
    let mut members = vec![false; n];

    // Depth-first enumeration over valid nodes in topological order.
    // At each step we either include or exclude valid[pos].
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        f: &Function,
        dfg: &Dfg,
        key: BlockKey,
        valid: &[u32],
        pos: usize,
        members: &mut Vec<bool>,
        chosen: &mut Vec<u32>,
        ports: PortConstraints,
        min_size: usize,
        best: &mut Vec<Vec<u32>>,
        explored: &mut u64,
    ) {
        *explored += 1;
        if *explored > EXPLORATION_CAP {
            return;
        }
        if pos == valid.len() {
            if chosen.len() >= min_size {
                let cand = Candidate::from_nodes(f, dfg, key, chosen.clone());
                if cand.inputs <= ports.max_inputs
                    && cand.outputs <= ports.max_outputs
                    && dfg.is_convex(members)
                {
                    best.push(chosen.clone());
                }
            }
            return;
        }
        // Branch 1: include.
        let node = valid[pos] as usize;
        members[node] = true;
        chosen.push(valid[pos]);
        // Bound: a quick convexity + input check on the partial set prunes
        // hopeless branches early (inputs only grow as unrelated nodes are
        // added; convexity violations never heal by adding *later* nodes
        // because nodes are in topological order).
        let cand = Candidate::from_nodes(f, dfg, key, chosen.clone());
        let feasible_so_far =
            cand.outputs <= ports.max_outputs + chosen.len() as u32 && dfg.is_convex(members);
        if feasible_so_far {
            recurse(
                f,
                dfg,
                key,
                valid,
                pos + 1,
                members,
                chosen,
                ports,
                min_size,
                best,
                explored,
            );
        }
        chosen.pop();
        members[node] = false;
        // Branch 2: exclude.
        recurse(
            f,
            dfg,
            key,
            valid,
            pos + 1,
            members,
            chosen,
            ports,
            min_size,
            best,
            explored,
        );
    }

    let mut chosen = Vec::new();
    recurse(
        f,
        dfg,
        key,
        &valid,
        0,
        &mut members,
        &mut chosen,
        ports,
        min_size,
        &mut best,
        &mut explored,
    );

    // Keep only maximal sets (no other found set strictly contains them).
    best.sort_by_key(|s| std::cmp::Reverse(s.len()));
    let mut maximal: Vec<Vec<u32>> = Vec::new();
    'outer: for s in best {
        for m in &maximal {
            if s.iter().all(|x| m.contains(x)) && s.len() < m.len() {
                continue 'outer;
            }
        }
        if !maximal.contains(&s) {
            maximal.push(s);
        }
    }

    SingleCutResult {
        candidates: maximal
            .into_iter()
            .map(|nodes| Candidate::from_nodes(f, dfg, key, nodes))
            .collect(),
        explored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::{BlockId, FuncId, FunctionBuilder, Operand as Op, Type};

    fn key() -> BlockKey {
        BlockKey::new(FuncId(0), BlockId(0))
    }

    fn run(f: &Function, ports: PortConstraints, min: usize) -> SingleCutResult {
        let dfg = Dfg::build(f, BlockId(0));
        single_cut(f, &dfg, key(), &ForbiddenPolicy::default(), ports, min)
    }

    #[test]
    fn finds_full_chain_when_ports_allow() {
        let mut bld = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let a = bld.add(Op::Arg(0), Op::ci32(1));
        let b = bld.mul(a, Op::ci32(3));
        let c = bld.xor(b, Op::ci32(7));
        bld.ret(c);
        let f = bld.finish();
        let res = run(&f, PortConstraints::default(), 2);
        // The maximal cut is the whole chain.
        assert!(res.candidates.iter().any(|c| c.len() == 3));
        assert!(res.explored > 0);
    }

    #[test]
    fn respects_input_constraint() {
        // Node with 5 distinct external inputs cannot fit 4-in ports as a
        // whole.
        let mut bld = FunctionBuilder::new(
            "f",
            vec![Type::I32, Type::I32, Type::I32, Type::I32, Type::I32],
            Type::I32,
        );
        let s1 = bld.add(Op::Arg(0), Op::Arg(1));
        let s2 = bld.add(Op::Arg(2), Op::Arg(3));
        let s3 = bld.add(s1, s2);
        let s4 = bld.add(s3, Op::Arg(4));
        bld.ret(s4);
        let f = bld.finish();
        let res = run(
            &f,
            PortConstraints {
                max_inputs: 4,
                max_outputs: 1,
            },
            2,
        );
        for c in &res.candidates {
            assert!(c.inputs <= 4, "candidate {:?} violates inputs", c.nodes);
        }
        // The full graph (5 inputs) must NOT be a candidate.
        assert!(!res.candidates.iter().any(|c| c.len() == 4));
        // But a 3-node subgraph with 4 inputs is.
        assert!(res.candidates.iter().any(|c| c.len() == 3));
    }

    #[test]
    fn all_candidates_convex_and_feasible() {
        let mut bld = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        let a = bld.add(Op::Arg(0), Op::Arg(1));
        let b = bld.mul(a, a);
        let p = bld.alloca(4);
        bld.store(b, p);
        let v = bld.load(Type::I32, p);
        let c = bld.xor(v, a);
        let d = bld.sub(c, b);
        bld.ret(d);
        let f = bld.finish();
        let dfg = Dfg::build(&f, BlockId(0));
        let res = run(&f, PortConstraints::default(), 1);
        let policy = ForbiddenPolicy::default();
        let forbidden = policy.mask(&dfg);
        for c in &res.candidates {
            assert!(c.is_convex(&dfg));
            assert!(c.inputs <= 4 && c.outputs <= 2);
            assert!(c.nodes.iter().all(|&n| !forbidden[n as usize]));
        }
    }

    #[test]
    fn exploration_grows_with_block_size() {
        // Independent nodes: every subset is convex, so branch-and-bound
        // cannot prune and the search space is the full 2^n. (On chain
        // graphs the convexity bound prunes to polynomial exploration —
        // which is also worth asserting.)
        let build_independent = |n: usize| {
            let mut bld = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
            for i in 0..n {
                let _ = bld.xor(Op::Arg(0), Op::ci32(i as i32));
            }
            bld.ret(Op::Arg(0));
            bld.finish()
        };
        let small = run(&build_independent(6), PortConstraints::default(), 2).explored;
        let large = run(&build_independent(12), PortConstraints::default(), 2).explored;
        assert!(
            large > small * 16,
            "exponential growth expected: {small} -> {large}"
        );

        // Chain graphs: convexity pruning keeps exploration subquadratic
        // relative to the exponential upper bound.
        let build_chain = |n: usize| {
            let mut bld = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
            let mut v = bld.add(Op::Arg(0), Op::ci32(1));
            for i in 0..n {
                v = if i % 2 == 0 {
                    bld.mul(v, Op::ci32(3))
                } else {
                    bld.xor(v, Op::ci32(5))
                };
            }
            bld.ret(v);
            bld.finish()
        };
        let chain = run(&build_chain(12), PortConstraints::default(), 2).explored;
        assert!(
            chain < large / 2,
            "convexity pruning must beat the unprunable case: {chain} vs {large}"
        );
    }

    #[test]
    fn maximality_filter_removes_subsets() {
        let mut bld = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let a = bld.add(Op::Arg(0), Op::ci32(1));
        let b = bld.mul(a, Op::ci32(2));
        bld.ret(b);
        let f = bld.finish();
        let res = run(&f, PortConstraints::default(), 1);
        // {a}, {b} are subsets of {a,b}; only maximal {a,b} (and any
        // non-nested sets) survive.
        assert!(res.candidates.iter().any(|c| c.len() == 2));
        for c in &res.candidates {
            if c.len() == 1 {
                // A singleton may only survive if it is not contained in a
                // larger candidate — here both are contained.
                panic!("non-maximal singleton {:?} survived", c.nodes);
            }
        }
    }
}
