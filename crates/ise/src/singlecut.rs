//! Exact single-cut enumeration (baseline).
//!
//! The paper contrasts MAXMISO with "leading state-of-the-art algorithms
//! for this purpose [which] have an exponential algorithmic complexity"
//! (§II). This module implements that baseline: an Atasu-style exact
//! enumeration of convex cuts under input/output port constraints, with
//! branch-and-bound pruning. It is exponential in the block size — the
//! `ise_algorithms` bench demonstrates the gap that motivates the paper's
//! choice of MAXMISO + pruning.
//!
//! # The branch-and-bound output bound
//!
//! Nodes are decided in topological order, so when the search stands at
//! position `pos` every member's consumers that could ever absorb one of
//! its outputs lie in the *remaining* positions. For a partial member set
//! `S` and any superset `T` reachable from this branch:
//!
//! * an output of `S` disappears in `T` only when **all** of its outside
//!   consumers join, so each absorbed output maps to at least one future
//!   node `v` that consumes it — `v` can absorb at most `pred(v)` outputs,
//!   where `pred(v)` counts `v`'s non-forbidden same-block producers;
//! * `v` itself contributes one output the moment it joins unless it is
//!   dead (no consumer anywhere) — a contribution that may later vanish,
//!   but only by being counted against a *later* node's `pred` budget.
//!
//! Hence `out(T) >= out(S) - Σ_{v ∈ remaining} max(pred(v) - own(v), 0)`
//! with `own(v) = 1` unless `v` is dead, and the branch is hopeless when
//! `out(S)` exceeds `max_outputs` plus that suffix slack. The per-node
//! `pred(v)` term matters: a `select` has three producers and can absorb
//! three outputs while adding one, so the naive "one per remaining node"
//! slack would wrongly prune sets that a select later repairs. Distinct
//! external *inputs* only ever grow along an include path (a producer's
//! membership is always decided before any consumer joins), so
//! `inputs > max_inputs` prunes soundly with no slack at all.
//!
//! The previous bound compared `outputs` against `max_outputs +
//! chosen.len()` — already-chosen nodes cannot absorb anything (each
//! member contributes at most one output), so that bound was vacuously
//! true and never pruned. On fan-out-heavy blocks the search then
//! exhausted [`EXPLORATION_CAP`] before reaching any feasible leaf and
//! silently dropped every maximal cut; see
//! `old_bound_loses_maximal_cut_to_the_cap` below.

use crate::candidate::{Candidate, OperandKey};
use crate::forbidden::ForbiddenPolicy;
use jitise_ir::{Dfg, Function, InstId, Operand};
use jitise_vm::BlockKey;
use std::collections::HashMap;

/// Port constraints of the target architecture's register-file interface.
///
/// Woolcano's FCB interface provides a small number of read/write ports per
/// custom instruction; 4-in/2-out is the classic ISE configuration.
#[derive(Debug, Clone, Copy)]
pub struct PortConstraints {
    /// Maximum distinct value inputs.
    pub max_inputs: u32,
    /// Maximum outputs.
    pub max_outputs: u32,
}

impl Default for PortConstraints {
    fn default() -> Self {
        PortConstraints {
            max_inputs: 4,
            max_outputs: 2,
        }
    }
}

/// Result of the exact enumeration.
#[derive(Debug, Clone)]
pub struct SingleCutResult {
    /// All maximal feasible cuts found, largest first.
    pub candidates: Vec<Candidate>,
    /// Number of subsets explored (search-space size measure for the
    /// benches; grows exponentially with block size).
    pub explored: u64,
    /// True if the exploration cap stopped the search early — the result
    /// is then a *subset* of the maximal cuts, not the full answer.
    pub cap_hit: bool,
}

/// Hard cap on explored subsets; beyond this the search aborts and returns
/// what it has (the paper notes runtimes "ranging from seconds to days" —
/// we bound the pain). Truncation is never silent: [`SingleCutResult::cap_hit`]
/// reports it and the search driver surfaces it in telemetry.
pub const EXPLORATION_CAP: u64 = 2_000_000;

/// Enumerates convex, forbidden-free cuts of `dfg` satisfying `ports`,
/// keeping only maximal ones (no feasible strict superset found).
pub fn single_cut(
    f: &Function,
    dfg: &Dfg,
    key: BlockKey,
    policy: &ForbiddenPolicy,
    ports: PortConstraints,
    min_size: usize,
) -> SingleCutResult {
    single_cut_with(f, dfg, key, policy, ports, min_size, true, EXPLORATION_CAP)
}

/// [`single_cut`] with the port bound and exploration cap exposed.
///
/// `port_bound = false` disables the input/output branch-and-bound (leaving
/// only convexity pruning — the effective behaviour of the old, vacuous
/// bound); the final candidate set is identical either way, only the
/// explored count differs. The property-test suite relies on this to check
/// the bound against brute force, and the regression tests use a small
/// `cap` to demonstrate what the cap silently cost before the fix.
#[allow(clippy::too_many_arguments)]
pub fn single_cut_with(
    f: &Function,
    dfg: &Dfg,
    key: BlockKey,
    policy: &ForbiddenPolicy,
    ports: PortConstraints,
    min_size: usize,
    port_bound: bool,
    cap: u64,
) -> SingleCutResult {
    let n = dfg.len();
    let forbidden = policy.mask(dfg);
    let valid: Vec<u32> = (0..n as u32).filter(|&i| !forbidden[i as usize]).collect();

    // Suffix sums of per-node absorption capacity (see module docs):
    // slack_after[q] bounds how many outputs the nodes at positions >= q
    // can still absorb, net of their own contributions.
    let mut slack_after = vec![0u32; valid.len() + 1];
    for q in (0..valid.len()).rev() {
        let node = &dfg.nodes[valid[q] as usize];
        let preds = node
            .preds
            .iter()
            .filter(|&&p| !forbidden[p as usize])
            .count() as u32;
        let own = (node.escapes || !node.succs.is_empty()) as u32;
        slack_after[q] = slack_after[q + 1] + preds.saturating_sub(own);
    }

    let node_of: HashMap<InstId, u32> = dfg
        .nodes
        .iter()
        .enumerate()
        .map(|(i, nd)| (nd.inst, i as u32))
        .collect();

    let mut search = CutSearch {
        f,
        dfg,
        key,
        valid: &valid,
        ports,
        min_size,
        port_bound,
        cap,
        node_of,
        members: vec![false; n],
        chosen: Vec::new(),
        member_succs: vec![0u32; n],
        outputs: 0,
        inputs: 0,
        input_refs: HashMap::new(),
        slack_after,
        best: Vec::new(),
        explored: 0,
        cap_hit: false,
    };
    search.recurse(0);
    let CutSearch {
        mut best,
        explored,
        cap_hit,
        ..
    } = search;

    // Keep only maximal sets (no other found set strictly contains them).
    best.sort_by_key(|s| std::cmp::Reverse(s.len()));
    let mut maximal: Vec<Vec<u32>> = Vec::new();
    'outer: for s in best {
        for m in &maximal {
            if s.iter().all(|x| m.contains(x)) && s.len() < m.len() {
                continue 'outer;
            }
        }
        if !maximal.contains(&s) {
            maximal.push(s);
        }
    }

    SingleCutResult {
        candidates: maximal
            .into_iter()
            .map(|nodes| Candidate::from_nodes(f, dfg, key, nodes))
            .collect(),
        explored,
        cap_hit,
    }
}

/// Depth-first enumeration state. Input/output counts are maintained
/// incrementally on include/undo so the hot bound check costs O(degree)
/// instead of a full [`Candidate::from_nodes`] reconstruction per node.
struct CutSearch<'a> {
    f: &'a Function,
    dfg: &'a Dfg,
    /// Only the leaf's debug cross-check against `Candidate::from_nodes`
    /// reads this; release builds never construct candidates mid-search.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    key: BlockKey,
    valid: &'a [u32],
    ports: PortConstraints,
    min_size: usize,
    port_bound: bool,
    cap: u64,
    node_of: HashMap<InstId, u32>,
    members: Vec<bool>,
    chosen: Vec<u32>,
    /// Per node: how many of its same-block consumers are members.
    member_succs: Vec<u32>,
    /// Members whose value escapes or feeds a non-member.
    outputs: u32,
    /// Distinct external value inputs of the member set.
    inputs: u32,
    /// Reference counts behind `inputs` (distinctness by operand identity,
    /// exactly as [`Candidate::from_nodes`] counts).
    input_refs: HashMap<OperandKey, u32>,
    slack_after: Vec<u32>,
    best: Vec<Vec<u32>>,
    explored: u64,
    cap_hit: bool,
}

impl CutSearch<'_> {
    fn recurse(&mut self, pos: usize) {
        if self.cap_hit {
            return;
        }
        self.explored += 1;
        if self.explored > self.cap {
            self.cap_hit = true;
            return;
        }
        if pos == self.valid.len() {
            self.leaf();
            return;
        }
        // Branch 1: include. Convexity violations never heal by adding
        // *later* nodes (the violating path's intermediates are already
        // decided as excluded), and the port bound is sound per the module
        // docs — so a failed check prunes the whole subtree.
        let v = self.valid[pos];
        self.include(v);
        let convex = self.dfg.is_convex(&self.members);
        let ports_ok = !self.port_bound
            || (self.inputs <= self.ports.max_inputs
                && self.outputs <= self.ports.max_outputs + self.slack_after[pos + 1]);
        if convex && ports_ok {
            self.recurse(pos + 1);
        }
        self.undo(v);
        // Branch 2: exclude.
        self.recurse(pos + 1);
    }

    fn leaf(&mut self) {
        if self.chosen.len() < self.min_size {
            return;
        }
        if self.inputs <= self.ports.max_inputs && self.outputs <= self.ports.max_outputs {
            // Every include passed a convexity check and excludes don't
            // change the set, so the leaf set is convex by construction.
            debug_assert!(self.dfg.is_convex(&self.members));
            #[cfg(debug_assertions)]
            {
                let cand = Candidate::from_nodes(self.f, self.dfg, self.key, self.chosen.clone());
                debug_assert_eq!(cand.inputs, self.inputs, "incremental input count drifted");
                debug_assert_eq!(
                    cand.outputs, self.outputs,
                    "incremental output count drifted"
                );
            }
            self.best.push(self.chosen.clone());
        }
    }

    /// Adds `v` to the member set, updating I/O counts. `v`'s consumers all
    /// lie at later positions, so none is a member yet: `v` is an output
    /// exactly if it escapes or has any same-block consumer.
    fn include(&mut self, v: u32) {
        let dfg = self.dfg;
        let vi = v as usize;
        for &p in &dfg.nodes[vi].preds {
            let pi = p as usize;
            if !self.members[pi] {
                continue;
            }
            self.member_succs[pi] += 1;
            let fully_absorbed =
                !dfg.nodes[pi].escapes && self.member_succs[pi] == dfg.nodes[pi].succs.len() as u32;
            if fully_absorbed {
                self.outputs -= 1;
            }
        }
        self.members[vi] = true;
        self.chosen.push(v);
        debug_assert_eq!(self.member_succs[vi], 0);
        if dfg.nodes[vi].escapes || !dfg.nodes[vi].succs.is_empty() {
            self.outputs += 1;
        }
        let inst = self.f.inst(dfg.nodes[vi].inst);
        for op in inst.operands() {
            if let Some(k) = self.external_key(op) {
                let cnt = self.input_refs.entry(k).or_insert(0);
                *cnt += 1;
                if *cnt == 1 {
                    self.inputs += 1;
                }
            }
        }
    }

    /// Exact inverse of [`Self::include`]. Nodes are undone in LIFO order,
    /// so `v`'s consumers have already been removed when `v` is.
    fn undo(&mut self, v: u32) {
        let dfg = self.dfg;
        let vi = v as usize;
        let inst = self.f.inst(dfg.nodes[vi].inst);
        for op in inst.operands() {
            if let Some(k) = self.external_key(op) {
                let cnt = self.input_refs.get_mut(&k).expect("ref-counted input");
                *cnt -= 1;
                if *cnt == 0 {
                    self.input_refs.remove(&k);
                    self.inputs -= 1;
                }
            }
        }
        debug_assert_eq!(self.member_succs[vi], 0);
        if dfg.nodes[vi].escapes || !dfg.nodes[vi].succs.is_empty() {
            self.outputs -= 1;
        }
        self.members[vi] = false;
        self.chosen.pop();
        for &p in &dfg.nodes[vi].preds {
            let pi = p as usize;
            if !self.members[pi] {
                continue;
            }
            let was_absorbed =
                !dfg.nodes[pi].escapes && self.member_succs[pi] == dfg.nodes[pi].succs.len() as u32;
            if was_absorbed {
                self.outputs += 1;
            }
            self.member_succs[pi] -= 1;
        }
    }

    /// The operand's identity if it is an external value input of the
    /// current member set (`None` for constants and member-internal edges).
    fn external_key(&self, op: Operand) -> Option<OperandKey> {
        match op {
            Operand::Const(_) => None,
            Operand::Arg(i) => Some(OperandKey::Arg(i)),
            Operand::Inst(def) => {
                let from_member = self
                    .node_of
                    .get(&def)
                    .is_some_and(|&idx| self.members[idx as usize]);
                if from_member {
                    None
                } else {
                    Some(OperandKey::Inst(def.0))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::{BlockId, FuncId, FunctionBuilder, Operand as Op, Type};

    fn key() -> BlockKey {
        BlockKey::new(FuncId(0), BlockId(0))
    }

    fn run(f: &Function, ports: PortConstraints, min: usize) -> SingleCutResult {
        let dfg = Dfg::build(f, BlockId(0));
        single_cut(f, &dfg, key(), &ForbiddenPolicy::default(), ports, min)
    }

    /// One producer fanned out to `consumers` escaping consumers: the shape
    /// on which only the (fixed) output bound keeps exploration polynomial.
    fn wide_fanout(consumers: usize) -> Function {
        let mut bld = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        let a = bld.add(Op::Arg(0), Op::Arg(1));
        let sink = bld.alloca(4);
        for i in 0..consumers {
            let c = bld.xor(a, Op::ci32(i as i32));
            bld.store(c, sink);
        }
        bld.ret(a);
        bld.finish()
    }

    #[test]
    fn finds_full_chain_when_ports_allow() {
        let mut bld = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let a = bld.add(Op::Arg(0), Op::ci32(1));
        let b = bld.mul(a, Op::ci32(3));
        let c = bld.xor(b, Op::ci32(7));
        bld.ret(c);
        let f = bld.finish();
        let res = run(&f, PortConstraints::default(), 2);
        // The maximal cut is the whole chain.
        assert!(res.candidates.iter().any(|c| c.len() == 3));
        assert!(res.explored > 0);
        assert!(!res.cap_hit);
    }

    #[test]
    fn respects_input_constraint() {
        // Node with 5 distinct external inputs cannot fit 4-in ports as a
        // whole.
        let mut bld = FunctionBuilder::new(
            "f",
            vec![Type::I32, Type::I32, Type::I32, Type::I32, Type::I32],
            Type::I32,
        );
        let s1 = bld.add(Op::Arg(0), Op::Arg(1));
        let s2 = bld.add(Op::Arg(2), Op::Arg(3));
        let s3 = bld.add(s1, s2);
        let s4 = bld.add(s3, Op::Arg(4));
        bld.ret(s4);
        let f = bld.finish();
        let res = run(
            &f,
            PortConstraints {
                max_inputs: 4,
                max_outputs: 1,
            },
            2,
        );
        for c in &res.candidates {
            assert!(c.inputs <= 4, "candidate {:?} violates inputs", c.nodes);
        }
        // The full graph (5 inputs) must NOT be a candidate.
        assert!(!res.candidates.iter().any(|c| c.len() == 4));
        // But a 3-node subgraph with 4 inputs is.
        assert!(res.candidates.iter().any(|c| c.len() == 3));
    }

    #[test]
    fn all_candidates_convex_and_feasible() {
        let mut bld = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        let a = bld.add(Op::Arg(0), Op::Arg(1));
        let b = bld.mul(a, a);
        let p = bld.alloca(4);
        bld.store(b, p);
        let v = bld.load(Type::I32, p);
        let c = bld.xor(v, a);
        let d = bld.sub(c, b);
        bld.ret(d);
        let f = bld.finish();
        let dfg = Dfg::build(&f, BlockId(0));
        let res = run(&f, PortConstraints::default(), 1);
        let policy = ForbiddenPolicy::default();
        let forbidden = policy.mask(&dfg);
        for c in &res.candidates {
            assert!(c.is_convex(&dfg));
            assert!(c.inputs <= 4 && c.outputs <= 2);
            assert!(c.nodes.iter().all(|&n| !forbidden[n as usize]));
        }
    }

    #[test]
    fn exploration_grows_with_block_size() {
        // Independent dead nodes: every subset is convex with zero outputs,
        // so neither convexity nor the port bound can prune and the search
        // space is the full 2^n. (On chain graphs pruning cuts exploration
        // to polynomial — also asserted.)
        let build_independent = |n: usize| {
            let mut bld = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
            for i in 0..n {
                let _ = bld.xor(Op::Arg(0), Op::ci32(i as i32));
            }
            bld.ret(Op::Arg(0));
            bld.finish()
        };
        let small = run(&build_independent(6), PortConstraints::default(), 2).explored;
        let large = run(&build_independent(12), PortConstraints::default(), 2).explored;
        assert!(
            large > small * 16,
            "exponential growth expected: {small} -> {large}"
        );

        // Chain graphs: convexity + port pruning keeps exploration far
        // below the exponential upper bound.
        let build_chain = |n: usize| {
            let mut bld = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
            let mut v = bld.add(Op::Arg(0), Op::ci32(1));
            for i in 0..n {
                v = if i % 2 == 0 {
                    bld.mul(v, Op::ci32(3))
                } else {
                    bld.xor(v, Op::ci32(5))
                };
            }
            bld.ret(v);
            bld.finish()
        };
        let chain = run(&build_chain(12), PortConstraints::default(), 2).explored;
        assert!(
            chain < large / 2,
            "convexity pruning must beat the unprunable case: {chain} vs {large}"
        );
    }

    #[test]
    fn maximality_filter_removes_subsets() {
        let mut bld = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let a = bld.add(Op::Arg(0), Op::ci32(1));
        let b = bld.mul(a, Op::ci32(2));
        bld.ret(b);
        let f = bld.finish();
        let res = run(&f, PortConstraints::default(), 1);
        // {a}, {b} are subsets of {a,b}; only maximal {a,b} (and any
        // non-nested sets) survive.
        assert!(res.candidates.iter().any(|c| c.len() == 2));
        for c in &res.candidates {
            if c.len() == 1 {
                // A singleton may only survive if it is not contained in a
                // larger candidate — here both are contained.
                panic!("non-maximal singleton {:?} survived", c.nodes);
            }
        }
    }

    /// The headline regression: with the old (vacuously true) output
    /// bound, a wide fan-out block drives the enumeration through the
    /// exploration cap before it ever backtracks far enough to reach a
    /// feasible leaf — every maximal cut is silently lost. The fixed bound
    /// prunes infeasible-output branches immediately and finds them all
    /// within a tiny fraction of the same budget.
    #[test]
    fn old_bound_loses_maximal_cut_to_the_cap() {
        let f = wide_fanout(16);
        let dfg = Dfg::build(&f, BlockId(0));
        let policy = ForbiddenPolicy::default();
        let ports = PortConstraints::default();
        let cap = 50_000; // 2^18 unpruned subsets >> cap >> pruned search

        let old = single_cut_with(&f, &dfg, key(), &policy, ports, 2, false, cap);
        assert!(old.cap_hit, "old bound must blow through the cap");
        assert!(
            old.candidates.is_empty(),
            "old bound reached no feasible leaf before the cap: {:?}",
            old.candidates.iter().map(|c| &c.nodes).collect::<Vec<_>>()
        );

        let fixed = single_cut_with(&f, &dfg, key(), &policy, ports, 2, true, cap);
        assert!(!fixed.cap_hit, "fixed bound stays under the same cap");
        // {producer, consumer} pairs are the maximal 2-output cuts.
        assert!(
            fixed
                .candidates
                .iter()
                .any(|c| c.nodes.contains(&0) && c.len() == 2),
            "fixed bound must recover the maximal producer/consumer cut"
        );
        assert!(fixed.explored < old.explored);
    }

    /// Bound on vs off must agree on the candidates whenever neither hits
    /// the cap — the bound only skips subtrees that cannot contain a
    /// feasible leaf.
    #[test]
    fn bound_only_prunes_infeasible_subtrees() {
        let f = wide_fanout(8);
        let dfg = Dfg::build(&f, BlockId(0));
        let policy = ForbiddenPolicy::default();
        let ports = PortConstraints::default();
        let with = single_cut_with(&f, &dfg, key(), &policy, ports, 2, true, u64::MAX);
        let without = single_cut_with(&f, &dfg, key(), &policy, ports, 2, false, u64::MAX);
        assert!(!with.cap_hit && !without.cap_hit);
        let nodes = |r: &SingleCutResult| {
            let mut v: Vec<Vec<u32>> = r.candidates.iter().map(|c| c.nodes.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(nodes(&with), nodes(&without));
        assert!(with.explored <= without.explored);
    }

    #[test]
    fn cap_hit_is_reported_not_silent() {
        let f = wide_fanout(12);
        let dfg = Dfg::build(&f, BlockId(0));
        let res = single_cut_with(
            &f,
            &dfg,
            key(),
            &ForbiddenPolicy::default(),
            PortConstraints::default(),
            2,
            false,
            100,
        );
        assert!(res.cap_hit);
        assert_eq!(res.explored, 101, "counts stop right past the cap");
    }
}
