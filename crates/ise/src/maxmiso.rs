//! The MAXMISO identification algorithm.
//!
//! The paper selects MAXMISO (maximal multiple-input single-output
//! subgraphs, Alippi et al.) for just-in-time use because it runs in
//! **linear time** — "the MAXMISO linear complexity ISE algorithm" (§III).
//!
//! Construction: walk the DFG in reverse topological order. A valid
//! (non-forbidden) node becomes the **root** of a new MaxMISO when its
//! value escapes the cone — it is consumed outside the block, by a
//! forbidden node, by no one, or by members of *different* MISOs. A node
//! whose consumers all lie in one existing MISO is absorbed into it.
//!
//! Resulting properties (checked by the property-test suite):
//!
//! * MISOs are **disjoint** — each valid node belongs to exactly one;
//! * each MISO has a **single output** (the root);
//! * each MISO is **convex**;
//! * each MISO is **maximal** — absorbing any additional producer would
//!   violate single-output, validity, or disjointness.

use crate::candidate::Candidate;
use crate::forbidden::ForbiddenPolicy;
use jitise_ir::{Dfg, Function};
use jitise_vm::BlockKey;

/// Identification result for one block.
#[derive(Debug, Clone)]
pub struct MaxMisoResult {
    /// The identified candidates, in root order.
    pub candidates: Vec<Candidate>,
    /// Nodes examined (equals the block size; kept for algorithm-cost
    /// reporting in the benches).
    pub nodes_examined: usize,
}

/// Runs MAXMISO on one block.
///
/// `min_size` drops trivial candidates (a single add gains nothing over the
/// native instruction; the paper's candidates average 6.5–7.3 instructions).
pub fn maxmiso(
    f: &Function,
    dfg: &Dfg,
    key: BlockKey,
    policy: &ForbiddenPolicy,
    min_size: usize,
) -> MaxMisoResult {
    let n = dfg.len();
    let forbidden = policy.mask(dfg);
    // miso_of[node] = root node index of the MISO it belongs to.
    let mut miso_of: Vec<Option<u32>> = vec![None; n];

    // Reverse topological order = reverse instruction order.
    for i in (0..n).rev() {
        if forbidden[i] {
            continue;
        }
        let node = &dfg.nodes[i];
        let mut root_of_all: Option<u32> = None;
        let mut absorbable = !node.escapes && !node.succs.is_empty();
        for &s in &node.succs {
            let s = s as usize;
            if forbidden[s] {
                absorbable = false;
                break;
            }
            match (miso_of[s], root_of_all) {
                (Some(r), None) => root_of_all = Some(r),
                (Some(r), Some(prev)) if r == prev => {}
                _ => {
                    absorbable = false;
                    break;
                }
            }
        }
        if absorbable {
            // All consumers valid and in one MISO: join it.
            miso_of[i] = root_of_all;
        } else {
            // Become a root.
            miso_of[i] = Some(i as u32);
        }
    }

    // Group nodes by root.
    let mut groups: std::collections::BTreeMap<u32, Vec<u32>> = std::collections::BTreeMap::new();
    for (i, root) in miso_of.iter().enumerate() {
        if let Some(r) = root {
            groups.entry(*r).or_default().push(i as u32);
        }
    }

    let candidates = groups
        .into_values()
        .filter(|nodes| nodes.len() >= min_size)
        .map(|nodes| Candidate::from_nodes(f, dfg, key, nodes))
        // Cones rooted at dead values (no consumer anywhere) would
        // synthesize hardware driving nothing; -O3 removes such code, but
        // unoptimized input can still contain it.
        .filter(|c| c.outputs >= 1)
        .collect();

    MaxMisoResult {
        candidates,
        nodes_examined: n,
    }
}

/// Runs MAXMISO over every block of a function.
pub fn maxmiso_function(
    f: &Function,
    fid: jitise_ir::FuncId,
    policy: &ForbiddenPolicy,
    min_size: usize,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    for (dfg, bid) in Dfg::build_all(f).iter().zip(f.block_ids()) {
        let key = BlockKey::new(fid, bid);
        out.extend(maxmiso(f, dfg, key, policy, min_size).candidates);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::{BlockId, FuncId, FunctionBuilder, Operand as Op, Type};

    fn key() -> BlockKey {
        BlockKey::new(FuncId(0), BlockId(0))
    }

    fn run(f: &Function, min_size: usize) -> Vec<Candidate> {
        let dfg = Dfg::build(f, BlockId(0));
        maxmiso(f, &dfg, key(), &ForbiddenPolicy::default(), min_size).candidates
    }

    #[test]
    fn single_chain_is_one_miso() {
        // a -> b -> c, only c escapes: one MaxMISO {a, b, c}.
        let mut bld = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let a = bld.add(Op::Arg(0), Op::ci32(1));
        let b = bld.mul(a, Op::ci32(3));
        let c = bld.xor(b, Op::ci32(7));
        bld.ret(c);
        let f = bld.finish();
        let cands = run(&f, 1);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].nodes, vec![0, 1, 2]);
        assert_eq!(cands[0].outputs, 1);
    }

    #[test]
    fn diamond_is_one_miso() {
        // a feeds b and c which feed d: consumers of a are b,c — different
        // nodes but do they end in the same MISO? b and c both absorb into
        // d's MISO, then a sees both consumers in the same MISO -> joins.
        let mut bld = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let a = bld.add(Op::Arg(0), Op::ci32(1));
        let b = bld.mul(a, Op::ci32(3));
        let c = bld.xor(a, Op::ci32(7));
        let d = bld.add(b, c);
        bld.ret(d);
        let f = bld.finish();
        let cands = run(&f, 1);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].nodes, vec![0, 1, 2, 3]);
        assert!(cands[0].is_convex(&Dfg::build(&f, BlockId(0))));
    }

    #[test]
    fn escaping_interior_value_splits() {
        // a feeds b, and a also escapes (returned via second use): a must
        // be its own root; b is a separate MISO.
        let mut bld = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let next = bld.new_block("next");
        let a = bld.add(Op::Arg(0), Op::ci32(1));
        let b = bld.mul(a, Op::ci32(3));
        let _ = b;
        bld.br(next);
        bld.switch_to(next);
        let c = bld.add(a, b); // uses both from entry block
        bld.ret(c);
        let f = bld.finish();
        let cands = run(&f, 1);
        // a escapes, b escapes -> two singleton MISOs.
        assert_eq!(cands.len(), 2);
        assert!(cands.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn forbidden_node_breaks_cone() {
        // a -> load -> c : load is forbidden, so a and c are separate.
        let mut bld = FunctionBuilder::new("f", vec![Type::Ptr, Type::I32], Type::I32);
        let a = bld.gep(Op::Arg(0), Op::Arg(1), 4); // forbidden (gep)
        let v = bld.load(Type::I32, a); // forbidden
        let c = bld.add(v, Op::ci32(1));
        let d = bld.mul(c, c);
        bld.ret(d);
        let f = bld.finish();
        let cands = run(&f, 1);
        assert_eq!(cands.len(), 1);
        // Only {c, d} forms a MISO.
        assert_eq!(cands[0].nodes, vec![2, 3]);
    }

    #[test]
    fn min_size_filters() {
        let mut bld = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let a = bld.add(Op::Arg(0), Op::ci32(1));
        bld.ret(a);
        let f = bld.finish();
        assert_eq!(run(&f, 1).len(), 1);
        assert_eq!(run(&f, 2).len(), 0);
    }

    #[test]
    fn disjointness_and_coverage() {
        // Random-ish block: every valid node must appear in exactly one
        // MISO when min_size = 1.
        let mut bld = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        let a = bld.add(Op::Arg(0), Op::Arg(1));
        let b = bld.mul(a, a);
        let c = bld.sub(b, Op::Arg(0));
        let d = bld.xor(a, c);
        let p = bld.alloca(4); // forbidden
        bld.store(d, p); // forbidden
        let e = bld.load(Type::I32, p); // forbidden
        let g = bld.add(e, d);
        bld.ret(g);
        let f = bld.finish();
        let dfg = Dfg::build(&f, BlockId(0));
        let cands = maxmiso(&f, &dfg, key(), &ForbiddenPolicy::default(), 1).candidates;
        let mut seen = vec![0u32; dfg.len()];
        for c in &cands {
            for &n in &c.nodes {
                seen[n as usize] += 1;
            }
            assert_eq!(c.outputs, 1, "every MISO has a single output");
            assert!(c.is_convex(&dfg));
        }
        let policy = ForbiddenPolicy::default();
        let forbidden = policy.mask(&dfg);
        for (i, &cnt) in seen.iter().enumerate() {
            if forbidden[i] {
                assert_eq!(cnt, 0, "forbidden node {i} must not be covered");
            } else {
                assert_eq!(cnt, 1, "valid node {i} must be covered exactly once");
            }
        }
    }

    #[test]
    fn runs_over_whole_function() {
        let mut bld = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        bld.counted_loop("i", Op::ci32(0), Op::Arg(0), |b, i| {
            let x = b.mul(i, i);
            let y = b.add(x, i);
            let z = b.xor(y, x);
            let p = b.alloca(4);
            b.store(z, p);
        });
        bld.ret(Op::ci32(0));
        let f = bld.finish();
        let cands = maxmiso_function(&f, FuncId(0), &ForbiddenPolicy::default(), 2);
        assert!(!cands.is_empty());
        // The x,y,z chain in the body must be found.
        assert!(cands.iter().any(|c| c.len() == 3));
    }
}
