//! Incremental candidate search: the identification memo.
//!
//! The adaptive runtime re-runs candidate search as profiles evolve, and
//! identification is the phase the paper singles out as the scaling
//! bottleneck ("ranging from seconds to days", §II) — yet between two
//! searches most blocks have not changed at all. [`SearchMemo`] caches the
//! built [`Dfg`] and the per-algorithm identification result of each block,
//! keyed by a **content signature** of the block's owning function, so a
//! repeated search pays only for blocks whose instruction stream actually
//! changed.
//!
//! # Keying and invalidation
//!
//! The cache key is the [`BlockKey`]; each entry carries the content
//! signature it was computed from. A lookup whose signature differs (the
//! block — or any block of its function — was edited, e.g. by candidate
//! patching) *invalidates* the whole entry and recomputes. The signature
//! deliberately covers the **entire function**, not just the block:
//! [`Dfg::build`]'s escape analysis scans every other block for consumers,
//! so an edit elsewhere in the function can change this block's DFG without
//! touching its own instructions. Identification results are additionally
//! keyed by an algorithm-configuration signature (algorithm, policy, ports,
//! minimum size), so differently-configured searches share one memo — and
//! one `Dfg` — without colliding.
//!
//! The memo is in-process only (it caches `Arc`s, not serialized bytes) and
//! safe to share across worker lanes: entries are pure functions of
//! (content, config), so concurrent recomputation is wasteful but never
//! wrong, and last-writer-wins insertion keeps results deterministic.

use crate::candidate::Candidate;
use crate::forbidden::ForbiddenPolicy;
use crate::search::Algorithm;
use crate::singlecut::PortConstraints;
use jitise_base::hash::SigHasher;
use jitise_base::sync::Mutex;
use jitise_ir::{BlockId, Dfg, Function};
use jitise_vm::BlockKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What one identification run of one block produced, in algorithm-neutral
/// form (the search driver folds every algorithm's result into this).
#[derive(Debug, Clone)]
pub struct IdentOutcome {
    /// Identified candidates, in the algorithm's deterministic order.
    pub candidates: Vec<Candidate>,
    /// Work measure: subsets explored (SingleCut), nodes examined
    /// (MaxMISO), or merges performed (UnionMISO).
    pub explored: u64,
    /// True if an exploration cap truncated the result.
    pub cap_hit: bool,
}

struct MemoEntry {
    content_sig: u64,
    dfg: Arc<Dfg>,
    /// Algorithm-configuration signature → identification result.
    ident: HashMap<u64, Arc<IdentOutcome>>,
}

/// Cross-search cache of built DFGs and identification results.
#[derive(Default)]
pub struct SearchMemo {
    entries: Mutex<HashMap<BlockKey, MemoEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl std::fmt::Debug for SearchMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchMemo")
            .field("blocks", &self.entries.lock().len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("invalidations", &self.invalidations())
            .finish()
    }
}

impl SearchMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Identification lookups answered from cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Identification lookups that had to compute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries discarded because the block's content signature changed.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the block's DFG and identification result, from cache when
    /// `content_sig` and `cfg_sig` both match, computing (outside the lock)
    /// and inserting otherwise. The bool is true on a full cache hit.
    pub fn lookup_or_compute(
        &self,
        key: BlockKey,
        content_sig: u64,
        cfg_sig: u64,
        build_dfg: impl FnOnce() -> Dfg,
        identify: impl FnOnce(&Dfg) -> IdentOutcome,
    ) -> (Arc<Dfg>, Arc<IdentOutcome>, bool) {
        // Probe. A stale entry (content changed) is treated as absent; a
        // content match without this config's result still reuses the DFG.
        let cached_dfg = {
            let entries = self.entries.lock();
            match entries.get(&key) {
                Some(e) if e.content_sig == content_sig => {
                    if let Some(ident) = e.ident.get(&cfg_sig) {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return (Arc::clone(&e.dfg), Arc::clone(ident), true);
                    }
                    Some(Arc::clone(&e.dfg))
                }
                Some(_) => {
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                    None
                }
                None => None,
            }
        };
        self.misses.fetch_add(1, Ordering::Relaxed);

        // Compute without holding the lock so parallel lanes don't
        // serialize on each other's identification runs.
        let dfg = cached_dfg.unwrap_or_else(|| Arc::new(build_dfg()));
        let ident = Arc::new(identify(&dfg));

        let mut entries = self.entries.lock();
        let entry = entries.entry(key).or_insert_with(|| MemoEntry {
            content_sig,
            dfg: Arc::clone(&dfg),
            ident: HashMap::new(),
        });
        if entry.content_sig != content_sig {
            // Another (stale) signature raced in or predates us: replace.
            *entry = MemoEntry {
                content_sig,
                dfg: Arc::clone(&dfg),
                ident: HashMap::new(),
            };
        }
        entry.ident.insert(cfg_sig, Arc::clone(&ident));
        (dfg, ident, false)
    }
}

/// Content signature of one function. Covers every block and terminator
/// because a block's DFG depends on the whole function (escape analysis);
/// hash once per function, then derive per-block signatures with
/// [`block_signature`].
pub fn function_signature(f: &Function) -> u64 {
    let mut h = SigHasher::new();
    h.write_str("search-memo.fn");
    h.write_str(&format!("{f:?}"));
    h.finish()
}

/// Content signature of one block given its function's signature.
pub fn block_signature(func_sig: u64, block: BlockId) -> u64 {
    let mut h = SigHasher::new();
    h.write_str("search-memo.block");
    h.write_u64(func_sig);
    h.write_u32(block.0);
    h.finish()
}

/// Signature of everything the identification result depends on besides
/// the block content: algorithm, feasibility policy, ports, minimum size.
pub fn config_signature(
    algorithm: Algorithm,
    policy: &ForbiddenPolicy,
    ports: PortConstraints,
    min_size: usize,
) -> u64 {
    let mut h = SigHasher::new();
    h.write_str("search-memo.cfg");
    h.write_str(&algorithm.to_string());
    h.write_str(&format!("{policy:?}"));
    h.write_str(&format!("{ports:?}"));
    h.write_usize(min_size);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::{FuncId, FunctionBuilder, Operand as Op, Type};

    fn func(c: i32) -> Function {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let x = b.mul(Op::Arg(0), Op::ci32(c));
        let y = b.add(x, Op::Arg(0));
        b.ret(y);
        b.finish()
    }

    fn outcome(n: u64) -> IdentOutcome {
        IdentOutcome {
            candidates: Vec::new(),
            explored: n,
            cap_hit: false,
        }
    }

    #[test]
    fn second_lookup_hits() {
        let memo = SearchMemo::new();
        let f = func(3);
        let key = BlockKey::new(FuncId(0), BlockId(0));
        let sig = block_signature(function_signature(&f), BlockId(0));
        let cfg = 42;
        let (_, first, hit) =
            memo.lookup_or_compute(key, sig, cfg, || Dfg::build(&f, BlockId(0)), |_| outcome(7));
        assert!(!hit);
        let (_, second, hit) = memo.lookup_or_compute(
            key,
            sig,
            cfg,
            || panic!("dfg must come from cache"),
            |_| panic!("ident must come from cache"),
        );
        assert!(hit);
        assert_eq!(first.explored, second.explored);
        assert_eq!(
            (memo.hits(), memo.misses(), memo.invalidations()),
            (1, 1, 0)
        );
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn content_change_invalidates() {
        let memo = SearchMemo::new();
        let key = BlockKey::new(FuncId(0), BlockId(0));
        let (fa, fb) = (func(3), func(4));
        let sig_a = block_signature(function_signature(&fa), BlockId(0));
        let sig_b = block_signature(function_signature(&fb), BlockId(0));
        assert_ne!(sig_a, sig_b, "different constants, different content");
        memo.lookup_or_compute(
            key,
            sig_a,
            1,
            || Dfg::build(&fa, BlockId(0)),
            |_| outcome(1),
        );
        let (_, out, hit) = memo.lookup_or_compute(
            key,
            sig_b,
            1,
            || Dfg::build(&fb, BlockId(0)),
            |_| outcome(2),
        );
        assert!(!hit, "changed content must not hit");
        assert_eq!(out.explored, 2);
        assert_eq!(memo.invalidations(), 1);
        // The stale config result died with the entry.
        let (_, _, hit) = memo.lookup_or_compute(
            key,
            sig_a,
            1,
            || Dfg::build(&fa, BlockId(0)),
            |_| outcome(3),
        );
        assert!(!hit);
    }

    #[test]
    fn configs_share_the_dfg_but_not_results() {
        let memo = SearchMemo::new();
        let f = func(3);
        let key = BlockKey::new(FuncId(0), BlockId(0));
        let sig = block_signature(function_signature(&f), BlockId(0));
        let (dfg1, _, _) =
            memo.lookup_or_compute(key, sig, 1, || Dfg::build(&f, BlockId(0)), |_| outcome(1));
        let (dfg2, out, hit) = memo.lookup_or_compute(
            key,
            sig,
            2,
            || panic!("dfg is shared across configs"),
            |_| outcome(2),
        );
        assert!(!hit, "different config, different ident result");
        assert_eq!(out.explored, 2);
        assert!(Arc::ptr_eq(&dfg1, &dfg2));
    }

    #[test]
    fn config_signature_separates_algorithms_and_ports() {
        let policy = ForbiddenPolicy::default();
        let ports = PortConstraints::default();
        let a = config_signature(Algorithm::MaxMiso, &policy, ports, 2);
        let b = config_signature(Algorithm::SingleCut, &policy, ports, 2);
        let c = config_signature(
            Algorithm::SingleCut,
            &policy,
            PortConstraints {
                max_inputs: 3,
                max_outputs: 1,
            },
            2,
        );
        let d = config_signature(Algorithm::SingleCut, &policy, ports, 3);
        assert!(a != b && b != c && c != d && a != c);
        assert_eq!(a, config_signature(Algorithm::MaxMiso, &policy, ports, 2));
    }

    #[test]
    fn function_signature_sees_other_blocks() {
        // Same first block, different second block: the first block's DFG
        // (escape analysis) can differ, so the signature must too.
        let build = |use_it: bool| {
            let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
            let x = b.mul(Op::Arg(0), Op::ci32(3));
            let next = b.new_block("next");
            b.br(next);
            b.switch_to(next);
            if use_it {
                let y = b.add(x, Op::Arg(0));
                b.ret(y);
            } else {
                b.ret(Op::Arg(0));
            }
            b.finish()
        };
        assert_ne!(
            function_signature(&build(true)),
            function_signature(&build(false))
        );
    }
}
