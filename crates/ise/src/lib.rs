//! # jitise-ise — instruction-set-extension algorithms
//!
//! The *Candidate Search* phase of the ASIP specialization process (paper
//! Fig. 2): find, estimate, and select custom-instruction candidates in an
//! application's data-flow graphs.
//!
//! * [`forbidden`] — the hardware-feasibility policy (memory, globals,
//!   calls and control flow stay on the CPU; §V-D).
//! * [`candidate`] — candidate model: node sets with convexity and
//!   input/output port accounting, plus the structural signature used as
//!   the bitstream-cache key.
//! * [`maxmiso`] — the linear-time MAXMISO identification algorithm the
//!   paper uses for JIT operation.
//! * [`singlecut`] — exact exponential enumeration (the state-of-the-art
//!   baseline whose cost motivates pruning).
//! * [`union`] — UnionMISO clustering baseline (multi-output candidates).
//! * [`prune`] — the `@{p}pS{k}L` pruning-filter family, including the
//!   paper's `@50pS3L`.
//! * [`estimate`] — HW/SW performance estimation interface +
//!   database-free default implementation.
//! * [`select`] — greedy merit/area selection and the ASIP-speedup
//!   computation.
//! * [`memo`] — the cross-search identification memo (cached DFGs and
//!   identification results, content-signature invalidation).
//! * [`search`] — the end-to-end Candidate Search driver (parallel,
//!   deterministic, optionally memoized) with real-time measurement
//!   (Table II `real [ms]`).

pub mod candidate;
pub mod estimate;
pub mod forbidden;
pub mod maxmiso;
pub mod memo;
pub mod prune;
pub mod search;
pub mod select;
pub mod singlecut;
pub mod union;

pub use candidate::Candidate;
pub use estimate::{CandidateEstimate, DepthEstimator, Estimator};
pub use forbidden::ForbiddenPolicy;
pub use maxmiso::{maxmiso, maxmiso_function};
pub use memo::{IdentOutcome, SearchMemo};
pub use prune::{prune, PruneFilter, PruneResult};
pub use search::{
    candidate_search, identify_makespan, pruning_efficiency, Algorithm, SearchConfig, SearchOutcome,
};
pub use select::{select, speedup, AreaBudget, Selected, SelectionResult};
pub use singlecut::{single_cut, single_cut_with, PortConstraints};
pub use union::union_miso;
