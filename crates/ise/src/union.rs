//! UnionMISO clustering (baseline).
//!
//! The third identification algorithm family the paper's precursor work [9]
//! studies: start from MaxMISOs and greedily merge clusters that share
//! inputs, producing multi-output candidates that trade more register-file
//! ports for fewer, larger instructions. Merging is constrained by the same
//! port limits as the exact enumeration.

use crate::candidate::Candidate;
use crate::forbidden::ForbiddenPolicy;
use crate::maxmiso::maxmiso;
use crate::singlecut::PortConstraints;
use jitise_ir::{Dfg, Function};
use jitise_vm::BlockKey;

/// Result of UnionMISO clustering.
#[derive(Debug, Clone)]
pub struct UnionMisoResult {
    /// Final candidates after merging, largest first.
    pub candidates: Vec<Candidate>,
    /// Number of merge operations performed.
    pub merges: usize,
}

/// Number of shared external inputs between two candidates.
fn shared_inputs(f: &Function, a: &Candidate, b: &Candidate) -> usize {
    use jitise_ir::Operand;
    let externals = |c: &Candidate| -> Vec<Operand> {
        let mut v = Vec::new();
        for &iid in &c.insts {
            for op in f.inst(iid).operands() {
                if op.is_const() {
                    continue;
                }
                if let Operand::Inst(def) = op {
                    if c.insts.contains(&def) {
                        continue;
                    }
                }
                if !v.contains(&op) {
                    v.push(op);
                }
            }
        }
        v
    };
    let ea = externals(a);
    externals(b).iter().filter(|op| ea.contains(op)).count()
}

/// Runs MAXMISO and then greedily merges MISO pairs of the same block that
/// share at least one input, while the merged candidate stays convex and
/// within `ports`.
pub fn union_miso(
    f: &Function,
    dfg: &Dfg,
    key: BlockKey,
    policy: &ForbiddenPolicy,
    ports: PortConstraints,
    min_size: usize,
) -> UnionMisoResult {
    let base = maxmiso(f, dfg, key, policy, 1);
    let mut clusters: Vec<Candidate> = base.candidates;
    let mut merges = 0usize;

    loop {
        let mut best_pair: Option<(usize, usize, usize)> = None; // (i, j, shared)
        for i in 0..clusters.len() {
            for j in i + 1..clusters.len() {
                let shared = shared_inputs(f, &clusters[i], &clusters[j]);
                if shared == 0 {
                    continue;
                }
                // Trial merge.
                let mut nodes = clusters[i].nodes.clone();
                nodes.extend_from_slice(&clusters[j].nodes);
                let merged = Candidate::from_nodes(f, dfg, key, nodes);
                if merged.inputs <= ports.max_inputs
                    && merged.outputs <= ports.max_outputs
                    && merged.is_convex(dfg)
                    && best_pair.map(|(_, _, s)| shared > s).unwrap_or(true)
                {
                    best_pair = Some((i, j, shared));
                }
            }
        }
        match best_pair {
            Some((i, j, _)) => {
                let b = clusters.remove(j);
                let a = clusters.remove(i);
                let mut nodes = a.nodes;
                nodes.extend(b.nodes);
                clusters.push(Candidate::from_nodes(f, dfg, key, nodes));
                merges += 1;
            }
            None => break,
        }
    }

    clusters.retain(|c| c.len() >= min_size);
    clusters.sort_by_key(|c| std::cmp::Reverse(c.len()));
    UnionMisoResult {
        candidates: clusters,
        merges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::{BlockId, FuncId, FunctionBuilder, Operand as Op, Type};

    fn key() -> BlockKey {
        BlockKey::new(FuncId(0), BlockId(0))
    }

    #[test]
    fn merges_misos_sharing_inputs() {
        // Two independent chains both consuming arg0: two MaxMISOs (both
        // escape), mergeable into one 2-output candidate.
        let mut bld = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let next = bld.new_block("next");
        let a = bld.add(Op::Arg(0), Op::ci32(1));
        let b = bld.mul(a, Op::ci32(3));
        let c = bld.xor(Op::Arg(0), Op::ci32(7));
        let d = bld.sub(c, Op::ci32(2));
        bld.br(next);
        bld.switch_to(next);
        let s = bld.add(b, d);
        bld.ret(s);
        let f = bld.finish();
        let dfg = Dfg::build(&f, BlockId(0));
        let res = union_miso(
            &f,
            &dfg,
            key(),
            &ForbiddenPolicy::default(),
            PortConstraints::default(),
            1,
        );
        assert_eq!(res.merges, 1);
        assert_eq!(res.candidates.len(), 1);
        let big = &res.candidates[0];
        assert_eq!(big.len(), 4);
        assert_eq!(big.outputs, 2);
        assert_eq!(big.inputs, 1, "arg0 is the single shared input");
    }

    #[test]
    fn respects_output_limit() {
        // Three chains sharing arg0 with 1 output each: merging all three
        // would need 3 outputs; with max_outputs = 2 only one merge happens.
        let mut bld = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let next = bld.new_block("next");
        let mut outs = Vec::new();
        for k in 0..3 {
            let x = bld.add(Op::Arg(0), Op::ci32(k));
            let y = bld.mul(x, Op::ci32(3 + k));
            outs.push(y);
        }
        bld.br(next);
        bld.switch_to(next);
        let s1 = bld.add(outs[0], outs[1]);
        let s2 = bld.add(s1, outs[2]);
        bld.ret(s2);
        let f = bld.finish();
        let dfg = Dfg::build(&f, BlockId(0));
        let res = union_miso(
            &f,
            &dfg,
            key(),
            &ForbiddenPolicy::default(),
            PortConstraints {
                max_inputs: 4,
                max_outputs: 2,
            },
            1,
        );
        assert_eq!(res.merges, 1);
        assert_eq!(res.candidates.len(), 2);
        assert!(res.candidates.iter().all(|c| c.outputs <= 2));
    }

    #[test]
    fn no_shared_inputs_no_merge() {
        let mut bld = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        let next = bld.new_block("next");
        let a = bld.add(Op::Arg(0), Op::ci32(1));
        let b = bld.mul(Op::Arg(1), Op::ci32(3));
        bld.br(next);
        bld.switch_to(next);
        let s = bld.add(a, b);
        bld.ret(s);
        let f = bld.finish();
        let dfg = Dfg::build(&f, BlockId(0));
        let res = union_miso(
            &f,
            &dfg,
            key(),
            &ForbiddenPolicy::default(),
            PortConstraints::default(),
            1,
        );
        assert_eq!(res.merges, 0);
        assert_eq!(res.candidates.len(), 2);
    }
}
