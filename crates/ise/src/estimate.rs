//! Candidate performance estimation.
//!
//! "The estimation data are computed by our PivPav tool and they represent
//! the performance difference for every candidate when executed in software
//! or in hardware" (§III). This module defines the estimator interface and
//! a self-contained default implementation; the `jitise-pivpav` crate
//! provides the database-backed estimator with full area/power metrics.

use crate::candidate::Candidate;
use jitise_ir::{BinOp, Dfg, Function, Opcode, UnOp};
use jitise_vm::CostModel;

/// Hardware/software cost estimate for one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateEstimate {
    /// Software cycles per execution on the base CPU.
    pub sw_cycles: u64,
    /// Hardware cycles per execution as a custom instruction, including
    /// the CI invocation overhead.
    pub hw_cycles: u64,
    /// Block executions observed in the profile.
    pub exec_count: u64,
    /// Estimated LUT cost.
    pub luts: u32,
    /// Estimated flip-flop cost.
    pub ffs: u32,
    /// Estimated DSP-slice cost.
    pub dsps: u32,
}

impl CandidateEstimate {
    /// Cycles saved per execution (0 if hardware is slower).
    pub fn saved_per_exec(&self) -> u64 {
        self.sw_cycles.saturating_sub(self.hw_cycles)
    }

    /// Total cycles saved over the profiled run — the selection *merit*.
    pub fn merit(&self) -> u64 {
        self.saved_per_exec() * self.exec_count
    }

    /// Local speedup of the candidate region.
    pub fn local_speedup(&self) -> f64 {
        if self.hw_cycles == 0 {
            return self.sw_cycles as f64;
        }
        self.sw_cycles as f64 / self.hw_cycles as f64
    }

    /// True if hardware beats software for this candidate.
    pub fn is_profitable(&self) -> bool {
        self.hw_cycles < self.sw_cycles
    }
}

/// Estimates the HW/SW cost of candidates.
///
/// `Sync` because the search driver fans estimation out across worker
/// lanes that share one `&dyn Estimator`.
pub trait Estimator: Sync {
    /// Produces an estimate; `exec_count` is the profiled execution
    /// frequency of the candidate's block.
    fn estimate(
        &self,
        f: &Function,
        dfg: &Dfg,
        cand: &Candidate,
        exec_count: u64,
    ) -> CandidateEstimate;
}

/// Combinational delay (ns) of one operator instance on a Virtex-4-class
/// fabric. These figures follow the scaling of typical synthesized cores:
/// a ripple/carry-chain 32-bit adder ≈ 2.5 ns, wide multipliers a few ns
/// through DSP48 cascades, dividers tens of ns (usually pipelined).
pub fn hw_delay_ns(op: Opcode, bits: u32) -> f64 {
    let w = bits.max(1) as f64;
    match op {
        Opcode::Bin(b) => match b {
            BinOp::Add | BinOp::Sub => 1.2 + 0.04 * w,
            BinOp::And | BinOp::Or | BinOp::Xor => 0.6,
            BinOp::Shl | BinOp::LShr | BinOp::AShr => 1.0 + 0.015 * w, // barrel shifter
            BinOp::Mul => 2.8 + 0.05 * w,                              // DSP48 path
            BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem => 8.0 + 0.5 * w,
            BinOp::FAdd | BinOp::FSub => 6.0 + 0.02 * w,
            BinOp::FMul => 7.0 + 0.03 * w,
            BinOp::FDiv => 18.0 + 0.2 * w,
        },
        Opcode::Un(u) => match u {
            UnOp::Neg => 1.2 + 0.04 * w,
            UnOp::Not => 0.4,
            UnOp::Trunc | UnOp::ZExt | UnOp::SExt => 0.0, // wiring only
            UnOp::FNeg => 0.4,                            // sign-bit flip
            UnOp::FpToSi | UnOp::SiToFp => 5.0,
            UnOp::FpExt | UnOp::FpTrunc => 2.0,
        },
        Opcode::Cmp(c) => {
            if c.is_float() {
                4.0
            } else {
                1.0 + 0.03 * w
            }
        }
        Opcode::Select => 0.8, // LUT mux
        // Forbidden classes never reach the estimator, but return a large
        // sentinel instead of panicking so exploratory callers survive.
        _ => 1_000.0,
    }
}

/// Rough LUT/FF/DSP cost of one operator instance.
pub fn hw_area(op: Opcode, bits: u32) -> (u32, u32, u32) {
    let w = bits.max(1);
    match op {
        Opcode::Bin(b) => match b {
            BinOp::Add | BinOp::Sub => (w, 0, 0),
            BinOp::And | BinOp::Or | BinOp::Xor => (w / 2 + 1, 0, 0),
            BinOp::Shl | BinOp::LShr | BinOp::AShr => (w * 3, 0, 0),
            BinOp::Mul => (w / 2, 0, (w / 17 + 1).max(1)),
            BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem => (w * w / 4 + 8, w, 0),
            BinOp::FAdd | BinOp::FSub => (350, 120, 0),
            BinOp::FMul => (150, 100, 4),
            BinOp::FDiv => (700, 300, 0),
        },
        Opcode::Un(u) => match u {
            UnOp::Neg => (w, 0, 0),
            UnOp::Not => (w / 2 + 1, 0, 0),
            UnOp::Trunc | UnOp::ZExt | UnOp::SExt => (0, 0, 0),
            UnOp::FNeg => (1, 0, 0),
            UnOp::FpToSi | UnOp::SiToFp => (200, 60, 0),
            UnOp::FpExt | UnOp::FpTrunc => (60, 20, 0),
        },
        Opcode::Cmp(c) => {
            if c.is_float() {
                (120, 0, 0)
            } else {
                (w / 2 + 2, 0, 0)
            }
        }
        Opcode::Select => (w, 0, 0),
        _ => (10_000, 10_000, 100),
    }
}

/// A database-free estimator: hardware latency is the DFG critical path
/// through [`hw_delay_ns`] clocked at the CI interface, plus a fixed
/// invocation overhead; software cost comes from the CPU [`CostModel`].
#[derive(Debug, Clone)]
pub struct DepthEstimator {
    /// Base CPU cost model (software side).
    pub cost: CostModel,
    /// CI clock period in ns (Woolcano clocks CIs with the CPU clock;
    /// 300 MHz ⇒ 3.33 ns).
    pub ci_period_ns: f64,
    /// Fixed cycles to issue a CI and retrieve results over the FCB/APU
    /// interface.
    pub invoke_overhead: u64,
}

impl Default for DepthEstimator {
    fn default() -> Self {
        DepthEstimator {
            cost: CostModel::ppc405(),
            ci_period_ns: 1e9 / 300e6,
            invoke_overhead: 3,
        }
    }
}

impl Estimator for DepthEstimator {
    fn estimate(
        &self,
        f: &Function,
        dfg: &Dfg,
        cand: &Candidate,
        exec_count: u64,
    ) -> CandidateEstimate {
        // Software: straight-line cost of the member instructions.
        let sw_cycles: u64 = cand
            .insts
            .iter()
            .map(|&iid| self.cost.inst_cycles(&f.inst(iid).kind))
            .sum();

        // Hardware: longest delay path through the member nodes.
        let member = cand.mask(dfg);
        let mut arrival = vec![0.0f64; dfg.len()];
        let mut critical: f64 = 0.0;
        let (mut luts, mut ffs, mut dsps) = (0u32, 0u32, 0u32);
        for (i, node) in dfg.nodes.iter().enumerate() {
            if !member[i] {
                continue;
            }
            let input_arrival = node
                .preds
                .iter()
                .filter(|&&p| member[p as usize])
                .map(|&p| arrival[p as usize])
                .fold(0.0, f64::max);
            let delay = hw_delay_ns(node.opcode, node.ty.bits());
            arrival[i] = input_arrival + delay;
            critical = critical.max(arrival[i]);
            let (l, ff, d) = hw_area(node.opcode, node.ty.bits());
            luts += l;
            ffs += ff;
            dsps += d;
        }
        let hw_cycles = (critical / self.ci_period_ns).ceil() as u64 + self.invoke_overhead;

        CandidateEstimate {
            sw_cycles,
            hw_cycles,
            exec_count,
            luts,
            ffs,
            dsps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::{BlockId, CmpOp, FuncId, FunctionBuilder, Operand as Op, Type};
    use jitise_vm::BlockKey;

    fn estimate_of(build: impl FnOnce(&mut FunctionBuilder)) -> CandidateEstimate {
        let mut b = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        build(&mut b);
        let f = b.finish();
        let dfg = Dfg::build(&f, BlockId(0));
        let nodes: Vec<u32> = (0..dfg.len() as u32).collect();
        let cand = Candidate::from_nodes(&f, &dfg, BlockKey::new(FuncId(0), BlockId(0)), nodes);
        DepthEstimator::default().estimate(&f, &dfg, &cand, 1000)
    }

    #[test]
    fn parallel_graph_beats_serial_in_hw() {
        // Serial: 4 dependent adds. Parallel: 4 independent adds + tree.
        let serial = estimate_of(|b| {
            let mut v = b.add(Op::Arg(0), Op::Arg(1));
            for _ in 0..3 {
                v = b.add(v, Op::Arg(1));
            }
            b.ret(v);
        });
        let parallel = estimate_of(|b| {
            let a = b.add(Op::Arg(0), Op::Arg(1));
            let c = b.add(Op::Arg(0), Op::ci32(1));
            let d = b.add(Op::Arg(1), Op::ci32(2));
            let e = b.add(Op::Arg(0), Op::ci32(3));
            let x = b.xor(a, c);
            let y = b.xor(d, e);
            let z = b.or(x, y);
            b.ret(z);
        });
        // Same ballpark software cost, but HW favors the parallel shape.
        assert!(parallel.hw_cycles <= serial.hw_cycles + 1);
        assert!(serial.sw_cycles >= 4);
    }

    #[test]
    fn multiplier_chain_is_profitable() {
        // On the PPC405 a mul is 4 cycles; three dependent muls = 12 sw
        // cycles vs a couple of HW cycles + overhead.
        let e = estimate_of(|b| {
            let x = b.mul(Op::Arg(0), Op::Arg(1));
            let y = b.mul(x, Op::Arg(0));
            let z = b.mul(y, Op::Arg(1));
            b.ret(z);
        });
        assert!(e.is_profitable(), "{e:?}");
        assert!(e.merit() > 0);
        assert!(e.local_speedup() > 1.0);
        assert!(e.dsps >= 3, "multipliers consume DSP slices");
    }

    #[test]
    fn single_add_is_not_profitable() {
        // 1 sw cycle vs invocation overhead: hardware loses.
        let e = estimate_of(|b| {
            let x = b.add(Op::Arg(0), Op::Arg(1));
            b.ret(x);
        });
        assert!(!e.is_profitable());
        assert_eq!(e.saved_per_exec(), 0);
        assert_eq!(e.merit(), 0);
    }

    #[test]
    fn area_accumulates() {
        let e = estimate_of(|b| {
            let x = b.add(Op::Arg(0), Op::Arg(1));
            let c = b.cmp(CmpOp::Slt, x, Op::ci32(10));
            let s = b.select(c, x, Op::Arg(1));
            b.ret(s);
        });
        assert!(e.luts > 0);
        assert_eq!(e.dsps, 0);
    }

    #[test]
    fn delay_tables_monotone_in_width() {
        assert!(hw_delay_ns(Opcode::Bin(BinOp::Add), 64) > hw_delay_ns(Opcode::Bin(BinOp::Add), 8));
        let (l64, ..) = hw_area(Opcode::Bin(BinOp::Add), 64);
        let (l8, ..) = hw_area(Opcode::Bin(BinOp::Add), 8);
        assert!(l64 > l8);
    }

    #[test]
    fn exec_count_scales_merit() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        let x = b.mul(Op::Arg(0), Op::Arg(1));
        let y = b.mul(x, x);
        b.ret(y);
        let f = b.finish();
        let dfg = Dfg::build(&f, BlockId(0));
        let cand =
            Candidate::from_nodes(&f, &dfg, BlockKey::new(FuncId(0), BlockId(0)), vec![0, 1]);
        let est = DepthEstimator::default();
        let e1 = est.estimate(&f, &dfg, &cand, 10);
        let e2 = est.estimate(&f, &dfg, &cand, 1000);
        assert_eq!(e1.saved_per_exec(), e2.saved_per_exec());
        assert_eq!(e2.merit(), e1.merit() * 100);
    }
}
