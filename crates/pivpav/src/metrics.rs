//! IP-core metrics.
//!
//! "PivPav has a database with a wide collection of the pre-synthesized
//! hardware IP cores together with more than 90 different metrics" (§III).
//! [`CoreMetrics`] stores the base measurements of one synthesized core;
//! [`CoreMetrics::metric`] exposes the full derived-metric namespace — the
//! same style of per-bit, per-LUT, ratio, and energy figures PivPav's
//! database reports. [`METRIC_NAMES`] enumerates all of them (> 90).

/// Base measurements of one pre-synthesized IP core.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreMetrics {
    /// Operand/result bit width.
    pub width: u32,
    /// Look-up tables.
    pub luts: u32,
    /// Flip-flops.
    pub ffs: u32,
    /// DSP48 slices.
    pub dsps: u32,
    /// Block RAMs.
    pub brams: u32,
    /// Occupied slices (4 LUT/FF pairs per V4 slice, rounded up).
    pub slices: u32,
    /// Combinational delay in ns (input to output, unregistered).
    pub delay_ns: f64,
    /// Pipeline latency in cycles (0 = combinational).
    pub latency_cycles: u32,
    /// Maximum clock frequency in MHz when registered.
    pub fmax_mhz: f64,
    /// Static power in mW.
    pub static_mw: f64,
    /// Dynamic power in mW at 100 MHz toggle.
    pub dynamic_mw: f64,
    /// Input port count.
    pub inputs: u32,
    /// Output port count.
    pub outputs: u32,
    /// Netlist cell count (post-synthesis).
    pub cells: u32,
    /// Netlist net count.
    pub nets: u32,
    /// Synthesis wall-clock seconds (amortized; the reason the netlist
    /// cache exists).
    pub synth_seconds: f64,
}

/// All metric names [`CoreMetrics::metric`] understands.
pub const METRIC_NAMES: &[&str] = &[
    // 16 base metrics
    "width",
    "luts",
    "ffs",
    "dsps",
    "brams",
    "slices",
    "delay_ns",
    "latency_cycles",
    "fmax_mhz",
    "static_mw",
    "dynamic_mw",
    "inputs",
    "outputs",
    "cells",
    "nets",
    "synth_seconds",
    // per-bit densities (10)
    "luts_per_bit",
    "ffs_per_bit",
    "slices_per_bit",
    "cells_per_bit",
    "nets_per_bit",
    "delay_per_bit",
    "power_per_bit",
    "dsps_per_bit",
    "brams_per_bit",
    "area_per_bit",
    // aggregate area (8)
    "area_units",
    "area_luts_ffs",
    "logic_depth_est",
    "packing_density",
    "ff_lut_ratio",
    "dsp_lut_ratio",
    "net_cell_ratio",
    "io_total",
    // timing (10)
    "period_ns",
    "throughput_mops",
    "delay_us",
    "cycles_at_100mhz",
    "cycles_at_300mhz",
    "delay_slack_300mhz",
    "fmax_margin",
    "latency_ns",
    "pipeline_gain",
    "retiming_headroom",
    // power / energy (10)
    "power_total_mw",
    "energy_per_op_pj",
    "static_fraction",
    "dynamic_fraction",
    "power_per_lut_uw",
    "power_per_slice_uw",
    "leakage_index",
    "energy_delay_product",
    "power_density",
    "thermal_index",
    // interface (8)
    "input_bits",
    "output_bits",
    "io_bits",
    "port_count",
    "avg_port_width",
    "input_output_ratio",
    "bandwidth_gbps",
    "wire_load_index",
    // synthesis / implementation (10)
    "synth_seconds_amortized",
    "cells_per_second",
    "map_effort_index",
    "par_effort_index",
    "congestion_index",
    "fanout_avg",
    "fanout_max_est",
    "lut_input_usage",
    "carry_chain_length",
    "route_demand_index",
    // normalized scores (10)
    "speed_score",
    "area_score",
    "power_score",
    "efficiency_score",
    "merit_score",
    "density_score",
    "balance_score",
    "io_score",
    "timing_score",
    "overall_score",
    // device utilization on V4FX100 (8)
    "util_luts_pct",
    "util_ffs_pct",
    "util_dsps_pct",
    "util_brams_pct",
    "util_slices_pct",
    "fit_index",
    "pr_frames_est",
    "bitstream_bytes_est",
    // comparative ratios (12)
    "hw_sw_speedup_add",
    "hw_sw_speedup_mul",
    "hw_sw_speedup_div",
    "delay_vs_adder",
    "area_vs_adder",
    "power_vs_adder",
    "delay_rank",
    "area_rank",
    "power_rank",
    "pareto_index",
    "cost_performance",
    "value_index",
];

/// Virtex-4 FX100 device totals used by the utilization metrics.
const V4FX100_LUTS: f64 = 84_352.0;
const V4FX100_FFS: f64 = 84_352.0;
const V4FX100_DSPS: f64 = 160.0;
const V4FX100_BRAMS: f64 = 376.0;
const V4FX100_SLICES: f64 = 42_176.0;

impl CoreMetrics {
    /// Looks up a metric by name; `None` for unknown names.
    pub fn metric(&self, name: &str) -> Option<f64> {
        let w = self.width.max(1) as f64;
        let luts = self.luts as f64;
        let ffs = self.ffs as f64;
        let slices = self.slices as f64;
        let cells = self.cells.max(1) as f64;
        let nets = self.nets.max(1) as f64;
        let delay = self.delay_ns.max(1e-3);
        let power = self.static_mw + self.dynamic_mw;
        let io_bits = (self.inputs + self.outputs) as f64 * w;
        let adder_delay = 1.2 + 0.04 * w;
        let adder_area = w;
        Some(match name {
            "width" => w,
            "luts" => luts,
            "ffs" => ffs,
            "dsps" => self.dsps as f64,
            "brams" => self.brams as f64,
            "slices" => slices,
            "delay_ns" => self.delay_ns,
            "latency_cycles" => self.latency_cycles as f64,
            "fmax_mhz" => self.fmax_mhz,
            "static_mw" => self.static_mw,
            "dynamic_mw" => self.dynamic_mw,
            "inputs" => self.inputs as f64,
            "outputs" => self.outputs as f64,
            "cells" => cells,
            "nets" => nets,
            "synth_seconds" => self.synth_seconds,

            "luts_per_bit" => luts / w,
            "ffs_per_bit" => ffs / w,
            "slices_per_bit" => slices / w,
            "cells_per_bit" => cells / w,
            "nets_per_bit" => nets / w,
            "delay_per_bit" => self.delay_ns / w,
            "power_per_bit" => power / w,
            "dsps_per_bit" => self.dsps as f64 / w,
            "brams_per_bit" => self.brams as f64 / w,
            "area_per_bit" => (luts + ffs) / w,

            "area_units" => luts + ffs + 64.0 * self.dsps as f64 + 128.0 * self.brams as f64,
            "area_luts_ffs" => luts + ffs,
            "logic_depth_est" => (delay / 0.6).round(),
            "packing_density" => cells / slices.max(1.0),
            "ff_lut_ratio" => ffs / luts.max(1.0),
            "dsp_lut_ratio" => self.dsps as f64 / luts.max(1.0),
            "net_cell_ratio" => nets / cells,
            "io_total" => (self.inputs + self.outputs) as f64,

            "period_ns" => 1_000.0 / self.fmax_mhz.max(1.0),
            "throughput_mops" => self.fmax_mhz / (self.latency_cycles.max(1) as f64),
            "delay_us" => self.delay_ns / 1_000.0,
            "cycles_at_100mhz" => (self.delay_ns / 10.0).ceil(),
            "cycles_at_300mhz" => (self.delay_ns / (1_000.0 / 300.0)).ceil(),
            "delay_slack_300mhz" => (1_000.0 / 300.0) - self.delay_ns,
            "fmax_margin" => self.fmax_mhz - 300.0,
            "latency_ns" => self.latency_cycles as f64 * 1_000.0 / self.fmax_mhz.max(1.0),
            "pipeline_gain" => delay * self.fmax_mhz / 1_000.0,
            "retiming_headroom" => (delay - 1_000.0 / self.fmax_mhz.max(1.0)).max(0.0),

            "power_total_mw" => power,
            "energy_per_op_pj" => power * delay, // mW * ns = pJ
            "static_fraction" => self.static_mw / power.max(1e-9),
            "dynamic_fraction" => self.dynamic_mw / power.max(1e-9),
            "power_per_lut_uw" => 1_000.0 * power / luts.max(1.0),
            "power_per_slice_uw" => 1_000.0 * power / slices.max(1.0),
            "leakage_index" => self.static_mw / (luts + ffs).max(1.0),
            "energy_delay_product" => power * delay * delay,
            "power_density" => power / slices.max(1.0),
            "thermal_index" => power * slices / V4FX100_SLICES,

            "input_bits" => self.inputs as f64 * w,
            "output_bits" => self.outputs as f64 * w,
            "io_bits" => io_bits,
            "port_count" => (self.inputs + self.outputs) as f64,
            "avg_port_width" => w,
            "input_output_ratio" => self.inputs as f64 / self.outputs.max(1) as f64,
            "bandwidth_gbps" => io_bits * self.fmax_mhz / 1_000.0 / 8.0,
            "wire_load_index" => nets * w / 100.0,

            "synth_seconds_amortized" => self.synth_seconds / 100.0,
            "cells_per_second" => cells / self.synth_seconds.max(1e-3),
            "map_effort_index" => cells / 50.0,
            "par_effort_index" => nets / 40.0,
            "congestion_index" => nets / (slices * 4.0).max(1.0),
            "fanout_avg" => nets / cells,
            "fanout_max_est" => (nets / cells) * 8.0,
            "lut_input_usage" => 4.0 * luts / nets.max(1.0),
            "carry_chain_length" => w,
            "route_demand_index" => nets * delay / 100.0,

            "speed_score" => 100.0 * adder_delay / delay,
            "area_score" => 100.0 * adder_area / (luts + 1.0),
            "power_score" => 100.0 / power.max(0.1),
            "efficiency_score" => 100.0 / (delay * (luts + 1.0)).max(0.1),
            "merit_score" => 100.0 * w / (delay * (luts + 1.0)).max(0.1),
            "density_score" => 100.0 * cells / (nets + 1.0),
            "balance_score" => 100.0 * (1.0 - (ffs - luts).abs() / (ffs + luts + 1.0)),
            "io_score" => 100.0 * w / io_bits.max(1.0),
            "timing_score" => self.fmax_mhz / 4.0,
            "overall_score" => {
                let s = 100.0 * adder_delay / delay;
                let a = 100.0 * adder_area / (luts + 1.0);
                let p = 100.0 / power.max(0.1);
                (s + a + p) / 3.0
            }

            "util_luts_pct" => 100.0 * luts / V4FX100_LUTS,
            "util_ffs_pct" => 100.0 * ffs / V4FX100_FFS,
            "util_dsps_pct" => 100.0 * self.dsps as f64 / V4FX100_DSPS,
            "util_brams_pct" => 100.0 * self.brams as f64 / V4FX100_BRAMS,
            "util_slices_pct" => 100.0 * slices / V4FX100_SLICES,
            "fit_index" => 1.0 / (luts / V4FX100_LUTS).max(1e-9),
            "pr_frames_est" => (slices / 128.0).ceil().max(1.0),
            "bitstream_bytes_est" => (slices / 128.0).ceil().max(1.0) * 1_312.0,

            "hw_sw_speedup_add" => 1.0 * (1_000.0 / 300.0) / delay,
            "hw_sw_speedup_mul" => 4.0 * (1_000.0 / 300.0) / delay,
            "hw_sw_speedup_div" => 35.0 * (1_000.0 / 300.0) / delay,
            "delay_vs_adder" => delay / adder_delay,
            "area_vs_adder" => luts / adder_area.max(1.0),
            "power_vs_adder" => power / 0.5,
            "delay_rank" => (delay * 10.0).round(),
            "area_rank" => (luts / 10.0).round(),
            "power_rank" => (power * 10.0).round(),
            "pareto_index" => 1.0 / (delay * luts.max(1.0) * power.max(0.1)),
            "cost_performance" => w / (luts + 64.0 * self.dsps as f64 + 1.0),
            "value_index" => w * self.fmax_mhz / (luts + 1.0),

            _ => return None,
        })
    }

    /// All metrics as `(name, value)` pairs.
    pub fn all_metrics(&self) -> Vec<(&'static str, f64)> {
        METRIC_NAMES
            .iter()
            .map(|&n| (n, self.metric(n).expect("listed metric must resolve")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CoreMetrics {
        CoreMetrics {
            width: 32,
            luts: 32,
            ffs: 0,
            dsps: 0,
            brams: 0,
            slices: 16,
            delay_ns: 2.5,
            latency_cycles: 0,
            fmax_mhz: 400.0,
            static_mw: 0.2,
            dynamic_mw: 1.0,
            inputs: 2,
            outputs: 1,
            cells: 40,
            nets: 100,
            synth_seconds: 30.0,
        }
    }

    #[test]
    fn more_than_ninety_metrics() {
        assert!(
            METRIC_NAMES.len() > 90,
            "paper claims 90+ metrics; we list {}",
            METRIC_NAMES.len()
        );
        // No duplicates.
        let mut names: Vec<&str> = METRIC_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), METRIC_NAMES.len());
    }

    #[test]
    fn every_listed_metric_resolves_finite() {
        let m = sample();
        for (name, value) in m.all_metrics() {
            assert!(value.is_finite(), "metric {name} is not finite: {value}");
        }
    }

    #[test]
    fn unknown_metric_is_none() {
        assert_eq!(sample().metric("flux_capacitance"), None);
    }

    #[test]
    fn spot_check_derived_values() {
        let m = sample();
        assert_eq!(m.metric("luts_per_bit"), Some(1.0));
        assert_eq!(m.metric("io_total"), Some(3.0));
        assert_eq!(m.metric("power_total_mw"), Some(1.2));
        assert_eq!(m.metric("period_ns"), Some(2.5));
        // energy = 1.2 mW * 2.5 ns = 3 pJ.
        assert!((m.metric("energy_per_op_pj").unwrap() - 3.0).abs() < 1e-9);
        assert!((m.metric("cycles_at_300mhz").unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fractions_sum_to_one() {
        let m = sample();
        let s = m.metric("static_fraction").unwrap() + m.metric("dynamic_fraction").unwrap();
        assert!((s - 1.0).abs() < 1e-9);
    }
}
