//! Pre-synthesized netlists.
//!
//! PivPav "extracts the netlist for the IP cores from its circuit database
//! … used to speedup the synthesis and the translation processes during the
//! FPGA CAD tool flow, that is, PivPav is used as a netlist cache" (§III).
//!
//! A [`Netlist`] is a flat primitive-level circuit: LUT4s, flip-flops,
//! carry cells, DSP48 blocks, and I/O ports connected by numbered nets.
//! The CAD crate consumes these directly — top-level synthesis only has to
//! stitch pre-synthesized component netlists together, exactly the
//! shortcut the paper describes.

use jitise_base::rng::SplitMix64;

/// Primitive cell kinds (Virtex-4 slice inventory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// 4-input look-up table with a 16-bit truth table.
    Lut4 {
        /// Truth-table mask.
        mask: u16,
    },
    /// D flip-flop.
    Ff,
    /// Carry-chain element (MUXCY/XORCY pair).
    Carry,
    /// DSP48 slice.
    Dsp48,
    /// Input buffer (port cell).
    IBuf,
    /// Output buffer (port cell).
    OBuf,
}

impl CellKind {
    /// Number of input pins this primitive offers.
    pub fn max_inputs(self) -> usize {
        match self {
            CellKind::Lut4 { .. } => 4,
            CellKind::Ff => 1,
            CellKind::Carry => 3,
            CellKind::Dsp48 => 3,
            CellKind::IBuf => 0,
            CellKind::OBuf => 1,
        }
    }
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortDir {
    /// Module input.
    In,
    /// Module output.
    Out,
}

/// A module-level port: a named bundle of nets.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Port name (`a`, `b`, `y`, …).
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// One net per bit.
    pub nets: Vec<u32>,
}

/// One primitive instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Primitive kind.
    pub kind: CellKind,
    /// Input nets (≤ `kind.max_inputs()`).
    pub inputs: Vec<u32>,
    /// Output net (single-driver invariant: no two cells share an output).
    pub output: u32,
}

/// A flat primitive netlist.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Netlist {
    /// Module name.
    pub name: String,
    /// Ports.
    pub ports: Vec<Port>,
    /// Cells.
    pub cells: Vec<Cell>,
    /// Total net count; net ids are `0..num_nets`.
    pub num_nets: u32,
}

impl Netlist {
    /// New empty netlist.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Allocates a fresh net.
    pub fn new_net(&mut self) -> u32 {
        let id = self.num_nets;
        self.num_nets += 1;
        id
    }

    /// Adds a cell; returns its output net.
    pub fn add_cell(&mut self, kind: CellKind, inputs: Vec<u32>) -> u32 {
        debug_assert!(inputs.len() <= kind.max_inputs());
        let output = self.new_net();
        self.cells.push(Cell {
            kind,
            inputs,
            output,
        });
        output
    }

    /// Adds an input port of `width` bits; returns its nets.
    pub fn add_input(&mut self, name: impl Into<String>, width: u32) -> Vec<u32> {
        let nets: Vec<u32> = (0..width).map(|_| self.new_net()).collect();
        self.ports.push(Port {
            name: name.into(),
            dir: PortDir::In,
            nets: nets.clone(),
        });
        nets
    }

    /// Declares an output port over existing nets.
    pub fn add_output(&mut self, name: impl Into<String>, nets: Vec<u32>) {
        self.ports.push(Port {
            name: name.into(),
            dir: PortDir::Out,
            nets,
        });
    }

    /// Number of LUT cells.
    pub fn lut_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.kind, CellKind::Lut4 { .. }))
            .count()
    }

    /// Number of FF cells.
    pub fn ff_count(&self) -> usize {
        self.cells.iter().filter(|c| c.kind == CellKind::Ff).count()
    }

    /// Number of DSP cells.
    pub fn dsp_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.kind == CellKind::Dsp48)
            .count()
    }

    /// Validates structural invariants: single driver per net, inputs in
    /// range, pin budgets respected. Returns a description of the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        let mut drivers = vec![0u32; self.num_nets as usize];
        for p in &self.ports {
            if p.dir == PortDir::In {
                for &n in &p.nets {
                    if n >= self.num_nets {
                        return Err(format!("port {} references net {n} out of range", p.name));
                    }
                    drivers[n as usize] += 1;
                }
            }
        }
        for (i, c) in self.cells.iter().enumerate() {
            if c.inputs.len() > c.kind.max_inputs() {
                return Err(format!(
                    "cell {i} ({:?}) has {} inputs, max {}",
                    c.kind,
                    c.inputs.len(),
                    c.kind.max_inputs()
                ));
            }
            for &n in &c.inputs {
                if n >= self.num_nets {
                    return Err(format!("cell {i} input net {n} out of range"));
                }
            }
            if c.output >= self.num_nets {
                return Err(format!("cell {i} output net out of range"));
            }
            drivers[c.output as usize] += 1;
        }
        for (n, &d) in drivers.iter().enumerate() {
            if d > 1 {
                return Err(format!("net {n} has {d} drivers"));
            }
        }
        Ok(())
    }

    /// Merges `other` into `self`, renumbering its nets; returns the net
    /// offset applied. Ports of `other` become internal (the caller wires
    /// them explicitly). Used by the CAD top-level "synthesis".
    pub fn absorb(&mut self, other: &Netlist) -> u32 {
        let offset = self.num_nets;
        self.num_nets += other.num_nets;
        for c in &other.cells {
            self.cells.push(Cell {
                kind: c.kind,
                inputs: c.inputs.iter().map(|&n| n + offset).collect(),
                output: c.output + offset,
            });
        }
        offset
    }
}

/// Generates a plausible pre-synthesized netlist for one operator core.
///
/// The structure follows the operator class: adders get carry chains,
/// multipliers get DSP blocks plus glue LUTs, everything else gets layered
/// LUT networks. Sizes follow `target` cell budgets (from the metrics
/// model), and wiring is deterministic per `seed` so the whole database is
/// reproducible.
pub fn synthesize_core(
    name: &str,
    width: u32,
    target_luts: u32,
    target_ffs: u32,
    target_dsps: u32,
    seed: u64,
) -> Netlist {
    let mut nl = Netlist::new(name);
    let mut rng = SplitMix64::new(seed);
    let a = nl.add_input("a", width);
    let b = nl.add_input("b", width);

    let mut live: Vec<u32> = a.iter().chain(b.iter()).copied().collect();

    // Carry chain for arithmetic flavor (one per output bit, capped).
    let carry_len = width.min(target_luts.max(1));
    let mut carry_prev: Option<u32> = None;
    for i in 0..carry_len as usize {
        let x = live[i % live.len()];
        let y = live[(i + width as usize) % live.len()];
        let mut ins = vec![x, y];
        if let Some(cp) = carry_prev {
            ins.push(cp);
        }
        let out = nl.add_cell(CellKind::Carry, ins);
        carry_prev = Some(out);
        live.push(out);
    }

    // LUT cloud.
    let luts_remaining = target_luts.saturating_sub(carry_len);
    for _ in 0..luts_remaining {
        let k = 2 + rng.next_index(3); // 2..=4 inputs
        let mut ins = Vec::with_capacity(k);
        for _ in 0..k {
            ins.push(live[rng.next_index(live.len())]);
        }
        let mask = rng.next_u64() as u16;
        let out = nl.add_cell(CellKind::Lut4 { mask }, ins);
        live.push(out);
    }

    // DSP blocks.
    for _ in 0..target_dsps {
        let ins = vec![
            live[rng.next_index(live.len())],
            live[rng.next_index(live.len())],
            live[rng.next_index(live.len())],
        ];
        let out = nl.add_cell(CellKind::Dsp48, ins);
        live.push(out);
    }

    // Pipeline registers.
    for _ in 0..target_ffs {
        let src = live[rng.next_index(live.len())];
        let out = nl.add_cell(CellKind::Ff, vec![src]);
        live.push(out);
    }

    // Output port: the most recently produced `width` *cell-driven* nets.
    // Ports must never expose undriven (input) nets — the top-level
    // synthesizer aliases output-port bits onto the instance's output
    // signal, and an undriven bit would merge a driven class with a
    // top-level input. Pad with pass-through LUTs when the core is
    // smaller than its word width.
    let mut driven: Vec<u32> = nl.cells.iter().map(|c| c.output).collect();
    while (driven.len() as u32) < width {
        let src = a[driven.len() % a.len()];
        let out = nl.add_cell(CellKind::Lut4 { mask: 0xAAAA }, vec![src]);
        driven.push(out);
    }
    let out_nets: Vec<u32> = driven.iter().rev().take(width as usize).copied().collect();
    nl.add_output("y", out_nets);
    debug_assert_eq!(nl.validate(), Ok(()));
    nl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_validate_by_hand() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 2);
        let b = nl.add_input("b", 2);
        let x = nl.add_cell(CellKind::Lut4 { mask: 0x6 }, vec![a[0], b[0]]);
        let y = nl.add_cell(CellKind::Lut4 { mask: 0x6 }, vec![a[1], b[1], x]);
        nl.add_output("y", vec![x, y]);
        assert_eq!(nl.validate(), Ok(()));
        assert_eq!(nl.lut_count(), 2);
        assert_eq!(nl.num_nets, 6);
    }

    #[test]
    fn validate_catches_double_driver() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a", 1);
        let x = nl.add_cell(CellKind::Lut4 { mask: 1 }, vec![a[0]]);
        // Manually create a second driver on x.
        nl.cells.push(Cell {
            kind: CellKind::Ff,
            inputs: vec![a[0]],
            output: x,
        });
        assert!(nl.validate().unwrap_err().contains("2 drivers"));
    }

    #[test]
    fn validate_catches_pin_overflow() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a", 5);
        nl.cells.push(Cell {
            kind: CellKind::Lut4 { mask: 0 },
            inputs: a.clone(),
            output: 99,
        });
        assert!(nl.validate().is_err());
    }

    #[test]
    fn synthesized_core_meets_targets() {
        let nl = synthesize_core("add32", 32, 40, 8, 2, 42);
        assert_eq!(nl.validate(), Ok(()));
        assert_eq!(nl.dsp_count(), 2);
        assert_eq!(nl.ff_count(), 8);
        // carry chain (32) + LUT cloud (8) -> lut+carry cells = 40 total.
        let carries = nl
            .cells
            .iter()
            .filter(|c| c.kind == CellKind::Carry)
            .count();
        assert_eq!(carries + nl.lut_count(), 40);
        // Ports: a, b in; y out.
        assert_eq!(nl.ports.len(), 3);
        assert_eq!(nl.ports[2].nets.len(), 32);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = synthesize_core("x", 16, 30, 4, 1, 7);
        let b = synthesize_core("x", 16, 30, 4, 1, 7);
        assert_eq!(a, b);
        let c = synthesize_core("x", 16, 30, 4, 1, 8);
        assert_ne!(a, c, "different seeds give different wiring");
    }

    #[test]
    fn absorb_renumbers() {
        let sub = synthesize_core("sub", 8, 10, 0, 0, 3);
        let mut top = Netlist::new("top");
        let _ = top.add_input("in", 8);
        let off = top.absorb(&sub);
        assert_eq!(off, 8);
        assert_eq!(top.num_nets, 8 + sub.num_nets);
        assert_eq!(top.cells.len(), sub.cells.len());
        // All absorbed nets shifted.
        for c in &top.cells {
            assert!(c.output >= off);
        }
    }
}
