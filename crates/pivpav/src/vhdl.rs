//! The datapath generator (candidate → structural VHDL).
//!
//! "The Generate VHDL task is performed with PivPav's data path generator.
//! This generator iterates over the candidate's data path and translates
//! every instruction to a matching hardware IP core, wires these cores, and
//! generates structural VHDL code for the custom instruction" (§III).
//!
//! The output is a real structural-VHDL text (entity + component
//! declarations + port maps) plus a wiring model the CAD flow consumes.

use crate::db::{CircuitDb, CoreRecord};
use jitise_base::{Error, Result};
use jitise_ir::{Dfg, Function, Operand};
use jitise_ise::Candidate;
use std::fmt::Write as _;
use std::sync::Arc;

/// One instantiated component in the datapath.
#[derive(Debug, Clone)]
pub struct DatapathInstance {
    /// Instance label (`u0`, `u1`, …).
    pub label: String,
    /// The IP core instantiated.
    pub core: Arc<CoreRecord>,
    /// Signal ids driving each input port.
    pub input_signals: Vec<u32>,
    /// Signal id of the output port.
    pub output_signal: u32,
    /// Local candidate node index this instance implements.
    pub node: u32,
}

/// A generated datapath: the wiring model + rendered VHDL.
#[derive(Debug, Clone)]
pub struct VhdlModule {
    /// Entity name.
    pub name: String,
    /// Input signal ids (one per external value input).
    pub inputs: Vec<u32>,
    /// Constant-driver signal ids with their values.
    pub constants: Vec<(u32, u64)>,
    /// Output signal ids (one per candidate output).
    pub outputs: Vec<u32>,
    /// Component instances in topological order.
    pub instances: Vec<DatapathInstance>,
    /// Total signal count.
    pub num_signals: u32,
}

impl VhdlModule {
    /// Renders structural VHDL text.
    pub fn to_vhdl(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "library ieee;");
        let _ = writeln!(s, "use ieee.std_logic_1164.all;");
        let _ = writeln!(s, "use ieee.numeric_std.all;");
        let _ = writeln!(s);
        let _ = writeln!(s, "entity {} is", self.name);
        let _ = writeln!(s, "  port (");
        for (i, _) in self.inputs.iter().enumerate() {
            let _ = writeln!(s, "    in{i}  : in  std_logic_vector;");
        }
        for (i, _) in self.outputs.iter().enumerate() {
            let comma = if i + 1 == self.outputs.len() { "" } else { ";" };
            let _ = writeln!(s, "    out{i} : out std_logic_vector{comma}");
        }
        let _ = writeln!(s, "  );");
        let _ = writeln!(s, "end entity {};", self.name);
        let _ = writeln!(s);
        let _ = writeln!(s, "architecture structural of {} is", self.name);
        // Component declarations (unique cores).
        let mut declared: Vec<&str> = Vec::new();
        for inst in &self.instances {
            if !declared.contains(&inst.core.name.as_str()) {
                declared.push(&inst.core.name);
                let _ = writeln!(s, "  component {}", inst.core.name);
                let _ = writeln!(
                    s,
                    "    port (a, b : in std_logic_vector; y : out std_logic_vector);"
                );
                let _ = writeln!(s, "  end component;");
            }
        }
        for sig in 0..self.num_signals {
            let _ = writeln!(s, "  signal s{sig} : std_logic_vector;");
        }
        for (sig, value) in &self.constants {
            let _ = writeln!(s, "  constant c{sig} : natural := {value};");
        }
        let _ = writeln!(s, "begin");
        for inst in &self.instances {
            let args: Vec<String> = inst
                .input_signals
                .iter()
                .enumerate()
                .map(|(i, sig)| format!("{} => s{sig}", port_name(i)))
                .chain(std::iter::once(format!("y => s{}", inst.output_signal)))
                .collect();
            let _ = writeln!(
                s,
                "  {} : {} port map ({});",
                inst.label,
                inst.core.name,
                args.join(", ")
            );
        }
        let _ = writeln!(s, "end architecture structural;");
        s
    }

    /// Total LUT estimate over all instances (metrics, not netlists).
    pub fn total_luts(&self) -> u32 {
        self.instances.iter().map(|i| i.core.metrics.luts).sum()
    }

    /// Total DSP estimate.
    pub fn total_dsps(&self) -> u32 {
        self.instances.iter().map(|i| i.core.metrics.dsps).sum()
    }

    /// Critical path in ns through the instance graph (combinational).
    pub fn critical_path_ns(&self) -> f64 {
        // arrival[signal] = worst arrival time at that signal.
        let mut arrival = vec![0.0f64; self.num_signals as usize];
        let mut worst: f64 = 0.0;
        for inst in &self.instances {
            let at = inst
                .input_signals
                .iter()
                .map(|&s| arrival[s as usize])
                .fold(0.0, f64::max)
                + inst.core.metrics.delay_ns;
            arrival[inst.output_signal as usize] = at;
            worst = worst.max(at);
        }
        worst
    }
}

fn port_name(i: usize) -> &'static str {
    ["a", "b", "c", "d", "e", "f", "g", "h"][i.min(7)]
}

/// Generates the datapath for a candidate.
///
/// Fails with [`Error::Pivpav`] if a member opcode has no core in the
/// database (cannot happen for candidates produced with the default
/// [`jitise_ise::ForbiddenPolicy`]).
pub fn generate_datapath(
    db: &CircuitDb,
    f: &Function,
    dfg: &Dfg,
    cand: &Candidate,
) -> Result<VhdlModule> {
    let mut num_signals = 0u32;
    let mut fresh = || {
        let s = num_signals;
        num_signals += 1;
        s
    };

    // External inputs and constants get dedicated signals.
    let mut ext_signals: Vec<(ExtKey, u32)> = Vec::new();
    let mut constants: Vec<(u32, u64)> = Vec::new();
    let mut inputs = Vec::new();
    // Output signal per member node.
    let mut node_signal: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();

    let member_set: std::collections::HashSet<u32> = cand.nodes.iter().copied().collect();
    let mut instances = Vec::new();

    for (k, &n) in cand.nodes.iter().enumerate() {
        let node = &dfg.nodes[n as usize];
        let inst = f.inst(node.inst);
        let core = db.lookup(node.opcode, inst.ty).ok_or_else(|| {
            Error::Pivpav(format!(
                "no IP core for {:?} at width {}",
                node.opcode,
                inst.ty.bits()
            ))
        })?;

        let mut input_signals = Vec::new();
        for op in inst.operands() {
            let sig = match op {
                Operand::Const(imm) => {
                    let s = fresh();
                    constants.push((s, imm.bits));
                    s
                }
                Operand::Inst(def) => {
                    // Member-internal edge?
                    let local = dfg.nodes.iter().position(|dn| dn.inst == def);
                    match local {
                        Some(idx) if member_set.contains(&(idx as u32)) => {
                            *node_signal.get(&(idx as u32)).ok_or_else(|| {
                                Error::Pivpav(
                                    "member operand not yet generated (non-topological)".into(),
                                )
                            })?
                        }
                        _ => ext_signal(
                            &mut ext_signals,
                            ExtKey::Inst(def.0),
                            &mut fresh,
                            &mut inputs,
                        ),
                    }
                }
                Operand::Arg(i) => {
                    ext_signal(&mut ext_signals, ExtKey::Arg(i), &mut fresh, &mut inputs)
                }
            };
            input_signals.push(sig);
        }

        let out = fresh();
        node_signal.insert(n, out);
        instances.push(DatapathInstance {
            label: format!("u{k}"),
            core,
            input_signals,
            output_signal: out,
            node: n,
        });
    }

    // Outputs: nodes whose value leaves the candidate.
    let mut outputs = Vec::new();
    for &n in &cand.nodes {
        let node = &dfg.nodes[n as usize];
        let feeds_outside = node.succs.iter().any(|&s| !member_set.contains(&s));
        if node.escapes || feeds_outside {
            outputs.push(node_signal[&n]);
        }
    }

    Ok(VhdlModule {
        name: format!("ci_{:016x}", cand.signature(f, dfg)),
        inputs,
        constants,
        outputs,
        instances,
        num_signals,
    })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExtKey {
    Inst(u32),
    Arg(u32),
}

fn ext_signal(
    table: &mut Vec<(ExtKey, u32)>,
    key: ExtKey,
    fresh: &mut impl FnMut() -> u32,
    inputs: &mut Vec<u32>,
) -> u32 {
    if let Some(&(_, sig)) = table.iter().find(|(k, _)| *k == key) {
        return sig;
    }
    let sig = fresh();
    table.push((key, sig));
    inputs.push(sig);
    sig
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::{BlockId, FuncId, FunctionBuilder, Operand as Op, Type};
    use jitise_ise::ForbiddenPolicy;
    use jitise_vm::BlockKey;

    fn candidate_and_ctx() -> (Function, Dfg, Candidate) {
        let mut b = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        let x = b.add(Op::Arg(0), Op::Arg(1));
        let y = b.mul(x, Op::ci32(3));
        let z = b.xor(x, y);
        b.ret(z);
        let f = b.finish();
        let dfg = Dfg::build(&f, BlockId(0));
        let cands = jitise_ise::maxmiso(
            &f,
            &dfg,
            BlockKey::new(FuncId(0), BlockId(0)),
            &ForbiddenPolicy::default(),
            2,
        )
        .candidates;
        let cand = cands.into_iter().next().expect("one candidate");
        (f, dfg, cand)
    }

    #[test]
    fn generates_wired_datapath() {
        let db = CircuitDb::build();
        let (f, dfg, cand) = candidate_and_ctx();
        let m = generate_datapath(&db, &f, &dfg, &cand).unwrap();
        assert_eq!(m.instances.len(), 3);
        // Two distinct external inputs (arg0, arg1), one constant, one out.
        assert_eq!(m.inputs.len(), 2);
        assert_eq!(m.constants.len(), 1);
        assert_eq!(m.outputs.len(), 1);
        // Critical path must be positive and at least the slowest core.
        assert!(m.critical_path_ns() >= 2.8);
        assert!(m.total_luts() > 0);
    }

    #[test]
    fn vhdl_text_is_structural() {
        let db = CircuitDb::build();
        let (f, dfg, cand) = candidate_and_ctx();
        let m = generate_datapath(&db, &f, &dfg, &cand).unwrap();
        let text = m.to_vhdl();
        assert!(text.contains("entity ci_"));
        assert!(text.contains("architecture structural"));
        assert!(text.contains("component add_i32"));
        assert!(text.contains("component mul_i32"));
        assert!(text.contains("port map"));
        assert!(text.contains("end architecture"));
        // One instance line per member.
        assert_eq!(text.matches("port map").count(), 3);
    }

    #[test]
    fn shared_input_gets_one_signal() {
        // y = (a+a) * a : 'a' must appear as ONE input signal.
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let s = b.add(Op::Arg(0), Op::Arg(0));
        let m = b.mul(s, Op::Arg(0));
        b.ret(m);
        let f = b.finish();
        let dfg = Dfg::build(&f, BlockId(0));
        let cand =
            Candidate::from_nodes(&f, &dfg, BlockKey::new(FuncId(0), BlockId(0)), vec![0, 1]);
        let db = CircuitDb::build();
        let vhdl = generate_datapath(&db, &f, &dfg, &cand).unwrap();
        assert_eq!(vhdl.inputs.len(), 1);
    }

    #[test]
    fn deterministic_entity_names_from_signature() {
        let db = CircuitDb::build();
        let (f, dfg, cand) = candidate_and_ctx();
        let a = generate_datapath(&db, &f, &dfg, &cand).unwrap();
        let b = generate_datapath(&db, &f, &dfg, &cand).unwrap();
        assert_eq!(a.name, b.name);
    }
}
