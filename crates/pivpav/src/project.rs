//! FPGA CAD project creation (the *Netlist Generation* phase, Fig. 2).
//!
//! Tasks and their measured costs from the paper (§V-B, Table III):
//!
//! * **Generate VHDL** — "a constant time operation requiring 0.2 s per
//!   candidate";
//! * **Extract netlists** — per IP core, from the database;
//! * **Create project** — "on average this process took 2.5 s per
//!   candidate, making this the most consuming task of the netlist
//!   generation phase";
//! * total **C2V = 3.22 s**, stdev 0.10.
//!
//! The time model reproduces those constants (with a small deterministic
//! per-candidate jitter so the stdev is non-zero, as in the measurements);
//! the *work* — datapath generation, netlist extraction, project assembly —
//! is performed for real.

use crate::cache::NetlistCache;
use crate::db::CircuitDb;
use crate::vhdl::{generate_datapath, VhdlModule};
use jitise_base::{Result, SimTime};
use jitise_ir::{Dfg, Function};
use jitise_ise::Candidate;
use jitise_telemetry::{names, Telemetry, Value as TelValue};
use std::sync::Arc;

/// FPGA part parameters recorded in the project.
#[derive(Debug, Clone)]
pub struct FpgaPart {
    /// Device name.
    pub device: String,
    /// Speed grade.
    pub speed_grade: i32,
    /// Package.
    pub package: String,
}

impl Default for FpgaPart {
    fn default() -> Self {
        // The paper's device: "We have used a rather large Virtex-4 FX100".
        FpgaPart {
            device: "xc4vfx100".into(),
            speed_grade: -10,
            package: "ff1152".into(),
        }
    }
}

/// An assembled CAD project, ready for the tool flow.
#[derive(Debug, Clone)]
pub struct CadProject {
    /// Project name (derived from the candidate signature).
    pub name: String,
    /// Target part.
    pub part: FpgaPart,
    /// The top-level structural VHDL.
    pub vhdl: VhdlModule,
    /// Extracted component netlists, in instance order (shared with the
    /// database).
    pub netlists: Vec<Arc<crate::netlist::Netlist>>,
    /// Rendered VHDL text (what the syntax check parses).
    pub vhdl_text: String,
}

/// Timing breakdown of the Netlist Generation phase for one candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct C2vTiming {
    /// Generate-VHDL task time (paper: 0.2 s constant).
    pub generate_vhdl: SimTime,
    /// Netlist-extraction task time.
    pub extract_netlists: SimTime,
    /// Project-creation task time (paper: 2.5 s, the dominant task).
    pub create_project: SimTime,
}

impl C2vTiming {
    /// Total C2V time (paper Table III: mean 3.22 s, stdev 0.10).
    pub fn total(&self) -> SimTime {
        self.generate_vhdl + self.extract_netlists + self.create_project
    }
}

/// Calibrated constants (seconds).
const GEN_VHDL_S: f64 = 0.20;
const CREATE_PROJECT_S: f64 = 2.50;
/// Extraction base + per-core cost; lands the C2V mean at 3.22 s for the
/// typical ~7-instruction candidate.
const EXTRACT_BASE_S: f64 = 0.45;
const EXTRACT_PER_CORE_S: f64 = 0.01;

/// Creates the CAD project for one candidate and reports the phase timing.
///
/// Netlists are fetched through the [`NetlistCache`]; on a warm cache the
/// extraction cost drops (the paper's motivation for using PivPav as a
/// netlist cache).
pub fn create_project(
    db: &CircuitDb,
    cache: &NetlistCache,
    f: &Function,
    dfg: &Dfg,
    cand: &Candidate,
) -> Result<(CadProject, C2vTiming)> {
    create_project_with(db, cache, f, dfg, cand, &Telemetry::disabled())
}

/// [`create_project`] with observability: records a `pivpav.c2v` span
/// whose simulated duration is exactly [`C2vTiming::total`], plus
/// netlist-cache hit/miss counters.
pub fn create_project_with(
    db: &CircuitDb,
    cache: &NetlistCache,
    f: &Function,
    dfg: &Dfg,
    cand: &Candidate,
    telemetry: &Telemetry,
) -> Result<(CadProject, C2vTiming)> {
    let mut span = telemetry.span("pivpav.c2v");
    // 1. Generate VHDL (real work + constant-time model).
    let vhdl = generate_datapath(db, f, dfg, cand)?;
    let generate_vhdl = SimTime::from_secs_f64(GEN_VHDL_S);

    // 2. Extract netlists (through the cache).
    let mut netlists = Vec::with_capacity(vhdl.instances.len());
    let mut misses = 0usize;
    for inst in &vhdl.instances {
        let (nl, was_miss) = cache.fetch(db, &inst.core);
        if was_miss {
            misses += 1;
        }
        netlists.push(nl);
    }
    let extract_netlists = SimTime::from_secs_f64(
        EXTRACT_BASE_S * (misses.max(1) as f64 / vhdl.instances.len().max(1) as f64)
            + EXTRACT_PER_CORE_S * vhdl.instances.len() as f64,
    );

    // 3. Create the project (constant + deterministic jitter ±0.1 s from
    // the candidate signature, reproducing the measured stdev).
    let sig = cand.signature(f, dfg);
    let jitter = ((sig % 2001) as f64 - 1000.0) / 1000.0 * 0.10;
    let create_project = SimTime::from_secs_f64(CREATE_PROJECT_S + jitter);

    let vhdl_text = vhdl.to_vhdl();
    let hits = vhdl.instances.len() - misses;
    telemetry.add(names::NETLIST_CACHE_HITS, hits as u64);
    telemetry.add(names::NETLIST_CACHE_MISSES, misses as u64);
    let project = CadProject {
        name: vhdl.name.clone(),
        part: FpgaPart::default(),
        vhdl,
        netlists,
        vhdl_text,
    };
    let timing = C2vTiming {
        generate_vhdl,
        extract_netlists,
        create_project,
    };
    span.set_sim_time(timing.total());
    span.field("candidate", TelValue::U64(sig));
    span.field("netlist_misses", TelValue::U64(misses as u64));
    Ok((project, timing))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::{BlockId, FuncId, FunctionBuilder, Operand as Op, Type};
    use jitise_ise::ForbiddenPolicy;
    use jitise_vm::BlockKey;

    fn mk_candidate() -> (Function, Dfg, Candidate) {
        let mut b = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        let x = b.add(Op::Arg(0), Op::Arg(1));
        let y = b.mul(x, Op::ci32(3));
        let z = b.sub(y, Op::Arg(0));
        let w = b.xor(z, x);
        b.ret(w);
        let f = b.finish();
        let dfg = Dfg::build(&f, BlockId(0));
        let c = jitise_ise::maxmiso(
            &f,
            &dfg,
            BlockKey::new(FuncId(0), BlockId(0)),
            &ForbiddenPolicy::default(),
            2,
        )
        .candidates
        .remove(0);
        (f, dfg, c)
    }

    #[test]
    fn project_assembles_all_pieces() {
        let db = CircuitDb::build();
        let cache = NetlistCache::new();
        let (f, dfg, cand) = mk_candidate();
        let (proj, timing) = create_project(&db, &cache, &f, &dfg, &cand).unwrap();
        assert_eq!(proj.netlists.len(), proj.vhdl.instances.len());
        assert_eq!(proj.part.device, "xc4vfx100");
        assert!(proj.vhdl_text.contains("entity"));
        // C2V total near the paper's 3.22 s constant.
        let total = timing.total().as_secs_f64();
        assert!(
            (2.9..3.6).contains(&total),
            "C2V total {total} out of calibrated band"
        );
        assert_eq!(timing.generate_vhdl, SimTime::from_millis(200));
    }

    #[test]
    fn timing_is_deterministic_per_candidate() {
        let db = CircuitDb::build();
        let cache = NetlistCache::new();
        let (f, dfg, cand) = mk_candidate();
        let (_, t1) = create_project(&db, &cache, &f, &dfg, &cand).unwrap();
        // Second run: warm cache shrinks extraction but the other parts are
        // identical.
        let (_, t2) = create_project(&db, &cache, &f, &dfg, &cand).unwrap();
        assert_eq!(t1.generate_vhdl, t2.generate_vhdl);
        assert_eq!(t1.create_project, t2.create_project);
        assert!(t2.extract_netlists <= t1.extract_netlists);
    }

    #[test]
    fn jitter_varies_across_candidates() {
        let db = CircuitDb::build();
        let cache = NetlistCache::new();
        // Two different candidates -> different signatures -> different
        // project-creation jitter (almost surely).
        let (f1, dfg1, c1) = mk_candidate();
        let mut b = FunctionBuilder::new("g", vec![Type::I32], Type::I32);
        let x = b.mul(Op::Arg(0), Op::ci32(7));
        let y = b.add(x, Op::ci32(1));
        b.ret(y);
        let f2 = b.finish();
        let dfg2 = Dfg::build(&f2, BlockId(0));
        let c2 =
            Candidate::from_nodes(&f2, &dfg2, BlockKey::new(FuncId(0), BlockId(0)), vec![0, 1]);
        let (_, t1) = create_project(&db, &cache, &f1, &dfg1, &c1).unwrap();
        let (_, t2) = create_project(&db, &cache, &f2, &dfg2, &c2).unwrap();
        assert_ne!(t1.create_project, t2.create_project);
    }
}
