//! # jitise-pivpav — circuit library, datapath generator, and estimator
//!
//! Reimplementation of the role PivPav plays in the paper's tool flow
//! (Fig. 2, *Netlist Generation* phase, plus the estimation step of
//! *Candidate Search*):
//!
//! * [`db::CircuitDb`] — the database of pre-synthesized IP cores, one per
//!   operator × bit width, each with a netlist and 90+ metrics
//!   ([`metrics::METRIC_NAMES`]).
//! * [`vhdl`] — the datapath generator: candidate DFG → wired component
//!   instances → structural VHDL text.
//! * [`netlist`] — the primitive-level netlist model (LUT4/FF/CARRY/DSP48)
//!   shared with the CAD flow, including the deterministic core
//!   synthesizer.
//! * [`cache::NetlistCache`] — "PivPav is used as a netlist cache" (§III).
//! * [`project`] — FPGA CAD project assembly with the calibrated C2V
//!   timing model (Table III: 3.22 s ± 0.10).
//! * [`estimator::PivPavEstimator`] — the database-backed implementation
//!   of [`jitise_ise::Estimator`].

pub mod cache;
pub mod db;
pub mod estimator;
pub mod metrics;
pub mod netlist;
pub mod project;
pub mod vhdl;

pub use cache::NetlistCache;
pub use db::{CircuitDb, CoreKey, CoreRecord};
pub use estimator::PivPavEstimator;
pub use metrics::{CoreMetrics, METRIC_NAMES};
pub use netlist::{Cell, CellKind, Netlist, Port, PortDir};
pub use project::{create_project, create_project_with, C2vTiming, CadProject, FpgaPart};
pub use vhdl::{generate_datapath, VhdlModule};
