//! Database-backed candidate estimator.
//!
//! Implements [`jitise_ise::Estimator`] using the circuit database's
//! measured per-core delays and areas instead of the closed-form formulas
//! of the default estimator. This is the estimator the paper's tool flow
//! uses: "The estimation data are computed by our PivPav tool" (§III).

use crate::db::CircuitDb;
use jitise_ir::{Dfg, Function};
use jitise_ise::{Candidate, CandidateEstimate, Estimator};
use jitise_vm::CostModel;

/// PivPav estimator: software side from the CPU cost model, hardware side
/// from database core metrics along the candidate's critical path.
#[derive(Debug)]
pub struct PivPavEstimator {
    /// The circuit database.
    pub db: CircuitDb,
    /// Base CPU model.
    pub cost: CostModel,
    /// CI clock period (ns).
    pub ci_period_ns: f64,
    /// FCB/APU invocation overhead in cycles.
    pub invoke_overhead: u64,
}

impl PivPavEstimator {
    /// Estimator with the default database and Woolcano parameters.
    pub fn new() -> Self {
        PivPavEstimator {
            db: CircuitDb::build(),
            cost: CostModel::ppc405(),
            ci_period_ns: 1e9 / 300e6,
            invoke_overhead: 3,
        }
    }
}

impl Default for PivPavEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl Estimator for PivPavEstimator {
    fn estimate(
        &self,
        f: &Function,
        dfg: &Dfg,
        cand: &Candidate,
        exec_count: u64,
    ) -> CandidateEstimate {
        let sw_cycles: u64 = cand
            .insts
            .iter()
            .map(|&iid| self.cost.inst_cycles(&f.inst(iid).kind))
            .sum();

        let member = cand.mask(dfg);
        let mut arrival = vec![0.0f64; dfg.len()];
        let mut critical: f64 = 0.0;
        let (mut luts, mut ffs, mut dsps) = (0u32, 0u32, 0u32);
        for (i, node) in dfg.nodes.iter().enumerate() {
            if !member[i] {
                continue;
            }
            let input_arrival = node
                .preds
                .iter()
                .filter(|&&p| member[p as usize])
                .map(|&p| arrival[p as usize])
                .fold(0.0, f64::max);
            // Database lookup; forbidden opcodes never appear in candidates
            // so a miss is a bug worth surfacing loudly in debug builds.
            let (delay, l, ff, d) = match self.db.lookup(node.opcode, node.ty) {
                Some(core) => (
                    core.metrics.delay_ns,
                    core.metrics.luts,
                    core.metrics.ffs,
                    core.metrics.dsps,
                ),
                None => {
                    debug_assert!(false, "no core for {:?}", node.opcode);
                    (1_000.0, 10_000, 10_000, 100)
                }
            };
            arrival[i] = input_arrival + delay;
            critical = critical.max(arrival[i]);
            luts += l;
            ffs += ff;
            dsps += d;
        }
        let hw_cycles = (critical / self.ci_period_ns).ceil() as u64 + self.invoke_overhead;

        CandidateEstimate {
            sw_cycles,
            hw_cycles,
            exec_count,
            luts,
            ffs,
            dsps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::{BlockId, FuncId, FunctionBuilder, Operand as Op, Type};
    use jitise_ise::{DepthEstimator, ForbiddenPolicy};
    use jitise_vm::BlockKey;

    fn mul_chain() -> (Function, Dfg, Candidate) {
        let mut b = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        let x = b.mul(Op::Arg(0), Op::Arg(1));
        let y = b.mul(x, Op::Arg(0));
        let z = b.add(y, Op::ci32(5));
        b.ret(z);
        let f = b.finish();
        let dfg = Dfg::build(&f, BlockId(0));
        let c = jitise_ise::maxmiso(
            &f,
            &dfg,
            BlockKey::new(FuncId(0), BlockId(0)),
            &ForbiddenPolicy::default(),
            2,
        )
        .candidates
        .remove(0);
        (f, dfg, c)
    }

    #[test]
    fn estimates_profitable_mul_chain() {
        let est = PivPavEstimator::new();
        let (f, dfg, c) = mul_chain();
        let e = est.estimate(&f, &dfg, &c, 100);
        assert!(e.is_profitable(), "{e:?}");
        assert!(e.dsps >= 2);
        assert_eq!(e.exec_count, 100);
    }

    #[test]
    fn agrees_in_shape_with_depth_estimator() {
        // Same candidate: the two estimators may differ in constants but
        // must agree on profitability ordering for mul chains vs single
        // adds.
        let (f, dfg, c) = mul_chain();
        let db_est = PivPavEstimator::new().estimate(&f, &dfg, &c, 10);
        let formula_est = DepthEstimator::default().estimate(&f, &dfg, &c, 10);
        assert_eq!(db_est.sw_cycles, formula_est.sw_cycles);
        assert!(db_est.is_profitable() == formula_est.is_profitable());
    }

    #[test]
    fn hw_latency_respects_critical_path() {
        // A wide-but-shallow candidate must have lower hw latency than a
        // deep chain of the same operators.
        let est = PivPavEstimator::new();

        let mut b = FunctionBuilder::new("deep", vec![Type::I32], Type::I32);
        let mut v = b.mul(Op::Arg(0), Op::Arg(0));
        for _ in 0..3 {
            v = b.mul(v, Op::Arg(0));
        }
        b.ret(v);
        let fd = b.finish();
        let dfgd = Dfg::build(&fd, BlockId(0));
        let cd = Candidate::from_nodes(
            &fd,
            &dfgd,
            BlockKey::new(FuncId(0), BlockId(0)),
            (0..4).collect(),
        );

        let mut b = FunctionBuilder::new("wide", vec![Type::I32, Type::I32], Type::I32);
        let a = b.mul(Op::Arg(0), Op::Arg(1));
        let c = b.mul(Op::Arg(0), Op::Arg(0));
        let d = b.mul(Op::Arg(1), Op::Arg(1));
        let e = b.add(a, c);
        let g = b.add(e, d);
        b.ret(g);
        let fw = b.finish();
        let dfgw = Dfg::build(&fw, BlockId(0));
        let cw = Candidate::from_nodes(
            &fw,
            &dfgw,
            BlockKey::new(FuncId(0), BlockId(0)),
            (0..5).collect(),
        );

        let deep = est.estimate(&fd, &dfgd, &cd, 1);
        let wide = est.estimate(&fw, &dfgw, &cw, 1);
        assert!(
            wide.hw_cycles < deep.hw_cycles,
            "wide {} vs deep {}",
            wide.hw_cycles,
            deep.hw_cycles
        );
    }
}
