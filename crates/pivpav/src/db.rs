//! The circuit database.
//!
//! PivPav's database holds, per operator × bit width, a pre-synthesized IP
//! core: its netlist and its 90+ metrics. Ours is generated
//! programmatically from Virtex-4-class scaling formulas (see DESIGN.md for
//! the substitution note) and is deterministic, so every run of the
//! evaluation sees the identical database.

use crate::metrics::CoreMetrics;
use crate::netlist::{synthesize_core, Netlist};
use jitise_base::hash::SigHasher;
use jitise_ir::{Opcode, Type};
use jitise_ise::estimate::{hw_area, hw_delay_ns};
use std::collections::HashMap;
use std::sync::Arc;

/// Database key: operator class × width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreKey {
    /// The operator.
    pub op: Opcode,
    /// Bit width.
    pub bits: u32,
}

/// One database record.
#[derive(Debug, Clone)]
pub struct CoreRecord {
    /// Human-readable core name (`add_i32`, `fmul_f64`, …).
    pub name: String,
    /// Measured metrics.
    pub metrics: CoreMetrics,
    /// Pre-synthesized netlist (shared; the netlist cache hands out clones
    /// of the `Arc`, not of the netlist).
    pub netlist: Arc<Netlist>,
}

/// The PivPav circuit database.
#[derive(Debug, Clone)]
pub struct CircuitDb {
    records: HashMap<CoreKey, Arc<CoreRecord>>,
}

/// Operator inventory the database covers (all datapath-feasible opcodes).
fn feasible_opcodes() -> Vec<Opcode> {
    use jitise_ir::{BinOp, CmpOp, UnOp};
    let mut ops: Vec<Opcode> = Vec::new();
    for b in [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::SDiv,
        BinOp::UDiv,
        BinOp::SRem,
        BinOp::URem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::LShr,
        BinOp::AShr,
        BinOp::FAdd,
        BinOp::FSub,
        BinOp::FMul,
        BinOp::FDiv,
    ] {
        ops.push(Opcode::Bin(b));
    }
    for u in [
        UnOp::Neg,
        UnOp::Not,
        UnOp::FNeg,
        UnOp::Trunc,
        UnOp::ZExt,
        UnOp::SExt,
        UnOp::FpToSi,
        UnOp::SiToFp,
        UnOp::FpExt,
        UnOp::FpTrunc,
    ] {
        ops.push(Opcode::Un(u));
    }
    for c in [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Slt,
        CmpOp::Sle,
        CmpOp::Sgt,
        CmpOp::Sge,
        CmpOp::Ult,
        CmpOp::Ule,
        CmpOp::Ugt,
        CmpOp::Uge,
        CmpOp::FOeq,
        CmpOp::FOne,
        CmpOp::FOlt,
        CmpOp::FOle,
        CmpOp::FOgt,
        CmpOp::FOge,
    ] {
        ops.push(Opcode::Cmp(c));
    }
    ops.push(Opcode::Select);
    ops
}

fn widths_for(op: Opcode) -> &'static [u32] {
    let is_float = match op {
        Opcode::Bin(b) => b.is_float(),
        Opcode::Cmp(c) => c.is_float(),
        Opcode::Un(u) => matches!(
            u,
            jitise_ir::UnOp::FNeg | jitise_ir::UnOp::FpExt | jitise_ir::UnOp::FpTrunc
        ),
        _ => false,
    };
    if is_float {
        &[32, 64]
    } else {
        &[1, 8, 16, 32, 64]
    }
}

fn op_tag(op: Opcode) -> String {
    match op {
        Opcode::Bin(b) => b.mnemonic().to_string(),
        Opcode::Un(u) => u.mnemonic().to_string(),
        Opcode::Cmp(c) => c.mnemonic().replace('.', "_"),
        Opcode::Select => "select".to_string(),
        other => format!("{other:?}").to_lowercase(),
    }
}

impl CircuitDb {
    /// Builds the full database (every feasible opcode × width).
    pub fn build() -> CircuitDb {
        let mut records = HashMap::new();
        for op in feasible_opcodes() {
            for &bits in widths_for(op) {
                let key = CoreKey { op, bits };
                records.insert(key, Arc::new(Self::make_record(key)));
            }
        }
        CircuitDb { records }
    }

    fn make_record(key: CoreKey) -> CoreRecord {
        let CoreKey { op, bits } = key;
        let name = format!(
            "{}_{}{}",
            op_tag(op),
            if is_float_op(op) { "f" } else { "i" },
            bits
        );
        let (luts, ffs, dsps) = hw_area(op, bits);
        let delay_ns = hw_delay_ns(op, bits);
        // Registered fmax: limited by the deepest LUT level (~0.6 ns/level
        // + 1 ns routing), bounded by the V4 fabric ceiling of 500 MHz.
        let fmax_mhz = (1_000.0 / (delay_ns / 3.0 + 1.0)).min(500.0);
        let latency_cycles = if delay_ns > 8.0 {
            (delay_ns / 4.0).ceil() as u32
        } else {
            0
        };
        let slices = luts.max(ffs).div_ceil(2);
        // Deterministic per-core seed for netlist wiring.
        let mut h = SigHasher::new();
        h.write_str(&name);
        let seed = h.finish();
        // Cap netlist size so place & route on the scaled-down fabric stays
        // fast; metrics keep the true counts.
        let nl_luts = luts.min(64);
        let nl_ffs = ffs.min(16);
        let nl_dsps = dsps.min(4);
        let netlist = Arc::new(synthesize_core(
            &name,
            bits.min(64),
            nl_luts,
            nl_ffs,
            nl_dsps,
            seed,
        ));
        let cells = netlist.cells.len() as u32;
        let nets = netlist.num_nets;
        let metrics = CoreMetrics {
            width: bits,
            luts,
            ffs,
            dsps,
            brams: 0,
            slices,
            delay_ns,
            latency_cycles,
            fmax_mhz,
            static_mw: 0.05 + 0.002 * (luts + ffs) as f64,
            dynamic_mw: 0.2 + 0.01 * luts as f64 + 0.5 * dsps as f64,
            inputs: 2,
            outputs: 1,
            cells,
            nets,
            synth_seconds: 20.0 + 0.05 * luts as f64,
        };
        CoreRecord {
            name,
            metrics,
            netlist,
        }
    }

    /// Looks up a core; widths are rounded up to the next stocked width.
    pub fn lookup(&self, op: Opcode, ty: Type) -> Option<Arc<CoreRecord>> {
        let stocked = widths_for(op);
        let bits = ty.bits().max(1);
        let width = stocked
            .iter()
            .copied()
            .find(|&w| w >= bits)
            .unwrap_or(*stocked.last()?);
        self.records.get(&CoreKey { op, bits: width }).cloned()
    }

    /// Number of records in the database.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the database is empty (never, after `build`).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, sorted by name (for listing tools).
    pub fn all(&self) -> Vec<Arc<CoreRecord>> {
        let mut v: Vec<_> = self.records.values().cloned().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }
}

fn is_float_op(op: Opcode) -> bool {
    match op {
        Opcode::Bin(b) => b.is_float(),
        Opcode::Cmp(c) => c.is_float(),
        Opcode::Un(u) => matches!(
            u,
            jitise_ir::UnOp::FNeg | jitise_ir::UnOp::FpExt | jitise_ir::UnOp::FpTrunc
        ),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::BinOp;

    #[test]
    fn database_is_well_stocked() {
        let db = CircuitDb::build();
        // 13 int bins x5 + 4 float bins x2 + (6 int un x5 + 4 float-ish un
        // x2-5 ...) — just assert a healthy lower bound and full lookups.
        assert!(db.len() > 150, "db has {} records", db.len());
        assert!(!db.is_empty());
    }

    #[test]
    fn lookup_exact_and_rounded() {
        let db = CircuitDb::build();
        let add32 = db.lookup(Opcode::Bin(BinOp::Add), Type::I32).unwrap();
        assert_eq!(add32.metrics.width, 32);
        assert_eq!(add32.name, "add_i32");
        // i1 comparisons round to the 1-bit core; pointer (32-bit) works.
        let ptr_add = db.lookup(Opcode::Bin(BinOp::Add), Type::Ptr).unwrap();
        assert_eq!(ptr_add.metrics.width, 32);
        // Float ops stocked at 32/64 only.
        let fmul = db.lookup(Opcode::Bin(BinOp::FMul), Type::F64).unwrap();
        assert_eq!(fmul.metrics.width, 64);
    }

    #[test]
    fn netlists_valid_and_cached_by_arc() {
        let db = CircuitDb::build();
        for rec in db.all().iter().take(25) {
            assert_eq!(rec.netlist.validate(), Ok(()), "core {}", rec.name);
        }
        let a = db.lookup(Opcode::Bin(BinOp::Mul), Type::I32).unwrap();
        let b = db.lookup(Opcode::Bin(BinOp::Mul), Type::I32).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "lookups share the same record");
    }

    #[test]
    fn build_is_deterministic() {
        let a = CircuitDb::build();
        let b = CircuitDb::build();
        let (ra, rb) = (
            a.lookup(Opcode::Bin(BinOp::Add), Type::I32).unwrap(),
            b.lookup(Opcode::Bin(BinOp::Add), Type::I32).unwrap(),
        );
        assert_eq!(*ra.netlist, *rb.netlist);
        assert_eq!(ra.metrics, rb.metrics);
    }

    #[test]
    fn divider_bigger_and_slower_than_adder() {
        let db = CircuitDb::build();
        let add = db.lookup(Opcode::Bin(BinOp::Add), Type::I32).unwrap();
        let div = db.lookup(Opcode::Bin(BinOp::SDiv), Type::I32).unwrap();
        assert!(div.metrics.delay_ns > add.metrics.delay_ns);
        assert!(div.metrics.luts > add.metrics.luts);
        assert!(div.metrics.synth_seconds > add.metrics.synth_seconds);
    }

    #[test]
    fn metrics_resolve_for_every_core() {
        let db = CircuitDb::build();
        for rec in db.all() {
            for (name, v) in rec.metrics.all_metrics() {
                assert!(v.is_finite(), "{}: metric {name} not finite", rec.name);
            }
        }
    }
}
