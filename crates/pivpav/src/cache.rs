//! The netlist cache.
//!
//! "PivPav extracts the netlist for the IP cores from its circuit database
//! … that is, PivPav is used as a netlist cache" (§III). Extraction of a
//! core's netlist is expensive the first time (database I/O in the real
//! tool); afterwards the `Arc` is shared. The cache is thread-safe because
//! the JIT runtime implements multiple concurrent specialization workers
//! (§VI-B suggests running "the FPGA tool concurrently").

use crate::db::{CircuitDb, CoreRecord};
use crate::netlist::Netlist;
use jitise_base::sync::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Thread-safe cache of extracted core netlists keyed by core name.
#[derive(Debug, Default)]
pub struct NetlistCache {
    map: RwLock<HashMap<String, Arc<Netlist>>>,
    hits: RwLock<u64>,
    misses: RwLock<u64>,
}

impl NetlistCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetches the netlist of `core`, loading it from the database on a
    /// miss. Returns the netlist and whether this was a miss.
    pub fn fetch(&self, _db: &CircuitDb, core: &Arc<CoreRecord>) -> (Arc<Netlist>, bool) {
        if let Some(nl) = self.map.read().get(&core.name) {
            *self.hits.write() += 1;
            return (nl.clone(), false);
        }
        let mut map = self.map.write();
        // Double-checked: another thread may have inserted meanwhile.
        if let Some(nl) = map.get(&core.name) {
            *self.hits.write() += 1;
            return (nl.clone(), false);
        }
        let nl = core.netlist.clone();
        map.insert(core.name.clone(), nl.clone());
        *self.misses.write() += 1;
        (nl, true)
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (*self.hits.read(), *self.misses.read())
    }

    /// Number of cached netlists.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Drops all cached entries (for experiment isolation).
    pub fn clear(&self) {
        self.map.write().clear();
        *self.hits.write() = 0;
        *self.misses.write() = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::{BinOp, Opcode, Type};

    #[test]
    fn miss_then_hit() {
        let db = CircuitDb::build();
        let cache = NetlistCache::new();
        let core = db.lookup(Opcode::Bin(BinOp::Add), Type::I32).unwrap();
        let (nl1, miss1) = cache.fetch(&db, &core);
        assert!(miss1);
        let (nl2, miss2) = cache.fetch(&db, &core);
        assert!(!miss2);
        assert!(Arc::ptr_eq(&nl1, &nl2));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_cores_distinct_entries() {
        let db = CircuitDb::build();
        let cache = NetlistCache::new();
        let add = db.lookup(Opcode::Bin(BinOp::Add), Type::I32).unwrap();
        let mul = db.lookup(Opcode::Bin(BinOp::Mul), Type::I32).unwrap();
        cache.fetch(&db, &add);
        cache.fetch(&db, &mul);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_resets() {
        let db = CircuitDb::build();
        let cache = NetlistCache::new();
        let core = db.lookup(Opcode::Bin(BinOp::Xor), Type::I16).unwrap();
        cache.fetch(&db, &core);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), (0, 0));
        let (_, miss) = cache.fetch(&db, &core);
        assert!(miss);
    }

    #[test]
    fn concurrent_fetches_are_safe() {
        let db = Arc::new(CircuitDb::build());
        let cache = Arc::new(NetlistCache::new());
        let core = db.lookup(Opcode::Bin(BinOp::Mul), Type::I64).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let db = db.clone();
                let cache = cache.clone();
                let core = core.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let (nl, _) = cache.fetch(&db, &core);
                        assert_eq!(nl.validate(), Ok(()));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 800);
        assert_eq!(misses, 1, "exactly one thread loads the core");
    }
}
