//! Property tests for the regression gate: for *any* generated artifact,
//! `check` accepts an identical rerun, and rejects any run that degrades
//! an exact metric or inflates a host minimum beyond the policy band.

use jitise_bench::schema::{check, BenchArtifact, CheckPolicy, MetricValue};
use proptest::prelude::*;

/// Builds an artifact from generated raw material: a list of
/// (exact value, host min ns) pairs, one metric of each class per pair.
fn artifact(seed: u64, pairs: &[(u64, u32)]) -> BenchArtifact {
    let mut a = BenchArtifact::new("prop", seed, true);
    a.config("pairs", pairs.len());
    for (i, &(exact, host_min)) in pairs.iter().enumerate() {
        a.exact(&format!("exact.{i}"), "units", exact);
        a.push(
            &format!("host.{i}"),
            "ns",
            MetricValue::Host {
                reps: 3,
                min_ns: f64::from(host_min),
                median_ns: f64::from(host_min) * 1.5,
                p90_ns: f64::from(host_min) * 2.0,
            },
        );
    }
    a
}

proptest! {
    #[test]
    fn identical_runs_always_pass(
        seed in any::<u64>(),
        pairs in prop::collection::vec((any::<u64>(), any::<u32>()), 1..8),
    ) {
        let a = artifact(seed, &pairs);
        let report = check(&a, &a.clone(), &CheckPolicy::default());
        prop_assert!(report.ok(), "regressions: {:?}", report.regressions);
        prop_assert!(report.notes.is_empty(), "notes: {:?}", report.notes);
    }

    #[test]
    fn identical_runs_roundtrip_and_still_pass(
        seed in any::<u64>(),
        pairs in prop::collection::vec((any::<u64>(), any::<u32>()), 1..8),
    ) {
        // The gate must be stable through the on-disk representation:
        // write the baseline, parse it back, gate the original against it.
        let a = artifact(seed, &pairs);
        let parsed = BenchArtifact::parse(&a.to_pretty_string()).unwrap();
        prop_assert_eq!(&parsed, &a);
        prop_assert!(check(&parsed, &a, &CheckPolicy::default()).ok());
    }

    #[test]
    fn degraded_exact_metrics_always_fail(
        seed in any::<u64>(),
        pairs in prop::collection::vec((any::<u64>(), any::<u32>()), 1..8),
        which in any::<u64>(),
        delta in 1u64..1_000_000,
    ) {
        let base = artifact(seed, &pairs);
        let mut cur = base.clone();
        let i = (which % pairs.len() as u64) as usize;
        let name = format!("exact.{i}");
        let m = cur.metrics.iter_mut().find(|m| m.name == name).unwrap();
        let MetricValue::Exact(v) = &mut m.value else { unreachable!() };
        *v = v.wrapping_add(delta); // any drift at all, in any direction
        let report = check(&base, &cur, &CheckPolicy::default());
        prop_assert!(!report.ok());
        prop_assert!(report.regressions.iter().any(|r| r.contains(&name)));
    }

    #[test]
    fn host_regressions_beyond_the_band_always_fail(
        seed in any::<u64>(),
        pairs in prop::collection::vec((any::<u64>(), 1u32..u32::MAX), 1..8),
        which in any::<u64>(),
        factor in 1.6f64..100.0,
    ) {
        let policy = CheckPolicy { tolerance: 0.5, floor_ns: 0.0 };
        let base = artifact(seed, &pairs);
        let mut cur = base.clone();
        let i = (which % pairs.len() as u64) as usize;
        let name = format!("host.{i}");
        let m = cur.metrics.iter_mut().find(|m| m.name == name).unwrap();
        let MetricValue::Host { min_ns, .. } = &mut m.value else { unreachable!() };
        *min_ns *= factor; // past the 1.5x band, with float headroom
        let report = check(&base, &cur, &policy);
        prop_assert!(!report.ok());
        prop_assert!(report.regressions.iter().any(|r| r.contains(&name)));
    }

    #[test]
    fn host_noise_within_the_band_never_fails(
        seed in any::<u64>(),
        pairs in prop::collection::vec((any::<u64>(), any::<u32>()), 1..8),
        which in any::<u64>(),
        factor in 0.5f64..1.4,
    ) {
        let base = artifact(seed, &pairs);
        let mut cur = base.clone();
        let i = (which % pairs.len() as u64) as usize;
        let name = format!("host.{i}");
        let m = cur.metrics.iter_mut().find(|m| m.name == name).unwrap();
        let MetricValue::Host { min_ns, .. } = &mut m.value else { unreachable!() };
        *min_ns *= factor;
        let report = check(&base, &cur, &CheckPolicy::default());
        prop_assert!(report.ok(), "regressions: {:?}", report.regressions);
    }
}
