//! Integration tests for the `BENCH_*` artifact schema and the
//! regression gate: JSON round-trips, schema-version rejection, and the
//! class-by-class gating semantics of [`jitise_bench::schema::check`].

use jitise_bench::schema::{
    check, BenchArtifact, CheckPolicy, MetricValue, ProfileStage, SCHEMA_MAJOR, SCHEMA_VERSION,
};

/// A representative artifact exercising every metric class plus the
/// profile and collapsed-stack sections.
fn sample() -> BenchArtifact {
    let mut a = BenchArtifact::new("search", 2011, false);
    a.config("loops", 24);
    a.config("iters", 2000);
    a.exact("identify.work", "units", 123_456_789);
    a.exact("fingerprint", "hash", u64::MAX); // > 2^53: must survive JSON
    a.push(
        "search.cold.w1",
        "ns",
        MetricValue::Host {
            reps: 5,
            min_ns: 1.25e6,
            median_ns: 1.5e6,
            p90_ns: 2.0e6,
        },
    );
    a.info("vm.sweep.mips", "mips", 312.5);
    a.profile.push(ProfileStage {
        name: "pipeline.specialize".into(),
        count: 1,
        host_total_ns: 9_000,
        host_self_ns: 4_000,
        host_p50_ns: 8_191,
        host_p90_ns: 8_191,
        sim_total_ns: 100_000_000_000,
        sim_self_ns: 35_000_000_000,
    });
    a.collapsed = "pipeline.specialize;cad.par 65000000000\n".into();
    a
}

#[test]
fn artifact_roundtrips_through_pretty_json() {
    let art = sample();
    let text = art.to_pretty_string();
    let back = BenchArtifact::parse(&text).expect("own output must parse");
    assert_eq!(back, art);
    // And the re-serialization is byte-stable (insertion-order keys).
    assert_eq!(back.to_pretty_string(), text);
}

#[test]
fn u64_metrics_survive_exactly() {
    // Values beyond 2^53 would be mangled by a float-based JSON layer;
    // the schema must carry them bit-for-bit.
    let mut a = BenchArtifact::new("t", 0, true);
    a.exact("big", "sim_ns", (1u64 << 63) + 12345);
    let back = BenchArtifact::parse(&a.to_pretty_string()).unwrap();
    assert_eq!(
        back.metric("big").unwrap().value,
        MetricValue::Exact((1u64 << 63) + 12345)
    );
}

#[test]
fn foreign_schema_majors_are_rejected() {
    let mut art = sample();
    art.schema = "jitise-bench/2.0".into();
    let err = BenchArtifact::parse(&art.to_pretty_string()).unwrap_err();
    assert!(
        err.contains("unsupported schema major 2"),
        "unexpected error: {err}"
    );

    art.schema = "someone-else/1.0".into();
    let err = BenchArtifact::parse(&art.to_pretty_string()).unwrap_err();
    assert!(err.contains("not a jitise-bench artifact"));

    // A newer minor of our major is fine: fields only ever get added.
    art.schema = format!("jitise-bench/{SCHEMA_MAJOR}.9");
    assert!(BenchArtifact::parse(&art.to_pretty_string()).is_ok());
    assert!(SCHEMA_VERSION.starts_with(&format!("jitise-bench/{SCHEMA_MAJOR}.")));
}

#[test]
fn check_accepts_identical_artifacts() {
    let art = sample();
    let report = check(&art, &art.clone(), &CheckPolicy::default());
    assert!(report.ok(), "regressions: {:?}", report.regressions);
    assert!(report.notes.is_empty(), "notes: {:?}", report.notes);
}

#[test]
fn check_flags_exact_drift_bit_for_bit() {
    let base = sample();
    let mut cur = base.clone();
    match &mut cur.metrics[0].value {
        MetricValue::Exact(v) => *v += 1,
        other => panic!("expected exact, got {other:?}"),
    }
    let report = check(&base, &cur, &CheckPolicy::default());
    assert!(!report.ok());
    assert!(report.regressions[0].contains("must be bit-identical"));
}

#[test]
fn check_bands_host_time_and_floors_jitter() {
    let base = sample();
    let policy = CheckPolicy {
        tolerance: 0.5,
        floor_ns: 0.0,
    };
    // Within tolerance: fine, no note either (not an improvement).
    let mut cur = base.clone();
    set_host_min(&mut cur, 1.25e6 * 1.4);
    assert!(check(&base, &cur, &policy).ok());
    // Beyond tolerance: regression.
    set_host_min(&mut cur, 1.25e6 * 1.6);
    let report = check(&base, &cur, &policy);
    assert!(!report.ok());
    assert!(report.regressions[0].contains("regressed"));
    // The same excursion under the default 5 ms floor is absorbed — a
    // millisecond-scale section cannot gate on microsecond jitter.
    assert!(check(&base, &cur, &CheckPolicy::default()).ok());
    // A large improvement is a note, never a failure.
    set_host_min(&mut cur, 1.25e6 / 10.0);
    let report = check(&base, &cur, &policy);
    assert!(report.ok());
    assert!(report.notes.iter().any(|n| n.contains("improved")));
}

#[test]
fn check_flags_missing_metrics_and_class_changes() {
    let base = sample();

    let mut cur = base.clone();
    cur.metrics.retain(|m| m.name != "identify.work");
    let report = check(&base, &cur, &CheckPolicy::default());
    assert!(!report.ok());
    assert!(report.regressions[0].contains("disappeared"));

    let mut cur = base.clone();
    cur.metrics[0].value = MetricValue::Info(123_456_789.0);
    let report = check(&base, &cur, &CheckPolicy::default());
    assert!(!report.ok());
    assert!(report.regressions[0].contains("changed class"));
}

#[test]
fn check_refuses_incomparable_workloads() {
    let base = sample();

    let mut cur = base.clone();
    cur.seed = 7;
    assert!(!check(&base, &cur, &CheckPolicy::default()).ok());

    let mut cur = base.clone();
    cur.smoke = true;
    assert!(!check(&base, &cur, &CheckPolicy::default()).ok());

    let mut cur = base.clone();
    cur.config[0].1 = "48".into();
    assert!(!check(&base, &cur, &CheckPolicy::default()).ok());

    // A machine change alone is a note, not a regression: host
    // tolerances absorb hardware drift.
    let mut cur = base.clone();
    cur.machine.cpus += 8;
    let report = check(&base, &cur, &CheckPolicy::default());
    assert!(report.ok());
    assert!(report.notes.iter().any(|n| n.contains("machine changed")));
}

#[test]
fn info_metrics_are_never_gated() {
    let base = sample();
    let mut cur = base.clone();
    match &mut cur.metrics[3].value {
        MetricValue::Info(v) => *v *= 100.0,
        other => panic!("expected info, got {other:?}"),
    }
    let report = check(&base, &cur, &CheckPolicy::default());
    assert!(report.ok());
    assert!(report.notes.iter().any(|n| n.contains("not gated")));
}

#[test]
fn new_metrics_are_notes_only() {
    let base = sample();
    let mut cur = base.clone();
    cur.exact("brand.new", "count", 1);
    let report = check(&base, &cur, &CheckPolicy::default());
    assert!(report.ok());
    assert!(report.notes.iter().any(|n| n.contains("new metric")));
}

fn set_host_min(art: &mut BenchArtifact, v: f64) {
    match &mut art.metrics[2].value {
        MetricValue::Host { min_ns, .. } => *min_ns = v,
        other => panic!("expected host, got {other:?}"),
    }
}
