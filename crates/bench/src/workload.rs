//! Seeded, deterministic workload builders shared by the perf binaries.
//!
//! The `bench` and `search` binaries measure the same synthetic module so
//! their numbers line up; building it here keeps the workload shape in
//! one place (the shape IS the config — `BENCH_*.json` records the knob
//! values so the gate refuses to compare different shapes).

use jitise_ir::{FunctionBuilder, Module, Operand as Op, Type};
use jitise_vm::{Interpreter, Profile, Value};

/// A module with `loops` hot loops, each a ~14-op feasible body: enough
/// blocks for search-worker lanes to matter and enough per-block
/// enumeration for the identification memo to matter.
pub fn search_module(loops: i32) -> Module {
    let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
    let cell = b.alloca(4);
    b.store(Op::ci32(1), cell);
    for k in 0..loops {
        b.counted_loop(&format!("i{k}"), Op::ci32(0), Op::Arg(0), |b, i| {
            let acc = b.load(Type::I32, cell);
            let x = b.mul(acc, i);
            let y = b.mul(x, Op::ci32(3 + k));
            let z = b.add(y, i);
            let s = b.sub(z, Op::ci32(k));
            let t = b.xor(s, Op::ci32(0x5a ^ k));
            let u = b.and(t, Op::ci32(0xffff));
            let v = b.or(u, Op::ci32(1));
            let w = b.shl(v, Op::ci32(1));
            let q = b.add(w, x);
            let r = b.xor(q, z);
            let e = b.add(r, s);
            let g = b.mul(e, Op::ci32(7));
            let h = b.xor(g, i);
            b.store(h, cell);
        });
    }
    let out = b.load(Type::I32, cell);
    b.ret(out);
    let mut m = Module::new("searchbench");
    m.add_func(b.finish());
    m
}

/// Profiles [`search_module`] by interpreting `iters` loop iterations.
pub fn search_profile(m: &Module, iters: i64) -> Profile {
    let mut vm = Interpreter::new(m);
    vm.run("main", &[Value::I(iters)]).unwrap();
    vm.take_profile()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_module_scales_with_loops() {
        let small = search_module(2);
        let large = search_module(6);
        assert!(large.num_blocks() > small.num_blocks());
        assert!(large.num_insts() > small.num_insts());
    }

    #[test]
    fn search_profile_sees_hot_blocks() {
        let m = search_module(2);
        let p = search_profile(&m, 50);
        assert!(
            !p.hottest_blocks().is_empty(),
            "loop bodies must register as hot"
        );
    }
}
