//! Multi-tenant serve harness: drives a 200+-tenant fleet through the
//! shared specialization service and proves the robustness contract of
//! DESIGN.md §16 at full scale:
//!
//! 1. **Determinism** — the fixed-seed fleet outcome is bit-identical
//!    across `cad_workers` 1/2/8 (only the DRR timing post-pass may
//!    differ);
//! 2. **Overload gracefulness** — admission control admits, defers, and
//!    sheds; every tenant terminates with correct software-reference
//!    answers;
//! 3. **Fault isolation** — per-tenant (id, epoch)-keyed fault streams
//!    degrade only the faulted tenants;
//! 4. **Crash-storm survival** — a store death mid-serve under burst CAD
//!    faults recovers to exactly the committed prefix, and a warm
//!    restart keeps serving from it.
//!
//! Usage: `cargo run --release -p jitise-bench --bin serve [seed]
//! [--smoke] [--json FILE]` (`--json` writes the fleet counters as a
//! `BENCH_*`-schema artifact).
//!
//! Exits non-zero on the first violated invariant.

use jitise_bench::schema::BenchArtifact;
use jitise_core::EvalContext;
use jitise_faults::{Bursts, CrashSwitch, FaultInjector, FaultPlan, StoreCrash};
use jitise_serve::{run_serve, ServeConfig, ServeOutcome};
use jitise_store::{Store, StoreOptions, TempDir};
use std::process::ExitCode;
use std::sync::Arc;

fn fleet_config(seed: u64, smoke: bool, cad_workers: usize) -> ServeConfig {
    if smoke {
        ServeConfig {
            seed,
            tenants: 24,
            cad_workers,
            max_active: 4,
            defer_capacity: 2,
            arrival_spacing_us: 100,
            service_model_us: 600,
            runs_per_tenant: 3,
            distinct_workloads: 3,
            hot_iters: 60,
            ..ServeConfig::default()
        }
    } else {
        ServeConfig {
            seed,
            tenants: 224,
            cad_workers,
            max_active: 12,
            defer_capacity: 8,
            arrival_spacing_us: 100,
            service_model_us: 2_000,
            runs_per_tenant: 3,
            distinct_workloads: 6,
            hot_iters: 100,
            ..ServeConfig::default()
        }
    }
}

fn print_fleet(label: &str, out: &ServeOutcome) {
    println!(
        "{:<12} {:>5} {:>6} {:>5} {:>9} {:>6} {:>6} {:>7} {:>12} {:>12} {:>6}",
        label,
        out.admitted,
        out.deferred,
        out.shed,
        out.degraded,
        out.cache_hits,
        out.fresh,
        out.evictions,
        out.timing.ttfs_p50_us,
        out.timing.ttfs_p99_us,
        out.timing.max_queue_depth,
    );
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = jitise_bench::schema::take_json_path(&mut args);
    let mut seed: u64 = 2011; // the paper's year
    let mut smoke = false;
    for arg in &args {
        if arg == "--smoke" {
            smoke = true;
        } else if let Ok(s) = arg.parse() {
            seed = s;
        }
    }
    let mut artifact = BenchArtifact::new("serve-harness", seed, smoke);

    let tenants = fleet_config(seed, smoke, 1).tenants;
    println!("=== jitise serve fleet (seed {seed}, {tenants} tenants) ===\n");
    println!(
        "{:<12} {:>5} {:>6} {:>5} {:>9} {:>6} {:>6} {:>7} {:>12} {:>12} {:>6}",
        "run",
        "admit",
        "defer",
        "shed",
        "degraded",
        "hits",
        "fresh",
        "evict",
        "ttfs_p50_us",
        "ttfs_p99_us",
        "queue"
    );

    // 1. Determinism across pool widths (fresh EvalContext per run: the
    //    shared netlist cache legitimately changes C2V charges).
    let mut fingerprint: Option<String> = None;
    let mut baseline: Option<ServeOutcome> = None;
    for lanes in [1usize, 2, 8] {
        let out = run_serve(&EvalContext::new(), &fleet_config(seed, smoke, lanes))
            .expect("serve must terminate gracefully");
        print_fleet(&format!("lanes={lanes}"), &out);
        let fp = out.fingerprint();
        match &fingerprint {
            None => {
                if out.admitted == 0 || out.deferred == 0 || out.shed == 0 {
                    eprintln!("FAIL: fleet must exercise admit, defer, and shed");
                    return ExitCode::FAILURE;
                }
                if out.cache_hits == 0 {
                    eprintln!("FAIL: shared cache never hit");
                    return ExitCode::FAILURE;
                }
                artifact.config("tenants", out.tenants.len() as u64);
                artifact.exact("serve.admitted", "count", out.admitted as u64);
                artifact.exact("serve.deferred", "count", out.deferred as u64);
                artifact.exact("serve.shed", "count", out.shed as u64);
                artifact.exact("serve.degraded", "count", out.degraded as u64);
                artifact.exact("serve.cache_hits", "count", out.cache_hits);
                artifact.exact("serve.fresh", "count", out.fresh);
                fingerprint = Some(fp);
                baseline = Some(out);
            }
            Some(want) => {
                if want != &fp {
                    eprintln!("FAIL: fleet outcome differs at cad_workers={lanes}");
                    eprintln!("  want {want}");
                    eprintln!("  got  {fp}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let baseline = baseline.expect("baseline recorded");
    println!("\nfingerprint: {}", fingerprint.expect("recorded"));
    println!("determinism: ok (bit-identical across cad_workers 1/2/8)\n");

    // 2. Crash storm: burst CAD faults while the store dies mid-serve.
    let storm = FaultPlan::uniform(0.08, seed ^ 0x73746f726d).with_bursts(Bursts {
        period: 5,
        width: 2,
        boost: 6.0,
        calm: 0.2,
    });
    let storm_config = |store: Option<Arc<Store>>| ServeConfig {
        faults: FaultInjector::from_plan(storm.clone()),
        store,
        cache_capacity: 8,
        ..fleet_config(seed, smoke, 2)
    };
    let dry_dir = TempDir::new("serve-harness-dry");
    let dry_store = Arc::new(Store::open(dry_dir.path()).expect("store opens"));
    let dry = run_serve(
        &EvalContext::new(),
        &storm_config(Some(Arc::clone(&dry_store))),
    )
    .expect("dry storm serve");
    print_fleet("storm-dry", &dry);
    if dry.degraded == 0 || dry.degraded >= dry.admitted + dry.deferred {
        eprintln!("FAIL: storm must degrade some tenants and spare others");
        return ExitCode::FAILURE;
    }
    // Fault isolation: the storm never changes admission or answers.
    for (t, c) in dry.tenants.iter().zip(&baseline.tenants) {
        if t.admission != c.admission {
            eprintln!("FAIL: faults altered admission for tenant {}", t.id);
            return ExitCode::FAILURE;
        }
        if t.results != c.results {
            eprintln!("FAIL: cross-tenant corruption at tenant {}", t.id);
            return ExitCode::FAILURE;
        }
    }
    let budget = dry_store.bytes_written() * 6 / 10;
    drop(dry_store);
    artifact.config("crash_budget_bytes", budget);
    artifact.exact("serve.storm.degraded", "count", dry.degraded as u64);
    artifact.exact("serve.storm.evictions", "count", dry.evictions);

    let crash_dir = TempDir::new("serve-harness-crash");
    let store = Arc::new(
        Store::open_with(
            crash_dir.path(),
            StoreOptions {
                crash: CrashSwitch::armed(StoreCrash {
                    after_bytes: budget,
                }),
                ..StoreOptions::default()
            },
        )
        .expect("store opens"),
    );
    let out = run_serve(&EvalContext::new(), &storm_config(Some(Arc::clone(&store))))
        .expect("crash storm serve");
    print_fleet("storm-crash", &out);
    if out.tenants != dry.tenants {
        eprintln!("FAIL: the store's death leaked into tenant outcomes");
        return ExitCode::FAILURE;
    }
    let committed = store.state().fingerprint();
    drop(store);
    let survivor = Arc::new(Store::open(crash_dir.path()).expect("post-crash recovery"));
    if survivor.state().fingerprint() != committed {
        eprintln!("FAIL: recovery lost or invented committed records");
        return ExitCode::FAILURE;
    }
    artifact.exact(
        "serve.storm.recovered.records",
        "count",
        survivor.recovery().records_recovered,
    );
    println!("\ncrash storm: store died at {budget} bytes; recovery == committed prefix: ok");

    // 3. Warm restart from the survivor keeps serving.
    // Default (uncapped-in-practice) capacity: the hydrated entries all
    // stay resident, so the warm fleet must hit at least as often as the
    // cold baseline.
    let again_config = ServeConfig {
        store: Some(survivor),
        ..fleet_config(seed, smoke, 2)
    };
    let again = run_serve(&EvalContext::new(), &again_config).expect("warm restart serve");
    print_fleet("warm-restart", &again);
    // The recovered journal hydrates both the cache (hits) and the
    // quarantine (skips), so the robust claim is about *work*: a warm
    // fleet must never re-generate more bitstreams than a cold one.
    if again.fresh > baseline.fresh || again.cache_hits == 0 {
        eprintln!("FAIL: warm restart lost committed cache value");
        return ExitCode::FAILURE;
    }
    artifact.exact("serve.warm.cache_hits", "count", again.cache_hits);
    artifact.exact("serve.warm.fresh", "count", again.fresh);

    println!("\nverdict: PASS");
    if let Some(path) = &json_path {
        artifact.emit(path);
    }
    ExitCode::SUCCESS
}
