//! Reproduces **Table II**: candidate-search runtime, pruning efficiency,
//! post-pruning blocks/instructions, candidate counts, the pruned ASIP
//! ratio, the per-phase CAD overheads, and the break-even time for every
//! application.
//!
//! Usage: `cargo run --release -p jitise-bench --bin table2`

use jitise_apps::Domain;
use jitise_base::table::{fnum, TextTable};
use jitise_base::SimTime;
use jitise_bench::{evaluate_domain, mean_of};
use jitise_core::{AppEvaluation, EvalContext};
use jitise_ise::{candidate_search, pruning_efficiency, PruneFilter, SearchConfig};

struct Row {
    name: String,
    real_ms: f64,
    effic: f64,
    blk: f64,
    ins: f64,
    can: f64,
    ratio: f64,
    const_s: f64,
    map_s: f64,
    par_s: f64,
    sum_s: f64,
    break_even: Option<SimTime>,
}

fn row_of(ctx: &EvalContext, app: &jitise_apps::App, ev: &AppEvaluation) -> Row {
    // Pruning efficiency needs the unpruned identification timing.
    let full_cfg = SearchConfig {
        filter: PruneFilter::none(),
        ..SearchConfig::default()
    };
    let full = candidate_search(&app.module, &ev.profile, &ctx.estimator, &full_cfg);
    let effic = pruning_efficiency(
        (ev.report.search.asip_ratio, ev.report.search.real_time),
        (full.asip_ratio, full.real_time),
    );
    Row {
        name: app.name.to_string(),
        real_ms: ev.report.search.real_time.as_secs_f64() * 1e3,
        effic,
        blk: ev.report.search.prune.blocks.len() as f64,
        ins: ev.report.search.prune.insts_after as f64,
        can: ev.report.candidates.len() as f64,
        ratio: ev.asip_ratio_pruned,
        const_s: ev.report.const_time.as_secs_f64(),
        map_s: ev.report.map_time.as_secs_f64(),
        par_s: ev.report.par_time.as_secs_f64(),
        sum_s: ev.report.sum_time.as_secs_f64(),
        break_even: ev.break_even,
    }
}

fn avg(label: &str, rows: &[Row]) -> Row {
    let be: Vec<f64> = rows
        .iter()
        .filter_map(|r| r.break_even.map(|t| t.as_secs_f64()))
        .collect();
    Row {
        name: label.to_string(),
        real_ms: mean_of(rows, |r| r.real_ms),
        effic: mean_of(rows, |r| r.effic),
        blk: mean_of(rows, |r| r.blk),
        ins: mean_of(rows, |r| r.ins),
        can: mean_of(rows, |r| r.can),
        ratio: mean_of(rows, |r| r.ratio),
        const_s: mean_of(rows, |r| r.const_s),
        map_s: mean_of(rows, |r| r.map_s),
        par_s: mean_of(rows, |r| r.par_s),
        sum_s: mean_of(rows, |r| r.sum_s),
        break_even: if be.is_empty() {
            None
        } else {
            Some(SimTime::from_secs_f64(
                be.iter().sum::<f64>() / be.len() as f64,
            ))
        },
    }
}

fn push(t: &mut TextTable, r: &Row) {
    t.row(vec![
        r.name.clone(),
        fnum(r.real_ms, 2),
        fnum(r.effic, 2),
        fnum(r.blk, 0),
        fnum(r.ins, 0),
        fnum(r.can, 0),
        fnum(r.ratio, 2),
        SimTime::from_secs_f64(r.const_s).fmt_min_sec(),
        SimTime::from_secs_f64(r.map_s).fmt_min_sec(),
        SimTime::from_secs_f64(r.par_s).fmt_min_sec(),
        SimTime::from_secs_f64(r.sum_s).fmt_min_sec(),
        r.break_even
            .map(|t| t.fmt_dhms())
            .unwrap_or_else(|| "never".into()),
    ]);
}

fn main() {
    println!("=== Table II: runtime overheads of the ASIP-SP process ===\n");
    let ctx = EvalContext::new();
    let sci = evaluate_domain(&ctx, Some(Domain::Scientific));
    let emb = evaluate_domain(&ctx, Some(Domain::Embedded));

    let sci_rows: Vec<Row> = sci.iter().map(|(a, e)| row_of(&ctx, a, e)).collect();
    let emb_rows: Vec<Row> = emb.iter().map(|(a, e)| row_of(&ctx, a, e)).collect();
    let avg_s = avg("AVG-S", &sci_rows);
    let avg_e = avg("AVG-E", &emb_rows);

    let mut t = TextTable::new(vec![
        "App",
        "real[ms]",
        "effic",
        "blk",
        "ins",
        "can",
        "ratio",
        "const",
        "map",
        "par",
        "sum",
        "break-even[d:h:m:s]",
    ]);
    for r in &sci_rows {
        push(&mut t, r);
    }
    t.rule();
    push(&mut t, &avg_s);
    t.rule();
    for r in &emb_rows {
        push(&mut t, r);
    }
    t.rule();
    push(&mut t, &avg_e);
    println!("{}", t.render());

    println!("\n--- paper vs measured (headline claims) ---");
    let mut pt = TextTable::new(vec!["claim", "paper", "measured"]);
    pt.row(vec![
        "embedded avg overhead".to_string(),
        "49:53 (<50 min)".to_string(),
        SimTime::from_secs_f64(avg_e.sum_s).fmt_min_sec(),
    ]);
    pt.row(vec![
        "embedded avg break-even".to_string(),
        "0:01:59:55 (~2 h)".to_string(),
        avg_e
            .break_even
            .map(|t| t.fmt_dhms())
            .unwrap_or_else(|| "never".into()),
    ]);
    pt.row(vec![
        "embedded avg pruned speedup".to_string(),
        "4.98".to_string(),
        fnum(avg_e.ratio, 2),
    ]);
    pt.row(vec![
        "scientific avg pruned speedup".to_string(),
        "1.20".to_string(),
        fnum(avg_s.ratio, 2),
    ]);
    pt.row(vec![
        "candidate search (ms-scale)".to_string(),
        "0.24 - 10.62 ms".to_string(),
        format!(
            "{:.2} - {:.2} ms",
            sci_rows
                .iter()
                .chain(&emb_rows)
                .map(|r| r.real_ms)
                .fold(f64::MAX, f64::min),
            sci_rows
                .iter()
                .chain(&emb_rows)
                .map(|r| r.real_ms)
                .fold(0.0, f64::max)
        ),
    ]);
    pt.row(vec![
        "scientific break-even >> embedded".to_string(),
        "5 orders of magnitude".to_string(),
        {
            let s = avg_s
                .break_even
                .map(|t| t.as_secs_f64())
                .unwrap_or(f64::INFINITY);
            let e = avg_e.break_even.map(|t| t.as_secs_f64()).unwrap_or(1.0);
            format!("{:.0}x", s / e)
        },
    ]);
    println!("{}", pt.render());

    // §V-D in-text quantities.
    println!("\n--- §V-D in-text quantities ---");
    let sci_cand_size = mean_of(&sci, |(_, e)| e.report.search.avg_candidate_size);
    let emb_cand_size = mean_of(&emb, |(_, e)| e.report.search.avg_candidate_size);
    let sci_blk_size = mean_of(&sci, |(_, e)| e.report.search.avg_pruned_block_size);
    let emb_blk_size = mean_of(&emb, |(_, e)| e.report.search.avg_pruned_block_size);
    let sci_red = mean_of(&sci, |(_, e)| e.report.search.prune.reduction_factor());
    let emb_red = mean_of(&emb, |(_, e)| e.report.search.prune.reduction_factor());
    let mut it = TextTable::new(vec!["quantity", "paper", "measured"]);
    it.row(vec![
        "avg candidate size sci [ins]".to_string(),
        "7.31".into(),
        fnum(sci_cand_size, 2),
    ]);
    it.row(vec![
        "avg candidate size emb [ins]".to_string(),
        "6.5".into(),
        fnum(emb_cand_size, 2),
    ]);
    it.row(vec![
        "avg pruned block size sci".to_string(),
        "155.65".into(),
        fnum(sci_blk_size, 2),
    ]);
    it.row(vec![
        "avg pruned block size emb".to_string(),
        "29.71".into(),
        fnum(emb_blk_size, 2),
    ]);
    it.row(vec![
        "bitcode reduction sci".to_string(),
        "36.49x".into(),
        fnum(sci_red, 2),
    ]);
    it.row(vec![
        "bitcode reduction emb".to_string(),
        "4.9x".into(),
        fnum(emb_red, 2),
    ]);
    println!("{}", it.render());
}
