//! End-to-end observability demo: runs the adaptive JIT session for one
//! application with telemetry enabled and exports the recorded journal.
//!
//! Usage: `cargo run --release -p jitise-bench --bin trace [app] [runs] [fault_rate] [seed]`
//!
//! Writes into `results/`:
//!
//! * `trace_<app>.jsonl` — the structured journal (spans, events,
//!   counters, gauges, histograms), one JSON object per line;
//! * `trace_<app>.chrome.json` — Chrome trace-event format; open in
//!   `chrome://tracing` or Perfetto to see the worker thread's CAD flow
//!   overlapping the main thread's workload runs;
//! * `trace_<app>.txt` — human-readable span tree + per-phase summary
//!   (also printed to stdout).
//!
//! The binary then reconciles the span journal against the
//! [`SpecializeReport`]: per-phase simulated-time totals must reproduce the
//! report's `const`/`map`/`par`/`sum` columns *exactly* (same `SimTime`
//! integers) — under faults, each column plus its fault-ledger share —
//! and the cache/retry/failure counters must match the report. Exits
//! non-zero on any mismatch, so it doubles as an integration check.
//!
//! With a non-zero `fault_rate`, pipeline-level faults (CAD stage crashes,
//! ICAP corruption, poisoned cache entries) are injected at that rate;
//! worker stall/death sites stay off so a report always arrives (the
//! `chaos` binary covers those).

use jitise_apps::App;
use jitise_base::SimTime;
use jitise_core::{
    run_adaptive_with, AdaptiveOptions, BitstreamCache, EvalContext, SpecializeReport,
};
use jitise_faults::{FaultInjector, FaultPlan, FaultSite};
use jitise_telemetry::{names, Snapshot, Telemetry};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::process::ExitCode;

/// Per-phase reconciliation: journal sim totals vs report columns. Under
/// faults, every journal total equals the report column plus the fault
/// ledger's share — the same integers, no tolerance.
fn reconcile(snap: &Snapshot, report: &SpecializeReport) -> Vec<(String, u64, u64, bool)> {
    let const_spans = [
        "pivpav.c2v",
        "cad.syntax",
        "cad.xst",
        "cad.translate",
        "cad.bitgen",
    ];
    let const_total: SimTime = const_spans.iter().map(|n| snap.sim_total(n)).sum();
    let mut rows = Vec::new();
    let mut push_time = |label: &str, journal: SimTime, report: SimTime| {
        rows.push((
            label.to_string(),
            journal.as_nanos(),
            report.as_nanos(),
            journal == report,
        ));
    };
    push_time(
        "const (c2v+syn+xst+tra+bitgen)",
        const_total,
        report.const_time + report.fault_const_time,
    );
    push_time(
        "map",
        snap.sim_total("cad.map"),
        report.map_time + report.fault_map_time,
    );
    push_time(
        "par",
        snap.sim_total("cad.par"),
        report.par_time + report.fault_par_time,
    );
    push_time(
        "sum (pipeline.candidate)",
        snap.sim_total("pipeline.candidate"),
        report.sum_time + report.fault_time(),
    );
    push_time(
        "reconfig (woolcano.install)",
        snap.sim_total("woolcano.install"),
        report.reconfig_time,
    );
    let mut push_count = |label: &str, journal: u64, report: u64| {
        rows.push((label.to_string(), journal, report, journal == report));
    };
    push_count(
        "bitstream cache hits",
        snap.counter(names::BITSTREAM_CACHE_HITS),
        report.cache_hits as u64,
    );
    push_count(
        "candidates (cache misses + hits)",
        snap.counter(names::BITSTREAM_CACHE_MISSES) + snap.counter(names::BITSTREAM_CACHE_HITS),
        report.candidates.len() as u64,
    );
    push_count(
        "retries",
        snap.counter(names::PIPELINE_RETRIES),
        report.retries,
    );
    push_count(
        "failed candidates",
        snap.counter(names::CANDIDATES_FAILED),
        report.failed.len() as u64,
    );
    push_count(
        "quarantined",
        snap.counter(names::CANDIDATES_QUARANTINED),
        report
            .failed
            .iter()
            .filter(|f| f.quarantined && f.attempts > 0)
            .count() as u64,
    );
    rows
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let app_name = argv.next().unwrap_or_else(|| "adpcm".to_string());
    let runs: u32 = argv.next().and_then(|s| s.parse().ok()).unwrap_or(4).max(2);
    let fault_rate: f64 = argv
        .next()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.0)
        .clamp(0.0, 1.0);
    let seed: u64 = argv.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    let Some(app) = App::build(&app_name) else {
        eprintln!("unknown app `{app_name}`; try one of:");
        for p in jitise_apps::PAPER_APPS {
            eprintln!("  {}", p.name);
        }
        return ExitCode::FAILURE;
    };

    println!("=== jitise trace: {app_name} ({runs} workload runs, fault rate {fault_rate}) ===\n");
    let telemetry = Telemetry::enabled();
    let ctx = EvalContext::with_telemetry(telemetry.clone());
    let cache = BitstreamCache::new();
    let args = app.datasets[0].args.clone();

    // Pipeline-level sites only: a stalled/dead worker yields no report to
    // reconcile against.
    let plan = FaultPlan::uniform(fault_rate, seed)
        .with_rate(FaultSite::WorkerStall, 0.0)
        .with_rate(FaultSite::WorkerDeath, 0.0);
    let options = AdaptiveOptions {
        faults: FaultInjector::from_plan(plan),
        ..AdaptiveOptions::default()
    };

    let outcome = run_adaptive_with(
        &ctx,
        &cache,
        &app.module,
        app.entry,
        &args,
        runs,
        2,
        &options,
    )
    .expect("adaptive session");
    let snap = telemetry.snapshot();

    // ---- exports ----
    std::fs::create_dir_all("results").expect("mkdir results");
    let stem = format!("results/trace_{app_name}");
    let mut jsonl = BufWriter::new(File::create(format!("{stem}.jsonl")).expect("create jsonl"));
    snap.write_jsonl(&mut jsonl).expect("write jsonl");
    let mut chrome =
        BufWriter::new(File::create(format!("{stem}.chrome.json")).expect("create chrome"));
    snap.write_chrome_trace(&mut chrome).expect("write chrome");
    let mut text = Vec::new();
    snap.write_text(&mut text).expect("write text");

    // ---- reconciliation against the SpecializeReport ----
    let report = outcome
        .report
        .as_ref()
        .expect("pipeline-level faults always produce a report");
    let rows = reconcile(&snap, report);
    let mut rec = String::new();
    rec.push_str("\n--- journal vs SpecializeReport (exact integers) ---\n");
    rec.push_str(&format!(
        "{:<34} {:>20} {:>20}  ok\n",
        "quantity", "journal", "report"
    ));
    let mut all_ok = true;
    for (label, journal, report, ok) in &rows {
        all_ok &= ok;
        rec.push_str(&format!(
            "{label:<34} {journal:>20} {report:>20}  {}\n",
            if *ok { "OK" } else { "MISMATCH" }
        ));
    }
    rec.push_str(&format!(
        "\nobserved speedup {:.2}x after swap (runs before/after: {}/{}), overhead {}\n",
        outcome.observed_speedup, outcome.runs_before, outcome.runs_after, outcome.overhead
    ));
    if fault_rate > 0.0 {
        rec.push_str(&format!(
            "faults injected: {} (failed candidates {}, retries {}, time lost {})\n",
            snap.counter(names::FAULTS_INJECTED),
            report.failed.len(),
            report.retries,
            report.fault_time(),
        ));
    }
    rec.push_str(&format!(
        "vm instructions retired: {}\n",
        snap.counter(names::VM_INSTRUCTIONS)
    ));

    let mut txt_file = File::create(format!("{stem}.txt")).expect("create txt");
    txt_file.write_all(&text).expect("write txt");
    txt_file.write_all(rec.as_bytes()).expect("write txt");

    print!("{}", String::from_utf8_lossy(&text));
    print!("{rec}");
    println!(
        "\nwrote {stem}.jsonl, {stem}.chrome.json, {stem}.txt ({} spans, {} events)",
        snap.spans.len(),
        snap.events.len()
    );

    if all_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("reconciliation FAILED");
        ExitCode::FAILURE
    }
}
