//! Reproduces **Table IV**: the average break-even time of the embedded
//! applications under a partial-reconfiguration bitstream cache (hit rates
//! 0–90 %) combined with a faster FPGA CAD tool flow (0/30/60/90 %).
//!
//! Usage: `cargo run --release -p jitise-bench --bin table4`

use jitise_apps::Domain;
use jitise_base::table::TextTable;
use jitise_bench::evaluate_domain;
use jitise_core::{
    break_even_basis, table_iv, BreakEvenBasis, EvalContext, CACHE_RATES, TOOL_SPEEDUPS,
};

fn main() {
    println!("=== Table IV: average embedded break-even with bitstream cache + faster CAD ===\n");
    let ctx = EvalContext::new();
    let evals = evaluate_domain(&ctx, Some(Domain::Embedded));

    let bases: Vec<BreakEvenBasis> = evals
        .iter()
        .map(|(_, ev)| break_even_basis(&ctx, &ev.coverage, &ev.profile, &ev.report))
        .collect();

    let grid = table_iv(&bases, 16, 0xB17_57EA);

    let mut t = TextTable::new(vec![
        "Cache hit[%]",
        "tools +0%",
        "tools +30%",
        "tools +60%",
        "tools +90%",
    ]);
    for (row, &rate) in CACHE_RATES.iter().enumerate() {
        let mut cells = vec![format!("{}", (rate * 100.0) as u32)];
        for cell in grid[row].iter().take(TOOL_SPEEDUPS.len()) {
            cells.push(cell.fmt_hms());
        }
        t.row(cells);
    }
    println!("{}", t.render());

    println!("\n--- paper reference (Table IV corners) ---");
    let mut pt = TextTable::new(vec!["cell", "paper", "measured"]);
    pt.row(vec![
        "0% cache, +0% tools".to_string(),
        "01:59:55".to_string(),
        grid[0][0].fmt_hms(),
    ]);
    pt.row(vec![
        "30% cache, +30% tools".to_string(),
        "01:01:42".to_string(),
        grid[3][1].fmt_hms(),
    ]);
    pt.row(vec![
        "90% cache, +90% tools".to_string(),
        "00:01:24".to_string(),
        grid[9][3].fmt_hms(),
    ]);
    println!("{}", pt.render());

    let halve = grid[0][0].as_secs_f64() / grid[3][1].as_secs_f64().max(1e-9);
    println!(
        "\n§VI-C headline: 30% cache + 30% faster tools improves break-even by {halve:.2}x \
         (paper: 1.94x, 'almost by a half')"
    );

    // ---- measured two-tier break-even (DESIGN.md §17) ----
    //
    // The grid above models the *full-CAD-only* deployment: the app waits
    // out the entire tool flow before any savings start. The two-tier
    // deployment installs a cell-assembled overlay in milliseconds and
    // starts saving immediately (at a degraded rate) while the full flow
    // upgrades the slot in the background. Both columns are measured from
    // the specialization request.
    println!("\n=== measured two-tier break-even: overlay fast path + background upgrade ===\n");
    let octx = EvalContext::new().with_overlay();
    let oevals = evaluate_domain(&octx, Some(Domain::Embedded));
    let mut tt = TextTable::new(vec!["app", "full-only", "two-tier", "collapse"]);
    let mut full_ns: u128 = 0;
    let mut two_ns: u128 = 0;
    let mut amortizing = 0usize;
    for (app, ev) in &oevals {
        match (ev.break_even, ev.break_even_two_tier) {
            (Some(be), Some(two)) => {
                let full_only = ev.report.makespan + be;
                full_ns += full_only.as_nanos() as u128;
                two_ns += two.as_nanos() as u128;
                amortizing += 1;
                let collapse = full_only.as_secs_f64() / two.as_secs_f64().max(1e-9);
                tt.row(vec![
                    app.name.to_string(),
                    full_only.fmt_hms(),
                    two.fmt_hms(),
                    format!("{collapse:.2}x"),
                ]);
            }
            _ => {
                tt.row(vec![
                    app.name.to_string(),
                    "never".to_string(),
                    "never".to_string(),
                    "-".to_string(),
                ]);
            }
        }
    }
    println!("{}", tt.render());
    if two_ns > 0 {
        println!(
            "two-tier collapses the sweep's from-request break-even by {:.2}x \
             ({amortizing}/{} apps amortize)",
            full_ns as f64 / two_ns as f64,
            oevals.len(),
        );
    }

    // The averaging itself is honest about never-amortizing apps: every
    // trial counts, with non-amortizing ones entering at the documented
    // cap (see `average_break_even_detailed`).
    let avg = jitise_core::average_break_even_detailed(&bases, 0.0, 0.0, 16, 0xB17_57EA);
    println!(
        "\nbaseline cell coverage: {}/{} trials amortize (capped mean {})",
        avg.amortized,
        avg.trials,
        avg.mean.fmt_hms(),
    );
}
