//! Reproduces **Table I**: source/compilation characteristics, execution
//! runtimes, the maximum ASIP ratio, code coverage, and kernel size for all
//! 14 applications, with the paper's AVG-S / AVG-E / RATIO aggregate rows.
//!
//! Usage: `cargo run --release -p jitise-bench --bin table1 [--vm-tier interp|fast]`
//!
//! `--vm-tier fast` profiles the applications on the pre-decoded dispatch
//! tier. The table is bit-identical either way (the tiers agree on every
//! observable — DESIGN.md §15); the flag exists to demonstrate exactly that
//! while the wall-clock cost of producing the table drops.

use jitise_apps::Domain;
use jitise_base::table::{fnum, fpct, TextTable};
use jitise_bench::{evaluate_domain, mean_of, ratio_row};
use jitise_core::{AppEvaluation, EvalContext};
use jitise_vm::VmTier;

struct Row {
    name: String,
    files: f64,
    loc: f64,
    compile_s: f64,
    blk: f64,
    ins: f64,
    vm_s: f64,
    native_s: f64,
    ratio: f64,
    asip: f64,
    live: f64,
    dead: f64,
    const_: f64,
    ksize: f64,
    kfreq: f64,
}

fn row_of(name: &str, ev: &AppEvaluation) -> Row {
    let paper = jitise_apps::paper_profile(name).unwrap();
    Row {
        name: name.to_string(),
        files: paper.files as f64, // source metadata: not synthesized
        loc: paper.loc as f64,
        compile_s: ev.compile_time.as_secs_f64(),
        blk: ev.blocks as f64,
        ins: ev.insts as f64,
        vm_s: ev.exec.vm.as_secs_f64(),
        native_s: ev.exec.native.as_secs_f64(),
        ratio: ev.exec.ratio,
        asip: ev.asip_ratio_max,
        live: ev.coverage.live_frac,
        dead: ev.coverage.dead_frac,
        const_: ev.coverage.const_frac,
        ksize: ev.kernel.size_frac,
        kfreq: ev.kernel.time_frac,
    }
}

fn avg_row(label: &str, rows: &[Row]) -> Row {
    Row {
        name: label.to_string(),
        files: mean_of(rows, |r| r.files),
        loc: mean_of(rows, |r| r.loc),
        compile_s: mean_of(rows, |r| r.compile_s),
        blk: mean_of(rows, |r| r.blk),
        ins: mean_of(rows, |r| r.ins),
        vm_s: mean_of(rows, |r| r.vm_s),
        native_s: mean_of(rows, |r| r.native_s),
        ratio: mean_of(rows, |r| r.ratio),
        asip: mean_of(rows, |r| r.asip),
        live: mean_of(rows, |r| r.live),
        dead: mean_of(rows, |r| r.dead),
        const_: mean_of(rows, |r| r.const_),
        ksize: mean_of(rows, |r| r.ksize),
        kfreq: mean_of(rows, |r| r.kfreq),
    }
}

fn push(t: &mut TextTable, r: &Row) {
    t.row(vec![
        r.name.clone(),
        fnum(r.files, 0),
        fnum(r.loc, 0),
        fnum(r.compile_s, 2),
        fnum(r.blk, 0),
        fnum(r.ins, 0),
        fnum(r.vm_s, 2),
        fnum(r.native_s, 2),
        fnum(r.ratio, 2),
        fnum(r.asip, 2),
        fpct(r.live),
        fpct(r.dead),
        fpct(r.const_),
        fpct(r.ksize),
        fpct(r.kfreq),
    ]);
}

fn parse_tier() -> VmTier {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let mut tier = VmTier::Interp;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--vm-tier" => match it.next().map(String::as_str) {
                Some("interp") => tier = VmTier::Interp,
                Some("fast") => tier = VmTier::Fast,
                other => {
                    eprintln!("table1: --vm-tier expects `interp` or `fast`, got {other:?}");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("table1: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    tier
}

fn main() {
    println!("=== Table I: experimental data for scientific and embedded applications ===\n");
    let mut ctx = EvalContext::new();
    ctx.vm_tier = parse_tier();
    let sci = evaluate_domain(&ctx, Some(Domain::Scientific));
    let emb = evaluate_domain(&ctx, Some(Domain::Embedded));

    let sci_rows: Vec<Row> = sci.iter().map(|(a, e)| row_of(a.name, e)).collect();
    let emb_rows: Vec<Row> = emb.iter().map(|(a, e)| row_of(a.name, e)).collect();
    let avg_s = avg_row("AVG-S", &sci_rows);
    let avg_e = avg_row("AVG-E", &emb_rows);

    let mut t = TextTable::new(vec![
        "App",
        "files",
        "LOC",
        "real[s]",
        "blk",
        "ins",
        "VM[s]",
        "Native[s]",
        "Ratio",
        "ASIP",
        "live%",
        "dead%",
        "const%",
        "size%",
        "freq%",
    ]);
    for r in &sci_rows {
        push(&mut t, r);
    }
    t.rule();
    push(&mut t, &avg_s);
    t.rule();
    for r in &emb_rows {
        push(&mut t, r);
    }
    t.rule();
    push(&mut t, &avg_e);
    t.rule();
    let ratio = Row {
        name: "RATIO".into(),
        files: ratio_row(avg_s.files, avg_e.files),
        loc: ratio_row(avg_s.loc, avg_e.loc),
        compile_s: ratio_row(avg_s.compile_s, avg_e.compile_s),
        blk: ratio_row(avg_s.blk, avg_e.blk),
        ins: ratio_row(avg_s.ins, avg_e.ins),
        vm_s: ratio_row(avg_s.vm_s, avg_e.vm_s),
        native_s: ratio_row(avg_s.native_s, avg_e.native_s),
        ratio: ratio_row(avg_s.ratio, avg_e.ratio),
        asip: ratio_row(avg_s.asip, avg_e.asip),
        live: ratio_row(avg_s.live, avg_e.live),
        dead: ratio_row(avg_s.dead, avg_e.dead),
        const_: ratio_row(avg_s.const_, avg_e.const_),
        ksize: ratio_row(avg_s.ksize, avg_e.ksize),
        kfreq: ratio_row(avg_s.kfreq, avg_e.kfreq),
    };
    push(&mut t, &ratio);
    println!("{}", t.render());

    // Paper comparison for the headline aggregates.
    println!("\n--- paper vs measured (aggregates) ---");
    let paper_avg = |d: Domain, f: &dyn Fn(&jitise_apps::AppProfile) -> f64| {
        let xs: Vec<f64> = jitise_apps::PAPER_APPS
            .iter()
            .filter(|p| p.domain == d)
            .map(f)
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    let cmp = [
        (
            "max ASIP ratio AVG-S",
            paper_avg(Domain::Scientific, &|p| p.asip_ratio_max),
            avg_s.asip,
        ),
        (
            "max ASIP ratio AVG-E",
            paper_avg(Domain::Embedded, &|p| p.asip_ratio_max),
            avg_e.asip,
        ),
        (
            "kernel size% AVG-S",
            paper_avg(Domain::Scientific, &|p| p.kernel_size) * 100.0,
            avg_s.ksize * 100.0,
        ),
        (
            "kernel size% AVG-E",
            paper_avg(Domain::Embedded, &|p| p.kernel_size) * 100.0,
            avg_e.ksize * 100.0,
        ),
        (
            "kernel freq% AVG-S",
            paper_avg(Domain::Scientific, &|p| p.kernel_freq) * 100.0,
            avg_s.kfreq * 100.0,
        ),
        (
            "VM ratio AVG-S",
            paper_avg(Domain::Scientific, &|p| p.vm_ratio),
            avg_s.ratio,
        ),
        (
            "VM ratio AVG-E",
            paper_avg(Domain::Embedded, &|p| p.vm_ratio),
            avg_e.ratio,
        ),
    ];
    let mut pt = TextTable::new(vec!["quantity", "paper", "measured"]);
    for (name, p, m) in cmp {
        pt.row(vec![name.to_string(), fnum(p, 2), fnum(m, 2)]);
    }
    println!("{}", pt.render());
    println!(
        "\nshape check: embedded ASIP headroom exceeds scientific by {:.1}x (paper: {:.1}x)",
        avg_e.asip / avg_s.asip,
        7.21 / 1.71
    );
}
