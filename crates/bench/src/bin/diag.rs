//! Diagnostic: per-app candidate/selection details (development aid).

use jitise_apps::App;
use jitise_core::EvalContext;
use jitise_ise::{candidate_search, PruneFilter, SearchConfig};

fn main() {
    let ctx = EvalContext::new();
    for name in ["sor", "whetstone", "fft", "adpcm"] {
        let app = App::build(name).unwrap();
        let profile = app.run_dataset(0);
        for (label, filter) in [
            ("@50pS3L", PruneFilter::paper_default()),
            ("none", PruneFilter::none()),
        ] {
            let cfg = SearchConfig {
                filter,
                ..SearchConfig::default()
            };
            let out = candidate_search(&app.module, &profile, &ctx.estimator, &cfg);
            println!(
                "{name:10} {label:8} blk={} ins={} covered={:.2} ident={} sel={} ratio={:.2}",
                out.prune.blocks.len(),
                out.prune.insts_after,
                out.prune.time_covered,
                out.identified,
                out.selection.selected.len(),
                out.asip_ratio
            );
            if label == "@50pS3L" {
                for s in out.selection.selected.iter().take(6) {
                    println!(
                        "    cand sz={} sw={} hw={} merit={} execs={} luts={}",
                        s.candidate.len(),
                        s.estimate.sw_cycles,
                        s.estimate.hw_cycles,
                        s.estimate.merit(),
                        s.estimate.exec_count,
                        s.estimate.luts
                    );
                }
                let total = profile.total_cycles();
                println!(
                    "    total_cycles={} saved={}",
                    total, out.selection.total_saved_cycles
                );
            }
        }
    }
}
