//! Chaos harness: sweeps fault-injection rates over adaptive JIT sessions
//! and proves the robustness contract of DESIGN.md §9:
//!
//! 1. **Termination** — every session returns, whatever the injector does
//!    (a hung session fails the harness by never printing the verdict);
//! 2. **Correctness** — the workload's per-run return values are
//!    bit-identical to the fault-free session at *every* fault rate; a
//!    degraded session still computes the right answers;
//! 3. **Zero overhead when off** — a session carrying a zero-rate plan is
//!    byte-identical (same [`AdaptiveOutcome::fingerprint`]) to a session
//!    with no injector at all;
//! 4. **Store survives the storm** — every session journals to a
//!    crash-consistent store whose WAL is hit by the same fault plan
//!    ([`FaultSite::StoreWal`] media corruption); the store must never
//!    change workload observables, and recovery after the session must
//!    always succeed (corrupted records are CRC-dropped, not fatal).
//!
//! Usage: `cargo run --release -p jitise-bench --bin chaos [seed]
//! [--json FILE]` (`--json` additionally writes the sweep's per-point
//! counters as a `BENCH_*`-schema artifact).
//!
//! Exits non-zero on the first violated invariant.

use jitise_apps::App;
use jitise_bench::schema::BenchArtifact;
use jitise_core::{
    run_adaptive_with, AdaptiveOptions, AdaptiveOutcome, BitstreamCache, DegradedReason,
    EvalContext,
};
use jitise_faults::{FaultInjector, FaultPlan, Quarantine};
use jitise_store::{RecoveryReport, Store, StoreOptions, TempDir};
use jitise_telemetry::{names, Telemetry};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const APPS: [&str; 3] = ["adpcm", "sor", "fft"];
const RATES: [f64; 3] = [0.0, 0.1, 0.5];
const TOTAL_RUNS: u32 = 4;
const READY_AFTER: u32 = 2;

/// Stable numeric encoding of a session's degradation for the JSON
/// schema: 0 = healthy, 1 = worker disconnected, 2 = worker stalled,
/// 3 = specialization failed.
fn degraded_code(reason: Option<&DegradedReason>) -> u64 {
    match reason {
        None => 0,
        Some(DegradedReason::WorkerDisconnected) => 1,
        Some(DegradedReason::WorkerStalled) => 2,
        Some(DegradedReason::SpecializeFailed(_)) => 3,
        Some(DegradedReason::DeadlineExceeded) => 4,
    }
}

/// One adaptive session under the given injector. Fresh context, cache,
/// and quarantine per session: no state leaks between sweep points. The
/// caller supplies the quarantine so its post-session size is observable.
fn session(
    app: &App,
    faults: FaultInjector,
    store: Option<Arc<Store>>,
    quarantine: Arc<Quarantine>,
) -> (AdaptiveOutcome, u64) {
    let telemetry = Telemetry::enabled();
    let ctx = EvalContext::with_telemetry(telemetry.clone());
    let cache = BitstreamCache::new();
    let args = app.datasets[0].args.clone();
    let options = AdaptiveOptions {
        // Short watchdog: an injected worker stall costs one deadline,
        // not 30 s of harness wall time.
        watchdog: Duration::from_millis(500),
        faults,
        store,
        quarantine,
        ..AdaptiveOptions::default()
    };
    let outcome = run_adaptive_with(
        &ctx,
        &cache,
        &app.module,
        app.entry,
        &args,
        TOTAL_RUNS,
        READY_AFTER,
        &options,
    )
    .expect("session must terminate gracefully");
    let injected = telemetry.snapshot().counter(names::FAULTS_INJECTED);
    (outcome, injected)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = jitise_bench::schema::take_json_path(&mut args);
    let mut seed: u64 = 2011; // the paper's year
    for arg in &args {
        if let Ok(s) = arg.parse() {
            seed = s;
        }
    }
    let mut artifact = BenchArtifact::new("chaos", seed, false);
    artifact.config("apps", APPS.join(","));
    artifact.config(
        "rates",
        RATES
            .iter()
            .map(f64::to_string)
            .collect::<Vec<_>>()
            .join(","),
    );
    println!("=== jitise chaos sweep (seed {seed}) ===\n");
    println!(
        "{:<10} {:>5} {:>9} {:>7} {:>7} {:>11} {:>9} {:>7}  verdict",
        "app", "rate", "injected", "failed", "retries", "degraded", "speedup", "rec'd"
    );

    let mut failures = 0u32;
    for app_name in APPS {
        let app = App::build(app_name).expect("paper app");
        let (baseline, _) = session(
            &app,
            FaultInjector::disabled(),
            None,
            Arc::new(Quarantine::new()),
        );
        assert!(
            baseline.results.iter().all(|r| r.is_some()),
            "{app_name}: workload must return a value"
        );

        for rate in RATES {
            let plan = FaultPlan::uniform(rate, seed);
            // Every session journals to a store whose WAL sees the same
            // fault plan (media corruption on the write path). A fresh
            // temp dir per sweep point: nothing leaks, nothing lands in
            // the repository.
            let store_dir = TempDir::new("chaos");
            let store = Arc::new(
                Store::open_with(
                    store_dir.path(),
                    StoreOptions {
                        faults: FaultInjector::from_plan(plan.clone()),
                        ..StoreOptions::default()
                    },
                )
                .expect("fresh store must open"),
            );
            let quarantine = Arc::new(Quarantine::new());
            let (outcome, injected) = session(
                &app,
                FaultInjector::from_plan(plan),
                Some(Arc::clone(&store)),
                Arc::clone(&quarantine),
            );
            drop(store);
            // Post-mortem restart: recovery must succeed whatever the
            // injector wrote; corrupted records are dropped, not fatal.
            let recovery: Option<RecoveryReport> = Store::open(store_dir.path())
                .ok()
                .map(|s| s.recovery().clone());
            let recovered = recovery
                .as_ref()
                .map(|r| r.records_recovered)
                .unwrap_or(u64::MAX);

            let mut verdict = Vec::new();
            if outcome.results != baseline.results {
                verdict.push("RESULTS DIVERGED");
            }
            if rate == 0.0 && outcome.fingerprint() != baseline.fingerprint() {
                verdict.push("ZERO-RATE NOT TRANSPARENT");
            }
            if rate == 0.0 && injected != 0 {
                verdict.push("ZERO-RATE INJECTED");
            }
            if recovered == u64::MAX {
                verdict.push("STORE RECOVERY FAILED");
            }
            let ok = verdict.is_empty();
            failures += u32::from(!ok);

            let (failed, retries) = outcome
                .report
                .as_ref()
                .map(|r| (r.failed.len(), r.retries))
                .unwrap_or((0, 0));
            // Rates make poor metric-name fragments ("0.5"); index instead.
            let ri = RATES.iter().position(|r| *r == rate).expect("swept rate");
            let point = format!("{app_name}.r{ri}");
            artifact.exact(&format!("{point}.injected"), "count", injected);
            artifact.exact(&format!("{point}.failed"), "count", failed as u64);
            artifact.exact(&format!("{point}.retries"), "count", retries);
            artifact.exact(&format!("{point}.recovered"), "count", recovered);
            artifact.exact(
                &format!("{point}.degraded"),
                "bool",
                u64::from(outcome.degraded.is_some()),
            );
            artifact.exact(
                &format!("{point}.degraded_reason"),
                "enum",
                degraded_code(outcome.degraded.as_ref()),
            );
            artifact.exact(
                &format!("{point}.quarantine.size"),
                "count",
                quarantine.len() as u64,
            );
            if let Some(rec) = &recovery {
                artifact.exact(
                    &format!("{point}.recovery.torn_tails"),
                    "count",
                    rec.torn_tails_dropped,
                );
                artifact.exact(
                    &format!("{point}.recovery.crc_dropped"),
                    "count",
                    rec.crc_dropped,
                );
                artifact.exact(
                    &format!("{point}.recovery.entries"),
                    "count",
                    rec.recovered_entries as u64,
                );
                artifact.exact(
                    &format!("{point}.recovery.quarantine"),
                    "count",
                    rec.recovered_quarantine as u64,
                );
            }
            println!(
                "{:<10} {:>5} {:>9} {:>7} {:>7} {:>11} {:>9.2} {:>7}  {}",
                app_name,
                rate,
                injected,
                failed,
                retries,
                outcome
                    .degraded
                    .as_ref()
                    .map(|d| format!("{d:?}"))
                    .unwrap_or_else(|| "-".into()),
                outcome.observed_speedup,
                recovered,
                if ok {
                    "ok".to_string()
                } else {
                    verdict.join(", ")
                }
            );
        }
    }

    println!();
    if let Some(path) = &json_path {
        artifact.emit(path);
    }
    if failures == 0 {
        println!("chaos sweep passed: all sessions terminated with bit-identical results");
        ExitCode::SUCCESS
    } else {
        eprintln!("chaos sweep FAILED: {failures} invariant violations");
        ExitCode::FAILURE
    }
}
