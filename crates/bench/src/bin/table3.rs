//! Reproduces **Table III**: the constant per-candidate overheads of the
//! ASIP-SP process — C2V (Netlist Generation), Syntax check, Xst,
//! Translate, and Bitgen — as mean ± standard deviation over all embedded
//! candidates, plus the EAPR-vs-regular bitgen comparison discussed in
//! §V-C.
//!
//! Usage: `cargo run --release -p jitise-bench --bin table3`

use jitise_apps::App;
use jitise_base::stats::OnlineStats;
use jitise_base::table::{fnum, TextTable};
use jitise_cad::{run_flow, Fabric, FlowOptions};
use jitise_core::EvalContext;
use jitise_ir::Dfg;
use jitise_ise::{candidate_search, SearchConfig};
use jitise_pivpav::create_project;

fn main() {
    println!("=== Table III: constant overheads of the ASIP-SP process ===\n");
    let ctx = EvalContext::new();
    let fabric = Fabric::pr_region();

    let mut c2v = OnlineStats::new();
    let mut syn = OnlineStats::new();
    let mut xst = OnlineStats::new();
    let mut tra = OnlineStats::new();
    let mut bitgen = OnlineStats::new();
    let mut bitgen_full = OnlineStats::new();
    let mut total_candidates = 0usize;

    for app in App::embedded() {
        let profile = app.scaled_profile();
        let search = candidate_search(
            &app.module,
            &profile,
            &ctx.estimator,
            &SearchConfig::default(),
        );
        for sel in &search.selection.selected {
            let cand = &sel.candidate;
            let f = app.module.func(cand.key.func);
            let dfg = Dfg::build(f, cand.key.block);
            let (project, c2v_t) =
                create_project(&ctx.db, &ctx.netlists, f, &dfg, cand).expect("project");
            let report = run_flow(&fabric, &project, &FlowOptions::fast()).expect("flow");
            let full = run_flow(
                &fabric,
                &project,
                &FlowOptions {
                    eapr: false,
                    ..FlowOptions::fast()
                },
            )
            .expect("full flow");
            c2v.push(c2v_t.total().as_secs_f64());
            syn.push(report.syntax.as_secs_f64());
            xst.push(report.xst.as_secs_f64());
            tra.push(report.translate.as_secs_f64());
            bitgen.push(report.bitgen.as_secs_f64());
            bitgen_full.push(full.bitgen.as_secs_f64());
            total_candidates += 1;
        }
    }

    let sum_mean = c2v.mean() + syn.mean() + xst.mean() + tra.mean() + bitgen.mean();
    let mut t = TextTable::new(vec![
        "",
        "C2V[s]",
        "Syn[s]",
        "Xst[s]",
        "Tra[s]",
        "Bitgen[s]",
        "Sum[s]",
    ]);
    t.row(vec![
        "measured avg".to_string(),
        fnum(c2v.mean(), 2),
        fnum(syn.mean(), 2),
        fnum(xst.mean(), 2),
        fnum(tra.mean(), 2),
        fnum(bitgen.mean(), 2),
        fnum(sum_mean, 2),
    ]);
    t.row(vec![
        "measured stdev".to_string(),
        fnum(c2v.stdev(), 2),
        fnum(syn.stdev(), 2),
        fnum(xst.stdev(), 2),
        fnum(tra.stdev(), 2),
        fnum(bitgen.stdev(), 2),
        "".to_string(),
    ]);
    t.rule();
    t.row(vec![
        "paper avg".to_string(),
        "3.22".to_string(),
        "4.22".to_string(),
        "10.60".to_string(),
        "8.99".to_string(),
        "151.00".to_string(),
        "178.03".to_string(),
    ]);
    t.row(vec![
        "paper stdev".to_string(),
        "0.10".to_string(),
        "0.10".to_string(),
        "0.23".to_string(),
        "1.22".to_string(),
        "2.43".to_string(),
        "".to_string(),
    ]);
    println!("{}", t.render());

    println!("\ncandidates measured: {total_candidates}");
    println!(
        "bitgen share of constant overhead: measured {:.0}% (paper: 85%)",
        100.0 * bitgen.mean() / sum_mean
    );
    println!(
        "EAPR partial bitgen {:.0} s vs regular full-bitstream flow {:.0} s (paper: 151 s vs 41 s)",
        bitgen.mean(),
        bitgen_full.mean()
    );
}
