//! Reproduces the **in-text §V-C candidate-complexity sweep**: mapping
//! times of 40–456 s, place-and-route times of 56–728 s, a PAR/map ratio
//! growing from 1.4× (small candidates) to 2.5× (large/complex ones), and
//! the near-constant bitgen time.
//!
//! Usage: `cargo run --release -p jitise-bench --bin sweep`

use jitise_base::table::{fnum, TextTable};
use jitise_cad::{run_flow, Fabric, FlowOptions};
use jitise_core::EvalContext;
use jitise_ir::{BlockId, Dfg, FuncId, FunctionBuilder, Operand as Op, Type};
use jitise_ise::{Candidate, ForbiddenPolicy};
use jitise_pivpav::create_project;
use jitise_vm::BlockKey;

/// Builds a candidate of `n` operations with the given operator mix.
fn candidate_of(n: usize, heavy: bool) -> (jitise_ir::Function, Dfg, Candidate) {
    let mut b = FunctionBuilder::new("sweep", vec![Type::I32, Type::I32], Type::I32);
    let mut v = b.add(Op::Arg(0), Op::Arg(1));
    for i in 1..n {
        v = if heavy {
            match i % 3 {
                0 => b.mul(v, Op::Arg(0)),
                1 => b.sdiv(v, Op::ci32(7)),
                _ => b.mul(v, Op::ci32(3)),
            }
        } else {
            match i % 3 {
                0 => b.add(v, Op::Arg(1)),
                1 => b.xor(v, Op::ci32(0x55)),
                _ => b.shl(v, Op::ci32(1)),
            }
        };
    }
    b.ret(v);
    let f = b.finish();
    let dfg = Dfg::build(&f, BlockId(0));
    let cand = jitise_ise::maxmiso(
        &f,
        &dfg,
        BlockKey::new(FuncId(0), BlockId(0)),
        &ForbiddenPolicy::default(),
        2,
    )
    .candidates
    .remove(0);
    (f, dfg, cand)
}

fn main() {
    println!("=== §V-C sweep: map / PAR runtimes vs candidate complexity ===\n");
    let ctx = EvalContext::new();
    let fabric = Fabric::pr_region();

    let mut t = TextTable::new(vec![
        "candidate",
        "ops",
        "complexity",
        "map[s]",
        "par[s]",
        "par/map",
        "bitgen[s]",
        "fmax[MHz]",
    ]);
    let mut min_map = f64::MAX;
    let mut max_map: f64 = 0.0;
    let mut min_par = f64::MAX;
    let mut max_par: f64 = 0.0;
    let mut min_ratio = f64::MAX;
    let mut max_ratio: f64 = 0.0;

    let shapes: Vec<(String, usize, bool)> = vec![
        ("tiny-logic".into(), 3, false),
        ("small-logic".into(), 6, false),
        ("medium-logic".into(), 12, false),
        ("large-logic".into(), 24, false),
        ("small-arith".into(), 4, true),
        ("medium-arith".into(), 8, true),
        ("large-arith".into(), 16, true),
        ("huge-arith".into(), 28, true),
    ];
    for (name, ops, heavy) in shapes {
        let (f, dfg, cand) = candidate_of(ops, heavy);
        let (project, _) = create_project(&ctx.db, &ctx.netlists, &f, &dfg, &cand).unwrap();
        let r = run_flow(&fabric, &project, &FlowOptions::fast()).unwrap();
        let map_s = r.map.as_secs_f64();
        let par_s = r.par.as_secs_f64();
        let ratio = par_s / map_s;
        min_map = min_map.min(map_s);
        max_map = max_map.max(map_s);
        min_par = min_par.min(par_s);
        max_par = max_par.max(par_s);
        min_ratio = min_ratio.min(ratio);
        max_ratio = max_ratio.max(ratio);
        t.row(vec![
            name,
            ops.to_string(),
            fnum(r.complexity, 0),
            fnum(map_s, 1),
            fnum(par_s, 1),
            fnum(ratio, 2),
            fnum(r.bitgen.as_secs_f64(), 1),
            fnum(r.timing.fmax_mhz, 0),
        ]);
    }
    println!("{}", t.render());

    println!("\n--- paper vs measured ranges ---");
    let mut pt = TextTable::new(vec!["quantity", "paper", "measured"]);
    pt.row(vec![
        "map range [s]".to_string(),
        "40 - 456".to_string(),
        format!("{:.0} - {:.0}", min_map, max_map),
    ]);
    pt.row(vec![
        "PAR range [s]".to_string(),
        "56 - 728".to_string(),
        format!("{:.0} - {:.0}", min_par, max_par),
    ]);
    pt.row(vec![
        "PAR/map ratio".to_string(),
        "1.4 - 2.5".to_string(),
        format!("{:.2} - {:.2}", min_ratio, max_ratio),
    ]);
    println!("{}", pt.render());
}
