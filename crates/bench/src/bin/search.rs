//! Candidate-search sweep: workers × memo (DESIGN.md §12).
//!
//! Runs the parallel, memoizable `candidate_search` over a synthetic
//! multi-block module (many hot loops → many pruned blocks) and sweeps
//! `SearchConfig::workers` over {1, 2, 8} with the identification memo
//! off, cold, and warm. Per point it reports the schedule-model makespan
//! of the identification stage (`identify_makespan` over the outcome's
//! per-block work vector — machine-independent, like the CAD sweep's
//! makespan), the modeled speedup vs one lane, the measured wall-clock of
//! the whole search (min over repeats), and the memo counters. The
//! `SearchOutcome` fingerprint is asserted identical across every point —
//! the sweep doubles as a determinism smoke test.
//!
//! Usage: `cargo run --release -p jitise-bench --bin search [-- --smoke]
//! [--json FILE]` (`--smoke` shrinks the module and skips repeats, for
//! CI; `--json` additionally writes the sweep as a `BENCH_*`-schema
//! artifact).

use jitise_base::table::{fnum, TextTable};
use jitise_bench::schema::BenchArtifact;
use jitise_bench::workload::{search_module, search_profile};
use jitise_ir::Module;
use jitise_ise::{
    candidate_search, identify_makespan, Algorithm, DepthEstimator, PruneFilter, SearchConfig,
    SearchMemo, SearchOutcome,
};
use jitise_vm::Profile;
use std::sync::Arc;
use std::time::Duration;

const LANES: &[usize] = &[1, 2, 8];

fn run_search(
    m: &Module,
    p: &Profile,
    workers: usize,
    memo: Option<Arc<SearchMemo>>,
) -> SearchOutcome {
    let cfg = SearchConfig {
        filter: PruneFilter::none(),
        algorithm: Algorithm::SingleCut,
        workers,
        memo,
        ..SearchConfig::default()
    };
    candidate_search(m, p, &DepthEstimator::default(), &cfg)
}

/// Minimum wall-clock over `repeats` identical searches.
fn timed(
    m: &Module,
    p: &Profile,
    workers: usize,
    memo: Option<&Arc<SearchMemo>>,
    repeats: usize,
) -> (SearchOutcome, Duration) {
    let mut best: Option<(SearchOutcome, Duration)> = None;
    for _ in 0..repeats.max(1) {
        let out = run_search(m, p, workers, memo.cloned());
        let t = out.real_time;
        if best.as_ref().is_none_or(|(_, b)| t < *b) {
            best = Some((out, t));
        }
    }
    best.expect("at least one repeat")
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = jitise_bench::schema::take_json_path(&mut args);
    let smoke = args.iter().any(|a| a == "--smoke");
    let (loops, iters, repeats) = if smoke { (6, 200, 1) } else { (24, 2_000, 5) };

    let mut artifact = BenchArtifact::new("search_sweep", 0, smoke);
    artifact.config("loops", loops);
    artifact.config("iters", iters);
    artifact.config("algorithm", "singlecut");

    let module = search_module(loops);
    let profile = search_profile(&module, iters);

    println!("=== candidate-search sweep: workers x memo (SINGLECUT, unpruned) ===");
    println!(
        "module: {} blocks, {} insts; identify work is modeled in units\n\
         (explored subsets + DFG nodes per block), real[ms] is measured\n\
         wall-clock (min of {repeats} run(s))\n",
        module.num_blocks(),
        module.num_insts(),
    );

    let mut t = TextTable::new(vec![
        "workers",
        "memo",
        "ident[units]",
        "makespan[units]",
        "speedup",
        "real[ms]",
        "hits",
        "misses",
    ]);
    let mut fingerprint: Option<u64> = None;
    let mut seq_makespan: Option<u64> = None;
    let mut check = |out: &SearchOutcome| {
        let fp = out.fingerprint();
        match fingerprint {
            None => fingerprint = Some(fp),
            Some(first) => assert_eq!(
                first, fp,
                "outcome must be identical for any worker count and memo state"
            ),
        }
    };
    for &workers in LANES {
        // Memo off.
        let (out, real) = timed(&module, &profile, workers, None, repeats);
        check(&out);
        let total: u64 = out.identify_work.iter().map(|&(_, w)| w).sum();
        let makespan = identify_makespan(&out.identify_work, workers);
        let seq = *seq_makespan.get_or_insert(makespan);
        if workers == LANES[0] {
            artifact.exact("identify.work", "units", total);
            artifact.exact("fingerprint", "hash", out.fingerprint());
        }
        artifact.exact(&format!("identify.makespan.w{workers}"), "units", makespan);
        artifact.info(
            &format!("real.off.w{workers}"),
            "ms",
            real.as_secs_f64() * 1e3,
        );
        t.row(vec![
            workers.to_string(),
            "off".into(),
            total.to_string(),
            makespan.to_string(),
            fnum(seq as f64 / makespan.max(1) as f64, 2),
            fnum(real.as_secs_f64() * 1e3, 2),
            "-".into(),
            "-".into(),
        ]);
        // Memo cold (fresh) then warm (same memo, second search).
        let memo = Arc::new(SearchMemo::new());
        for state in ["cold", "warm"] {
            let repeats = if state == "cold" { 1 } else { repeats };
            let (out, real) = timed(&module, &profile, workers, Some(&memo), repeats);
            check(&out);
            let makespan = identify_makespan(&out.identify_work, workers);
            if state == "warm" {
                artifact.exact(&format!("memo.warm_hits.w{workers}"), "count", memo.hits());
            }
            artifact.info(
                &format!("real.{state}.w{workers}"),
                "ms",
                real.as_secs_f64() * 1e3,
            );
            t.row(vec![
                workers.to_string(),
                state.into(),
                total.to_string(),
                makespan.to_string(),
                fnum(seq as f64 / makespan.max(1) as f64, 2),
                fnum(real.as_secs_f64() * 1e3, 2),
                memo.hits().to_string(),
                memo.misses().to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "fingerprint identical across all {} points: OK",
        3 * LANES.len()
    );
    if let Some(path) = json_path {
        artifact.emit(&path);
    }
}
