//! Perf-trajectory harness: seeded deterministic workloads for five
//! topics, one schema-versioned `BENCH_<topic>.json` artifact each, and a
//! regression gate (DESIGN.md §13).
//!
//! Topics:
//!
//! * `search`   — candidate-search wall-clock: cold/warm [`SearchMemo`],
//!   1/2/8 worker lanes, plus the modeled identification makespans;
//! * `cad`      — CAD schedule makespan vs `cad_workers`, charged tool
//!   time invariant across lanes;
//! * `vm`       — interpreter instructions/cycles per paper app and the
//!   sweep's host MIPS;
//! * `store`    — recovery time and committed-prefix accounting under a
//!   mid-write crash budget;
//! * `pipeline` — end-to-end `specialize()` + `run_adaptive()` session
//!   latency and modeled overhead;
//! * `storm`    — phase-storm resilience: `run_storm()` over a rotating
//!   hot set (detection, eviction, re-specialization counters, recovery
//!   quality), invariant across CAD lanes, plus a crash-storm run (burst
//!   faults + a store crash budget + phase churn in one session);
//! * `serve`    — multi-tenant service: admission/defer/shed counters,
//!   fleet time-to-first-speedup quantiles, shared-cache hit rate vs
//!   population, all bit-identical across `cad_workers`, plus a
//!   crash-storm recovery gate (store death mid-serve under burst CAD
//!   faults) and a seeded near-duplicate cache-thrash sweep;
//! * `overlay`  — two-tier installation (DESIGN.md §17): overlay
//!   install latency vs the full CAD flow across the paper sweep (gated
//!   ≥100×), the measured two-tier break-even collapse vs full-only
//!   deployment, and adaptive-session fingerprint invariance across
//!   CAD lanes with the overlay enabled.
//!
//! Every artifact records machine metadata, seed, config knobs, min /
//! median / p90 host nanoseconds next to the modeled SimTime numbers, and
//! the telemetry profiler's per-stage self-time breakdown (plus
//! deterministic collapsed stacks for flamegraph tools). Exact metrics
//! are bit-identical across same-seed runs; host metrics carry
//! repetitions.
//!
//! Usage:
//!
//! ```text
//! bench [--smoke] [--seed N] [--out DIR] [--folded] [topic ...]
//! bench --check FILE... [--against DIR|FILE] [--tolerance F] [--floor-ns F]
//! ```
//!
//! `--check` gates each baseline file against `--against` (a directory of
//! fresh artifacts, or one file), or — without `--against` — against a
//! live rerun of the topic at the baseline's recorded seed and scale.
//! Exits 1 on regression, 2 on usage/parse errors.

use jitise_apps::App;
use jitise_apps::{build_phased, PhasedSpec};
use jitise_base::hash::hash_bytes;
use jitise_bench::runner::{measure_host, measure_host_cold};
use jitise_bench::schema::{check, BenchArtifact, CheckPolicy, CheckReport};
use jitise_bench::workload::{search_module, search_profile};
use jitise_core::{
    evaluate_app, run_adaptive_with, run_storm, AdaptiveOptions, BitstreamCache, EvalContext,
    PhasePolicy, PhaseSegment, StormOptions,
};
use jitise_faults::{Bursts, CrashSwitch, FaultInjector, FaultPlan, FaultSite, StoreCrash};
use jitise_ise::{
    candidate_search, identify_makespan, Algorithm, DepthEstimator, PruneFilter, SearchConfig,
    SearchMemo,
};
use jitise_serve::{run_serve, ServeConfig};
use jitise_store::testfix::sample_entry;
use jitise_store::{Record, Store, StoreOptions, TempDir};
use jitise_telemetry::{Profiler, Telemetry};
use jitise_vm::{CostModel, Interpreter, PredecodedModule, Value};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

const TOPICS: [&str; 8] = [
    "search", "cad", "vm", "store", "pipeline", "storm", "serve", "overlay",
];
/// Default workload seed — the paper's year, like the chaos harness.
const DEFAULT_SEED: u64 = 2011;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_cli(&args) {
        Ok(Cli::Bench(opts)) => run_bench(&opts),
        Ok(Cli::Check(opts)) => run_check(&opts),
        Err(msg) => {
            eprintln!("bench: {msg}");
            ExitCode::from(2)
        }
    }
}

enum Cli {
    Bench(BenchOpts),
    Check(CheckOpts),
}

struct BenchOpts {
    smoke: bool,
    seed: u64,
    out: PathBuf,
    folded: bool,
    topics: Vec<String>,
}

struct CheckOpts {
    baselines: Vec<PathBuf>,
    against: Option<PathBuf>,
    policy: CheckPolicy,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut smoke = false;
    let mut folded = false;
    let mut is_check = false;
    let mut seed = DEFAULT_SEED;
    let mut out = PathBuf::from(".");
    let mut against = None;
    let mut policy = CheckPolicy::default();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--folded" => folded = true,
            "--check" => is_check = true,
            "--seed" => {
                seed = value_of("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => out = PathBuf::from(value_of("--out")?),
            "--against" => against = Some(PathBuf::from(value_of("--against")?)),
            "--tolerance" => {
                policy.tolerance = value_of("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?;
            }
            "--floor-ns" => {
                policy.floor_ns = value_of("--floor-ns")?
                    .parse()
                    .map_err(|e| format!("--floor-ns: {e}"))?;
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => positional.push(other.to_string()),
        }
    }
    if is_check {
        if positional.is_empty() {
            return Err("--check needs at least one baseline file".into());
        }
        Ok(Cli::Check(CheckOpts {
            baselines: positional.iter().map(PathBuf::from).collect(),
            against,
            policy,
        }))
    } else {
        for t in &positional {
            if !TOPICS.contains(&t.as_str()) {
                return Err(format!(
                    "unknown topic `{t}` (known: {})",
                    TOPICS.join(", ")
                ));
            }
        }
        let topics = if positional.is_empty() {
            TOPICS.iter().map(|s| s.to_string()).collect()
        } else {
            positional
        };
        Ok(Cli::Bench(BenchOpts {
            smoke,
            seed,
            out,
            folded,
            topics,
        }))
    }
}

fn run_topic(topic: &str, seed: u64, smoke: bool) -> BenchArtifact {
    match topic {
        "search" => bench_search(seed, smoke),
        "cad" => bench_cad(seed, smoke),
        "vm" => bench_vm(seed, smoke),
        "store" => bench_store(seed, smoke),
        "pipeline" => bench_pipeline(seed, smoke),
        "storm" => bench_storm(seed, smoke),
        "serve" => bench_serve(seed, smoke),
        "overlay" => bench_overlay(seed, smoke),
        other => unreachable!("topic {other} was validated at parse time"),
    }
}

fn run_bench(opts: &BenchOpts) -> ExitCode {
    if let Err(e) = std::fs::create_dir_all(&opts.out) {
        eprintln!("bench: create {}: {e}", opts.out.display());
        return ExitCode::from(2);
    }
    for topic in &opts.topics {
        eprintln!(
            "bench: running topic `{topic}` (seed {}, smoke {})",
            opts.seed, opts.smoke
        );
        let artifact = run_topic(topic, opts.seed, opts.smoke);
        let path = opts.out.join(format!("BENCH_{topic}.json"));
        if let Err(e) = std::fs::write(&path, artifact.to_pretty_string()) {
            eprintln!("bench: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} metrics, {} profile stages)",
            path.display(),
            artifact.metrics.len(),
            artifact.profile.len()
        );
        if opts.folded {
            let folded = opts.out.join(format!("BENCH_{topic}.folded"));
            if let Err(e) = std::fs::write(&folded, &artifact.collapsed) {
                eprintln!("bench: write {}: {e}", folded.display());
                return ExitCode::from(2);
            }
            println!("wrote {}", folded.display());
        }
    }
    ExitCode::SUCCESS
}

fn run_check(opts: &CheckOpts) -> ExitCode {
    let mut failed = false;
    for path in &opts.baselines {
        let baseline = match read_artifact(path) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("bench: {e}");
                return ExitCode::from(2);
            }
        };
        let current = match &opts.against {
            Some(target) if target.is_dir() => {
                match read_artifact(&target.join(format!("BENCH_{}.json", baseline.topic))) {
                    Ok(a) => a,
                    Err(e) => {
                        eprintln!("bench: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            Some(file) => match read_artifact(file) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("bench: {e}");
                    return ExitCode::from(2);
                }
            },
            None => {
                eprintln!(
                    "bench: rerunning topic `{}` live (seed {}, smoke {})",
                    baseline.topic, baseline.seed, baseline.smoke
                );
                if !TOPICS.contains(&baseline.topic.as_str()) {
                    eprintln!("bench: baseline topic `{}` is unknown", baseline.topic);
                    return ExitCode::from(2);
                }
                run_topic(&baseline.topic, baseline.seed, baseline.smoke)
            }
        };
        failed |= !report_check(&baseline.topic, &check(&baseline, &current, &opts.policy));
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("bench --check: no regressions");
        ExitCode::SUCCESS
    }
}

fn report_check(topic: &str, report: &CheckReport) -> bool {
    for note in &report.notes {
        println!("note: {note}");
    }
    for regression in &report.regressions {
        eprintln!("REGRESSION: {regression}");
    }
    if report.ok() {
        println!("{topic}: ok");
    }
    report.ok()
}

fn read_artifact(path: &Path) -> Result<BenchArtifact, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    BenchArtifact::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

// ---------------------------------------------------------------- search

fn bench_search(seed: u64, smoke: bool) -> BenchArtifact {
    let (loops, iters, reps) = if smoke { (6, 200, 2) } else { (24, 2_000, 5) };
    let mut art = BenchArtifact::new("search", seed, smoke);
    art.config("loops", loops);
    art.config("iters", iters);
    art.config("algorithm", "singlecut");

    let module = search_module(loops);
    let profile = search_profile(&module, iters);
    let search = |workers: usize, memo: Option<Arc<SearchMemo>>| {
        let cfg = SearchConfig {
            filter: PruneFilter::none(),
            algorithm: Algorithm::SingleCut,
            workers,
            memo,
            ..SearchConfig::default()
        };
        candidate_search(&module, &profile, &DepthEstimator::default(), &cfg)
    };

    // Modeled (exact) axis: work units, per-lane makespans, fingerprint.
    let out = search(1, None);
    let total_work: u64 = out.identify_work.iter().map(|&(_, w)| w).sum();
    art.exact("search.identify.work", "units", total_work);
    art.exact("search.identified", "count", out.identified as u64);
    art.exact("search.fingerprint", "hash", out.fingerprint());
    for lanes in [1usize, 2, 8] {
        art.exact(
            &format!("search.identify.makespan.w{lanes}"),
            "units",
            identify_makespan(&out.identify_work, lanes),
        );
    }
    let memo = Arc::new(SearchMemo::new());
    let _ = search(1, Some(Arc::clone(&memo)));
    let cold_misses = memo.misses();
    let _ = search(1, Some(Arc::clone(&memo)));
    art.exact("search.memo.cold_misses", "count", cold_misses);
    art.exact("search.memo.warm_hits", "count", memo.hits());

    // Host axis: cold (fresh memo every run) vs warm (pre-warmed, shared)
    // at 1 and 8 lanes.
    for lanes in [1usize, 8] {
        let sample = measure_host(reps, || {
            let _ = search(lanes, Some(Arc::new(SearchMemo::new())));
        });
        art.push(&format!("search.cold.w{lanes}.wall"), "ns", sample.metric());
        let warm = Arc::new(SearchMemo::new());
        let _ = search(lanes, Some(Arc::clone(&warm)));
        let sample = measure_host(reps, || {
            let _ = search(lanes, Some(Arc::clone(&warm)));
        });
        art.push(&format!("search.warm.w{lanes}.wall"), "ns", sample.metric());
    }

    // Instrumented pass for the profile section.
    let tel = Telemetry::enabled();
    let cfg = SearchConfig {
        filter: PruneFilter::none(),
        algorithm: Algorithm::SingleCut,
        workers: 2,
        telemetry: tel.clone(),
        ..SearchConfig::default()
    };
    let _ = candidate_search(&module, &profile, &DepthEstimator::default(), &cfg);
    art.set_profile(&Profiler::from_snapshot(&tel.snapshot()));
    art
}

// ------------------------------------------------------------------- cad

fn bench_cad(seed: u64, smoke: bool) -> BenchArtifact {
    let app_name = "adpcm";
    let lanes = [1usize, 2, 4, 8];
    let reps = if smoke { 2 } else { 3 };
    let mut art = BenchArtifact::new("cad", seed, smoke);
    art.config("app", app_name);
    art.config("lanes", "1,2,4,8");

    let mut fingerprint = None;
    for lane in lanes {
        // Fresh context per lane: shared caches would zero later makespans.
        let mut ctx = EvalContext::new();
        ctx.cad_workers = lane;
        let app = App::build(app_name).expect("paper app");
        let ev = evaluate_app(&ctx, &app);
        art.exact(
            &format!("cad.makespan.w{lane}"),
            "sim_ns",
            ev.report.makespan.as_nanos(),
        );
        if fingerprint.is_none() {
            fingerprint = Some(ev.report.fingerprint());
            art.exact("cad.cpu_time", "sim_ns", ev.report.cpu_time.as_nanos());
            art.exact(
                "cad.fingerprint",
                "hash",
                hash_bytes(ev.report.fingerprint().as_bytes()),
            );
        } else {
            assert_eq!(
                fingerprint.as_deref(),
                Some(ev.report.fingerprint().as_str()),
                "report must be identical across lane counts"
            );
        }
    }

    for lane in [1usize, 8] {
        let sample = measure_host(reps, || {
            let mut ctx = EvalContext::new();
            ctx.cad_workers = lane;
            let app = App::build(app_name).expect("paper app");
            let _ = evaluate_app(&ctx, &app);
        });
        art.push(&format!("cad.evaluate.w{lane}.wall"), "ns", sample.metric());
    }

    let tel = Telemetry::enabled();
    let mut ctx = EvalContext::with_telemetry(tel.clone());
    ctx.cad_workers = 2;
    let app = App::build(app_name).expect("paper app");
    let _ = evaluate_app(&ctx, &app);
    art.set_profile(&Profiler::from_snapshot(&tel.snapshot()));
    art
}

// -------------------------------------------------------------------- vm

fn bench_vm(seed: u64, smoke: bool) -> BenchArtifact {
    let apps: Vec<&'static str> = if smoke {
        vec!["adpcm", "sor", "fft"]
    } else {
        jitise_apps::PAPER_APPS.iter().map(|p| p.name).collect()
    };
    let reps = if smoke { 2 } else { 3 };
    let mut art = BenchArtifact::new("vm", seed, smoke);
    art.config("apps", apps.join(","));

    let built: Vec<App> = apps
        .iter()
        .map(|name| App::build(name).expect("paper app"))
        .collect();
    // Pre-decoded forms, built once per app — the fast tier's whole premise
    // is that the decode amortizes across runs, so it stays outside the
    // timed region (its one-time cost is reported separately below).
    let pds: Vec<Arc<PredecodedModule>> = built
        .iter()
        .map(|app| Arc::new(PredecodedModule::build(&app.module, &CostModel::ppc405())))
        .collect();

    let mut total_steps = 0u64;
    let mut total_cycles = 0u64;
    let mut fast_canon = String::new();
    for (app, pd) in built.iter().zip(&pds) {
        let mut vm = Interpreter::new(&app.module);
        let out = vm
            .run(app.entry, &app.datasets[0].args)
            .expect("paper app runs");
        let profile = vm.take_profile();
        // Corrected accounting: the dynamic-instruction count and the
        // profile total are the same number (DESIGN.md §15).
        assert_eq!(
            out.steps,
            profile.total_insts(),
            "{}: steps must equal profile total_insts",
            app.name
        );
        // Tier identity: the fast tier must agree on every observable.
        let mut fast = Interpreter::new(&app.module);
        fast.set_predecoded(Arc::clone(pd));
        let fout = fast
            .run(app.entry, &app.datasets[0].args)
            .expect("paper app runs (fast tier)");
        assert_eq!(out, fout, "{}: fast tier diverged on outcome", app.name);
        let fprofile = fast.take_profile();
        assert_eq!(
            profile, fprofile,
            "{}: fast tier diverged on profile",
            app.name
        );
        // Canonical fast-tier observables, folded into one exact metric so
        // the determinism rerun and the committed-baseline gate cover the
        // tier bit-for-bit (not just through in-process assertions).
        fast_canon.push_str(&format!(
            "{}:steps={} cycles={} ret={:?};",
            app.name, fout.steps, fout.cycles, fout.ret
        ));
        let mut rows: Vec<_> = fprofile
            .keys()
            .map(|k| (k.func.0, k.block.0, fprofile.count(k)))
            .collect();
        rows.sort_unstable();
        for (f, b, n) in rows {
            fast_canon.push_str(&format!("{f}.{b}={n},"));
        }
        art.exact(&format!("vm.{}.steps", app.name), "count", out.steps);
        art.exact(&format!("vm.{}.cycles", app.name), "count", out.cycles);
        total_steps += out.steps;
        total_cycles += out.cycles;
    }
    art.exact("vm.total.steps", "count", total_steps);
    art.exact("vm.total.cycles", "count", total_cycles);
    art.exact(
        "vm.fast.fingerprint",
        "hash",
        hash_bytes(fast_canon.as_bytes()),
    );

    let sample = measure_host(reps, || {
        for app in &built {
            let mut vm = Interpreter::new(&app.module);
            let _ = vm
                .run(app.entry, &app.datasets[0].args)
                .expect("paper app runs");
        }
    });
    // Derived from the min (best-case host throughput); informational.
    art.info(
        "vm.sweep.mips",
        "mips",
        total_steps as f64 / (sample.min_ns / 1e9) / 1e6,
    );
    art.push("vm.sweep.wall", "ns", sample.metric());

    // The same sweep on the pre-decoded fast tier (decode already paid).
    let fast_sample = measure_host(reps, || {
        for (app, pd) in built.iter().zip(&pds) {
            let mut vm = Interpreter::new(&app.module);
            vm.set_predecoded(Arc::clone(pd));
            let _ = vm
                .run(app.entry, &app.datasets[0].args)
                .expect("paper app runs (fast tier)");
        }
    });
    art.push("vm.fast.sweep.wall", "ns", fast_sample.metric());
    art.info(
        "vm.fast.sweep.mips",
        "mips",
        total_steps as f64 / (fast_sample.min_ns / 1e9) / 1e6,
    );
    art.info(
        "vm.fast.speedup",
        "ratio",
        sample.min_ns / fast_sample.min_ns.max(1.0),
    );
    // One-time decode cost for the whole app set, for context.
    let decode_sample = measure_host(reps, || {
        for app in &built {
            let _ = PredecodedModule::build(&app.module, &CostModel::ppc405());
        }
    });
    art.info("vm.fast.decode.wall_min_ns", "ns", decode_sample.min_ns);

    let tel = Telemetry::enabled();
    for app in &built {
        let mut vm = Interpreter::new(&app.module);
        vm.set_telemetry(tel.clone());
        let _ = vm
            .run(app.entry, &app.datasets[0].args)
            .expect("paper app runs");
    }
    art.set_profile(&Profiler::from_snapshot(&tel.snapshot()));
    art
}

// ----------------------------------------------------------------- store

fn bench_store(seed: u64, smoke: bool) -> BenchArtifact {
    let entries = if smoke { 64u64 } else { 512 };
    let reps = if smoke { 3 } else { 5 };
    let mut art = BenchArtifact::new("store", seed, smoke);
    art.config("entries", entries);

    let sig = |i: u64| seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i);
    // Snapshot + live WAL tail: `entries` records folded into a compacted
    // snapshot, then half as many replayed from the log on recovery.
    let populate = |dir: &Path| {
        let store = Store::open(dir).expect("fresh store");
        for i in 0..entries {
            store
                .append(Record::CacheEntry(sample_entry(sig(i))))
                .expect("append");
        }
        store.compact().expect("compact");
        for i in 0..entries / 2 {
            store
                .append(Record::CacheEntry(sample_entry(sig(entries + i))))
                .expect("append");
        }
        store.bytes_written()
    };
    let dir = TempDir::new("bench-store");
    let bytes = populate(dir.path());
    art.exact("store.bytes_written", "bytes", bytes);

    let recovered = Store::open(dir.path()).expect("recovery");
    art.exact(
        "store.recovered.records",
        "count",
        recovered.recovery().records_recovered,
    );
    art.exact(
        "store.recovered.entries",
        "count",
        recovered.recovery().recovered_entries as u64,
    );
    art.exact(
        "store.recovered.fingerprint",
        "hash",
        hash_bytes(recovered.fingerprint().as_bytes()),
    );
    drop(recovered);

    // Host axis: cold recovery of the populated directory, and the full
    // populate pass (append + compact + append) on a fresh directory.
    let sample = measure_host_cold(reps, || {
        let _ = Store::open(dir.path()).expect("recovery");
    });
    art.push("store.recover.wall", "ns", sample.metric());
    let sample = measure_host_cold(reps, || {
        let fresh = TempDir::new("bench-store-pop");
        let _ = populate(fresh.path());
    });
    art.push("store.populate.wall", "ns", sample.metric());

    // Crash budget: die halfway through the byte stream of a fresh
    // population; the committed prefix is exactly what recovery restores.
    let budget = bytes / 2;
    art.config("crash_budget_bytes", budget);
    let crash_dir = TempDir::new("bench-store-crash");
    let mut acked = 0u64;
    if let Ok(store) = Store::open_with(
        crash_dir.path(),
        StoreOptions {
            crash: jitise_faults::CrashSwitch::armed(jitise_faults::StoreCrash {
                after_bytes: budget,
            }),
            ..StoreOptions::default()
        },
    ) {
        for i in 0..entries + entries / 2 {
            if store
                .append(Record::CacheEntry(sample_entry(sig(i))))
                .is_err()
            {
                break;
            }
            acked += 1;
        }
    }
    let survivor = Store::open(crash_dir.path()).expect("post-crash recovery");
    art.exact("store.crash.acked", "count", acked);
    art.exact(
        "store.crash.recovered.records",
        "count",
        survivor.recovery().records_recovered,
    );
    assert_eq!(
        survivor.recovery().records_recovered,
        acked,
        "recovered must equal the acknowledged prefix"
    );
    drop(survivor);

    // Instrumented pass: recovery span + a short append/compact tail.
    let tel = Telemetry::enabled();
    let store = Store::open_with(
        dir.path(),
        StoreOptions {
            telemetry: tel.clone(),
            ..StoreOptions::default()
        },
    )
    .expect("instrumented recovery");
    store
        .append(Record::CacheEntry(sample_entry(sig(u64::MAX))))
        .expect("append");
    store.compact().expect("compact");
    art.set_profile(&Profiler::from_snapshot(&tel.snapshot()));
    art
}

// -------------------------------------------------------------- pipeline

fn bench_pipeline(seed: u64, smoke: bool) -> BenchArtifact {
    let app_name = "adpcm";
    let total_runs = 4u32;
    let ready_after = 2u32;
    let reps = if smoke { 2 } else { 3 };
    let mut art = BenchArtifact::new("pipeline", seed, smoke);
    art.config("app", app_name);
    art.config("total_runs", total_runs);
    art.config("ready_after", ready_after);

    let app = App::build(app_name).expect("paper app");
    let session = |ctx: &EvalContext, cache: &BitstreamCache| {
        run_adaptive_with(
            ctx,
            cache,
            &app.module,
            app.entry,
            &app.datasets[0].args,
            total_runs,
            ready_after,
            &AdaptiveOptions::default(),
        )
        .expect("session terminates")
    };

    let outcome = session(&EvalContext::new(), &BitstreamCache::new());
    let report = outcome.report.as_ref().expect("session specializes");
    art.exact("pipeline.makespan", "sim_ns", report.makespan.as_nanos());
    art.exact("pipeline.sum_time", "sim_ns", report.sum_time.as_nanos());
    art.exact(
        "pipeline.candidates",
        "count",
        report.candidates.len() as u64,
    );
    art.exact("pipeline.cache_hits", "count", report.cache_hits as u64);
    art.exact("pipeline.overhead", "sim_ns", outcome.overhead.as_nanos());
    art.exact(
        "pipeline.speedup_bits",
        "f64_bits",
        outcome.observed_speedup.to_bits(),
    );
    art.exact(
        "pipeline.fingerprint",
        "hash",
        hash_bytes(outcome.fingerprint().as_bytes()),
    );

    // Cold session: fresh caches every repetition. Warm session: the
    // bitstream cache persists, so specialization is all cache hits.
    let sample = measure_host(reps, || {
        let _ = session(&EvalContext::new(), &BitstreamCache::new());
    });
    art.push("pipeline.cold.wall", "ns", sample.metric());
    let warm_cache = BitstreamCache::new();
    let _ = session(&EvalContext::new(), &warm_cache);
    let sample = measure_host(reps, || {
        let _ = session(&EvalContext::new(), &warm_cache);
    });
    art.push("pipeline.warm.wall", "ns", sample.metric());

    let tel = Telemetry::enabled();
    let ctx = EvalContext::with_telemetry(tel.clone());
    let _ = session(&ctx, &BitstreamCache::new());
    art.set_profile(&Profiler::from_snapshot(&tel.snapshot()));
    art
}

// ----------------------------------------------------------------- storm

fn bench_storm(seed: u64, smoke: bool) -> BenchArtifact {
    let (kernels, hot_iters, first_runs, phase_runs) = if smoke {
        (2u32, 120i32, 6u32, 10u32)
    } else {
        (3, 240, 8, 10)
    };
    let reps = if smoke { 2 } else { 3 };
    let mut art = BenchArtifact::new("storm", seed, smoke);
    art.config("kernels", kernels);
    art.config("hot_iters", hot_iters);
    art.config("phase_runs", phase_runs);

    let module = build_phased(&PhasedSpec {
        seed,
        kernels,
        hot_iters,
        ..PhasedSpec::default()
    });
    // Rotation schedule: every kernel gets a phase; each phase change
    // must be detected, the stale CIs evicted, and the new hot set
    // re-specialized.
    let mut schedule = vec![PhaseSegment::new(
        vec![Value::I(0), Value::I(2)],
        first_runs,
    )];
    for k in 1..kernels {
        schedule.push(PhaseSegment::new(
            vec![Value::I(k as i64), Value::I(2)],
            phase_runs,
        ));
    }
    let total_runs: u32 = schedule.iter().map(|s| s.runs).sum();
    let policy = PhasePolicy {
        window: 2,
        cold_share: 0.2,
        hysteresis: 2,
        cooldown: 2,
        max_respecs: kernels,
    };
    let storm_opts = |base: AdaptiveOptions| StormOptions {
        base,
        policy,
        ready_after_runs: 2,
        ..StormOptions::default()
    };
    let session = |ctx: &EvalContext, cache: &BitstreamCache, base: AdaptiveOptions| {
        run_storm(ctx, cache, &module, "main", &schedule, &storm_opts(base)).expect("storm runs")
    };

    // Exact axis: the storm must be bit-identical across CAD lanes.
    let mut fingerprint = None;
    let mut steady = 0u64;
    for lanes in [1usize, 2, 8] {
        let out = session(
            &EvalContext::new(),
            &BitstreamCache::new(),
            AdaptiveOptions {
                cad_workers: lanes,
                ..AdaptiveOptions::default()
            },
        );
        let fp = out.fingerprint();
        match &fingerprint {
            None => {
                assert!(out.degraded.is_none(), "healthy storm must not degrade");
                assert!(out.phases_detected >= 1, "rotation must be detected");
                assert!(out.evictions >= 1, "eviction must fire");
                assert!(out.respecs >= 1, "re-specialization must land");
                art.exact("storm.runs", "count", total_runs as u64);
                art.exact("storm.phases_detected", "count", out.phases_detected as u64);
                art.exact("storm.evictions", "count", out.evictions);
                art.exact("storm.respecs", "count", out.respecs as u64);
                art.exact("storm.respecs_denied", "count", out.respecs_denied as u64);
                art.exact("storm.degraded_events", "count", out.degraded_events as u64);
                art.exact("storm.swaps", "count", out.swaps as u64);
                art.exact("storm.fingerprint", "hash", hash_bytes(fp.as_bytes()));
                // The workload's answers never change: bit-identical to a
                // software-only interpreter pass.
                let mut software = Vec::new();
                for s in &schedule {
                    for _ in 0..s.runs {
                        let mut vm = Interpreter::new(&module);
                        software.push(vm.run("main", &s.args).expect("software run").ret);
                    }
                }
                assert_eq!(out.results, software, "storm must stay software-equivalent");
                steady = *out.run_cycles.last().expect("runs recorded");
                fingerprint = Some(fp);
            }
            Some(want) => assert_eq!(want, &fp, "storm must be bit-identical across cad_workers"),
        }
    }

    // Recovery quality: the steady state after the last phase change must
    // be within 10% of a fresh-start session that only ever saw that
    // phase (acceptance bound: ≤ 1100 permille).
    let fresh_schedule = [schedule.last().expect("schedule").clone()];
    let fresh = run_storm(
        &EvalContext::new(),
        &BitstreamCache::new(),
        &module,
        "main",
        &fresh_schedule,
        &storm_opts(AdaptiveOptions::default()),
    )
    .expect("fresh session");
    let fresh_steady = *fresh.run_cycles.last().expect("runs recorded");
    let permille = steady * 1000 / fresh_steady.max(1);
    assert!(
        permille <= 1100,
        "post-respec steady state must be within 10% of fresh-start ({permille} permille)"
    );
    art.exact("storm.recovery_permille", "permille", permille);

    // Crash-storm: burst-correlated CAD faults, a store that dies mid-
    // session, and the same phase churn — in one run. The session must
    // finish software-equivalent, and a restart must recover exactly the
    // committed (post-eviction) prefix.
    let plan = FaultPlan::none(seed)
        .with_rate(FaultSite::CadPlace, 0.25)
        .with_rate(FaultSite::CadRoute, 0.25)
        .with_bursts(Bursts {
            period: 6,
            width: 2,
            boost: 3.0,
            calm: 0.0,
        });
    let store_session = |crash: CrashSwitch, dir: &Path| {
        let store = Arc::new(
            Store::open_with(
                dir,
                StoreOptions {
                    crash,
                    ..StoreOptions::default()
                },
            )
            .expect("store opens"),
        );
        let out = session(
            &EvalContext::new(),
            &BitstreamCache::new(),
            AdaptiveOptions {
                faults: FaultInjector::from_plan(plan.clone()),
                store: Some(Arc::clone(&store)),
                ..AdaptiveOptions::default()
            },
        );
        (out, store)
    };
    // Dry pass fixes the deterministic crash budget at half the bytes a
    // full session journals.
    let dry_dir = TempDir::new("bench-storm-dry");
    let (_, dry_store) = store_session(CrashSwitch::disabled(), dry_dir.path());
    let budget = dry_store.bytes_written() / 2;
    drop(dry_store);
    art.config("crash_budget_bytes", budget);

    let crash_dir = TempDir::new("bench-storm-crash");
    let (out, store) = store_session(
        CrashSwitch::armed(StoreCrash {
            after_bytes: budget,
        }),
        crash_dir.path(),
    );
    assert!(
        out.degraded.is_none(),
        "a store crash must not degrade execution"
    );
    let live_fp = store.state().fingerprint();
    drop(store);
    let survivor = Store::open(crash_dir.path()).expect("post-crash recovery");
    assert_eq!(
        survivor.state().fingerprint(),
        live_fp,
        "recovery must restore exactly the committed prefix"
    );
    art.exact(
        "storm.crash.phases_detected",
        "count",
        out.phases_detected as u64,
    );
    art.exact("storm.crash.evictions", "count", out.evictions);
    art.exact("storm.crash.respecs", "count", out.respecs as u64);
    art.exact(
        "storm.crash.degraded_events",
        "count",
        out.degraded_events as u64,
    );
    art.exact(
        "storm.crash.recovered.records",
        "count",
        survivor.recovery().records_recovered,
    );
    art.exact(
        "storm.crash.recovered.fingerprint",
        "hash",
        hash_bytes(live_fp.as_bytes()),
    );
    art.exact(
        "storm.crash.fingerprint",
        "hash",
        hash_bytes(out.fingerprint().as_bytes()),
    );
    drop(survivor);

    // Host axis: one full healthy storm session per repetition.
    let sample = measure_host(reps, || {
        let _ = session(
            &EvalContext::new(),
            &BitstreamCache::new(),
            AdaptiveOptions::default(),
        );
    });
    art.push("storm.session.wall", "ns", sample.metric());

    // Instrumented pass for the profile section.
    let tel = Telemetry::enabled();
    let ctx = EvalContext::with_telemetry(tel.clone());
    let _ = session(&ctx, &BitstreamCache::new(), AdaptiveOptions::default());
    art.set_profile(&Profiler::from_snapshot(&tel.snapshot()));
    art
}

/// Serve scale: fleet size, admission slots, defer-queue depth, distinct
/// workload seeds, and kernel trip count.
fn serve_scale(smoke: bool) -> (u32, usize, usize, u32, i32) {
    if smoke {
        (16, 4, 2, 3, 60)
    } else {
        (200, 12, 8, 6, 100)
    }
}

fn bench_serve(seed: u64, smoke: bool) -> BenchArtifact {
    let (tenants, max_active, defer_capacity, distinct, hot_iters) = serve_scale(smoke);
    let reps = if smoke { 2 } else { 3 };
    let mut art = BenchArtifact::new("serve", seed, smoke);
    art.config("tenants", tenants);
    art.config("max_active", max_active as u64);
    art.config("defer_capacity", defer_capacity as u64);
    art.config("distinct_workloads", distinct);
    art.config("hot_iters", hot_iters);

    let config_for = |cad_workers: usize, fleet: u32| ServeConfig {
        seed,
        tenants: fleet,
        cad_workers,
        max_active,
        defer_capacity,
        arrival_spacing_us: 100,
        service_model_us: if smoke { 600 } else { 2_000 },
        runs_per_tenant: 3,
        distinct_workloads: distinct,
        hot_iters,
        ..ServeConfig::default()
    };

    // Exact axis: the whole fleet outcome must be bit-identical across
    // pool widths — admission, degradation, cache traffic, answers. A
    // fresh EvalContext per run: its netlist cache is shared
    // infrastructure, and a warm one legitimately changes C2V charges.
    let mut fingerprint = None;
    let mut full_hits = 0u64;
    for lanes in [1usize, 2, 8] {
        let out = run_serve(&EvalContext::new(), &config_for(lanes, tenants)).expect("serve runs");
        let fp = out.fingerprint();
        match &fingerprint {
            None => {
                assert!(out.admitted >= 1, "nothing admitted at arrival");
                assert!(out.deferred >= 1, "defer queue never used");
                assert!(out.shed >= 1, "load shedding never triggered");
                assert!(out.cache_hits >= 1, "shared cache never hit");
                art.exact("serve.admitted", "count", out.admitted as u64);
                art.exact("serve.deferred", "count", out.deferred as u64);
                art.exact("serve.shed", "count", out.shed as u64);
                art.exact("serve.degraded", "count", out.degraded as u64);
                art.exact("serve.cache_hits", "count", out.cache_hits);
                art.exact("serve.fresh", "count", out.fresh);
                art.exact("serve.fingerprint", "hash", hash_bytes(fp.as_bytes()));
                full_hits = out.cache_hits;
                fingerprint = Some(fp);
            }
            Some(want) => {
                assert_eq!(want, &fp, "serve must be bit-identical across cad_workers")
            }
        }
        // The DRR timing post-pass is deterministic per lane count;
        // record the fleet latency picture at each width.
        art.exact(
            &format!("serve.lanes{lanes}.ttfs_p50_us"),
            "us",
            out.timing.ttfs_p50_us,
        );
        art.exact(
            &format!("serve.lanes{lanes}.ttfs_p99_us"),
            "us",
            out.timing.ttfs_p99_us,
        );
        art.exact(
            &format!("serve.lanes{lanes}.queue_depth"),
            "count",
            out.timing.max_queue_depth as u64,
        );
        art.exact(
            &format!("serve.lanes{lanes}.pool_makespan"),
            "sim_ns",
            out.timing.makespan.as_nanos(),
        );
    }

    // Shared-cache hit rate vs tenant population: a fleet twice the size
    // revisits the same workload combos more often, so the absolute hit
    // count must grow with population.
    let half = run_serve(&EvalContext::new(), &config_for(2, tenants / 2)).expect("half fleet");
    let rate = |hits: u64, fresh: u64| hits * 1000 / (hits + fresh).max(1);
    art.exact("serve.half_fleet.cache_hits", "count", half.cache_hits);
    art.exact(
        "serve.half_fleet.hit_permille",
        "permille",
        rate(half.cache_hits, half.fresh),
    );
    assert!(
        full_hits >= half.cache_hits,
        "cache hits must not shrink as the population doubles ({} < {})",
        full_hits,
        half.cache_hits
    );

    // Crash-storm recovery gate: burst CAD faults (keyed per tenant
    // epoch) while the store dies at 60% of the byte stream. Recovery
    // must restore exactly the committed prefix, and every tenant's
    // answers stay correct (the engine's tests pin the per-tenant
    // details; here we gate the counters and the recovered fingerprint).
    let storm_plan = FaultPlan::uniform(0.08, seed ^ 0x73746f726d).with_bursts(Bursts {
        period: 5,
        width: 2,
        boost: 6.0,
        calm: 0.2,
    });
    let storm_config = |store: Option<Arc<Store>>| ServeConfig {
        faults: FaultInjector::from_plan(storm_plan.clone()),
        store,
        // A small capacity forces FIFO evictions, so the journal carries
        // Evict tombstones through the crash.
        cache_capacity: 8,
        ..config_for(2, tenants)
    };
    let dry_dir = TempDir::new("bench-serve-dry");
    let dry_store = Arc::new(Store::open(dry_dir.path()).expect("store opens"));
    let dry = run_serve(
        &EvalContext::new(),
        &storm_config(Some(Arc::clone(&dry_store))),
    )
    .expect("dry storm serve");
    assert!(dry.degraded >= 1, "storm must degrade at least one tenant");
    assert!(
        dry.degraded < dry.admitted + dry.deferred,
        "storm must leave some tenants healthy"
    );
    let budget = dry_store.bytes_written() * 6 / 10;
    drop(dry_store);
    art.config("crash_budget_bytes", budget);
    art.exact("serve.storm.degraded", "count", dry.degraded as u64);
    art.exact("serve.storm.evictions", "count", dry.evictions);

    let crash_dir = TempDir::new("bench-serve-crash");
    let store = Arc::new(
        Store::open_with(
            crash_dir.path(),
            StoreOptions {
                crash: CrashSwitch::armed(StoreCrash {
                    after_bytes: budget,
                }),
                ..StoreOptions::default()
            },
        )
        .expect("store opens"),
    );
    let out = run_serve(&EvalContext::new(), &storm_config(Some(Arc::clone(&store))))
        .expect("crash storm serve");
    // Every lane-invariant observable — admissions, degradations, and
    // all workload answers — must be byte-equal to the dry pass: the
    // store's death never leaks into execution.
    assert_eq!(
        out.tenants, dry.tenants,
        "the store's death must never leak into tenant outcomes"
    );
    let committed = store.state().fingerprint();
    drop(store);
    let survivor = Store::open(crash_dir.path()).expect("post-crash recovery");
    assert_eq!(
        survivor.state().fingerprint(),
        committed,
        "recovery must restore exactly the committed prefix"
    );
    art.exact(
        "serve.storm.recovered.records",
        "count",
        survivor.recovery().records_recovered,
    );
    art.exact(
        "serve.storm.recovered.fingerprint",
        "hash",
        hash_bytes(committed.as_bytes()),
    );
    drop(survivor);

    // Seeded cache-thrash sweep (ROADMAP item 5): near-duplicate kernels
    // give every workload distinct same-shaped signatures, and shrinking
    // the shared cache forces them to fight over the slots. The fleet
    // stays correct and lane-invariant (pinned by the serve tests); here
    // we record how the hit economy collapses as capacity drops.
    for capacity in [2usize, 8, 64] {
        let thrash = run_serve(
            &EvalContext::new(),
            &ServeConfig {
                near_duplicate: true,
                cache_capacity: capacity,
                ..config_for(2, tenants)
            },
        )
        .expect("thrash fleet");
        art.exact(
            &format!("serve.thrash.cap{capacity}.cache_hits"),
            "count",
            thrash.cache_hits,
        );
        art.exact(
            &format!("serve.thrash.cap{capacity}.fresh"),
            "count",
            thrash.fresh,
        );
        art.exact(
            &format!("serve.thrash.cap{capacity}.evictions"),
            "count",
            thrash.evictions,
        );
        art.exact(
            &format!("serve.thrash.cap{capacity}.hit_permille"),
            "permille",
            rate(thrash.cache_hits, thrash.fresh),
        );
        art.exact(
            &format!("serve.thrash.cap{capacity}.fingerprint"),
            "hash",
            hash_bytes(thrash.fingerprint().as_bytes()),
        );
        if capacity == 2 {
            assert!(
                thrash.evictions >= 1,
                "a two-slot cache under near-duplicate thrash must evict"
            );
        }
    }

    // Host axis: one full healthy fleet per repetition.
    let sample = measure_host(reps, || {
        let _ = run_serve(&EvalContext::new(), &config_for(2, tenants));
    });
    art.push("serve.fleet.wall", "ns", sample.metric());

    // Instrumented pass for the profile section.
    let tel = Telemetry::enabled();
    let ctx = EvalContext::with_telemetry(tel.clone());
    let mut cfg = config_for(2, tenants);
    cfg.telemetry = tel.clone();
    let _ = run_serve(&ctx, &cfg);
    art.set_profile(&Profiler::from_snapshot(&tel.snapshot()));
    art
}

// --------------------------------------------------------------- overlay

fn bench_overlay(seed: u64, smoke: bool) -> BenchArtifact {
    let apps: Vec<&'static str> = if smoke {
        vec!["adpcm", "sor", "fft"]
    } else {
        jitise_apps::PAPER_APPS.iter().map(|p| p.name).collect()
    };
    let reps = if smoke { 2 } else { 3 };
    let mut art = BenchArtifact::new("overlay", seed, smoke);
    art.config("apps", apps.join(","));

    // Two-tier sweep: every app evaluated with the overlay enabled. The
    // install-latency claim is the tentpole acceptance gate — assembling
    // candidates from pre-implemented cells must be ≥100× cheaper than
    // the full map/place/route flow, across the whole sweep.
    let ctx = EvalContext::new().with_overlay();
    let mut full_ns: u128 = 0;
    let mut overlay_ns: u128 = 0;
    let mut installs = 0u64;
    let mut upgrades = 0u64;
    let mut full_only_be_ns: u128 = 0;
    let mut two_tier_be_ns: u128 = 0;
    let mut amortizing = 0u64;
    for name in &apps {
        let app = App::build(name).expect("paper app");
        let ev = evaluate_app(&ctx, &app);
        // Cache hits and overlay-map fallbacks legitimately skip the
        // assembly step, so installs is bounded by — not equal to — the
        // candidate count.
        assert!(
            ev.report.overlay_installs <= ev.report.candidates.len(),
            "{name}: more overlay installs than candidates"
        );
        full_ns += ev.report.sum_time.as_nanos() as u128;
        overlay_ns += ev.report.overlay_time.as_nanos() as u128;
        installs += ev.report.overlay_installs as u64;
        upgrades += ev.report.upgrades as u64;
        art.exact(
            &format!("overlay.{name}.install_ns"),
            "sim_ns",
            ev.report.overlay_time.as_nanos(),
        );
        art.exact(
            &format!("overlay.{name}.full_cad_ns"),
            "sim_ns",
            ev.report.sum_time.as_nanos(),
        );
        // Break-even collapse, measured from the specialization request:
        // full-only waits out the whole CAD makespan before amortizing;
        // two-tier starts earning on the overlay immediately.
        if let (Some(be), Some(tt)) = (ev.break_even, ev.break_even_two_tier) {
            let full_only = ev.report.makespan + be;
            full_only_be_ns += full_only.as_nanos() as u128;
            two_tier_be_ns += tt.as_nanos() as u128;
            amortizing += 1;
            art.exact(
                &format!("overlay.{name}.break_even.full_only_ns"),
                "sim_ns",
                full_only.as_nanos(),
            );
            art.exact(
                &format!("overlay.{name}.break_even.two_tier_ns"),
                "sim_ns",
                tt.as_nanos(),
            );
            // Not asserted per-app: a candidate set that is slower on the
            // degraded overlay fabric than in software has
            // `overlay_saved_frac == 0`, and the two-tier number is then
            // honestly *worse* by the (tiny) assembly cost. The collapse
            // gate is sweep-wide, below.
        }
    }
    assert!(amortizing >= 1, "sweep must contain amortizing apps");
    assert!(
        two_tier_be_ns < full_only_be_ns,
        "two-tier break-even must collapse vs full-only across the sweep \
         ({two_tier_be_ns} vs {full_only_be_ns})"
    );
    assert!(installs >= 1, "sweep must engage the overlay fast path");
    let ratio = full_ns / overlay_ns.max(1);
    assert!(
        ratio >= 100,
        "overlay install must be >=100x cheaper than full CAD (got {ratio}x)"
    );
    art.exact("overlay.sweep.full_cad_ns", "sim_ns", full_ns as u64);
    art.exact("overlay.sweep.install_ns", "sim_ns", overlay_ns as u64);
    art.exact("overlay.sweep.latency_ratio", "ratio", ratio as u64);
    art.exact("overlay.sweep.installs", "count", installs);
    art.exact("overlay.sweep.upgrades", "count", upgrades);
    art.exact(
        "overlay.sweep.break_even.full_only_ns",
        "sim_ns",
        full_only_be_ns as u64,
    );
    art.exact(
        "overlay.sweep.break_even.two_tier_ns",
        "sim_ns",
        two_tier_be_ns as u64,
    );

    // Lane invariance with the overlay enabled: the adaptive session's
    // fingerprint must be bit-identical across CAD pool widths (fresh
    // context per run — the netlist cache legitimately changes charges).
    let app = App::build("adpcm").expect("paper app");
    let session = |lanes: usize| {
        let ctx = EvalContext::new();
        let opts = AdaptiveOptions {
            cad_workers: lanes,
            overlay: Some(Arc::new(jitise_cad::OverlayLibrary::from_db(&ctx.db))),
            ..AdaptiveOptions::default()
        };
        run_adaptive_with(
            &ctx,
            &BitstreamCache::new(),
            &app.module,
            app.entry,
            &app.datasets[0].args,
            4,
            2,
            &opts,
        )
        .expect("overlay session terminates")
    };
    let mut fingerprint = None;
    for lanes in [1usize, 2, 8] {
        let out = session(lanes);
        // Everything observable except `overhead`: the makespan is the one
        // field that legitimately shrinks with more CAD lanes (see
        // `StormOutcome::fingerprint`, which excludes it for the same
        // reason).
        let fp = format!(
            "rb={} ra={} cb={} ca={} sp={:016x} degraded={:?} results={:?} report={}",
            out.runs_before,
            out.runs_after,
            out.cycles_before,
            out.cycles_after,
            out.observed_speedup.to_bits(),
            out.degraded,
            out.results,
            out.report
                .as_ref()
                .map(|r| r.fingerprint())
                .unwrap_or_else(|| "none".into()),
        );
        match &fingerprint {
            None => {
                let report = out.report.as_ref().expect("session specializes");
                assert!(report.overlay_installs >= 1, "two-tier path must engage");
                art.exact(
                    "overlay.session.installs",
                    "count",
                    report.overlay_installs as u64,
                );
                art.exact("overlay.session.upgrades", "count", report.upgrades as u64);
                art.exact(
                    "overlay.session.overlay_ns",
                    "sim_ns",
                    report.overlay_time.as_nanos(),
                );
                art.exact("overlay.fingerprint", "hash", hash_bytes(fp.as_bytes()));
                fingerprint = Some(fp);
            }
            Some(want) => assert_eq!(
                want, &fp,
                "overlay session must be bit-identical across cad_workers"
            ),
        }
    }

    // Host axis: one full overlay-enabled adaptive session per rep.
    let sample = measure_host(reps, || {
        let _ = session(2);
    });
    art.push("overlay.session.wall", "ns", sample.metric());

    // Instrumented pass for the profile section.
    let tel = Telemetry::enabled();
    let ctx = EvalContext::with_telemetry(tel.clone()).with_overlay();
    let app = App::build("sor").expect("paper app");
    let _ = evaluate_app(&ctx, &app);
    art.set_profile(&Profiler::from_snapshot(&tel.snapshot()));
    art
}
