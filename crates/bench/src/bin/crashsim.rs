//! Crash-sim harness: sweeps the store's crash-point budget across a full
//! adaptive session and proves the persistence contract of DESIGN.md §11:
//!
//! 1. **Recovery always succeeds** — whatever byte the process died at,
//!    [`Store::open`] returns `Ok` on the survivor's first restart;
//! 2. **Recovered = committed** — the reopened store's state fingerprint
//!    equals the crashed session's in-memory fold of *acknowledged*
//!    appends: never an uncommitted suffix, never a lost committed record;
//! 3. **Warm restart is observationally honest** — a second session fed by
//!    the recovered store is bit-identical (same report fingerprint) to a
//!    session whose cache and quarantine were seeded by hand from the
//!    recovered state;
//! 4. **Break-even improves** (§VI-A) — the warm session's adaptation
//!    overhead never exceeds the cold session's, and vanishes entirely
//!    when the whole cache survived;
//! 5. **Transparency** — a store-attached session is byte-identical
//!    (same [`AdaptiveOutcome::fingerprint`]) to a storeless one, and a
//!    mid-session store death never changes workload results.
//!
//! Usage: `cargo run --release -p jitise-bench --bin crashsim [app]
//! [--full] [--json FILE]`
//!
//! By default the budget axis is strided (~16 crash points plus the
//! endpoints); `--full` sweeps every byte boundary. `--json` writes the
//! sweep's per-point counters (recovery breakdown, degraded-reason code,
//! quarantine size, warm-session hits/overhead) as a `BENCH_*`-schema
//! artifact. Exits non-zero on the first violated invariant. All store
//! files live in the system temp dir — the harness never writes inside
//! the repository.

use jitise_apps::App;
use jitise_bench::schema::BenchArtifact;
use jitise_core::{
    run_adaptive_with, AdaptiveOptions, AdaptiveOutcome, BitstreamCache, DegradedReason,
    EvalContext,
};
use jitise_faults::{CrashSwitch, Quarantine, StoreCrash};
use jitise_store::{Store, StoreOptions, TempDir};
use std::process::ExitCode;
use std::sync::Arc;

const TOTAL_RUNS: u32 = 4;
const READY_AFTER: u32 = 2;
/// Interior crash points in the default (strided) sweep.
const SWEEP_POINTS: u64 = 16;

/// One adaptive session: fresh context and cache, explicit options.
fn session(app: &App, cache: &BitstreamCache, options: &AdaptiveOptions) -> AdaptiveOutcome {
    let ctx = EvalContext::new();
    let args = app.datasets[0].args.clone();
    run_adaptive_with(
        &ctx,
        cache,
        &app.module,
        app.entry,
        &args,
        TOTAL_RUNS,
        READY_AFTER,
        options,
    )
    .expect("session must terminate gracefully")
}

fn store_options(crash: CrashSwitch) -> StoreOptions {
    StoreOptions {
        crash,
        ..StoreOptions::default()
    }
}

fn options_with_store(store: Option<Arc<Store>>) -> AdaptiveOptions {
    AdaptiveOptions {
        store,
        ..AdaptiveOptions::default()
    }
}

/// Stable numeric encoding of a session's degradation for the JSON
/// schema: 0 = healthy, 1 = worker disconnected, 2 = worker stalled,
/// 3 = specialization failed.
fn degraded_code(reason: Option<&DegradedReason>) -> u64 {
    match reason {
        None => 0,
        Some(DegradedReason::WorkerDisconnected) => 1,
        Some(DegradedReason::WorkerStalled) => 2,
        Some(DegradedReason::SpecializeFailed(_)) => 3,
        Some(DegradedReason::DeadlineExceeded) => 4,
    }
}

fn main() -> ExitCode {
    let mut app_name = "adpcm".to_string();
    let mut full = false;
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = jitise_bench::schema::take_json_path(&mut args);
    for arg in &args {
        match arg.as_str() {
            "--full" => full = true,
            other => app_name = other.to_string(),
        }
    }
    let app = App::build(&app_name).expect("paper app");
    let mut artifact = BenchArtifact::new("crashsim", 2011, !full);
    artifact.config("app", &app_name);
    println!("=== jitise crash-sim sweep ({app_name}) ===\n");

    // Cold baseline: no store at all. Every sweep point is measured
    // against this session's observables.
    let base = session(&app, &BitstreamCache::new(), &AdaptiveOptions::default());
    let base_report = base.report.as_ref().expect("baseline must specialize");
    let candidates = base_report.candidates.len();
    assert!(candidates > 0, "{app_name}: no specialization candidates");
    println!(
        "cold session: {candidates} candidates, overhead {} ns",
        base.overhead.as_nanos()
    );

    // Transparency + write-volume probe: the same session with a store
    // attached (never crashing) must be byte-identical, and tells us the
    // total byte budget the sweep walks.
    let probe_dir = TempDir::new("crashsim-probe");
    let probe_store = Arc::new(
        Store::open_with(probe_dir.path(), store_options(CrashSwitch::disabled()))
            .expect("probe store"),
    );
    let probed = session(
        &app,
        &BitstreamCache::new(),
        &options_with_store(Some(Arc::clone(&probe_store))),
    );
    let mut failures = 0u32;
    if probed.fingerprint() != base.fingerprint() {
        eprintln!("TRANSPARENCY VIOLATED: store-attached session diverged from storeless");
        failures += 1;
    }
    let total = probe_store.bytes_written();
    drop(probe_store);
    artifact.config("total_bytes", total);
    artifact.exact("crashsim.candidates", "count", candidates as u64);
    artifact.exact("crashsim.cold.overhead", "sim_ns", base.overhead.as_nanos());
    println!("store-attached session: transparent, {total} bytes journaled\n");

    let stride = if full {
        1
    } else {
        (total / SWEEP_POINTS).max(1)
    };
    let budgets: Vec<u64> = (0..=total)
        .step_by(stride as usize)
        .chain(std::iter::once(total))
        .collect();

    println!(
        "{:>7} {:>8} {:>7} {:>5} {:>4} {:>10} {:>12}  verdict",
        "budget", "records", "entries", "torn", "crc", "warm hits", "warm ovh ns"
    );
    for (bi, budget) in budgets.into_iter().enumerate() {
        let dir = TempDir::new("crashsim-sweep");
        let crash = CrashSwitch::armed(StoreCrash {
            after_bytes: budget,
        });

        // Crashed cold session. Opening the store can itself die (budget
        // inside the WAL header) — then nothing was ever acknowledged.
        let mut crashed_degraded = 0u64;
        let acked = match Store::open_with(dir.path(), store_options(crash)) {
            Ok(store) => {
                let store = Arc::new(store);
                let out = session(
                    &app,
                    &BitstreamCache::new(),
                    &options_with_store(Some(Arc::clone(&store))),
                );
                // A store death mid-session must never leak into the
                // workload: the whole outcome stays byte-identical.
                if out.fingerprint() != base.fingerprint() {
                    eprintln!("budget {budget}: CRASHED SESSION DIVERGED FROM BASELINE");
                    failures += 1;
                }
                crashed_degraded = degraded_code(out.degraded.as_ref());
                store.fingerprint()
            }
            Err(_) => jitise_store::StoreState::default().fingerprint(),
        };

        // Invariants 1 + 2: recovery succeeds and restores exactly the
        // acknowledged records.
        let recovered = match Store::open(dir.path()) {
            Ok(store) => Arc::new(store),
            Err(e) => {
                eprintln!("budget {budget}: RECOVERY FAILED: {e}");
                failures += 1;
                continue;
            }
        };
        let mut verdict = Vec::new();
        if recovered.fingerprint() != acked {
            verdict.push("RECOVERED != COMMITTED");
        }
        let rec = recovered.recovery().clone();
        let state = recovered.state();

        // Invariant 3: warm restart ≡ hand-seeded session.
        let warm_quarantine = Arc::new(Quarantine::new());
        let warm = session(
            &app,
            &BitstreamCache::new(),
            &AdaptiveOptions {
                quarantine: Arc::clone(&warm_quarantine),
                ..options_with_store(Some(Arc::clone(&recovered)))
            },
        );
        let seeded_cache = BitstreamCache::new();
        seeded_cache.absorb_store(&state);
        let seeded_quarantine = Arc::new(Quarantine::new());
        for (sig, reason) in &state.quarantine {
            seeded_quarantine.insert(*sig, reason);
        }
        let reference = session(
            &app,
            &seeded_cache,
            &AdaptiveOptions {
                quarantine: seeded_quarantine,
                ..AdaptiveOptions::default()
            },
        );
        let warm_report = warm.report.as_ref().expect("warm session must specialize");
        let ref_report = reference
            .report
            .as_ref()
            .expect("reference must specialize");
        if warm_report.fingerprint() != ref_report.fingerprint() {
            verdict.push("WARM != SEEDED");
        }

        // Invariant 4: §VI-A break-even never regresses, and a fully
        // recovered cache erases the adaptation overhead entirely.
        if warm.overhead > base.overhead {
            verdict.push("OVERHEAD REGRESSED");
        }
        if budget >= total
            && (warm.overhead.as_nanos() != 0 || warm_report.cache_hits != candidates)
        {
            verdict.push("FULL CACHE NOT WARM");
        }

        let ok = verdict.is_empty();
        failures += u32::from(!ok);
        let point = format!("crashsim.b{bi}");
        artifact.exact(&format!("{point}.budget"), "bytes", budget);
        artifact.exact(
            &format!("{point}.recovered.records"),
            "count",
            rec.records_recovered,
        );
        artifact.exact(
            &format!("{point}.recovered.entries"),
            "count",
            rec.recovered_entries as u64,
        );
        artifact.exact(
            &format!("{point}.recovery.torn_tails"),
            "count",
            rec.torn_tails_dropped,
        );
        artifact.exact(
            &format!("{point}.recovery.crc_dropped"),
            "count",
            rec.crc_dropped,
        );
        artifact.exact(
            &format!("{point}.degraded_reason"),
            "enum",
            crashed_degraded,
        );
        artifact.exact(
            &format!("{point}.warm.degraded_reason"),
            "enum",
            degraded_code(warm.degraded.as_ref()),
        );
        artifact.exact(
            &format!("{point}.quarantine.size"),
            "count",
            warm_quarantine.len() as u64,
        );
        artifact.exact(
            &format!("{point}.warm.cache_hits"),
            "count",
            warm_report.cache_hits as u64,
        );
        artifact.exact(
            &format!("{point}.warm.overhead"),
            "sim_ns",
            warm.overhead.as_nanos(),
        );
        println!(
            "{:>7} {:>8} {:>7} {:>5} {:>4} {:>10} {:>12}  {}",
            budget,
            rec.records_recovered,
            rec.recovered_entries,
            rec.torn_tails_dropped,
            rec.crc_dropped,
            warm_report.cache_hits,
            warm.overhead.as_nanos(),
            if ok {
                "ok".to_string()
            } else {
                verdict.join(", ")
            }
        );
    }

    println!();
    if let Some(path) = &json_path {
        artifact.emit(path);
    }
    if failures == 0 {
        println!("crash-sim sweep passed: every crash point recovered the committed prefix");
        ExitCode::SUCCESS
    } else {
        eprintln!("crash-sim sweep FAILED: {failures} invariant violations");
        ExitCode::FAILURE
    }
}
