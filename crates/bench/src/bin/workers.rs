//! Worker-lane sweep for the multi-worker CAD scheduler (DESIGN.md §10).
//!
//! Sweeps `cad_workers` over {1, 2, 4, 8} per application and reports the
//! charged tool time (`cpu`, invariant), the per-lane critical path
//! (`makespan`), the resulting schedule speedup, and the frequency-scaled
//! break-even time that amortizes the makespan. The report fingerprint is
//! checked to be identical across lane counts — the sweep doubles as a
//! determinism smoke test.
//!
//! Usage: `cargo run --release -p jitise-bench --bin workers
//! [--json FILE] [app ...]` (defaults to the embedded benchmark set;
//! `--json` additionally writes the sweep as a `BENCH_*`-schema
//! artifact).

use jitise_base::hash::hash_bytes;
use jitise_base::table::{fnum, TextTable};
use jitise_bench::schema::BenchArtifact;
use jitise_core::{evaluate_app, EvalContext};

const LANES: &[usize] = &[1, 2, 4, 8];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = jitise_bench::schema::take_json_path(&mut args);
    let apps: Vec<String> = if args.is_empty() {
        ["adpcm", "fft", "sor", "whetstone"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        args
    };
    let mut artifact = BenchArtifact::new("workers_sweep", 0, false);
    artifact.config("apps", apps.join(","));
    artifact.config(
        "lanes",
        LANES
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(","),
    );

    println!("=== CAD worker-lane sweep: makespan and break-even vs cad_workers ===\n");
    for name in &apps {
        let Some(_) = jitise_apps::App::build(name) else {
            eprintln!("unknown app `{name}`, skipping");
            continue;
        };
        let mut t = TextTable::new(vec![
            "workers",
            "cpu[min]",
            "makespan[min]",
            "speedup",
            "break-even",
        ]);
        let mut fingerprint: Option<String> = None;
        let mut seq_makespan = None;
        for &lanes in LANES {
            // A fresh context per point: shared caches across points would
            // turn later sweeps into all-hit runs and zero their makespan.
            let mut ctx = EvalContext::new();
            ctx.cad_workers = lanes;
            let app = jitise_apps::App::build(name).expect("checked above");
            let ev = evaluate_app(&ctx, &app);
            let fp = ev.report.fingerprint();
            match &fingerprint {
                None => {
                    artifact.exact(
                        &format!("{name}.fingerprint"),
                        "hash",
                        hash_bytes(fp.as_bytes()),
                    );
                    artifact.exact(
                        &format!("{name}.cpu_time"),
                        "sim_ns",
                        ev.report.cpu_time.as_nanos(),
                    );
                    fingerprint = Some(fp);
                }
                Some(first) => assert_eq!(
                    *first, fp,
                    "{name}: report must be identical for any worker count"
                ),
            }
            artifact.exact(
                &format!("{name}.makespan.w{lanes}"),
                "sim_ns",
                ev.report.makespan.as_nanos(),
            );
            if let Some(b) = ev.break_even {
                artifact.exact(
                    &format!("{name}.break_even.w{lanes}"),
                    "sim_ns",
                    b.as_nanos(),
                );
            }
            let seq = *seq_makespan.get_or_insert(ev.report.makespan);
            let speedup = if ev.report.makespan.as_nanos() > 0 {
                seq.as_nanos() as f64 / ev.report.makespan.as_nanos() as f64
            } else {
                1.0
            };
            t.row(vec![
                lanes.to_string(),
                fnum(ev.report.cpu_time.as_secs_f64() / 60.0, 1),
                fnum(ev.report.makespan.as_secs_f64() / 60.0, 1),
                fnum(speedup, 2),
                ev.break_even
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "never".into()),
            ]);
        }
        println!("--- {name} (fingerprint identical across lane counts) ---");
        println!("{}", t.render());
    }
    if let Some(path) = json_path {
        artifact.emit(&path);
    }
}
