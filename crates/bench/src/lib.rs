//! # jitise-bench — evaluation harness
//!
//! Table-reproduction binaries (`table1` … `table4`, `sweep`) and the
//! Criterion micro-benchmarks. The binaries print the same rows and
//! columns as the paper's tables, with measured values side by side with
//! the published ones; `EXPERIMENTS.md` archives their output.
//!
//! The `bench` binary is the perf-trajectory harness: it runs seeded
//! deterministic workloads for five topics (candidate search, CAD
//! makespan, VM interpreter, store recovery, end-to-end pipeline) and
//! writes one schema-versioned `BENCH_<topic>.json` artifact per topic
//! (see [`schema`]); `bench --check` gates a fresh run against committed
//! baselines. [`runner`] measures host time, [`workload`] builds the
//! shared synthetic workloads.

pub mod runner;
pub mod schema;
pub mod workload;

use jitise_apps::{App, Domain};
use jitise_core::{evaluate_app, AppEvaluation, EvalContext};

/// Mean of a selector over a slice.
pub fn mean_of<T, F: Fn(&T) -> f64>(xs: &[T], f: F) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().map(f).sum::<f64>() / xs.len() as f64
}

/// Evaluates every app of a domain (or all if `None`), in table order.
pub fn evaluate_domain(ctx: &EvalContext, domain: Option<Domain>) -> Vec<(App, AppEvaluation)> {
    jitise_apps::PAPER_APPS
        .iter()
        .filter(|p| domain.map(|d| p.domain == d).unwrap_or(true))
        .map(|p| {
            let app = App::build(p.name).expect("registry complete");
            let ev = evaluate_app(ctx, &app);
            (app, ev)
        })
        .collect()
}

/// The tables' RATIO row: scientific average over embedded average.
pub fn ratio_row(sci: f64, emb: f64) -> f64 {
    if emb == 0.0 {
        return 0.0;
    }
    sci / emb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_helper() {
        let xs = [1.0f64, 2.0, 3.0];
        assert_eq!(mean_of(&xs, |x| *x), 2.0);
        assert_eq!(mean_of::<f64, _>(&[], |x| *x), 0.0);
    }

    #[test]
    fn ratio_helper() {
        assert_eq!(ratio_row(10.0, 2.0), 5.0);
        assert_eq!(ratio_row(1.0, 0.0), 0.0);
    }
}
