//! Host-clock measurement for the perf binaries.
//!
//! Repetition statistics, not single shots: every timed section runs
//! `reps` times and reports min/median/p90 nanoseconds. The regression
//! gate compares the *min* — for CPU-bound work the noise is one-sided
//! (preemption, cold caches only ever add time), so the minimum is the
//! stablest location statistic a handful of repetitions can give.

use crate::schema::MetricValue;
use std::time::Instant;

/// Wall-clock statistics over repeated runs of one section.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostSample {
    /// Repetitions measured.
    pub reps: u64,
    /// Fastest repetition, nanoseconds.
    pub min_ns: f64,
    /// Median repetition, nanoseconds.
    pub median_ns: f64,
    /// 90th-percentile repetition, nanoseconds.
    pub p90_ns: f64,
}

impl HostSample {
    /// The sample as a [`MetricValue::Host`].
    pub fn metric(&self) -> MetricValue {
        MetricValue::Host {
            reps: self.reps,
            min_ns: self.min_ns,
            median_ns: self.median_ns,
            p90_ns: self.p90_ns,
        }
    }
}

/// Runs `f` once untimed (warm-up: page-in, lazy statics, allocator
/// growth), then `reps` timed repetitions.
pub fn measure_host(reps: usize, mut f: impl FnMut()) -> HostSample {
    f();
    measure_host_cold(reps, f)
}

/// Like [`measure_host`] but without the warm-up run — for sections whose
/// cold cost *is* the measurement (e.g. store recovery).
pub fn measure_host_cold(reps: usize, mut f: impl FnMut()) -> HostSample {
    let reps = reps.max(1);
    let mut samples: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as f64);
    }
    samples.sort_by(f64::total_cmp);
    HostSample {
        reps: reps as u64,
        min_ns: samples[0],
        median_ns: percentile(&samples, 0.5),
        p90_ns: percentile(&samples, 0.9),
    }
}

/// Nearest-rank percentile of an ascending-sorted, non-empty slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered_and_counted() {
        let mut calls = 0u32;
        let s = measure_host(5, || calls += 1);
        assert_eq!(calls, 6, "warm-up + 5 timed reps");
        assert_eq!(s.reps, 5);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.p90_ns);
    }

    #[test]
    fn cold_variant_skips_warmup() {
        let mut calls = 0u32;
        let s = measure_host_cold(3, || calls += 1);
        assert_eq!(calls, 3);
        assert_eq!(s.reps, 3);
    }

    #[test]
    fn single_rep_degenerates_gracefully() {
        let s = measure_host_cold(1, || std::hint::black_box(()));
        assert_eq!(
            (s.min_ns, s.median_ns, s.p90_ns),
            (s.min_ns, s.min_ns, s.min_ns)
        );
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
    }
}
