//! The `BENCH_<topic>.json` perf-artifact schema and the regression gate.
//!
//! Every perf binary in this crate funnels its numbers through
//! [`BenchArtifact`]: a schema-versioned, machine-readable record of one
//! benchmark topic — machine metadata, seed, config knobs, a flat metric
//! list, and the profiler's per-stage self-time breakdown. Artifacts are
//! written pretty-printed (humans read the diffs of committed baselines)
//! and parsed back by `bench --check`, which compares a fresh run against
//! a baseline and exits non-zero on regression.
//!
//! ## Metric classes
//!
//! * [`MetricValue::Exact`] — modeled values on the simulated clock or
//!   deterministic counts (makespans, fingerprints, instruction counts).
//!   Same seed + same config ⇒ bit-identical; the gate compares them
//!   with `==`, no tolerance.
//! * [`MetricValue::Host`] — wall-clock measurements. The gate compares
//!   the **min** over repetitions (the stablest location statistic for
//!   timing: noise is one-sided) within a relative tolerance plus an
//!   absolute floor that keeps microsecond-scale jitter from gating.
//! * [`MetricValue::Info`] — derived context (MIPS, speedups over host
//!   time). Never gated; differences are reported as notes.
//!
//! ## Versioning
//!
//! `schema` is `jitise-bench/<major>.<minor>`. [`BenchArtifact::parse`]
//! rejects a different major outright (the layout changed), and accepts
//! any minor (fields only ever get added).

use jitise_base::json::{Json, ObjBuilder};
use jitise_telemetry::Profiler;

/// Current schema tag written into every artifact.
pub const SCHEMA_VERSION: &str = "jitise-bench/1.0";
/// Major version this code can read.
pub const SCHEMA_MAJOR: u64 = 1;

/// Where the artifact was produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineInfo {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Available parallelism at measurement time.
    pub cpus: u64,
}

impl MachineInfo {
    /// Probes the current machine.
    pub fn current() -> MachineInfo {
        MachineInfo {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
        }
    }
}

/// One measured value (see the module docs for class semantics).
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Deterministic modeled value; gated bit-for-bit.
    Exact(u64),
    /// Host wall-clock statistics over `reps` repetitions, nanoseconds;
    /// gated on `min_ns` within tolerance.
    Host {
        /// Repetitions measured.
        reps: u64,
        /// Fastest repetition, nanoseconds.
        min_ns: f64,
        /// Median repetition, nanoseconds.
        median_ns: f64,
        /// 90th-percentile repetition, nanoseconds.
        p90_ns: f64,
    },
    /// Informational derived value; never gated.
    Info(f64),
}

/// A named, unit-tagged metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name, unique within one artifact.
    pub name: String,
    /// Unit label (`"ns"`, `"count"`, `"mips"`, …) — documentation only.
    pub unit: String,
    /// The value and its gating class.
    pub value: MetricValue,
}

/// One row of the profiler's per-stage breakdown (a flattened
/// [`jitise_telemetry::StageRollup`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileStage {
    /// Span name (stage).
    pub name: String,
    /// Spans folded in.
    pub count: u64,
    /// Summed host duration, ns.
    pub host_total_ns: u64,
    /// Host time not attributed to child spans, ns.
    pub host_self_ns: u64,
    /// Pow2-bucket upper bound on the median per-span host duration, ns.
    pub host_p50_ns: u64,
    /// Pow2-bucket upper bound on the p90 per-span host duration, ns.
    pub host_p90_ns: u64,
    /// Summed simulated duration, ns (exact).
    pub sim_total_ns: u64,
    /// Simulated self time, ns (exact).
    pub sim_self_ns: u64,
}

/// One complete `BENCH_<topic>.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArtifact {
    /// Schema tag (see [`SCHEMA_VERSION`]).
    pub schema: String,
    /// Topic name (`search`, `cad`, `vm`, `store`, `pipeline`, …).
    pub topic: String,
    /// Workload seed.
    pub seed: u64,
    /// True when produced at CI smoke scale (smoke and full-scale
    /// artifacts are never comparable).
    pub smoke: bool,
    /// Producing machine.
    pub machine: MachineInfo,
    /// Workload-shape knobs, as ordered key → value strings. Two
    /// artifacts gate against each other only if these match.
    pub config: Vec<(String, String)>,
    /// The measurements.
    pub metrics: Vec<Metric>,
    /// Per-stage self-time breakdown from the instrumented pass.
    pub profile: Vec<ProfileStage>,
    /// Collapsed-stack text (`path weight` lines, simulated-clock
    /// weights — deterministic), ready for flamegraph tooling.
    pub collapsed: String,
}

impl BenchArtifact {
    /// An empty artifact for `topic`, stamped with the current schema and
    /// machine.
    pub fn new(topic: &str, seed: u64, smoke: bool) -> BenchArtifact {
        BenchArtifact {
            schema: SCHEMA_VERSION.to_string(),
            topic: topic.to_string(),
            seed,
            smoke,
            machine: MachineInfo::current(),
            config: Vec::new(),
            metrics: Vec::new(),
            profile: Vec::new(),
            collapsed: String::new(),
        }
    }

    /// Records one config knob (ordered; duplicate keys are a bug).
    pub fn config(&mut self, key: &str, value: impl ToString) {
        debug_assert!(self.config.iter().all(|(k, _)| k != key));
        self.config.push((key.to_string(), value.to_string()));
    }

    /// Adds an [`MetricValue::Exact`] metric.
    pub fn exact(&mut self, name: &str, unit: &str, value: u64) {
        self.push(name, unit, MetricValue::Exact(value));
    }

    /// Adds an [`MetricValue::Info`] metric.
    pub fn info(&mut self, name: &str, unit: &str, value: f64) {
        self.push(name, unit, MetricValue::Info(value));
    }

    /// Adds a metric of any class.
    pub fn push(&mut self, name: &str, unit: &str, value: MetricValue) {
        debug_assert!(self.metrics.iter().all(|m| m.name != name));
        self.metrics.push(Metric {
            name: name.to_string(),
            unit: unit.to_string(),
            value,
        });
    }

    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Fills the profile section (rollups + sim-weighted collapsed
    /// stacks) from an instrumented pass.
    pub fn set_profile(&mut self, profiler: &Profiler) {
        self.profile = profiler
            .stages()
            .iter()
            .map(|s| ProfileStage {
                name: s.name.clone(),
                count: s.count,
                host_total_ns: s.host_total_ns,
                host_self_ns: s.host_self_ns,
                host_p50_ns: s.host_p50_ns,
                host_p90_ns: s.host_p90_ns,
                sim_total_ns: s.sim_total.as_nanos(),
                sim_self_ns: s.sim_self.as_nanos(),
            })
            .collect();
        let mut buf = Vec::new();
        profiler
            .write_collapsed(&mut buf, jitise_telemetry::StackWeight::SimNs)
            .expect("Vec<u8> write is infallible");
        self.collapsed = String::from_utf8(buf).expect("collapsed stacks are UTF-8");
    }

    /// Serializes to the JSON document model.
    pub fn to_json(&self) -> Json {
        let machine = ObjBuilder::new()
            .field("os", Json::Str(self.machine.os.clone()))
            .field("arch", Json::Str(self.machine.arch.clone()))
            .field("cpus", Json::U64(self.machine.cpus))
            .build();
        let config = Json::Obj(
            self.config
                .iter()
                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                .collect(),
        );
        let metrics = Json::Arr(self.metrics.iter().map(metric_to_json).collect());
        let profile = Json::Arr(
            self.profile
                .iter()
                .map(|s| {
                    ObjBuilder::new()
                        .field("name", Json::Str(s.name.clone()))
                        .field("count", Json::U64(s.count))
                        .field("host_total_ns", Json::U64(s.host_total_ns))
                        .field("host_self_ns", Json::U64(s.host_self_ns))
                        .field("host_p50_ns", Json::U64(s.host_p50_ns))
                        .field("host_p90_ns", Json::U64(s.host_p90_ns))
                        .field("sim_total_ns", Json::U64(s.sim_total_ns))
                        .field("sim_self_ns", Json::U64(s.sim_self_ns))
                        .build()
                })
                .collect(),
        );
        ObjBuilder::new()
            .field("schema", Json::Str(self.schema.clone()))
            .field("topic", Json::Str(self.topic.clone()))
            .field("seed", Json::U64(self.seed))
            .field("smoke", Json::Bool(self.smoke))
            .field("machine", machine)
            .field("config", config)
            .field("metrics", metrics)
            .field("profile", profile)
            .field("collapsed", Json::Str(self.collapsed.clone()))
            .build()
    }

    /// The pretty-printed document (what lands on disk).
    pub fn to_pretty_string(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Writes the pretty-printed artifact to `path` and echoes
    /// `wrote <path>` — the shared tail of every sweep bin's `--json`
    /// mode (see [`take_json_path`]).
    pub fn emit(&self, path: &str) {
        std::fs::write(path, self.to_pretty_string()).expect("write artifact");
        println!("wrote {path}");
    }

    /// Parses an artifact, rejecting documents whose schema major differs
    /// from [`SCHEMA_MAJOR`]. A newer minor is accepted (unknown fields
    /// are ignored).
    pub fn parse(text: &str) -> Result<BenchArtifact, String> {
        let doc = Json::parse(text)?;
        let schema = req_str(&doc, "schema")?;
        let version = schema
            .strip_prefix("jitise-bench/")
            .ok_or_else(|| format!("not a jitise-bench artifact: schema {schema:?}"))?;
        let major: u64 = version
            .split('.')
            .next()
            .and_then(|m| m.parse().ok())
            .ok_or_else(|| format!("malformed schema version {schema:?}"))?;
        if major != SCHEMA_MAJOR {
            return Err(format!(
                "unsupported schema major {major} (this tool reads {SCHEMA_MAJOR}.x): {schema}"
            ));
        }
        let machine_doc = doc.get("machine").ok_or("missing `machine`")?;
        let machine = MachineInfo {
            os: req_str(machine_doc, "os")?,
            arch: req_str(machine_doc, "arch")?,
            cpus: req_u64(machine_doc, "cpus")?,
        };
        let config = match doc.get("config") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| format!("config `{k}` is not a string"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing `config` object".into()),
        };
        let metrics = doc
            .get("metrics")
            .and_then(Json::as_arr)
            .ok_or("missing `metrics` array")?
            .iter()
            .map(metric_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let profile = doc
            .get("profile")
            .and_then(Json::as_arr)
            .ok_or("missing `profile` array")?
            .iter()
            .map(|s| {
                Ok(ProfileStage {
                    name: req_str(s, "name")?,
                    count: req_u64(s, "count")?,
                    host_total_ns: req_u64(s, "host_total_ns")?,
                    host_self_ns: req_u64(s, "host_self_ns")?,
                    host_p50_ns: req_u64(s, "host_p50_ns")?,
                    host_p90_ns: req_u64(s, "host_p90_ns")?,
                    sim_total_ns: req_u64(s, "sim_total_ns")?,
                    sim_self_ns: req_u64(s, "sim_self_ns")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(BenchArtifact {
            schema,
            topic: req_str(&doc, "topic")?,
            seed: req_u64(&doc, "seed")?,
            smoke: doc
                .get("smoke")
                .and_then(Json::as_bool)
                .ok_or("missing `smoke`")?,
            machine,
            config,
            metrics,
            profile,
            collapsed: req_str(&doc, "collapsed")?,
        })
    }
}

/// Extracts a `--json <path>` flag from a sweep bin's argument list,
/// removing both tokens so the remaining arguments can be parsed
/// positionally. Every sweep bin shares this flag; pairing it with
/// [`BenchArtifact::emit`] replaces the hand-rolled writers each bin
/// used to carry. Panics if the flag is present without a value.
pub fn take_json_path(args: &mut Vec<String>) -> Option<String> {
    let i = args.iter().position(|a| a == "--json")?;
    let path = args.get(i + 1).expect("--json needs a path").clone();
    args.drain(i..=i + 1);
    Some(path)
}

fn metric_to_json(m: &Metric) -> Json {
    let b = ObjBuilder::new()
        .field("name", Json::Str(m.name.clone()))
        .field("unit", Json::Str(m.unit.clone()));
    match &m.value {
        MetricValue::Exact(v) => b
            .field("kind", Json::Str("exact".into()))
            .field("value", Json::U64(*v))
            .build(),
        MetricValue::Host {
            reps,
            min_ns,
            median_ns,
            p90_ns,
        } => b
            .field("kind", Json::Str("host".into()))
            .field("reps", Json::U64(*reps))
            .field("min_ns", Json::F64(*min_ns))
            .field("median_ns", Json::F64(*median_ns))
            .field("p90_ns", Json::F64(*p90_ns))
            .build(),
        MetricValue::Info(v) => b
            .field("kind", Json::Str("info".into()))
            .field("value", Json::F64(*v))
            .build(),
    }
}

fn metric_from_json(doc: &Json) -> Result<Metric, String> {
    let name = req_str(doc, "name")?;
    let kind = req_str(doc, "kind")?;
    let value = match kind.as_str() {
        "exact" => MetricValue::Exact(req_u64(doc, "value")?),
        "host" => MetricValue::Host {
            reps: req_u64(doc, "reps")?,
            min_ns: req_f64(doc, "min_ns")?,
            median_ns: req_f64(doc, "median_ns")?,
            p90_ns: req_f64(doc, "p90_ns")?,
        },
        "info" => MetricValue::Info(req_f64(doc, "value")?),
        other => return Err(format!("metric `{name}`: unknown kind {other:?}")),
    };
    Ok(Metric {
        name,
        unit: req_str(doc, "unit")?,
        value,
    })
}

fn req_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn req_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing u64 field `{key}`"))
}

fn req_f64(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number field `{key}`"))
}

/// Gating knobs for [`check`].
#[derive(Debug, Clone, Copy)]
pub struct CheckPolicy {
    /// Relative slack on host-time minima: current regresses when
    /// `min > baseline_min * (1 + tolerance) + floor_ns`.
    pub tolerance: f64,
    /// Absolute slack, nanoseconds — keeps microsecond-scale sections
    /// from gating on scheduler jitter.
    pub floor_ns: f64,
}

impl Default for CheckPolicy {
    /// 50% relative + 5 ms absolute: generous enough for shared CI
    /// runners, tight enough to catch a 2× regression anywhere that
    /// matters.
    fn default() -> CheckPolicy {
        CheckPolicy {
            tolerance: 0.5,
            floor_ns: 5.0e6,
        }
    }
}

/// Outcome of gating one artifact pair.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Hard failures: the gate must exit non-zero.
    pub regressions: Vec<String>,
    /// Context worth printing (machine changed, metric improved, …).
    pub notes: Vec<String>,
}

impl CheckReport {
    /// True when no regression was found.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Gates `current` against `baseline` (see the module docs for class
/// semantics). Artifacts must describe the same workload — topic, seed,
/// smoke flag, and config all have to match, otherwise the comparison
/// itself is reported as a regression. A changed machine is a note, not a
/// failure: host tolerances absorb hardware drift, exact metrics don't
/// depend on it.
pub fn check(
    baseline: &BenchArtifact,
    current: &BenchArtifact,
    policy: &CheckPolicy,
) -> CheckReport {
    let mut report = CheckReport::default();
    let fail = &mut report.regressions;
    if baseline.topic != current.topic {
        fail.push(format!(
            "topic mismatch: baseline {:?} vs current {:?}",
            baseline.topic, current.topic
        ));
        return report;
    }
    if baseline.seed != current.seed {
        fail.push(format!(
            "{}: seed mismatch ({} vs {}) — runs are not comparable",
            baseline.topic, baseline.seed, current.seed
        ));
    }
    if baseline.smoke != current.smoke {
        fail.push(format!(
            "{}: scale mismatch (baseline smoke={}, current smoke={})",
            baseline.topic, baseline.smoke, current.smoke
        ));
    }
    if baseline.config != current.config {
        fail.push(format!(
            "{}: config mismatch — baseline {:?} vs current {:?}",
            baseline.topic, baseline.config, current.config
        ));
    }
    if !fail.is_empty() {
        return report;
    }
    if baseline.machine != current.machine {
        report.notes.push(format!(
            "{}: machine changed ({}/{}/{} cpus -> {}/{}/{} cpus); host tolerances apply",
            baseline.topic,
            baseline.machine.os,
            baseline.machine.arch,
            baseline.machine.cpus,
            current.machine.os,
            current.machine.arch,
            current.machine.cpus,
        ));
    }

    for base in &baseline.metrics {
        let Some(cur) = current.metric(&base.name) else {
            report.regressions.push(format!(
                "{}: metric `{}` disappeared",
                baseline.topic, base.name
            ));
            continue;
        };
        match (&base.value, &cur.value) {
            (MetricValue::Exact(b), MetricValue::Exact(c)) => {
                if b != c {
                    report.regressions.push(format!(
                        "{}: exact metric `{}` changed: {b} -> {c} (must be bit-identical)",
                        baseline.topic, base.name
                    ));
                }
            }
            (
                MetricValue::Host { min_ns: b, .. },
                MetricValue::Host {
                    min_ns: c, reps, ..
                },
            ) => {
                let limit = b * (1.0 + policy.tolerance) + policy.floor_ns;
                if *c > limit {
                    report.regressions.push(format!(
                        "{}: host metric `{}` regressed: min {:.0} ns -> {:.0} ns \
                         (limit {:.0} ns over {} reps)",
                        baseline.topic, base.name, b, c, limit, reps
                    ));
                } else if *c < b / (1.0 + policy.tolerance) - policy.floor_ns {
                    report.notes.push(format!(
                        "{}: host metric `{}` improved: min {:.0} ns -> {:.0} ns",
                        baseline.topic, base.name, b, c
                    ));
                }
            }
            (MetricValue::Info(b), MetricValue::Info(c)) => {
                if b != c {
                    report.notes.push(format!(
                        "{}: info metric `{}`: {b} -> {c} (not gated)",
                        baseline.topic, base.name
                    ));
                }
            }
            (b, c) => {
                report.regressions.push(format!(
                    "{}: metric `{}` changed class: {b:?} -> {c:?}",
                    baseline.topic, base.name
                ));
            }
        }
    }
    for cur in &current.metrics {
        if baseline.metric(&cur.name).is_none() {
            report.notes.push(format!(
                "{}: new metric `{}` (absent from baseline)",
                baseline.topic, cur.name
            ));
        }
    }
    report
}
