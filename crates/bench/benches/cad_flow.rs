//! Real algorithmic cost of the CAD substrate: top-level synthesis,
//! simulated-annealing placement, negotiated routing, and bitstream
//! generation, across design sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jitise_cad::{bitgen, place, route, Fabric, PlaceEffort, RouteEffort};
use jitise_pivpav::netlist::synthesize_core;

fn bench_cad(c: &mut Criterion) {
    let fabric = Fabric::pr_region();
    let mut group = c.benchmark_group("cad_flow");
    group.sample_size(10);

    for &luts in &[40u32, 120, 240] {
        let nl = synthesize_core("bench", 16, luts, luts / 8, 2, 42);
        group.bench_with_input(BenchmarkId::new("place", luts), &luts, |b, _| {
            b.iter(|| place(&fabric, &nl, PlaceEffort::fast(), 1).unwrap())
        });
        let placement = place(&fabric, &nl, PlaceEffort::fast(), 1).unwrap();
        group.bench_with_input(BenchmarkId::new("route", luts), &luts, |b, _| {
            b.iter(|| route(&fabric, &nl, &placement, RouteEffort::fast()).unwrap())
        });
        let routed = route(&fabric, &nl, &placement, RouteEffort::fast()).unwrap();
        group.bench_with_input(BenchmarkId::new("bitgen", luts), &luts, |b, _| {
            b.iter(|| bitgen(&fabric, &nl, &placement, &routed, true))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cad);
criterion_main!(benches);
