//! Candidate search with and without the `@50pS3L` pruning filter — the
//! source of the "two orders of magnitude" identification-time reduction
//! the paper inherits from [9].

use criterion::{criterion_group, criterion_main, Criterion};
use jitise_apps::App;
use jitise_ise::{candidate_search, DepthEstimator, PruneFilter, SearchConfig};

fn bench_pruning(c: &mut Criterion) {
    let app = App::build("429.mcf").expect("mcf builds");
    let profile = app.run_dataset(0);
    let estimator = DepthEstimator::default();

    let mut group = c.benchmark_group("candidate_search");
    group.sample_size(10);
    group.bench_function("pruned@50pS3L", |b| {
        let cfg = SearchConfig::default();
        b.iter(|| candidate_search(&app.module, &profile, &estimator, &cfg))
    });
    group.bench_function("unpruned", |b| {
        let cfg = SearchConfig {
            filter: PruneFilter::none(),
            ..SearchConfig::default()
        };
        b.iter(|| candidate_search(&app.module, &profile, &estimator, &cfg))
    });
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
