//! Identification-algorithm runtime: MAXMISO (linear) vs SingleCut
//! (exponential) vs UnionMISO — the algorithmic gap that makes MAXMISO the
//! only viable choice for just-in-time use (paper §II/§III).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jitise_ir::{BlockId, Dfg, FuncId, Function, FunctionBuilder, Operand as Op, Type};
use jitise_ise::{maxmiso, single_cut, union_miso, ForbiddenPolicy, PortConstraints};
use jitise_vm::BlockKey;

/// A block with `n` mixed operations and some data-flow diversity.
fn block_of(n: usize) -> Function {
    let mut b = FunctionBuilder::new("bench", vec![Type::I32, Type::I32], Type::I32);
    let mut vals = vec![
        b.add(Op::Arg(0), Op::Arg(1)),
        b.xor(Op::Arg(0), Op::ci32(0x5a)),
    ];
    for i in 2..n {
        let a = vals[i - 1];
        let c = vals[i / 2];
        let v = match i % 4 {
            0 => b.add(a, c),
            1 => b.mul(a, Op::ci32(3)),
            2 => b.xor(a, c),
            _ => b.shl(a, Op::ci32(1)),
        };
        vals.push(v);
    }
    b.ret(*vals.last().unwrap());
    b.finish()
}

fn bench_algorithms(c: &mut Criterion) {
    let key = BlockKey::new(FuncId(0), BlockId(0));
    let policy = ForbiddenPolicy::default();
    let ports = PortConstraints::default();

    let mut group = c.benchmark_group("ise_algorithms");
    group.sample_size(10);
    for &n in &[8usize, 12, 16] {
        let f = block_of(n);
        let dfg = Dfg::build(&f, BlockId(0));
        group.bench_with_input(BenchmarkId::new("maxmiso", n), &n, |b, _| {
            b.iter(|| maxmiso(&f, &dfg, key, &policy, 2))
        });
        group.bench_with_input(BenchmarkId::new("singlecut", n), &n, |b, _| {
            b.iter(|| single_cut(&f, &dfg, key, &policy, ports, 2))
        });
        group.bench_with_input(BenchmarkId::new("unionmiso", n), &n, |b, _| {
            b.iter(|| union_miso(&f, &dfg, key, &policy, ports, 2))
        });
    }
    // MAXMISO stays practical on large blocks where exact search cannot go.
    for &n in &[64usize, 256] {
        let f = block_of(n);
        let dfg = Dfg::build(&f, BlockId(0));
        group.bench_with_input(BenchmarkId::new("maxmiso", n), &n, |b, _| {
            b.iter(|| maxmiso(&f, &dfg, key, &policy, 2))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
