//! Interpreter + profiler throughput on the embedded kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use jitise_apps::App;
use jitise_vm::{Interpreter, Value};

fn bench_vm(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm_interp");
    group.sample_size(10);
    for name in ["sor", "adpcm"] {
        let app = App::build(name).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut vm = Interpreter::new(&app.module);
                vm.run("main", &[Value::I(2)]).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vm);
criterion_main!(benches);
