//! End-to-end ASIP-SP pipeline on an embedded application, cold vs through
//! the bitstream cache (the §VI-A optimization).

use criterion::{criterion_group, criterion_main, Criterion};
use jitise_apps::App;
use jitise_core::{specialize, BitstreamCache, EvalContext, SpecializeConfig};
use jitise_woolcano::Woolcano;

fn bench_pipeline(c: &mut Criterion) {
    let ctx = EvalContext::new();
    let app = App::build("sor").unwrap();
    let profile = app.run_dataset(0);

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    group.bench_function("specialize_cold", |b| {
        b.iter(|| {
            let cache = BitstreamCache::new(); // fresh: every candidate misses
            let mut m = app.module.clone();
            let machine = Woolcano::new(64);
            specialize(
                &mut m,
                &profile,
                &machine,
                &ctx.estimator,
                &ctx.db,
                &ctx.netlists,
                &cache,
                &SpecializeConfig::default(),
            )
            .unwrap()
        })
    });

    let warm_cache = BitstreamCache::new();
    {
        let mut m = app.module.clone();
        let machine = Woolcano::new(64);
        specialize(
            &mut m,
            &profile,
            &machine,
            &ctx.estimator,
            &ctx.db,
            &ctx.netlists,
            &warm_cache,
            &SpecializeConfig::default(),
        )
        .unwrap();
    }
    group.bench_function("specialize_cached", |b| {
        b.iter(|| {
            let mut m = app.module.clone();
            let machine = Woolcano::new(64);
            specialize(
                &mut m,
                &profile,
                &machine,
                &ctx.estimator,
                &ctx.db,
                &ctx.netlists,
                &warm_cache,
                &SpecializeConfig::default(),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
