//! The structured event journal and its JSON value type.

use jitise_base::sync::Mutex;
use jitise_base::SimTime;
use std::fmt;

/// A structured field value. Rendered as native JSON in the exporters.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values render as `null`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl Value {
    /// Writes the value as a JSON literal.
    pub(crate) fn write_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) if v.is_finite() => out.push_str(&v.to_string()),
            Value::F64(_) => out.push_str("null"),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => write_json_string(out, s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<SimTime> for Value {
    fn from(v: SimTime) -> Value {
        Value::U64(v.as_nanos())
    }
}

/// Escapes and quotes `s` as a JSON string into `out`.
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One journal entry: a named point-in-time occurrence with fields.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Host-clock timestamp, nanoseconds since the telemetry epoch.
    pub ts_ns: u64,
    /// Small integer id of the recording thread.
    pub tid: u32,
    /// Event name, e.g. `"cache.lookup"`.
    pub name: &'static str,
    /// Structured attributes in recording order.
    pub fields: Vec<(&'static str, Value)>,
}

#[derive(Default)]
pub(crate) struct Journal {
    events: Mutex<Vec<EventRecord>>,
}

impl Journal {
    pub(crate) fn push(&self, record: EventRecord) {
        self.events.lock().push(record);
    }

    pub(crate) fn collect(&self) -> Vec<EventRecord> {
        let mut events = self.events.lock().clone();
        events.sort_by_key(|e| e.ts_ns);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json(v: Value) -> String {
        let mut s = String::new();
        v.write_json(&mut s);
        s
    }

    #[test]
    fn json_literals() {
        assert_eq!(json(Value::U64(7)), "7");
        assert_eq!(json(Value::I64(-7)), "-7");
        assert_eq!(json(Value::F64(1.5)), "1.5");
        assert_eq!(json(Value::F64(f64::NAN)), "null");
        assert_eq!(json(Value::Bool(true)), "true");
        assert_eq!(json(Value::Str("a\"b\\c\n".into())), r#""a\"b\\c\n""#);
    }

    #[test]
    fn control_chars_escaped() {
        let mut s = String::new();
        write_json_string(&mut s, "\x01x");
        assert_eq!(s, "\"\\u0001x\"");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(SimTime::from_micros(2)), Value::U64(2_000));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
    }
}
