//! Hierarchical dual-clock spans.

use crate::journal::Value;
use crate::Telemetry;
use jitise_base::sync::Mutex;
use jitise_base::SimTime;

/// A closed span as stored in the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id (1-based; 0 never occurs).
    pub id: u64,
    /// Enclosing span, if any.
    pub parent: Option<u64>,
    /// Phase name, e.g. `"cad.map"`.
    pub name: &'static str,
    /// Host-clock open time, nanoseconds since the telemetry epoch.
    pub start_ns: u64,
    /// Host-clock close time, nanoseconds since the telemetry epoch.
    pub end_ns: u64,
    /// Simulated duration attributed to this span, if one was set.
    pub sim_ns: Option<u64>,
    /// Small integer id of the recording thread.
    pub tid: u32,
    /// Extra structured attributes.
    pub fields: Vec<(&'static str, Value)>,
}

impl SpanRecord {
    /// Host-clock duration.
    pub fn host_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// Simulated duration ([`SimTime::ZERO`] when none was attached).
    pub fn sim_time(&self) -> SimTime {
        SimTime::from_nanos(self.sim_ns.unwrap_or(0))
    }
}

#[derive(Default)]
pub(crate) struct SpanStore {
    closed: Mutex<Vec<SpanRecord>>,
}

impl SpanStore {
    pub(crate) fn push(&self, record: SpanRecord) {
        self.closed.lock().push(record);
    }

    pub(crate) fn collect(&self) -> Vec<SpanRecord> {
        let mut spans = self.closed.lock().clone();
        spans.sort_by_key(|s| (s.start_ns, s.id));
        spans
    }
}

/// An open span; recording happens when the guard drops.
///
/// Obtained from [`Telemetry::span`] or [`Span::child`]. A span opened on
/// a disabled handle is inert. Spans may cross threads (`Send`) — open on
/// one, close on another — which `run_adaptive` relies on.
pub struct Span {
    tel: Telemetry,
    id: Option<u64>,
    name: &'static str,
    start_ns: u64,
    parent: Option<u64>,
    sim_ns: Option<u64>,
    tid: u32,
    fields: Vec<(&'static str, Value)>,
}

impl Span {
    pub(crate) fn open(tel: Telemetry, name: &'static str, parent: Option<u64>) -> Span {
        let id = tel.alloc_span_id();
        let (start_ns, tid) = match &tel.inner {
            Some(inner) => (inner.now_ns(), inner.thread_id()),
            None => (0, 0),
        };
        Span {
            tel,
            id,
            name,
            start_ns,
            parent,
            sim_ns: None,
            tid,
            fields: Vec::new(),
        }
    }

    /// This span's id, or `None` on a disabled handle.
    pub fn id(&self) -> Option<u64> {
        self.id
    }

    /// Opens a span nested under this one.
    pub fn child(&self, name: &'static str) -> Span {
        Span::open(self.tel.clone(), name, self.id)
    }

    /// Attributes a simulated duration to this span (accumulates if
    /// called repeatedly).
    pub fn set_sim_time(&mut self, sim: SimTime) {
        if self.id.is_some() {
            self.sim_ns = Some(self.sim_ns.unwrap_or(0) + sim.as_nanos());
        }
    }

    /// Attaches a structured attribute.
    pub fn field(&mut self, key: &'static str, value: Value) {
        if self.id.is_some() {
            self.fields.push((key, value));
        }
    }

    /// Closes the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let (Some(id), Some(inner)) = (self.id, self.tel.inner.as_deref()) else {
            return;
        };
        inner.spans.push(SpanRecord {
            id,
            parent: self.parent,
            name: self.name,
            start_ns: self.start_ns,
            end_ns: inner.now_ns(),
            sim_ns: self.sim_ns,
            tid: self.tid,
            fields: std::mem::take(&mut self.fields),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_accumulates() {
        let tel = Telemetry::enabled();
        {
            let mut s = tel.span("x");
            s.set_sim_time(SimTime::from_nanos(3));
            s.set_sim_time(SimTime::from_nanos(4));
        }
        let snap = tel.snapshot();
        assert_eq!(snap.spans[0].sim_ns, Some(7));
        assert_eq!(snap.spans[0].sim_time(), SimTime::from_nanos(7));
    }

    #[test]
    fn spans_sorted_by_start() {
        let tel = Telemetry::enabled();
        // Close in reverse order; collection still sorts by open time.
        let a = tel.span("a");
        let b = tel.span("b");
        drop(a);
        drop(b);
        let names: Vec<_> = tel.snapshot().spans.iter().map(|s| s.name).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn explicit_end_records() {
        let tel = Telemetry::enabled();
        tel.span("x").end();
        assert_eq!(tel.snapshot().spans.len(), 1);
    }
}
