//! Frozen telemetry state and its three exporters.

use crate::journal::{write_json_string, EventRecord, Value};
use crate::metrics::HistogramSnapshot;
use crate::span::SpanRecord;
use crate::Inner;
use jitise_base::SimTime;
use std::collections::BTreeMap;
use std::io::{self, Write};

/// Aggregated totals for one span name (see [`Snapshot::phase_totals`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Number of spans with this name.
    pub count: u64,
    /// Summed host-clock duration in nanoseconds.
    pub host_ns: u64,
    /// Summed simulated duration (exact integer nanoseconds).
    pub sim: SimTime,
}

/// Everything a [`crate::Telemetry`] handle recorded, frozen at one
/// moment. Obtained from [`crate::Telemetry::snapshot`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Closed spans, sorted by open time.
    pub spans: Vec<SpanRecord>,
    /// Journal events, sorted by timestamp.
    pub events: Vec<EventRecord>,
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Thread names, indexed by the small `tid` used in spans/events.
    pub threads: Vec<String>,
}

impl Snapshot {
    pub(crate) fn empty() -> Snapshot {
        Snapshot::default()
    }

    pub(crate) fn capture(inner: &Inner) -> Snapshot {
        Snapshot {
            spans: inner.spans.collect(),
            events: inner.journal.collect(),
            counters: inner.metrics.counters(),
            gauges: inner.metrics.gauges(),
            histograms: inner.metrics.histograms(),
            threads: inner.threads.lock().names.clone(),
        }
    }

    /// The value of counter `name`, or 0 if it was never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Totals (count, host ns, sim time) per span name.
    ///
    /// Simulated durations are exact integer sums, so they reconcile
    /// bit-for-bit with `SpecializeReport`'s `SimTime` accounting.
    pub fn phase_totals(&self) -> BTreeMap<&str, PhaseTotal> {
        let mut totals: BTreeMap<&str, PhaseTotal> = BTreeMap::new();
        for span in &self.spans {
            let t = totals.entry(span.name).or_default();
            t.count += 1;
            t.host_ns += span.host_ns();
            t.sim += span.sim_time();
        }
        totals
    }

    /// Summed simulated time across all spans named `name`.
    pub fn sim_total(&self, name: &str) -> SimTime {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(SpanRecord::sim_time)
            .sum()
    }

    /// Canonical rendering of the event journal for determinism
    /// comparisons: host timestamps and thread ids vary run to run (and
    /// with thread interleaving), so each event is rendered as its name
    /// plus JSON fields only, and the lines are sorted. Two runs that
    /// record the same *multiset* of events — regardless of completion
    /// order or worker count — produce byte-identical output.
    pub fn canonical_journal(&self) -> String {
        let mut lines: Vec<String> = self
            .events
            .iter()
            .map(|event| {
                let mut line = String::from(event.name);
                write_fields(&mut line, &event.fields);
                line
            })
            .collect();
        lines.sort_unstable();
        lines.join("\n")
    }

    /// Writes the journal as JSON-lines: one object per span, event, and
    /// metric, in that order. Machine-diffable and `jq`-friendly.
    pub fn write_jsonl(&self, out: &mut dyn Write) -> io::Result<()> {
        let mut line = String::new();
        for span in &self.spans {
            line.clear();
            line.push_str(&format!(
                "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":",
                span.id,
                span.parent.map_or("null".to_string(), |p| p.to_string())
            ));
            write_json_string(&mut line, span.name);
            line.push_str(&format!(
                ",\"tid\":{},\"start_ns\":{},\"end_ns\":{},\"sim_ns\":{}",
                span.tid,
                span.start_ns,
                span.end_ns,
                span.sim_ns.map_or("null".to_string(), |s| s.to_string())
            ));
            write_fields(&mut line, &span.fields);
            line.push('}');
            writeln!(out, "{line}")?;
        }
        for event in &self.events {
            line.clear();
            line.push_str(&format!(
                "{{\"type\":\"event\",\"ts_ns\":{},\"tid\":{},\"name\":",
                event.ts_ns, event.tid
            ));
            write_json_string(&mut line, event.name);
            write_fields(&mut line, &event.fields);
            line.push('}');
            writeln!(out, "{line}")?;
        }
        for (name, value) in &self.counters {
            line.clear();
            line.push_str("{\"type\":\"counter\",\"name\":");
            write_json_string(&mut line, name);
            line.push_str(&format!(",\"value\":{value}}}"));
            writeln!(out, "{line}")?;
        }
        for (name, value) in &self.gauges {
            line.clear();
            line.push_str("{\"type\":\"gauge\",\"name\":");
            write_json_string(&mut line, name);
            line.push_str(",\"value\":");
            Value::F64(*value).write_json(&mut line);
            line.push('}');
            writeln!(out, "{line}")?;
        }
        for hist in &self.histograms {
            line.clear();
            line.push_str("{\"type\":\"histogram\",\"name\":");
            write_json_string(&mut line, &hist.name);
            line.push_str(&format!(
                ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                hist.count, hist.sum, hist.min, hist.max
            ));
            // Sparse encoding: only non-empty buckets, as [bound, count].
            let mut first = true;
            for (i, &c) in hist.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    line.push(',');
                }
                first = false;
                line.push_str(&format!(
                    "[{},{}]",
                    HistogramSnapshot::bucket_upper_bound(i),
                    c
                ));
            }
            line.push_str("]}");
            writeln!(out, "{line}")?;
        }
        Ok(())
    }

    /// Writes a human-readable report: the span tree (host + simulated
    /// durations) followed by counters, gauges, and histograms.
    pub fn write_text(&self, out: &mut dyn Write) -> io::Result<()> {
        writeln!(out, "== spans ==")?;
        // Children grouped under parents, in open order.
        let mut children: BTreeMap<Option<u64>, Vec<&SpanRecord>> = BTreeMap::new();
        let known: std::collections::HashSet<u64> = self.spans.iter().map(|s| s.id).collect();
        for span in &self.spans {
            // A span whose parent was never closed (or crossed a snapshot
            // boundary) renders at the root rather than disappearing.
            let key = span.parent.filter(|p| known.contains(p));
            children.entry(key).or_default().push(span);
        }
        fn render(
            out: &mut dyn Write,
            children: &BTreeMap<Option<u64>, Vec<&SpanRecord>>,
            parent: Option<u64>,
            depth: usize,
        ) -> io::Result<()> {
            let Some(spans) = children.get(&parent) else {
                return Ok(());
            };
            for span in spans {
                let indent = "  ".repeat(depth);
                let host = SimTime::from_nanos(span.host_ns());
                let sim = match span.sim_ns {
                    Some(ns) => format!("  sim {}", SimTime::from_nanos(ns)),
                    None => String::new(),
                };
                let fields = if span.fields.is_empty() {
                    String::new()
                } else {
                    let rendered: Vec<String> = span
                        .fields
                        .iter()
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect();
                    format!("  [{}]", rendered.join(" "))
                };
                writeln!(
                    out,
                    "{indent}{:<width$}  host {host}{sim}{fields}",
                    span.name,
                    width = 28usize.saturating_sub(indent.len())
                )?;
                render(out, children, Some(span.id), depth + 1)?;
            }
            Ok(())
        }
        render(out, &children, None, 0)?;

        writeln!(out, "\n== phase totals ==")?;
        for (name, t) in self.phase_totals() {
            writeln!(
                out,
                "{name:<28}  n={:<4}  host {}  sim {}",
                t.count,
                SimTime::from_nanos(t.host_ns),
                t.sim
            )?;
        }

        if !self.counters.is_empty() {
            writeln!(out, "\n== counters ==")?;
            for (name, value) in &self.counters {
                writeln!(out, "{name:<32} {value}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(out, "\n== gauges ==")?;
            for (name, value) in &self.gauges {
                writeln!(out, "{name:<32} {value}")?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(out, "\n== histograms ==")?;
            for hist in &self.histograms {
                writeln!(
                    out,
                    "{:<32} n={} mean={:.1} min={} max={}",
                    hist.name,
                    hist.count,
                    hist.mean(),
                    hist.min,
                    hist.max
                )?;
            }
        }
        Ok(())
    }

    /// Writes a Chrome-trace (Trace Event Format) JSON document loadable
    /// in `chrome://tracing` or Perfetto. Spans become complete (`"X"`)
    /// events with microsecond timestamps; the exact simulated duration
    /// rides along in `args.sim_ns`. Journal events become instants.
    pub fn write_chrome_trace(&self, out: &mut dyn Write) -> io::Result<()> {
        write!(out, "{{\"traceEvents\":[")?;
        let mut first = true;
        let sep = |out: &mut dyn Write, first: &mut bool| -> io::Result<()> {
            if !*first {
                write!(out, ",")?;
            }
            *first = false;
            Ok(())
        };
        for (tid, name) in self.threads.iter().enumerate() {
            sep(out, &mut first)?;
            let mut args = String::new();
            write_json_string(&mut args, name);
            write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":{args}}}}}"
            )?;
        }
        for span in &self.spans {
            sep(out, &mut first)?;
            let mut name = String::new();
            write_json_string(&mut name, span.name);
            let mut args = String::new();
            if let Some(sim) = span.sim_ns {
                args.push_str(&format!("\"sim_ns\":{sim}"));
            }
            for (key, value) in &span.fields {
                if !args.is_empty() {
                    args.push(',');
                }
                write_json_string(&mut args, key);
                args.push(':');
                value.write_json(&mut args);
            }
            write!(
                out,
                "{{\"name\":{name},\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\
                 \"dur\":{},\"args\":{{{args}}}}}",
                span.tid,
                span.start_ns as f64 / 1e3,
                span.host_ns() as f64 / 1e3
            )?;
        }
        for event in &self.events {
            sep(out, &mut first)?;
            let mut name = String::new();
            write_json_string(&mut name, event.name);
            let mut args = String::new();
            for (key, value) in &event.fields {
                if !args.is_empty() {
                    args.push(',');
                }
                write_json_string(&mut args, key);
                args.push(':');
                value.write_json(&mut args);
            }
            write!(
                out,
                "{{\"name\":{name},\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\
                 \"ts\":{},\"args\":{{{args}}}}}",
                event.tid,
                event.ts_ns as f64 / 1e3
            )?;
        }
        write!(out, "]}}")?;
        Ok(())
    }
}

fn write_fields(line: &mut String, fields: &[(&'static str, Value)]) {
    if fields.is_empty() {
        return;
    }
    line.push_str(",\"fields\":{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        write_json_string(line, key);
        line.push(':');
        value.write_json(line);
    }
    line.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn sample() -> Snapshot {
        let tel = Telemetry::enabled();
        {
            let mut root = tel.span("pipeline.specialize");
            root.field("candidate", Value::U64(0));
            let mut map = root.child("cad.map");
            map.set_sim_time(SimTime::from_secs(40));
            drop(map);
            let mut par = root.child("cad.par");
            par.set_sim_time(SimTime::from_secs(20));
        }
        tel.add("bitstream_cache.hits", 2);
        tel.gauge("speedup", 1.5);
        tel.observe("candidate.nodes", 5);
        tel.event("swap", &[("ci", Value::Str("ci_0".into()))]);
        tel.snapshot()
    }

    #[test]
    fn phase_totals_sum_exactly() {
        let snap = sample();
        let totals = snap.phase_totals();
        assert_eq!(totals["cad.map"].sim, SimTime::from_secs(40));
        assert_eq!(totals["cad.par"].sim, SimTime::from_secs(20));
        assert_eq!(totals["pipeline.specialize"].count, 1);
        assert_eq!(snap.sim_total("cad.map"), SimTime::from_secs(40));
        assert_eq!(snap.sim_total("missing"), SimTime::ZERO);
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let snap = sample();
        let mut buf = Vec::new();
        snap.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // 3 spans + 1 event + 1 counter + 1 gauge + 1 histogram.
        assert_eq!(text.lines().count(), 7);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"name\":\"cad.map\""));
        assert!(text.contains("\"sim_ns\":40000000000"));
        assert!(text.contains("\"type\":\"counter\""));
        assert!(text.contains("\"buckets\":[[8,1]]"));
    }

    #[test]
    fn chrome_trace_shape() {
        let snap = sample();
        let mut buf = Vec::new();
        snap.write_chrome_trace(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.ends_with("]}"));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"M\""));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"sim_ns\":40000000000"));
        // No trailing commas anywhere.
        assert!(!text.contains(",]") && !text.contains(",}"));
    }

    #[test]
    fn text_report_indents_children() {
        let snap = sample();
        let mut buf = Vec::new();
        snap.write_text(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("pipeline.specialize"));
        assert!(text.contains("\n  cad.map"), "children indented:\n{text}");
        assert!(text.contains("== phase totals =="));
        assert!(text.contains("bitstream_cache.hits"));
    }

    #[test]
    fn canonical_journal_ignores_thread_and_time() {
        // Record the same events in different orders from different
        // threads: the canonical form must come out byte-identical.
        let a = Telemetry::enabled();
        a.event("x", &[("k", Value::U64(1))]);
        a.event("y", &[("k", Value::U64(2))]);
        let b = Telemetry::enabled();
        std::thread::scope(|scope| {
            let tel = b.clone();
            scope.spawn(move || tel.event("y", &[("k", Value::U64(2))]));
        });
        b.event("x", &[("k", Value::U64(1))]);
        let ca = a.snapshot().canonical_journal();
        let cb = b.snapshot().canonical_journal();
        assert_eq!(ca, cb);
        assert!(ca.contains("\"k\":1"));

        // A differing multiset must be visible.
        b.event("x", &[("k", Value::U64(1))]);
        assert_ne!(b.snapshot().canonical_journal(), ca);
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let snap = Telemetry::disabled().snapshot();
        let mut buf = Vec::new();
        snap.write_jsonl(&mut buf).unwrap();
        assert!(buf.is_empty());
        buf.clear();
        snap.write_chrome_trace(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "{\"traceEvents\":[]}");
    }

    #[test]
    fn orphan_spans_render_at_root() {
        // A child closed after the parent is snapshot-visible, but a span
        // whose parent is missing entirely must still be printed.
        let tel = Telemetry::enabled();
        let root = tel.span("root");
        {
            let _child = root.child("child");
        }
        // `root` still open: snapshot sees only the child.
        let snap = tel.snapshot();
        let mut buf = Vec::new();
        snap.write_text(&mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("child"));
        drop(root);
    }
}
