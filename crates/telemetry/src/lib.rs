//! Structured observability for the ASIP specialization process.
//!
//! The specialization pipeline spans five crates and two clocks: real host
//! time spent by the tools themselves, and [`SimTime`] — the simulated
//! runtime of the modeled CAD flow, interpreter, and ICAP reconfiguration.
//! Reasoning about where a specialization run "spends its time" therefore
//! needs both clocks side by side, attributed to the pipeline phase that
//! incurred them.
//!
//! This crate provides the three pieces the rest of the workspace threads
//! through its hot paths:
//!
//! * **Spans** ([`Telemetry::span`]) — hierarchical regions with a host
//!   wall-clock duration and an optional simulated duration. Parenting is
//!   explicit (via [`Span::child`] and [`Telemetry::under`]) so traces
//!   stitch correctly across the background specialization worker thread.
//! * **Metrics** ([`Telemetry::add`], [`Telemetry::gauge`],
//!   [`Telemetry::observe`]) — named monotonic counters, last-value
//!   gauges, and fixed-bucket power-of-two histograms.
//! * **Journal** ([`Telemetry::event`]) — timestamped structured events.
//!
//! A [`Snapshot`] freezes everything recorded so far and exports it as
//! JSON-lines, human-readable text, or a Chrome-trace file loadable in
//! `chrome://tracing` / Perfetto (see [`snapshot::Snapshot`]). A
//! [`Profiler`] folds a snapshot's span tree into per-stage self-time
//! rollups and collapsed stacks for flamegraph tooling.
//!
//! # Cost model
//!
//! [`Telemetry`] is a cheap-clone handle. [`Telemetry::disabled`] carries
//! no allocation at all: every recording method starts with a single
//! `Option` check and returns immediately, so instrumented code paths pay
//! one branch when observability is off. All recording is thread-safe.
//!
//! ```
//! use jitise_base::SimTime;
//! use jitise_telemetry::Telemetry;
//!
//! let tel = Telemetry::enabled();
//! {
//!     let mut span = tel.span("cad.map");
//!     span.set_sim_time(SimTime::from_secs(42));
//! }
//! tel.add("cache.hits", 1);
//! let snap = tel.snapshot();
//! assert_eq!(snap.counter("cache.hits"), 1);
//! assert_eq!(snap.phase_totals()["cad.map"].sim, SimTime::from_secs(42));
//! ```

mod journal;
mod metrics;
mod profiler;
mod snapshot;
mod span;

pub use journal::{EventRecord, Value};
pub use metrics::{HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use profiler::{Profiler, StackLine, StackWeight, StageRollup};
pub use snapshot::{PhaseTotal, Snapshot};
pub use span::{Span, SpanRecord};

use jitise_base::sync::Mutex;
use jitise_base::SimTime;
use journal::Journal;
use metrics::MetricsRegistry;
use span::SpanStore;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;
use std::time::Instant;

/// Canonical metric and span names used across the workspace.
///
/// Instrumentation sites and the reconciliation logic in `jitise-bench`
/// both refer to these constants so the two cannot drift apart.
pub mod names {
    /// Bitstream-cache lookups that returned a cached CI (§VI-A).
    pub const BITSTREAM_CACHE_HITS: &str = "bitstream_cache.hits";
    /// Bitstream-cache lookups that fell through to the CAD flow.
    pub const BITSTREAM_CACHE_MISSES: &str = "bitstream_cache.misses";
    /// Netlist-cache hits inside PivPav project creation (§III).
    pub const NETLIST_CACHE_HITS: &str = "netlist_cache.hits";
    /// Netlist-cache misses (operator had to be characterized).
    pub const NETLIST_CACHE_MISSES: &str = "netlist_cache.misses";
    /// Candidate patterns enumerated by the identification stage.
    pub const CANDIDATES_IDENTIFIED: &str = "ise.candidates_identified";
    /// Candidates discarded by the pre-estimation filter stack.
    pub const CANDIDATES_PRUNED: &str = "ise.candidates_pruned";
    /// Candidates accepted by final selection.
    pub const CANDIDATES_SELECTED: &str = "ise.candidates_selected";
    /// Selected candidates that were only marginally profitable.
    pub const CANDIDATES_MARGINAL: &str = "ise.candidates_marginal";
    /// Instructions retired by the jitise-vm interpreter.
    pub const VM_INSTRUCTIONS: &str = "vm.instructions_retired";
    /// Basic-block executions observed by the profiler.
    pub const VM_BLOCKS: &str = "vm.blocks_executed";
    /// Nets ripped up and re-routed by the PathFinder router.
    pub const ROUTER_RIPUPS: &str = "router.ripups";
    /// Negotiated-congestion router iterations.
    pub const ROUTER_ITERATIONS: &str = "router.iterations";
    /// Simulated-annealing placer moves proposed.
    pub const PLACER_MOVES: &str = "placer.moves";
    /// Simulated-annealing placer moves accepted.
    pub const PLACER_ACCEPTS: &str = "placer.accepts";
    /// Bitstream bytes streamed through the ICAP port.
    pub const ICAP_BYTES: &str = "icap.bytes";
    /// Partial bitstreams loaded into Woolcano slots.
    pub const ICAP_LOADS: &str = "icap.loads";
    /// CIs evicted from Woolcano slots to make room.
    pub const ICAP_EVICTIONS: &str = "icap.evictions";
    /// Overlay slots atomically swapped to their fully routed upgrade.
    pub const ICAP_UPGRADES: &str = "icap.upgrades";
    /// Overlay fast-path installs (candidates serving before full CAD).
    pub const OVERLAY_INSTALLS: &str = "overlay.installs";
    /// Background upgrades abandoned after exhausting swap retries.
    pub const OVERLAY_UPGRADES_FAILED: &str = "overlay.upgrades_failed";
    /// Faults fired by the deterministic injector (every firing counts,
    /// including repeat firings of one persistent fault across retries).
    pub const FAULTS_INJECTED: &str = "faults.injected";
    /// Candidate implementation retries (attempts beyond the first).
    pub const PIPELINE_RETRIES: &str = "pipeline.retries";
    /// Candidates whose implementation failed (including quarantine skips).
    pub const CANDIDATES_FAILED: &str = "pipeline.candidates_failed";
    /// Candidates newly quarantined after exhausting their retry budget.
    pub const CANDIDATES_QUARANTINED: &str = "pipeline.candidates_quarantined";
    /// Bitstream-cache entries dropped because they failed CRC on read.
    pub const BITSTREAM_CACHE_POISONED: &str = "bitstream_cache.poisoned";
    /// Adaptive sessions degraded to software-only execution.
    pub const RUNTIME_DEGRADED: &str = "runtime.degraded";
    /// Cache entries dropped by a resilient image load or a store
    /// recovery because their bitstream failed its CRC.
    pub const BITSTREAM_CACHE_DROPPED: &str = "bitstream_cache.dropped";
    /// Persistent-store recoveries performed (one per `Store::open`).
    pub const STORE_RECOVERIES: &str = "store.recoveries";
    /// Records replayed from snapshot + WAL during recovery.
    pub const STORE_RECORDS_RECOVERED: &str = "store.records_recovered";
    /// Torn tail records dropped during recovery (writer died mid-write).
    pub const STORE_TORN_TAILS: &str = "store.torn_tails_dropped";
    /// WAL records dropped during recovery because their CRC failed.
    pub const STORE_CRC_DROPS: &str = "store.crc_dropped";
    /// Snapshot compactions performed (WAL folded into an atomic image).
    pub const STORE_COMPACTIONS: &str = "store.compactions";
    /// Records durably appended to the store's WAL.
    pub const STORE_RECORDS_APPENDED: &str = "store.records_appended";
    /// Store appends that failed (dead or crashed store); the pipeline
    /// keeps running — persistence is best-effort, never load-bearing.
    pub const STORE_APPEND_FAILURES: &str = "store.append_failures";
    /// Warm restarts: sessions hydrated from a recovered store.
    pub const STORE_WARM_RESTARTS: &str = "store.warm_restarts";
    /// Blocks whose single-cut enumeration was truncated by the
    /// exploration cap (the candidate set is a lower bound there).
    pub const SINGLECUT_CAP_HIT: &str = "ise.singlecut.cap_hit";
    /// Identification lookups answered from the search memo.
    pub const SEARCH_MEMO_HITS: &str = "ise.search_memo.hits";
    /// Identification lookups the search memo had to compute.
    pub const SEARCH_MEMO_MISSES: &str = "ise.search_memo.misses";
    /// Memo entries discarded because a block's content changed.
    pub const SEARCH_MEMO_INVALIDATIONS: &str = "ise.search_memo.invalidations";
    /// Phase changes declared by the storm runtime's detector (installed
    /// CIs stopped earning their windowed cycle share).
    pub const RUNTIME_PHASE_DETECTED: &str = "runtime.phase.detected";
    /// Bitstream-cache entries evicted by the storm runtime's
    /// benefit-scored policy after a phase change.
    pub const RUNTIME_EVICTIONS: &str = "runtime.evict.count";
    /// Re-specializations performed against a post-phase-change profile.
    pub const RUNTIME_RESPECS: &str = "runtime.respec.count";
    /// Tenants admitted by the serve runtime (granted an active slot,
    /// immediately or after a deferral).
    pub const SERVE_ADMITTED: &str = "serve.admitted";
    /// Tenants parked in the bounded defer queue before admission.
    pub const SERVE_DEFERRED: &str = "serve.deferred";
    /// Tenants shed at arrival (defer queue full): software-only, never
    /// specialized.
    pub const SERVE_SHED: &str = "serve.shed";
    /// Admitted tenants that fell back to software-only execution
    /// (worker faults or deadline exhaustion; see `DegradedReason`).
    pub const SERVE_DEGRADED: &str = "serve.degraded";
    /// Time from a tenant's arrival to its first post-swap (sped-up)
    /// workload run, in simulated microseconds — the fleet's
    /// time-to-first-speedup histogram (p50/p99 in the serve artifact).
    pub const SERVE_TTFS_US: &str = "serve.ttfs_us";
    /// Shared-bitstream-cache entries evicted by the serve runtime's
    /// capacity policy (journaled as store tombstones).
    pub const SERVE_CACHE_EVICTIONS: &str = "serve.cache.evictions";
}

pub(crate) struct Inner {
    epoch: Instant,
    next_span_id: AtomicU64,
    spans: SpanStore,
    metrics: MetricsRegistry,
    journal: Journal,
    threads: Mutex<ThreadTable>,
}

#[derive(Default)]
struct ThreadTable {
    ids: HashMap<ThreadId, u32>,
    names: Vec<String>,
}

impl Inner {
    fn new() -> Self {
        Inner {
            epoch: Instant::now(),
            next_span_id: AtomicU64::new(1),
            spans: SpanStore::default(),
            metrics: MetricsRegistry::default(),
            journal: Journal::default(),
            threads: Mutex::new(ThreadTable::default()),
        }
    }

    pub(crate) fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Maps the calling thread to a small stable integer id.
    pub(crate) fn thread_id(&self) -> u32 {
        let current = std::thread::current();
        let mut table = self.threads.lock();
        if let Some(&tid) = table.ids.get(&current.id()) {
            return tid;
        }
        let tid = table.names.len() as u32;
        let name = current
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{tid}"));
        table.ids.insert(current.id(), tid);
        table.names.push(name);
        tid
    }
}

/// Cheap-clone observability handle threaded through the pipeline.
///
/// A handle is either *enabled* (shares one recording core with all its
/// clones) or *disabled* (a pure no-op: no allocation, one branch per
/// call). Code under instrumentation never needs to distinguish the two.
#[derive(Clone)]
pub struct Telemetry {
    pub(crate) inner: Option<Arc<Inner>>,
    /// Span id new top-level spans of this handle are parented under.
    pub(crate) parent: Option<u64>,
}

impl Default for Telemetry {
    /// The default handle is disabled, so adding a `Telemetry` field to a
    /// config struct leaves existing call sites and behavior unchanged.
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .field("parent", &self.parent)
            .finish()
    }
}

impl Telemetry {
    /// A recording handle with a fresh epoch and empty stores.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner::new())),
            parent: None,
        }
    }

    /// The no-op handle. All recording methods return immediately.
    pub fn disabled() -> Self {
        Telemetry {
            inner: None,
            parent: None,
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds of host time since this handle's epoch (0 if disabled).
    pub fn elapsed_ns(&self) -> u64 {
        self.inner.as_deref().map_or(0, Inner::now_ns)
    }

    /// Opens a span. It closes (and is recorded) when the guard drops.
    ///
    /// The span is parented under whatever this handle is scoped to — the
    /// root by default, or the span passed to [`Telemetry::under`].
    pub fn span(&self, name: &'static str) -> Span {
        Span::open(self.clone(), name, self.parent)
    }

    /// A handle whose new spans are parented under `span`.
    ///
    /// This is how traces stitch across threads and crate boundaries: the
    /// caller opens a span, then passes `tel.under(&span)` down.
    pub fn under(&self, span: &Span) -> Telemetry {
        Telemetry {
            inner: self.inner.clone(),
            parent: span.id(),
        }
    }

    /// Increments counter `name` by `delta`.
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.add(name, delta);
        }
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.gauge(name, value);
        }
    }

    /// Records `value` into histogram `name` (power-of-two buckets).
    pub fn observe(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.observe(name, value);
        }
    }

    /// Appends a structured event to the journal.
    pub fn event(&self, name: &'static str, fields: &[(&'static str, Value)]) {
        if let Some(inner) = &self.inner {
            let record = EventRecord {
                ts_ns: inner.now_ns(),
                tid: inner.thread_id(),
                name,
                fields: fields.to_vec(),
            };
            inner.journal.push(record);
        }
    }

    /// Appends an event carrying one simulated-time field.
    pub fn event_sim(&self, name: &'static str, sim: SimTime) {
        self.event(name, &[("sim_ns", Value::U64(sim.as_nanos()))]);
    }

    /// Freezes everything recorded so far. Disabled handles yield an
    /// empty snapshot.
    pub fn snapshot(&self) -> Snapshot {
        match &self.inner {
            Some(inner) => Snapshot::capture(inner),
            None => Snapshot::empty(),
        }
    }

    pub(crate) fn alloc_span_id(&self) -> Option<u64> {
        self.inner
            .as_ref()
            .map(|inner| inner.next_span_id.fetch_add(1, Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        let mut span = tel.span("x");
        span.set_sim_time(SimTime::from_secs(1));
        span.field("k", Value::U64(3));
        drop(span);
        tel.add("c", 1);
        tel.gauge("g", 2.0);
        tel.observe("h", 3);
        tel.event("e", &[("a", Value::Bool(true))]);
        let snap = tel.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.events.is_empty());
        assert!(snap.counters.is_empty());
        assert_eq!(snap.counter("c"), 0);
    }

    #[test]
    fn spans_nest_and_record_both_clocks() {
        let tel = Telemetry::enabled();
        let parent_id;
        {
            let parent = tel.span("pipeline.specialize");
            parent_id = parent.id().unwrap();
            let scoped = tel.under(&parent);
            let mut child = scoped.span("cad.map");
            child.set_sim_time(SimTime::from_millis(7));
        }
        let snap = tel.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let child = snap.spans.iter().find(|s| s.name == "cad.map").unwrap();
        assert_eq!(child.parent, Some(parent_id));
        assert_eq!(child.sim_ns, Some(7_000_000));
        assert!(child.end_ns >= child.start_ns);
        let parent = snap
            .spans
            .iter()
            .find(|s| s.name == "pipeline.specialize")
            .unwrap();
        assert_eq!(parent.parent, None);
        assert_eq!(parent.sim_ns, None);
    }

    #[test]
    fn explicit_child_parenting() {
        let tel = Telemetry::enabled();
        {
            let a = tel.span("a");
            let _b = a.child("b");
        }
        let snap = tel.snapshot();
        let a = snap.spans.iter().find(|s| s.name == "a").unwrap();
        let b = snap.spans.iter().find(|s| s.name == "b").unwrap();
        assert_eq!(b.parent, Some(a.id));
    }

    #[test]
    fn spans_stitch_across_threads() {
        let tel = Telemetry::enabled();
        {
            let root = tel.span("run_adaptive");
            let worker_tel = tel.under(&root);
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    let mut s = worker_tel.span("worker.specialize");
                    s.set_sim_time(SimTime::from_secs(3));
                });
            });
        }
        let snap = tel.snapshot();
        let root = snap
            .spans
            .iter()
            .find(|s| s.name == "run_adaptive")
            .unwrap();
        let worker = snap
            .spans
            .iter()
            .find(|s| s.name == "worker.specialize")
            .unwrap();
        assert_eq!(worker.parent, Some(root.id));
        assert_ne!(worker.tid, root.tid, "worker ran on its own thread");
        assert_eq!(snap.threads.len(), 2);
    }

    #[test]
    fn counters_gauges_histograms() {
        let tel = Telemetry::enabled();
        tel.add(names::VM_INSTRUCTIONS, 10);
        tel.add(names::VM_INSTRUCTIONS, 5);
        tel.gauge("speedup", 1.25);
        tel.gauge("speedup", 2.5);
        tel.observe("candidate.nodes", 1);
        tel.observe("candidate.nodes", 3);
        tel.observe("candidate.nodes", 300);
        let snap = tel.snapshot();
        assert_eq!(snap.counter(names::VM_INSTRUCTIONS), 15);
        assert_eq!(snap.gauges, vec![("speedup".into(), 2.5)]);
        let hist = &snap.histograms[0];
        assert_eq!(hist.count, 3);
        assert_eq!(hist.sum, 304);
        assert_eq!(hist.min, 1);
        assert_eq!(hist.max, 300);
    }

    #[test]
    fn events_carry_fields_in_order() {
        let tel = Telemetry::enabled();
        tel.event(
            "cache.lookup",
            &[("hit", Value::Bool(true)), ("signature", Value::U64(42))],
        );
        tel.event_sim("reconfig", SimTime::from_micros(9));
        let snap = tel.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].name, "cache.lookup");
        assert_eq!(snap.events[0].fields[0].0, "hit");
        assert_eq!(snap.events[1].fields[0], ("sim_ns", Value::U64(9_000)));
    }

    #[test]
    fn clones_share_one_core() {
        let tel = Telemetry::enabled();
        let other = tel.clone();
        other.add("shared", 2);
        tel.add("shared", 3);
        assert_eq!(tel.snapshot().counter("shared"), 5);
    }
}
