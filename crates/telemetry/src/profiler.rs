//! Span-tree aggregation: per-stage self-time rollups and collapsed
//! stacks for flamegraphs.
//!
//! A [`crate::Snapshot`] holds every closed span, but a benchmark wants
//! attribution, not a span list: *which stage* owns the time, with the
//! children's share subtracted out. [`Profiler::from_snapshot`] folds the
//! span tree into one [`StageRollup`] per span name — call count, total
//! and **self** time on both clocks, and pow2-bucket host-duration
//! quantiles (via [`HistogramSnapshot::quantile`]) — plus collapsed-stack
//! lines (`root;child;leaf <self-weight>`) directly consumable by
//! `flamegraph.pl` / `inferno-flamegraph` / speedscope.
//!
//! Self-time convention: a parent's self time is its duration minus the
//! sum of its children's durations, saturating at zero. Children that run
//! concurrently on worker threads can sum past their parent's wall time —
//! the saturation is deliberate (the parent then truly has no
//! unattributed time). Simulated self time uses the same rule on the
//! exact [`SimTime`] integers, so it is bit-identical across same-seed
//! runs regardless of host scheduling.

use crate::metrics::HistogramSnapshot;
use crate::snapshot::Snapshot;
use jitise_base::SimTime;
use std::collections::{BTreeMap, HashMap};
use std::io::{self, Write};

/// Aggregated attribution for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRollup {
    /// Span name (stage), e.g. `"cad.par"`.
    pub name: String,
    /// Number of spans folded in.
    pub count: u64,
    /// Summed host-clock duration, nanoseconds.
    pub host_total_ns: u64,
    /// Host time not attributed to child spans, nanoseconds.
    pub host_self_ns: u64,
    /// Pow2-bucket upper bound on the median per-span host duration.
    pub host_p50_ns: u64,
    /// Pow2-bucket upper bound on the p90 per-span host duration.
    pub host_p90_ns: u64,
    /// Summed simulated duration (exact).
    pub sim_total: SimTime,
    /// Simulated time not attributed to child spans (exact).
    pub sim_self: SimTime,
}

/// One collapsed call-stack line: semicolon-joined span-name path plus
/// the self weights accumulated at that exact path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackLine {
    /// `root;child;leaf` span-name path.
    pub path: String,
    /// Summed host self time at this path, nanoseconds.
    pub host_self_ns: u64,
    /// Summed simulated self time at this path, nanoseconds (exact).
    pub sim_self_ns: u64,
}

/// Which clock weighs the collapsed stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackWeight {
    /// Host wall-clock self nanoseconds (what a CPU flamegraph shows).
    HostNs,
    /// Simulated self nanoseconds — deterministic for same-seed runs.
    SimNs,
}

/// Folded span-tree attribution (see module docs).
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    stages: Vec<StageRollup>,
    stacks: Vec<StackLine>,
}

impl Profiler {
    /// Folds every span of `snapshot` into per-stage rollups and
    /// collapsed stacks. Spans whose parent is missing from the snapshot
    /// (still open, or recorded before a snapshot boundary) are treated
    /// as roots, matching the text exporter.
    pub fn from_snapshot(snapshot: &Snapshot) -> Profiler {
        let spans = &snapshot.spans;
        let index_of: HashMap<u64, usize> =
            spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();

        // Children's totals, attributed to the parent index.
        let mut child_host = vec![0u64; spans.len()];
        let mut child_sim = vec![0u64; spans.len()];
        for span in spans {
            if let Some(&pi) = span.parent.as_ref().and_then(|p| index_of.get(p)) {
                child_host[pi] += span.host_ns();
                child_sim[pi] += span.sim_time().as_nanos();
            }
        }

        // Per-stage accumulation, keyed by name (BTreeMap: deterministic
        // output order).
        struct Acc {
            count: u64,
            host_total: u64,
            host_self: u64,
            sim_total: u64,
            sim_self: u64,
            durations: Vec<u64>,
        }
        let mut by_name: BTreeMap<&str, Acc> = BTreeMap::new();
        let mut by_path: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for (i, span) in spans.iter().enumerate() {
            let host_self = span.host_ns().saturating_sub(child_host[i]);
            let sim_self = span.sim_time().as_nanos().saturating_sub(child_sim[i]);
            let acc = by_name.entry(span.name).or_insert_with(|| Acc {
                count: 0,
                host_total: 0,
                host_self: 0,
                sim_total: 0,
                sim_self: 0,
                durations: Vec::new(),
            });
            acc.count += 1;
            acc.host_total += span.host_ns();
            acc.host_self += host_self;
            acc.sim_total += span.sim_time().as_nanos();
            acc.sim_self += sim_self;
            acc.durations.push(span.host_ns());

            // Collapsed stack path: walk parents to the root. Span ids are
            // allocated monotonically and the parent chain is acyclic.
            let mut names: Vec<&str> = vec![span.name];
            let mut cursor = span.parent;
            while let Some(&pi) = cursor.as_ref().and_then(|p| index_of.get(p)) {
                names.push(spans[pi].name);
                cursor = spans[pi].parent;
            }
            names.reverse();
            let path = names.join(";");
            let entry = by_path.entry(path).or_insert((0, 0));
            entry.0 += host_self;
            entry.1 += sim_self;
        }

        let stages = by_name
            .into_iter()
            .map(|(name, acc)| {
                let hist = HistogramSnapshot::from_values(name, &acc.durations);
                StageRollup {
                    name: name.to_string(),
                    count: acc.count,
                    host_total_ns: acc.host_total,
                    host_self_ns: acc.host_self,
                    host_p50_ns: hist.quantile(0.5),
                    host_p90_ns: hist.quantile(0.9),
                    sim_total: SimTime::from_nanos(acc.sim_total),
                    sim_self: SimTime::from_nanos(acc.sim_self),
                }
            })
            .collect();
        let stacks = by_path
            .into_iter()
            .map(|(path, (host, sim))| StackLine {
                path,
                host_self_ns: host,
                sim_self_ns: sim,
            })
            .collect();
        Profiler { stages, stacks }
    }

    /// Per-stage rollups, sorted by stage name.
    pub fn stages(&self) -> &[StageRollup] {
        &self.stages
    }

    /// The rollup for one stage name.
    pub fn stage(&self, name: &str) -> Option<&StageRollup> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Collapsed stack lines, sorted by path.
    pub fn stacks(&self) -> &[StackLine] {
        &self.stacks
    }

    /// Writes collapsed stacks (`path weight` per line, sorted by path)
    /// weighed by the chosen clock. Paths with zero weight are skipped —
    /// flamegraph tools drop them anyway. Feed the host variant to
    /// `flamegraph.pl --countname=ns`; the sim variant is bit-identical
    /// across same-seed runs and diffable in CI.
    pub fn write_collapsed(&self, out: &mut dyn Write, weight: StackWeight) -> io::Result<()> {
        for line in &self.stacks {
            let w = match weight {
                StackWeight::HostNs => line.host_self_ns,
                StackWeight::SimNs => line.sim_self_ns,
            };
            if w > 0 {
                writeln!(out, "{} {}", line.path, w)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Telemetry, Value};

    fn sample() -> Snapshot {
        let tel = Telemetry::enabled();
        {
            let mut root = tel.span("pipeline.specialize");
            root.set_sim_time(SimTime::from_secs(100));
            {
                let mut map = root.child("cad.map");
                map.set_sim_time(SimTime::from_secs(40));
            }
            {
                let mut par = root.child("cad.par");
                par.set_sim_time(SimTime::from_secs(25));
                let mut route = par.child("cad.route");
                route.set_sim_time(SimTime::from_secs(5));
                route.field("k", Value::U64(1));
            }
        }
        tel.snapshot()
    }

    #[test]
    fn sim_self_subtracts_children_exactly() {
        let p = Profiler::from_snapshot(&sample());
        let root = p.stage("pipeline.specialize").unwrap();
        assert_eq!(root.count, 1);
        assert_eq!(root.sim_total, SimTime::from_secs(100));
        assert_eq!(root.sim_self, SimTime::from_secs(35)); // 100 - 40 - 25
        let par = p.stage("cad.par").unwrap();
        assert_eq!(par.sim_self, SimTime::from_secs(20)); // 25 - 5
        let route = p.stage("cad.route").unwrap();
        assert_eq!(route.sim_self, SimTime::from_secs(5));
    }

    #[test]
    fn host_self_never_underflows() {
        // Two parallel children each longer than the parent's wall time
        // must saturate the parent's self time at zero, not wrap.
        let tel = Telemetry::enabled();
        {
            let root = tel.span("root");
            let scoped = tel.under(&root);
            std::thread::scope(|s| {
                for _ in 0..2 {
                    let t = scoped.clone();
                    s.spawn(move || {
                        let _s = t.span("lane");
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    });
                }
            });
        }
        let p = Profiler::from_snapshot(&tel.snapshot());
        let root = p.stage("root").unwrap();
        assert!(root.host_self_ns <= root.host_total_ns);
        let lane = p.stage("lane").unwrap();
        assert_eq!(lane.count, 2);
    }

    #[test]
    fn collapsed_stacks_carry_full_paths() {
        let p = Profiler::from_snapshot(&sample());
        let mut buf = Vec::new();
        p.write_collapsed(&mut buf, StackWeight::SimNs).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains("pipeline.specialize;cad.par;cad.route 5000000000"),
            "{text}"
        );
        assert!(
            text.contains("pipeline.specialize;cad.par 20000000000"),
            "{text}"
        );
        // Sorted by path, one weight per line, no zero-weight lines.
        let mut paths: Vec<&str> = Vec::new();
        for line in text.lines() {
            let (path, w) = line.rsplit_once(' ').unwrap();
            assert!(w.parse::<u64>().unwrap() > 0);
            paths.push(path);
        }
        let mut sorted = paths.clone();
        sorted.sort_unstable();
        assert_eq!(paths, sorted);
    }

    #[test]
    fn sim_stacks_are_deterministic_across_runs() {
        let render = || {
            let snap = sample();
            let mut buf = Vec::new();
            Profiler::from_snapshot(&snap)
                .write_collapsed(&mut buf, StackWeight::SimNs)
                .unwrap();
            String::from_utf8(buf).unwrap()
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn orphan_spans_become_roots() {
        let tel = Telemetry::enabled();
        let root = tel.span("never.closed");
        {
            let mut child = root.child("leaf");
            child.set_sim_time(SimTime::from_secs(1));
        }
        // Snapshot before the root closes: the leaf's parent id is unknown.
        let p = Profiler::from_snapshot(&tel.snapshot());
        assert_eq!(p.stages().len(), 1);
        assert_eq!(p.stacks()[0].path, "leaf");
        drop(root);
    }

    #[test]
    fn empty_snapshot_folds_to_nothing() {
        let p = Profiler::from_snapshot(&Telemetry::disabled().snapshot());
        assert!(p.stages().is_empty());
        let mut buf = Vec::new();
        p.write_collapsed(&mut buf, StackWeight::HostNs).unwrap();
        assert!(buf.is_empty());
    }

    #[test]
    fn quantiles_populated_from_span_durations() {
        let tel = Telemetry::enabled();
        for _ in 0..10 {
            tel.span("s").end();
        }
        let p = Profiler::from_snapshot(&tel.snapshot());
        let s = p.stage("s").unwrap();
        assert_eq!(s.count, 10);
        assert!(s.host_p50_ns <= s.host_p90_ns);
    }
}
