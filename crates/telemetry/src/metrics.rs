//! Counters, gauges, and fixed-bucket histograms.

use jitise_base::sync::Mutex;
use std::collections::BTreeMap;

/// Number of histogram buckets. Bucket `i` counts values with
/// `value < 2^i` (and above the previous bound); the last bucket is a
/// catch-all for everything larger.
pub const HISTOGRAM_BUCKETS: usize = 40;

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Histogram {
    pub counts: [u64; HISTOGRAM_BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    fn observe(&mut self, value: u64) {
        // Bucket index = position of the highest set bit + 1, i.e. the
        // smallest i with value < 2^i; zero lands in bucket 0.
        let bucket = (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }
}

/// A frozen histogram, as exposed by [`crate::Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Per-bucket counts. Bucket 0 holds only the value `0`; bucket
    /// `i >= 1` holds values in `[2^(i-1), 2^i)`; the last bucket
    /// additionally absorbs everything at or beyond its lower bound
    /// (`value >= 2^(HISTOGRAM_BUCKETS-2)` all land in the final bucket).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Builds a snapshot directly from raw values (no registry involved).
    /// Used by the profiler to derive per-stage duration quantiles without
    /// retaining every sample.
    pub fn from_values(name: impl Into<String>, values: &[u64]) -> HistogramSnapshot {
        let mut h = Histogram::default();
        for &v in values {
            h.observe(v);
        }
        HistogramSnapshot {
            name: name.into(),
            counts: h.counts.to_vec(),
            count: h.count,
            sum: h.sum,
            min: if h.count == 0 { 0 } else { h.min },
            max: h.max,
        }
    }

    /// Exclusive pow2 upper bound of bucket `i`: bucket 0 holds only the
    /// value `0` (bound 1), bucket `i >= 1` holds `[2^(i-1), 2^i)` (bound
    /// `2^i`), and the final catch-all bucket has no finite bound
    /// (`u64::MAX`). This is the one place bucket math lives; exporters
    /// and quantile estimation both go through it.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// An upper bound on the `q`-quantile of the observed values.
    ///
    /// Power-of-two buckets only retain which range each value fell in, so
    /// the estimate is the *bucket upper bound* (see
    /// [`HistogramSnapshot::bucket_upper_bound`]; exclusive, so the bound
    /// minus one is the largest value the bucket can hold) of the bucket
    /// containing the observation of rank `ceil(q * count)`, clamped to
    /// the observed `max`. The result therefore never under-reports a
    /// quantile and is at worst 2× the true value.
    ///
    /// **Interpolation rule.** There is deliberately *no* within-bucket
    /// interpolation: every rank in a bucket reports the same value
    /// (`bound − 1`, or `0` for bucket 0, capped at `max`). Interpolating
    /// inside a pow2 bucket would fabricate precision the counts do not
    /// carry and could under-report; the step function keeps the
    /// upper-bound guarantee. Consequences worth knowing:
    ///
    /// * `q` is clamped to `[0, 1]` and the rank to `[1, count]`, so
    ///   `quantile(0.0)` is the first observation's bucket cap, not 0.
    /// * An empty histogram yields 0 for every `q`.
    /// * All-zero observations sit in bucket 0 (which holds exactly the
    ///   value 0), so every quantile is 0 — not bucket 0's bound.
    /// * When the whole population saturates the final catch-all bucket,
    ///   the infinite bound collapses to the observed `max` for every
    ///   `q` — the clamp is what keeps the catch-all meaningful.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let bound = Self::bucket_upper_bound(i);
                // Bucket 0 holds only the value 0; elsewhere the largest
                // representable member is `bound - 1`.
                let cap = if i == 0 { 0 } else { bound.saturating_sub(1) };
                return cap.min(self.max);
            }
        }
        self.max
    }
}

#[derive(Default)]
pub(crate) struct MetricsRegistry {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
}

impl MetricsRegistry {
    pub(crate) fn add(&self, name: &'static str, delta: u64) {
        *self.counters.lock().entry(name).or_insert(0) += delta;
    }

    pub(crate) fn gauge(&self, name: &'static str, value: f64) {
        self.gauges.lock().insert(name, value);
    }

    pub(crate) fn observe(&self, name: &'static str, value: u64) {
        self.histograms
            .lock()
            .entry(name)
            .or_default()
            .observe(value);
    }

    pub(crate) fn counters(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect()
    }

    pub(crate) fn gauges(&self) -> Vec<(String, f64)> {
        self.gauges
            .lock()
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect()
    }

    pub(crate) fn histograms(&self) -> Vec<HistogramSnapshot> {
        self.histograms
            .lock()
            .iter()
            .map(|(&name, h)| HistogramSnapshot {
                name: name.to_string(),
                counts: h.counts.to_vec(),
                count: h.count,
                sum: h.sum,
                min: if h.count == 0 { 0 } else { h.min },
                max: h.max,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries() {
        let mut h = Histogram::default();
        h.observe(0); // bucket 0
        h.observe(1); // bucket 1 (1 < 2^1)
        h.observe(2); // bucket 2
        h.observe(3); // bucket 2 (3 < 2^2)
        h.observe(4); // bucket 3
        h.observe(u64::MAX); // clamped to last bucket
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[2], 2);
        assert_eq!(h.counts[3], 1);
        assert_eq!(h.counts[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(h.count, 6);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, u64::MAX);
    }

    #[test]
    fn histogram_power_of_two_boundaries() {
        // Exact powers of two sit at bucket *lower* bounds: bucket 0 holds
        // only 0, bucket i >= 1 holds [2^(i-1), 2^i), and the final bucket
        // absorbs everything from 2^(HISTOGRAM_BUCKETS-2) upward.
        let mut h = Histogram::default();
        h.observe(1); // [2^0, 2^1) -> bucket 1
        h.observe(2); // [2^1, 2^2) -> bucket 2
        h.observe(1 << 62); // beyond the last bound -> catch-all
        h.observe(u64::MAX); // catch-all
        assert_eq!(h.counts[0], 0, "bucket 0 is reserved for the value 0");
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[2], 1);
        assert_eq!(h.counts[HISTOGRAM_BUCKETS - 1], 2);
        assert_eq!(h.count, 4);

        // The catch-all's lower bound itself, and the value just below it.
        let mut edge = Histogram::default();
        edge.observe((1 << (HISTOGRAM_BUCKETS - 2)) - 1);
        edge.observe(1 << (HISTOGRAM_BUCKETS - 2));
        assert_eq!(edge.counts[HISTOGRAM_BUCKETS - 2], 1);
        assert_eq!(edge.counts[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn registry_aggregates() {
        let reg = MetricsRegistry::default();
        reg.add("a", 1);
        reg.add("a", 2);
        reg.add("b", 5);
        reg.gauge("g", 0.5);
        reg.observe("h", 10);
        assert_eq!(
            reg.counters(),
            vec![("a".to_string(), 3), ("b".to_string(), 5)]
        );
        assert_eq!(reg.gauges(), vec![("g".to_string(), 0.5)]);
        let hists = reg.histograms();
        assert_eq!(hists[0].count, 1);
        assert_eq!(hists[0].mean(), 10.0);
    }

    #[test]
    fn quantile_reports_bucket_upper_bounds() {
        // Values 1..=8 land in buckets 1..=4; each quantile must come back
        // as the inclusive top of its bucket (bound - 1), clamped to max.
        let h = HistogramSnapshot::from_values("q", &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(h.quantile(0.0), 1); // rank 1 -> value 1 -> bucket 1 -> bound 2 - 1
        assert_eq!(h.quantile(0.125), 1);
        assert_eq!(h.quantile(0.25), 3); // rank 2 -> value 2 -> bucket 2 -> bound 4 - 1
        assert_eq!(h.quantile(0.5), 7); // rank 4 -> value 4 -> bucket 3 -> bound 8 - 1
        assert_eq!(h.quantile(1.0), 8); // clamped to max, not bucket 4's 15
    }

    #[test]
    fn quantile_median_rank_semantics() {
        // rank(0.5, n=8) = ceil(4) = 4 -> value 4 -> bucket 3 -> bound 8-1,
        // clamped to observed max only when smaller.
        let h = HistogramSnapshot::from_values("q", &[1, 2, 3, 4, 100, 100, 100, 100]);
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.quantile(0.9), 100); // bucket 7 bound 128-1, clamped to max 100
    }

    #[test]
    fn quantile_of_zeros_and_empty() {
        let empty = HistogramSnapshot::from_values("e", &[]);
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.quantile(0.0), 0);
        assert_eq!(empty.quantile(1.0), 0);
        let zeros = HistogramSnapshot::from_values("z", &[0, 0, 0]);
        assert_eq!(zeros.quantile(0.99), 0, "bucket 0 holds exactly 0");
        assert_eq!(zeros.quantile(0.0), 0);
        assert_eq!(zeros.quantile(1.0), 0);
    }

    #[test]
    fn quantile_of_saturated_top_bucket() {
        // Every observation lands in the final catch-all bucket, whose
        // exclusive bound is u64::MAX: the max-clamp must collapse each
        // quantile to the observed max, not the infinite bound.
        let top = 1u64 << (HISTOGRAM_BUCKETS as u32 - 2);
        let h = HistogramSnapshot::from_values("sat", &[top, top + 7, u64::MAX]);
        assert_eq!(h.counts[HISTOGRAM_BUCKETS - 1], 3);
        // The catch-all's cap is `u64::MAX - 1` (exclusive bound minus
        // one), so even a u64::MAX observation reports one below it —
        // the single value the scheme cannot represent exactly.
        assert_eq!(h.quantile(0.0), u64::MAX - 1);
        assert_eq!(h.quantile(0.5), u64::MAX - 1);
        assert_eq!(h.quantile(1.0), u64::MAX - 1);

        // Same shape without a u64::MAX member: clamp to the true max.
        let h = HistogramSnapshot::from_values("sat2", &[top, top + 7]);
        assert_eq!(h.quantile(0.5), top + 7);
        assert_eq!(h.quantile(1.0), top + 7);
    }

    #[test]
    fn quantile_clamps_out_of_range_q() {
        let h = HistogramSnapshot::from_values("c", &[5, 6, 7]);
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(42.0), h.quantile(1.0));
        assert_eq!(h.quantile(f64::NAN), h.quantile(0.0), "NaN clamps low");
    }

    #[test]
    fn bucket_upper_bounds_match_observe() {
        // Every value must satisfy value < bucket_upper_bound(bucket(value)).
        for v in [0u64, 1, 2, 3, 4, 255, 256, u64::MAX] {
            let h = HistogramSnapshot::from_values("b", &[v]);
            let bucket = h.counts.iter().position(|&c| c > 0).unwrap();
            if bucket < HISTOGRAM_BUCKETS - 1 {
                assert!(v < HistogramSnapshot::bucket_upper_bound(bucket), "{v}");
            } else {
                assert_eq!(HistogramSnapshot::bucket_upper_bound(bucket), u64::MAX);
            }
        }
    }

    #[test]
    fn empty_histogram_snapshot_min_is_zero() {
        let reg = MetricsRegistry::default();
        reg.observe("h", 3);
        let h = &reg.histograms()[0];
        assert_eq!((h.min, h.max), (3, 3));
    }
}
