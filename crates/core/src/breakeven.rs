//! Break-even analysis (§V-D).
//!
//! Two models, as in the paper:
//!
//! * **Simplistic** — "divide the total runtime overhead by the time saved
//!   during one execution of the application": fixed input, repeated
//!   executions.
//! * **Frequency-scaled** (the paper's reported numbers) — "more input
//!   data is processed instead of multiple execution of the same
//!   application. Hence, the additional runtime is spent only in the parts
//!   of the code which are live": constant-code savings accrue once, live
//!   savings scale with the input; solve for the input scale at which
//!   accumulated savings equal the specialization overhead and report the
//!   corresponding execution time.

use jitise_base::SimTime;

/// Inputs of the frequency-scaled model, all per one train-set execution.
#[derive(Debug, Clone, Copy)]
pub struct BreakEvenInputs {
    /// Time spent in constant-frequency code.
    pub const_time: SimTime,
    /// Time spent in live (input-scaled) code.
    pub live_time: SimTime,
    /// Time saved per execution in constant code (candidates living in
    /// const blocks).
    pub const_saved: SimTime,
    /// Time saved per execution in live code.
    pub live_saved: SimTime,
    /// Total ASIP specialization overhead to amortize (Table II `sum`).
    pub overhead: SimTime,
}

/// Simplistic model: repeated executions of a fixed input.
///
/// One execution takes `exec_time` and saves `saved_per_exec`; break-even
/// is reached after `ceil(overhead / saved)` executions. Returns the total
/// execution time until then, or `None` if nothing is saved.
pub fn break_even_simplistic(
    exec_time: SimTime,
    saved_per_exec: SimTime,
    overhead: SimTime,
) -> Option<SimTime> {
    if saved_per_exec == SimTime::ZERO {
        return None;
    }
    let execs = overhead.as_nanos().div_ceil(saved_per_exec.as_nanos());
    Some(exec_time * execs)
}

/// Frequency-scaled model (the paper's Table II column).
///
/// Returns the minimal execution time after which savings cover the
/// overhead, or `None` if live code saves nothing (the overhead is then
/// never amortized by larger inputs).
pub fn break_even_scaled(inp: BreakEvenInputs) -> Option<SimTime> {
    let overhead = inp.overhead.as_nanos() as f64;
    let const_saved = inp.const_saved.as_nanos() as f64;
    let live_saved = inp.live_saved.as_nanos() as f64;
    let const_time = inp.const_time.as_nanos() as f64;
    let live_time = inp.live_time.as_nanos() as f64;

    if const_saved >= overhead {
        // Amortized within the constant part of the very first run.
        let frac = if const_saved > 0.0 {
            overhead / const_saved
        } else {
            0.0
        };
        return Some(SimTime::from_nanos((const_time * frac) as u64));
    }
    if live_saved <= 0.0 {
        return None;
    }
    // Scale alpha at which const_saved + alpha * live_saved == overhead.
    let alpha = (overhead - const_saved) / live_saved;
    let total = const_time + alpha * live_time;
    Some(SimTime::from_nanos(total as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn simplistic_basic() {
        // Each run takes 10 s and saves 2 s; overhead 60 s -> 30 runs.
        let t = break_even_simplistic(s(10), s(2), s(60)).unwrap();
        assert_eq!(t, s(300));
        // Rounds up: overhead 61 s -> 31 runs.
        let t = break_even_simplistic(s(10), s(2), s(61)).unwrap();
        assert_eq!(t, s(310));
        assert!(break_even_simplistic(s(10), SimTime::ZERO, s(60)).is_none());
    }

    #[test]
    fn scaled_basic() {
        // 5 s const (saving 1 s), 20 s live (saving 4 s per run).
        // Overhead 41 s: alpha = (41-1)/4 = 10 -> time = 5 + 10*20 = 205 s.
        let t = break_even_scaled(BreakEvenInputs {
            const_time: s(5),
            live_time: s(20),
            const_saved: s(1),
            live_saved: s(4),
            overhead: s(41),
        })
        .unwrap();
        assert_eq!(t, s(205));
    }

    #[test]
    fn scaled_monotone_in_overhead_and_speedup() {
        let base = BreakEvenInputs {
            const_time: s(5),
            live_time: s(20),
            const_saved: s(1),
            live_saved: s(4),
            overhead: s(41),
        };
        let t0 = break_even_scaled(base).unwrap();
        let t_more_overhead = break_even_scaled(BreakEvenInputs {
            overhead: s(80),
            ..base
        })
        .unwrap();
        assert!(t_more_overhead > t0, "more overhead, later break-even");
        let t_more_savings = break_even_scaled(BreakEvenInputs {
            live_saved: s(8),
            ..base
        })
        .unwrap();
        assert!(t_more_savings < t0, "more savings, earlier break-even");
    }

    #[test]
    fn scaled_const_only_amortization() {
        // Savings in constant code alone cover the overhead.
        let t = break_even_scaled(BreakEvenInputs {
            const_time: s(10),
            live_time: s(100),
            const_saved: s(50),
            live_saved: SimTime::ZERO,
            overhead: s(25),
        })
        .unwrap();
        assert_eq!(t, s(5), "half the const section pays it off");
    }

    #[test]
    fn scaled_never_amortizes_without_live_savings() {
        assert!(break_even_scaled(BreakEvenInputs {
            const_time: s(10),
            live_time: s(100),
            const_saved: s(1),
            live_saved: SimTime::ZERO,
            overhead: s(25),
        })
        .is_none());
    }

    #[test]
    fn paper_scale_example() {
        // Embedded-style numbers: ~50 min overhead, ~23 s VM run with 5x
        // speedup concentrated in live code -> break-even in hours.
        let run = s(23);
        let saved = SimTime::from_secs_f64(23.0 * (1.0 - 1.0 / 4.98));
        let t = break_even_scaled(BreakEvenInputs {
            const_time: SimTime::from_secs_f64(0.5),
            live_time: run,
            const_saved: SimTime::ZERO,
            live_saved: saved,
            overhead: SimTime::from_mins(50),
        })
        .unwrap();
        let hours = t.as_hours_f64();
        assert!(
            (0.25..6.0).contains(&hours),
            "embedded break-even should be order-hours, got {hours}"
        );
    }
}
