//! Break-even analysis (§V-D).
//!
//! Two models, as in the paper:
//!
//! * **Simplistic** — "divide the total runtime overhead by the time saved
//!   during one execution of the application": fixed input, repeated
//!   executions.
//! * **Frequency-scaled** (the paper's reported numbers) — "more input
//!   data is processed instead of multiple execution of the same
//!   application. Hence, the additional runtime is spent only in the parts
//!   of the code which are live": constant-code savings accrue once, live
//!   savings scale with the input; solve for the input scale at which
//!   accumulated savings equal the specialization overhead and report the
//!   corresponding execution time.

use jitise_base::SimTime;

/// Inputs of the frequency-scaled model, all per one train-set execution.
#[derive(Debug, Clone, Copy)]
pub struct BreakEvenInputs {
    /// Time spent in constant-frequency code.
    pub const_time: SimTime,
    /// Time spent in live (input-scaled) code.
    pub live_time: SimTime,
    /// Time saved per execution in constant code (candidates living in
    /// const blocks).
    pub const_saved: SimTime,
    /// Time saved per execution in live code.
    pub live_saved: SimTime,
    /// Total ASIP specialization overhead to amortize (Table II `sum`).
    pub overhead: SimTime,
}

/// Simplistic model: repeated executions of a fixed input.
///
/// One execution takes `exec_time` and saves `saved_per_exec`; break-even
/// is reached after `ceil(overhead / saved)` executions. Returns the total
/// execution time until then, or `None` if nothing is saved.
pub fn break_even_simplistic(
    exec_time: SimTime,
    saved_per_exec: SimTime,
    overhead: SimTime,
) -> Option<SimTime> {
    if saved_per_exec == SimTime::ZERO {
        return None;
    }
    let execs = overhead.as_nanos().div_ceil(saved_per_exec.as_nanos());
    // `exec_time * execs` exceeds u64 nanoseconds (a ~584-year simulated
    // span) for slow apps with marginal savings; saturate to
    // `SimTime::from_nanos(u64::MAX)` instead of wrapping into a bogus
    // *early* break-even.
    Some(SimTime::from_nanos(
        exec_time.as_nanos().saturating_mul(execs),
    ))
}

/// Frequency-scaled model (the paper's Table II column).
///
/// Returns the minimal execution time after which savings cover the
/// overhead, or `None` if live code saves nothing (the overhead is then
/// never amortized by larger inputs).
pub fn break_even_scaled(inp: BreakEvenInputs) -> Option<SimTime> {
    let overhead = inp.overhead.as_nanos() as f64;
    let const_saved = inp.const_saved.as_nanos() as f64;
    let live_saved = inp.live_saved.as_nanos() as f64;
    let const_time = inp.const_time.as_nanos() as f64;
    let live_time = inp.live_time.as_nanos() as f64;

    if const_saved >= overhead {
        // Amortized within the constant part of the very first run. Round
        // *up*: truncation would report a time at which the accumulated
        // savings still fall a fraction of a nanosecond short of the
        // overhead, i.e. a break-even earlier than true amortization.
        let frac = if const_saved > 0.0 {
            overhead / const_saved
        } else {
            0.0
        };
        return Some(SimTime::from_nanos((const_time * frac).ceil() as u64));
    }
    if live_saved <= 0.0 {
        return None;
    }
    // Scale alpha at which const_saved + alpha * live_saved == overhead.
    // Ceil for the same reason as above: never report an execution time
    // shorter than the point where savings actually cover the overhead.
    let alpha = (overhead - const_saved) / live_saved;
    let total = const_time + alpha * live_time;
    Some(SimTime::from_nanos(total.ceil() as u64))
}

/// Inputs of the two-tier break-even model (DESIGN.md §17).
#[derive(Debug, Clone, Copy)]
pub struct TwoTierInputs {
    /// The full tier's per-execution view of the application. Its
    /// `overhead` is the full-CAD overhead — the background flow still
    /// runs and must still be amortized.
    pub base: BreakEvenInputs,
    /// Overlay assembly + install overhead, added on top of the full
    /// overhead.
    pub overlay_overhead: SimTime,
    /// Fraction of the full tier's savings *rate* the overlay achieves
    /// under its degraded clock. Clamped to `[0, 1]`; `0` means the
    /// overlay saves nothing over software (small candidates can be
    /// slower than the fallback path).
    pub overlay_saved_frac: f64,
    /// Delay until the background upgrade swaps the slot — the full-CAD
    /// makespan. Before this point the application saves at the overlay
    /// rate; after it, at the full rate.
    pub upgrade_ready: SimTime,
}

/// Two-tier break-even: time from the *specialization request* until the
/// accumulated savings cover the combined overlay + full overhead.
///
/// A linear-rate piecewise model: the overlay installs at effectively zero
/// delay, so savings accrue at `overlay_saved_frac` of the full rate from
/// `t = 0`, then at the full rate once the upgrade lands at
/// `upgrade_ready`. Contrast with the full-only deployment, where *no*
/// savings exist before `upgrade_ready` — the two-tier scheme's headline
/// is collapsing that dead window, not shrinking the overhead itself.
/// Returns `None` when the full tier saves nothing (never amortizes).
pub fn break_even_two_tier(inp: TwoTierInputs) -> Option<SimTime> {
    let total_time = (inp.base.const_time + inp.base.live_time).as_nanos() as f64;
    let full_saved = (inp.base.const_saved + inp.base.live_saved).as_nanos() as f64;
    if total_time <= 0.0 || full_saved <= 0.0 {
        return None;
    }
    // Savings rates in saved-ns per executed-ns.
    let r_full = full_saved / total_time;
    let r_ovl = r_full * inp.overlay_saved_frac.clamp(0.0, 1.0);
    let overhead = (inp.base.overhead + inp.overlay_overhead).as_nanos() as f64;
    let d = inp.upgrade_ready.as_nanos() as f64;
    let saved_by_upgrade = r_ovl * d;
    let t = if r_ovl > 0.0 && overhead <= saved_by_upgrade {
        // Amortized while still serving from the overlay.
        overhead / r_ovl
    } else {
        d + (overhead - saved_by_upgrade) / r_full
    };
    Some(SimTime::from_nanos(t.ceil() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn simplistic_basic() {
        // Each run takes 10 s and saves 2 s; overhead 60 s -> 30 runs.
        let t = break_even_simplistic(s(10), s(2), s(60)).unwrap();
        assert_eq!(t, s(300));
        // Rounds up: overhead 61 s -> 31 runs.
        let t = break_even_simplistic(s(10), s(2), s(61)).unwrap();
        assert_eq!(t, s(310));
        assert!(break_even_simplistic(s(10), SimTime::ZERO, s(60)).is_none());
    }

    #[test]
    fn simplistic_saturates_instead_of_wrapping() {
        // 10 executions of a ~292-year run: the product wraps u64. The
        // wrapped value reported a break-even of ~3 s.
        let exec = SimTime::from_nanos(u64::MAX / 2);
        let t = break_even_simplistic(exec, SimTime::from_nanos(1), SimTime::from_nanos(10));
        assert_eq!(t.unwrap(), SimTime::from_nanos(u64::MAX));
    }

    #[test]
    fn two_tier_amortizes_on_the_overlay_before_the_upgrade() {
        // Full rate 0.5; overlay at 80 % of it = 0.4. Overhead 20 s is
        // covered after 50 s — before the upgrade lands at 100 s.
        let t = break_even_two_tier(TwoTierInputs {
            base: BreakEvenInputs {
                const_time: s(0),
                live_time: s(10),
                const_saved: s(0),
                live_saved: s(5),
                overhead: s(18),
            },
            overlay_overhead: s(2),
            overlay_saved_frac: 0.8,
            upgrade_ready: s(100),
        })
        .unwrap();
        assert_eq!(t, s(50));
    }

    #[test]
    fn two_tier_finishes_amortizing_at_the_full_rate() {
        // Same rates, overhead 60 s: the overlay banks 0.4 * 100 = 40 s by
        // the upgrade, the remaining 20 s amortize at 0.5 -> 100 + 40 s.
        let t = break_even_two_tier(TwoTierInputs {
            base: BreakEvenInputs {
                const_time: s(0),
                live_time: s(10),
                const_saved: s(0),
                live_saved: s(5),
                overhead: s(58),
            },
            overlay_overhead: s(2),
            overlay_saved_frac: 0.8,
            upgrade_ready: s(100),
        })
        .unwrap();
        assert_eq!(t, s(140));
    }

    #[test]
    fn two_tier_collapses_the_dead_window_of_full_only() {
        // The full-only deployment saves nothing until the CAD makespan
        // elapses; from the request, its break-even is
        // `upgrade_ready + break_even_scaled`. Two-tier starts saving
        // immediately and must come out ahead whenever the overlay saves
        // anything at all.
        let base = BreakEvenInputs {
            const_time: s(1),
            live_time: s(20),
            const_saved: s(0),
            live_saved: s(4),
            overhead: s(600),
        };
        let full_only = s(600) + break_even_scaled(base).unwrap();
        let two_tier = break_even_two_tier(TwoTierInputs {
            base,
            overlay_overhead: SimTime::from_nanos(1_000_000), // 1 ms
            overlay_saved_frac: 0.5,
            upgrade_ready: s(600),
        })
        .unwrap();
        assert!(
            two_tier < full_only,
            "two-tier {two_tier} vs full-only {full_only}"
        );
    }

    #[test]
    fn two_tier_with_useless_overlay_degenerates_to_waiting() {
        // overlay_saved_frac = 0: nothing accrues before the upgrade.
        let base = BreakEvenInputs {
            const_time: s(0),
            live_time: s(10),
            const_saved: s(0),
            live_saved: s(5),
            overhead: s(50),
        };
        let t = break_even_two_tier(TwoTierInputs {
            base,
            overlay_overhead: s(0),
            overlay_saved_frac: 0.0,
            upgrade_ready: s(30),
        })
        .unwrap();
        assert_eq!(t, s(130), "30 s wait + 100 s at the full rate");
    }

    #[test]
    fn two_tier_none_when_full_tier_saves_nothing() {
        assert!(break_even_two_tier(TwoTierInputs {
            base: BreakEvenInputs {
                const_time: s(1),
                live_time: s(10),
                const_saved: s(0),
                live_saved: s(0),
                overhead: s(5),
            },
            overlay_overhead: s(0),
            overlay_saved_frac: 0.5,
            upgrade_ready: s(10),
        })
        .is_none());
    }

    #[test]
    fn scaled_basic() {
        // 5 s const (saving 1 s), 20 s live (saving 4 s per run).
        // Overhead 41 s: alpha = (41-1)/4 = 10 -> time = 5 + 10*20 = 205 s.
        let t = break_even_scaled(BreakEvenInputs {
            const_time: s(5),
            live_time: s(20),
            const_saved: s(1),
            live_saved: s(4),
            overhead: s(41),
        })
        .unwrap();
        assert_eq!(t, s(205));
    }

    #[test]
    fn scaled_monotone_in_overhead_and_speedup() {
        let base = BreakEvenInputs {
            const_time: s(5),
            live_time: s(20),
            const_saved: s(1),
            live_saved: s(4),
            overhead: s(41),
        };
        let t0 = break_even_scaled(base).unwrap();
        let t_more_overhead = break_even_scaled(BreakEvenInputs {
            overhead: s(80),
            ..base
        })
        .unwrap();
        assert!(t_more_overhead > t0, "more overhead, later break-even");
        let t_more_savings = break_even_scaled(BreakEvenInputs {
            live_saved: s(8),
            ..base
        })
        .unwrap();
        assert!(t_more_savings < t0, "more savings, earlier break-even");
    }

    #[test]
    fn scaled_const_only_amortization() {
        // Savings in constant code alone cover the overhead.
        let t = break_even_scaled(BreakEvenInputs {
            const_time: s(10),
            live_time: s(100),
            const_saved: s(50),
            live_saved: SimTime::ZERO,
            overhead: s(25),
        })
        .unwrap();
        assert_eq!(t, s(5), "half the const section pays it off");
    }

    #[test]
    fn scaled_never_amortizes_without_live_savings() {
        assert!(break_even_scaled(BreakEvenInputs {
            const_time: s(10),
            live_time: s(100),
            const_saved: s(1),
            live_saved: SimTime::ZERO,
            overhead: s(25),
        })
        .is_none());
    }

    /// Savings accumulated after running for `t`: the constant section
    /// pays out pro rata over `const_time`, then live savings scale with
    /// the live time executed. Integer arithmetic (u128), so the check
    /// cannot inherit the float rounding it is guarding against.
    fn savings_at(inp: &BreakEvenInputs, t: SimTime) -> u128 {
        let t = t.as_nanos() as u128;
        let ct = inp.const_time.as_nanos() as u128;
        if t <= ct || inp.live_time == SimTime::ZERO {
            if ct == 0 {
                return inp.const_saved.as_nanos() as u128;
            }
            return inp.const_saved.as_nanos() as u128 * t / ct;
        }
        inp.const_saved.as_nanos() as u128
            + inp.live_saved.as_nanos() as u128 * (t - ct) / inp.live_time.as_nanos() as u128
    }

    #[test]
    fn const_branch_rounds_up_not_down() {
        // frac = 1/3 of a 10 s constant section: 3.333… s. Truncation
        // reported 3_333_333_333 ns — one nanosecond *before* savings
        // cover the overhead.
        let inp = BreakEvenInputs {
            const_time: s(10),
            live_time: s(20),
            const_saved: s(3),
            live_saved: s(4),
            overhead: s(1),
        };
        let t = break_even_scaled(inp).unwrap();
        assert_eq!(t, SimTime::from_nanos(3_333_333_334));
        assert!(
            savings_at(&inp, t) >= inp.overhead.as_nanos() as u128,
            "at the reported break-even the overhead must be covered"
        );
    }

    #[test]
    fn live_branch_rounds_up_not_down() {
        // alpha = 1/3 over a 1 s live section: total 1.333… s; truncation
        // landed short of amortization.
        let inp = BreakEvenInputs {
            const_time: s(1),
            live_time: s(1),
            const_saved: SimTime::ZERO,
            live_saved: s(3),
            overhead: s(1),
        };
        let t = break_even_scaled(inp).unwrap();
        assert_eq!(t, SimTime::from_nanos(1_333_333_334));
        assert!(savings_at(&inp, t) >= inp.overhead.as_nanos() as u128);
    }

    #[test]
    fn paper_scale_example() {
        // Embedded-style numbers: ~50 min overhead, ~23 s VM run with 5x
        // speedup concentrated in live code -> break-even in hours.
        let run = s(23);
        let saved = SimTime::from_secs_f64(23.0 * (1.0 - 1.0 / 4.98));
        let t = break_even_scaled(BreakEvenInputs {
            const_time: SimTime::from_secs_f64(0.5),
            live_time: run,
            const_saved: SimTime::ZERO,
            live_saved: saved,
            overhead: SimTime::from_mins(50),
        })
        .unwrap();
        let hours = t.as_hours_f64();
        assert!(
            (0.25..6.0).contains(&hours),
            "embedded break-even should be order-hours, got {hours}"
        );
    }

    use proptest::prelude::*;

    proptest! {
        /// The simplistic model must equal the exact u128 product clamped
        /// to u64 — never a wrapped value — for any input.
        #[test]
        fn simplistic_matches_wide_arithmetic(
            exec in 0u64..u64::MAX,
            saved in 1u64..u64::MAX,
            overhead in 0u64..u64::MAX,
        ) {
            let t = break_even_simplistic(
                SimTime::from_nanos(exec),
                SimTime::from_nanos(saved),
                SimTime::from_nanos(overhead),
            )
            .unwrap();
            let execs = (overhead as u128).div_ceil(saved as u128);
            let want = (exec as u128 * execs).min(u64::MAX as u128);
            prop_assert_eq!(t.as_nanos() as u128, want);
        }

        /// More overhead can never mean an *earlier* break-even, across
        /// both model branches and the boundary between them.
        #[test]
        fn scaled_break_even_monotone_in_overhead(
            const_time in 0u64..1_000_000_000_000,
            live_time in 1u64..1_000_000_000_000,
            const_saved in 0u64..1_000_000_000_000,
            live_saved in 0u64..1_000_000_000_000,
            overhead in 0u64..1_000_000_000_000,
            extra in 0u64..1_000_000_000_000,
        ) {
            let inputs = |overhead: u64| BreakEvenInputs {
                const_time: SimTime::from_nanos(const_time),
                live_time: SimTime::from_nanos(live_time),
                const_saved: SimTime::from_nanos(const_saved),
                live_saved: SimTime::from_nanos(live_saved),
                overhead: SimTime::from_nanos(overhead),
            };
            let lo = break_even_scaled(inputs(overhead));
            let hi = break_even_scaled(inputs(overhead.saturating_add(extra)));
            if let Some(hi_t) = hi {
                let lo_t = lo.expect("if the larger overhead amortizes, the smaller must too");
                prop_assert!(
                    lo_t <= hi_t,
                    "overhead {overhead} -> {lo_t}, overhead {} -> {hi_t}",
                    overhead.saturating_add(extra)
                );
            }
        }
    }
}
