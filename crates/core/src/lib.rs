//! # jitise-core — the just-in-time ASIP specialization process
//!
//! The paper's primary contribution: the tool flow that moves instruction
//! set customization to runtime (Figs. 1 and 2).
//!
//! * [`pipeline`] — the three-phase ASIP-SP (Candidate Search → Netlist
//!   Generation → Instruction Implementation) plus the adaptation phase
//!   (reconfigure + binary patch).
//! * [`cache`] — the partial-reconfiguration bitstream cache of §VI-A.
//! * [`breakeven`] — both break-even models of §V-D.
//! * [`extrapolate`] — the Table IV cache/tool-speedup extrapolation.
//! * [`evaluation`] — the per-application measurement protocol driving
//!   the table reproductions.
//! * [`runtime`] — the concurrent JIT runtime: the application executes
//!   while a background worker specializes, then hot-swaps.

pub mod breakeven;
pub mod cache;
pub mod evaluation;
pub mod extrapolate;
pub mod pipeline;
pub mod runtime;
#[cfg(test)]
pub(crate) mod testfix;

pub use breakeven::{
    break_even_scaled, break_even_simplistic, break_even_two_tier, BreakEvenInputs, TwoTierInputs,
};
pub use cache::{BitstreamCache, CachedCi};
pub use evaluation::{break_even_basis, evaluate_app, AppEvaluation, BreakEvenBasis, EvalContext};
pub use extrapolate::{
    average_break_even, average_break_even_detailed, table_iv, BreakEvenAverage, CACHE_RATES,
    NEVER_AMORTIZE_CAP_NS, TOOL_SPEEDUPS,
};
pub use pipeline::{
    specialize, CadJob, CadJobResult, CandidateOutcome, FailedCandidate, SpecializeConfig,
    SpecializeReport, SpecializeSession,
};
pub use runtime::{
    run_adaptive, run_adaptive_with, run_storm, AdaptiveOptions, AdaptiveOutcome, DegradedReason,
    PhasePolicy, PhaseSegment, StormOptions, StormOutcome, WorkloadSession,
};
