//! Table IV extrapolation (§VI-C).
//!
//! "we varied the assumed cache hit rate between 0 %–90 %. That is, for
//! simulating a cache with 20 % hit rate, we have populated the cache with
//! 20 % of the required bitstreams for a particular application, whereas
//! the selection which bitstreams are stored in the cache is random.
//! Whenever there is a hit … the whole runtime associated with the
//! generation of the candidate is subtracted from the total runtime. The
//! values in the Faster FPGA CAD tool flow columns are decreasing linearly
//! with the assumed speedup."

use crate::breakeven::{break_even_scaled, BreakEvenInputs};
use crate::evaluation::BreakEvenBasis;
use jitise_base::rng::SplitMix64;
use jitise_base::SimTime;

/// The cache-hit rates of Table IV's rows.
pub const CACHE_RATES: [f64; 10] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

/// The tool-flow speedups of Table IV's columns.
pub const TOOL_SPEEDUPS: [f64; 4] = [0.0, 0.3, 0.6, 0.9];

/// Value a never-amortizing trial contributes to the Table IV average: one
/// simulated year, far beyond every paper-scale break-even (hours). The
/// mean is defined over *all* trials; amortizing samples are clamped to
/// the same cap so the average stays monotone across the boundary.
pub const NEVER_AMORTIZE_CAP_NS: u64 = 365 * 24 * 3600 * 1_000_000_000;

/// One Table IV cell with its amortization coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakEvenAverage {
    /// Mean break-even over **all** trials; a trial whose configuration
    /// never amortizes enters at [`NEVER_AMORTIZE_CAP_NS`].
    pub mean: SimTime,
    /// Trials that actually amortized.
    pub amortized: u64,
    /// Total trials evaluated (`bases.len() * trials`).
    pub trials: u64,
}

/// One Table IV cell: the capped-average break-even time over the supplied
/// apps, plus how many trials amortized at all.
///
/// Earlier revisions skipped `None` (never-amortizing) trials from both
/// the numerator *and* the denominator, so a configuration containing a
/// never-amortizing app averaged exactly like one without it — and a
/// strictly worse cell could report a lower "average". Every trial now
/// counts, with non-amortizing ones entering at the documented cap.
pub fn average_break_even_detailed(
    bases: &[BreakEvenBasis],
    cache_rate: f64,
    tool_speedup: f64,
    trials: u32,
    seed: u64,
) -> BreakEvenAverage {
    assert!((0.0..=1.0).contains(&cache_rate));
    assert!((0.0..=1.0).contains(&tool_speedup));
    let mut rng = SplitMix64::new(seed);
    let mut total_ns: u128 = 0;
    let mut amortized: u64 = 0;
    let mut samples: u64 = 0;
    for basis in bases {
        let n = basis.candidate_times.len();
        let hits = ((n as f64) * cache_rate).round() as usize;
        for _ in 0..trials.max(1) {
            // Random hit subset; its generation time is subtracted.
            let hit_idx = rng.sample_indices(n, hits.min(n));
            let saved: SimTime = hit_idx.iter().map(|&i| basis.candidate_times[i]).sum();
            let overhead = basis
                .inputs
                .overhead
                .saturating_sub(saved)
                .scale(1.0 - tool_speedup);
            let be = break_even_scaled(BreakEvenInputs {
                overhead,
                ..basis.inputs
            });
            samples += 1;
            match be {
                Some(t) => {
                    amortized += 1;
                    total_ns += t.as_nanos().min(NEVER_AMORTIZE_CAP_NS) as u128;
                }
                None => total_ns += NEVER_AMORTIZE_CAP_NS as u128,
            }
        }
    }
    let mean = if samples == 0 {
        SimTime::ZERO
    } else {
        SimTime::from_nanos((total_ns / samples as u128) as u64)
    };
    BreakEvenAverage {
        mean,
        amortized,
        trials: samples,
    }
}

/// One Table IV cell: the capped-average break-even time (see
/// [`average_break_even_detailed`] for the averaging semantics).
pub fn average_break_even(
    bases: &[BreakEvenBasis],
    cache_rate: f64,
    tool_speedup: f64,
    trials: u32,
    seed: u64,
) -> SimTime {
    average_break_even_detailed(bases, cache_rate, tool_speedup, trials, seed).mean
}

/// Computes the full Table IV grid: `grid[row][col]` for
/// `CACHE_RATES[row]` × `TOOL_SPEEDUPS[col]`.
pub fn table_iv(bases: &[BreakEvenBasis], trials: u32, seed: u64) -> Vec<Vec<SimTime>> {
    CACHE_RATES
        .iter()
        .map(|&r| {
            TOOL_SPEEDUPS
                .iter()
                .map(|&s| average_break_even(bases, r, s, trials, seed))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basis(n_cands: usize, overhead_s: u64) -> BreakEvenBasis {
        BreakEvenBasis {
            candidate_times: (0..n_cands)
                .map(|i| SimTime::from_secs(overhead_s / n_cands as u64 + i as u64))
                .collect(),
            inputs: BreakEvenInputs {
                const_time: SimTime::from_secs(1),
                live_time: SimTime::from_secs(20),
                const_saved: SimTime::ZERO,
                live_saved: SimTime::from_secs(16),
                overhead: SimTime::from_secs(overhead_s),
            },
            overlay_overhead: SimTime::ZERO,
            overlay_saved_frac: 0.0,
        }
    }

    /// An app whose live code saves nothing: break-even is `None` at any
    /// overhead its constant savings don't cover.
    fn never_amortizing_basis() -> BreakEvenBasis {
        BreakEvenBasis {
            candidate_times: vec![SimTime::from_secs(500); 4],
            inputs: BreakEvenInputs {
                const_time: SimTime::from_secs(1),
                live_time: SimTime::from_secs(20),
                const_saved: SimTime::from_secs(1),
                live_saved: SimTime::ZERO,
                overhead: SimTime::from_secs(2_000),
            },
            overlay_overhead: SimTime::ZERO,
            overlay_saved_frac: 0.0,
        }
    }

    #[test]
    fn zero_cache_zero_speedup_is_baseline() {
        let b = [basis(8, 2_993)];
        let cell = average_break_even(&b, 0.0, 0.0, 4, 1);
        let direct = break_even_scaled(b[0].inputs).unwrap();
        assert_eq!(cell, direct);
    }

    #[test]
    fn monotone_in_both_axes() {
        let b = [basis(8, 2_993), basis(14, 4_452)];
        let grid = table_iv(&b, 6, 7);
        // Down a column: higher hit rate, lower break-even.
        for col in 0..TOOL_SPEEDUPS.len() {
            for (row, rows) in grid.windows(2).enumerate() {
                assert!(
                    rows[1][col] <= rows[0][col],
                    "row {} col {col}: {} > {}",
                    row + 1,
                    rows[1][col],
                    rows[0][col]
                );
            }
        }
        // Across a row: faster tools, lower break-even.
        for row in grid.iter().take(CACHE_RATES.len()) {
            for col in 1..TOOL_SPEEDUPS.len() {
                assert!(row[col] <= row[col - 1]);
            }
        }
    }

    #[test]
    fn paper_headline_halving() {
        // §VI-C: 30 % cache hits + 30 % faster tools cuts the embedded
        // average "almost by a half (1.94x)". Check the same shape.
        let b = [
            basis(8, 2_418),
            basis(14, 4_452),
            basis(2, 1_256),
            basis(9, 3_848),
        ];
        let base = average_break_even(&b, 0.0, 0.0, 8, 3);
        let improved = average_break_even(&b, 0.3, 0.3, 8, 3);
        let factor = base.as_secs_f64() / improved.as_secs_f64().max(1e-9);
        assert!(
            (1.4..2.6).contains(&factor),
            "improvement factor {factor} out of band"
        );
    }

    #[test]
    fn full_cache_full_speedup_near_zero_overhead() {
        let b = [basis(10, 1_000)];
        let cell = average_break_even(&b, 0.9, 0.9, 4, 5);
        let base = average_break_even(&b, 0.0, 0.0, 4, 5);
        assert!(cell < base / 5);
    }

    #[test]
    fn never_amortizing_app_is_counted_not_dropped() {
        let good = [basis(8, 2_993)];
        let mixed = [basis(8, 2_993), never_amortizing_basis()];
        let g = average_break_even_detailed(&good, 0.0, 0.0, 4, 1);
        let m = average_break_even_detailed(&mixed, 0.0, 0.0, 4, 1);
        assert_eq!(g.amortized, g.trials, "the good app always amortizes");
        assert_eq!(m.trials, 2 * g.trials);
        assert_eq!(m.amortized, g.amortized, "the bad app never amortizes");
        // The regression: the old average silently dropped the bad app's
        // trials and reported the mixed set exactly like the good set.
        assert!(
            m.mean > g.mean,
            "a never-amortizing app must pull the average up: {} vs {}",
            m.mean,
            g.mean
        );
        assert!(m.mean.as_nanos() <= NEVER_AMORTIZE_CAP_NS);
        // With a deep cache the bad app's overhead drops below its
        // constant savings and it finally amortizes.
        let deep = average_break_even_detailed(&mixed, 0.9, 0.9, 4, 1);
        assert_eq!(deep.amortized, deep.trials);
    }

    #[test]
    fn deterministic_given_seed() {
        let b = [basis(9, 2_000)];
        assert_eq!(
            average_break_even(&b, 0.5, 0.3, 8, 11),
            average_break_even(&b, 0.5, 0.3, 8, 11)
        );
    }
}
