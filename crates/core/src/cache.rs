//! The partial-reconfiguration bitstream cache (§VI-A).
//!
//! "Much like virtual machines cache the binary code that was generated
//! on-the-fly for further use, we can cache the generated partial
//! bitstreams for each custom instruction. To this end, each candidate
//! needs to have a unique identifier that is used as a key for reading and
//! writing the cache. We can, for example, compute a signature of the LLVM
//! bitcode that describes the candidate."
//!
//! The key is [`jitise_ise::Candidate::signature`]; the value carries the
//! bitstream plus the implementation results needed to reuse it (timing,
//! stage costs), so a hit skips the *entire* generation pipeline. An
//! optional on-disk image uses the `jitise-base` codec.

use jitise_base::codec::{Decoder, Encoder};
use jitise_base::sync::RwLock;
use jitise_base::{Error, Result, SimTime};
use jitise_cad::{Bitstream, InstallTier, TimingReport};
use jitise_store::{CiRecord, StoreState};
use jitise_telemetry::{names, Telemetry, Value as TelValue};
use std::collections::HashMap;

/// A cached implementation of one custom instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedCi {
    /// Candidate signature.
    pub signature: u64,
    /// The partial bitstream.
    pub bitstream: Bitstream,
    /// Implemented timing.
    pub timing: TimingReport,
    /// Total generation time this entry saves on a hit (C2V + full flow).
    pub generation_time: SimTime,
    /// Which backend produced the bitstream: an overlay assembly (fast to
    /// install, degraded clock) or the fully routed artifact.
    pub tier: InstallTier,
}

impl From<CachedCi> for CiRecord {
    fn from(e: CachedCi) -> CiRecord {
        CiRecord {
            signature: e.signature,
            bitstream: e.bitstream,
            timing: e.timing,
            generation_time: e.generation_time,
            tier: e.tier,
        }
    }
}

impl From<CiRecord> for CachedCi {
    fn from(r: CiRecord) -> CachedCi {
        CachedCi {
            signature: r.signature,
            bitstream: r.bitstream,
            timing: r.timing,
            generation_time: r.generation_time,
            tier: r.tier,
        }
    }
}

/// Thread-safe signature-keyed bitstream cache.
#[derive(Debug, Default)]
pub struct BitstreamCache {
    map: RwLock<HashMap<u64, CachedCi>>,
    hits: RwLock<u64>,
    misses: RwLock<u64>,
}

impl BitstreamCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a signature, counting hit/miss.
    pub fn get(&self, signature: u64) -> Option<CachedCi> {
        let out = self.map.read().get(&signature).cloned();
        match out {
            Some(v) => {
                *self.hits.write() += 1;
                Some(v)
            }
            None => {
                *self.misses.write() += 1;
                None
            }
        }
    }

    /// Inserts an implementation.
    pub fn put(&self, entry: CachedCi) {
        self.map.write().insert(entry.signature, entry);
    }

    /// Drops an entry (poisoned-bitstream eviction). Returns `true` if the
    /// signature was present.
    pub fn remove(&self, signature: u64) -> bool {
        self.map.write().remove(&signature).is_some()
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (*self.hits.read(), *self.misses.read())
    }

    /// Number of cached bitstreams.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Clears contents and counters.
    pub fn clear(&self) {
        self.map.write().clear();
        *self.hits.write() = 0;
        *self.misses.write() = 0;
    }

    /// Serializes the whole cache to bytes (the on-disk database of
    /// §VI-A).
    pub fn to_bytes(&self) -> Vec<u8> {
        let map = self.map.read();
        let mut enc = Encoder::new();
        // -2 appended the install-tier field (PR 10); -1 images are no
        // longer readable, matching the store's no-migration stance.
        enc.put_str("JITISE-BSCACHE-2");
        enc.put_varu64(map.len() as u64);
        let mut keys: Vec<u64> = map.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            let e = &map[&k];
            enc.put_u64(e.signature);
            enc.put_bytes(&e.bitstream.bytes);
            enc.put_varu32(e.bitstream.frames);
            enc.put_u64(e.bitstream.crc as u64);
            enc.put_varu32(e.bitstream.partial as u32);
            enc.put_u64(e.timing.critical_path_ns.to_bits());
            enc.put_u64(e.timing.fmax_mhz.to_bits());
            enc.put_varu32(e.timing.critical_cells);
            enc.put_varu32(e.timing.meets_300mhz as u32);
            enc.put_u64(e.generation_time.as_nanos());
            enc.put_varu32(e.tier.encode());
        }
        enc.finish()
    }

    /// Restores a cache image produced by [`Self::to_bytes`].
    ///
    /// Strict: any structural damage (truncation, trailing garbage, bad
    /// magic) *or* a CRC-failed entry rejects the whole image with a typed
    /// [`Error::Codec`]. Use [`Self::from_bytes_resilient`] to salvage the
    /// intact entries of a partially poisoned image instead.
    pub fn from_bytes(data: &[u8]) -> Result<BitstreamCache> {
        let (cache, dropped) = Self::decode(data, false)?;
        debug_assert_eq!(dropped, 0, "strict decode never drops entries");
        Ok(cache)
    }

    /// Restores a cache image, *dropping* entries whose bitstream fails
    /// its CRC instead of rejecting the image. Returns the cache and the
    /// number of poisoned entries dropped. Structural damage (truncation,
    /// trailing garbage, bad magic) is still a hard [`Error::Codec`]: a
    /// mangled framing means nothing after the damage can be trusted.
    pub fn from_bytes_resilient(data: &[u8]) -> Result<(BitstreamCache, usize)> {
        Self::decode(data, true)
    }

    /// [`Self::from_bytes_resilient`] with the dropped count surfaced to
    /// telemetry: the `bitstream_cache.dropped` counter and a
    /// `cache.load_dropped` journal event, so a disk-load that silently
    /// loses poisoned entries is visible in the phase journal.
    pub fn load_resilient(data: &[u8], tel: &Telemetry) -> Result<(BitstreamCache, usize)> {
        let (cache, dropped) = Self::decode(data, true)?;
        if dropped > 0 {
            tel.add(names::BITSTREAM_CACHE_DROPPED, dropped as u64);
            tel.event(
                "cache.load_dropped",
                &[
                    ("dropped", TelValue::U64(dropped as u64)),
                    ("kept", TelValue::U64(cache.len() as u64)),
                ],
            );
        }
        Ok((cache, dropped))
    }

    /// Hydrates this cache from a recovered [`StoreState`] (warm
    /// restart). Existing entries win over recovered ones — the store is
    /// a snapshot of a *previous* session, so anything already cached in
    /// this one is at least as fresh. Returns the number of entries
    /// absorbed.
    pub fn absorb_store(&self, state: &StoreState) -> usize {
        let mut map = self.map.write();
        let mut absorbed = 0usize;
        for (sig, rec) in &state.entries {
            if !map.contains_key(sig) {
                map.insert(*sig, CachedCi::from(rec.clone()));
                absorbed += 1;
            }
        }
        absorbed
    }

    fn decode(data: &[u8], drop_poisoned: bool) -> Result<(BitstreamCache, usize)> {
        let mut dec = Decoder::new(data);
        let magic = dec.get_str()?;
        if magic != "JITISE-BSCACHE-2" {
            return Err(Error::Codec(format!("bad cache magic {magic:?}")));
        }
        let n = dec.get_varu64()?;
        let cache = BitstreamCache::new();
        let mut dropped = 0usize;
        for _ in 0..n {
            let signature = dec.get_u64()?;
            let bytes = dec.get_bytes()?.to_vec();
            let frames = dec.get_varu32()?;
            let crc = dec.get_u64()? as u32;
            let partial = dec.get_varu32()? != 0;
            let critical_path_ns = f64::from_bits(dec.get_u64()?);
            let fmax_mhz = f64::from_bits(dec.get_u64()?);
            let critical_cells = dec.get_varu32()?;
            let meets_300mhz = dec.get_varu32()? != 0;
            let generation_time = SimTime::from_nanos(dec.get_u64()?);
            let tier = InstallTier::decode(dec.get_varu32()?)?;
            let bitstream = Bitstream {
                bytes,
                frames,
                crc,
                partial,
            };
            if !bitstream.verify() {
                if drop_poisoned {
                    dropped += 1;
                    continue;
                }
                return Err(Error::Codec(format!(
                    "cache entry {signature:#018x} failed CRC"
                )));
            }
            cache.put(CachedCi {
                signature,
                bitstream,
                timing: TimingReport {
                    critical_path_ns,
                    fmax_mhz,
                    critical_cells,
                    meets_300mhz,
                },
                generation_time,
                tier,
            });
        }
        if !dec.is_at_end() {
            return Err(Error::Codec(format!(
                "{} bytes of trailing garbage after {n} cache entries",
                dec.remaining()
            )));
        }
        Ok((cache, dropped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfix::sample_cached_ci as sample_entry;

    #[test]
    fn get_put_and_stats() {
        let c = BitstreamCache::new();
        assert!(c.get(42).is_none());
        c.put(sample_entry(42));
        let hit = c.get(42).unwrap();
        assert_eq!(hit.signature, 42);
        assert_eq!(c.stats(), (1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn roundtrip_through_bytes() {
        let c = BitstreamCache::new();
        c.put(sample_entry(1));
        c.put(sample_entry(2));
        let bytes = c.to_bytes();
        let c2 = BitstreamCache::from_bytes(&bytes).unwrap();
        assert_eq!(c2.len(), 2);
        let e = c2.get(1).unwrap();
        assert_eq!(e, c.get(1).unwrap());
        assert!(e.bitstream.verify());
    }

    #[test]
    fn corrupt_image_rejected() {
        let c = BitstreamCache::new();
        c.put(sample_entry(9));
        let mut bytes = c.to_bytes();
        let n = bytes.len();
        bytes[n - 10] ^= 0xff;
        assert!(BitstreamCache::from_bytes(&bytes).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(BitstreamCache::from_bytes(b"NOT-A-CACHE").is_err());
    }

    #[test]
    fn truncated_image_rejected_with_typed_error() {
        let c = BitstreamCache::new();
        c.put(sample_entry(3));
        let bytes = c.to_bytes();
        // Every prefix must fail cleanly (no panic, no silent misparse).
        for cut in [0, 1, bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
            match BitstreamCache::from_bytes(&bytes[..cut]) {
                Err(Error::Codec(_)) => {}
                other => panic!("truncation at {cut} must yield Error::Codec, got {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected_with_typed_error() {
        let c = BitstreamCache::new();
        c.put(sample_entry(4));
        let mut bytes = c.to_bytes();
        bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        match BitstreamCache::from_bytes(&bytes) {
            Err(Error::Codec(msg)) => assert!(msg.contains("trailing"), "got {msg:?}"),
            other => panic!("trailing garbage must yield Error::Codec, got {other:?}"),
        }
        match BitstreamCache::from_bytes_resilient(&bytes) {
            Err(Error::Codec(_)) => {}
            other => panic!("resilient decode must also reject framing damage, got {other:?}"),
        }
    }

    #[test]
    fn resilient_decode_drops_poisoned_entries_keeps_good_ones() {
        let c = BitstreamCache::new();
        c.put(sample_entry(1));
        c.put(sample_entry(2));
        c.put(sample_entry(3));
        let mut bytes = c.to_bytes();
        // Poison the middle entry's bitstream payload: flip a byte well
        // inside its data region so only the CRC check can catch it.
        let good = BitstreamCache::from_bytes(&bytes).unwrap();
        assert_eq!(good.len(), 3);
        let payload = c.get(2).unwrap().bitstream.bytes;
        let pos = bytes
            .windows(payload.len())
            .position(|w| w == payload)
            .expect("entry 2 payload present in image");
        bytes[pos + payload.len() / 2] ^= 0x40;
        assert!(
            BitstreamCache::from_bytes(&bytes).is_err(),
            "strict decode rejects the poisoned image"
        );
        let (salvaged, dropped) = BitstreamCache::from_bytes_resilient(&bytes).unwrap();
        assert_eq!(dropped, 1);
        assert_eq!(salvaged.len(), 2);
        assert!(salvaged.get(1).is_some());
        assert!(salvaged.get(2).is_none(), "poisoned entry dropped");
        assert!(salvaged.get(3).is_some());
    }

    #[test]
    fn remove_evicts_entry() {
        let c = BitstreamCache::new();
        c.put(sample_entry(8));
        assert!(c.remove(8));
        assert!(!c.remove(8));
        assert!(c.get(8).is_none());
    }

    #[test]
    fn clear_resets_counters() {
        let c = BitstreamCache::new();
        c.put(sample_entry(5));
        c.get(5);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), (0, 0));
    }

    #[test]
    fn cached_ci_converts_to_store_record_and_back() {
        let entry = sample_entry(11);
        let rec = CiRecord::from(entry.clone());
        assert!(rec.bitstream.verify(), "fixture bitstreams are valid");
        let back = CachedCi::from(rec);
        assert_eq!(back, entry);
    }

    #[test]
    fn load_resilient_surfaces_dropped_count_in_telemetry() {
        let c = BitstreamCache::new();
        c.put(sample_entry(1));
        c.put(sample_entry(2));
        let mut bytes = c.to_bytes();
        let payload = c.get(2).unwrap().bitstream.bytes;
        let pos = bytes
            .windows(payload.len())
            .position(|w| w == payload)
            .expect("entry 2 payload present in image");
        bytes[pos + payload.len() / 2] ^= 0x40;

        let tel = Telemetry::enabled();
        let (salvaged, dropped) = BitstreamCache::load_resilient(&bytes, &tel).unwrap();
        assert_eq!(dropped, 1);
        assert_eq!(salvaged.len(), 1);
        let snap = tel.snapshot();
        assert!(
            snap.counters
                .iter()
                .any(|(n, v)| n == names::BITSTREAM_CACHE_DROPPED && *v == 1),
            "counters: {:?}",
            snap.counters
        );
        assert!(
            snap.events.iter().any(|e| e.name == "cache.load_dropped"),
            "journal must record the lossy load"
        );

        // A clean image records nothing.
        let tel2 = Telemetry::enabled();
        let (_, dropped) = BitstreamCache::load_resilient(&c.to_bytes(), &tel2).unwrap();
        assert_eq!(dropped, 0);
        assert!(tel2.snapshot().events.is_empty());
    }

    #[test]
    fn absorb_store_hydrates_without_clobbering_fresh_entries() {
        let fresh = sample_entry(1);
        let mut stale = sample_entry(1);
        stale.generation_time = SimTime::from_secs(999);
        let state = StoreState::from_records(vec![
            jitise_store::Record::CacheEntry(stale.into()),
            jitise_store::Record::CacheEntry(sample_entry(2).into()),
        ]);
        let c = BitstreamCache::new();
        c.put(fresh.clone());
        assert_eq!(c.absorb_store(&state), 1, "only the new signature lands");
        assert_eq!(c.len(), 2);
        assert_eq!(
            c.get(1).unwrap().generation_time,
            fresh.generation_time,
            "the in-session entry wins over the recovered one"
        );
        assert!(c.get(2).is_some());
    }
}
