//! The ASIP specialization process (ASIP-SP, paper Fig. 2).
//!
//! Orchestrates the three phases over one profiled application:
//!
//! 1. **Candidate Search** — pruning, MAXMISO identification, PivPav
//!    estimation, selection (`jitise-ise` + `jitise-pivpav`);
//! 2. **Netlist Generation** — datapath VHDL, netlist extraction, CAD
//!    project creation (`jitise-pivpav`);
//! 3. **Instruction Implementation** — the FPGA CAD flow down to a partial
//!    bitstream (`jitise-cad`);
//!
//! followed by the **adaptation phase**: bitstreams are loaded into the
//! Woolcano slot file and the binary is patched to use the new custom
//! instructions (`jitise-woolcano`).
//!
//! The bitstream cache short-circuits phases 2–3 per candidate (§VI-A).

use crate::cache::{BitstreamCache, CachedCi};
use jitise_base::{Result, SimTime};
use jitise_cad::{run_flow, Fabric, FlowOptions};
use jitise_ir::{Dfg, Module};
use jitise_ise::{candidate_search, Candidate, SearchConfig, SearchOutcome};
use jitise_pivpav::{create_project_with, CircuitDb, NetlistCache, PivPavEstimator};
use jitise_telemetry::{names, Telemetry, Value as TelValue};
use jitise_vm::{BlockKey, Profile};
use jitise_woolcano::{patch_candidate, Woolcano};

/// Configuration of the whole specialization process.
pub struct SpecializeConfig {
    /// Candidate-search configuration (filter, algorithm, budget).
    pub search: SearchConfig,
    /// CAD flow options.
    pub flow: FlowOptions,
    /// The PR-region fabric.
    pub fabric: Fabric,
    /// Use the bitstream cache.
    pub use_cache: bool,
    /// Observability handle; propagated into the search and flow configs
    /// (their own `telemetry` fields are overridden when this is enabled).
    pub telemetry: Telemetry,
}

impl Default for SpecializeConfig {
    fn default() -> Self {
        SpecializeConfig {
            search: SearchConfig::default(),
            flow: FlowOptions::fast(),
            fabric: Fabric::pr_region(),
            use_cache: true,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Per-candidate implementation record.
#[derive(Debug, Clone)]
pub struct CandidateOutcome {
    /// The candidate's block.
    pub key: BlockKey,
    /// Instructions covered.
    pub size: usize,
    /// Candidate signature.
    pub signature: u64,
    /// True if served from the bitstream cache.
    pub cache_hit: bool,
    /// Netlist-generation (C2V) time — zero on a cache hit.
    pub c2v: SimTime,
    /// Constant flow stages (Syn + Xst + Tra + Bitgen) — zero on a hit.
    pub const_stages: SimTime,
    /// Map time.
    pub map: SimTime,
    /// PAR time.
    pub par: SimTime,
    /// CI slot assigned.
    pub slot: u32,
    /// Estimated cycles saved per block execution.
    pub saved_per_exec: u64,
    /// Block executions in the profile.
    pub exec_count: u64,
}

impl CandidateOutcome {
    /// Total generation time for this candidate (what a cache hit saves).
    pub fn total(&self) -> SimTime {
        self.c2v + self.const_stages + self.map + self.par
    }
}

/// Result of one specialization run.
pub struct SpecializeReport {
    /// Candidate-search phase outcome (Table II left half).
    pub search: SearchOutcome,
    /// Per-candidate implementation outcomes.
    pub candidates: Vec<CandidateOutcome>,
    /// Aggregate constant-stage time (Table II `const` column = C2V +
    /// Syn + Xst + Tra + Bitgen over all candidates).
    pub const_time: SimTime,
    /// Aggregate map time (Table II `map`).
    pub map_time: SimTime,
    /// Aggregate PAR time (Table II `par`).
    pub par_time: SimTime,
    /// Total overhead (Table II `sum`).
    pub sum_time: SimTime,
    /// Total ICAP reconfiguration time (adaptation phase).
    pub reconfig_time: SimTime,
    /// Cache hits during this run.
    pub cache_hits: usize,
}

/// Runs the complete ASIP specialization process on `module` (profiled by
/// `profile`), patching the module in place and loading the machine.
///
/// Returns the report; the specialized module and loaded `machine` are the
/// adaptation-phase outputs.
#[allow(clippy::too_many_arguments)]
pub fn specialize(
    module: &mut Module,
    profile: &Profile,
    machine: &Woolcano,
    estimator: &PivPavEstimator,
    db: &CircuitDb,
    netlist_cache: &NetlistCache,
    bitstream_cache: &BitstreamCache,
    config: &SpecializeConfig,
) -> Result<SpecializeReport> {
    let mut root = config.telemetry.span("pipeline.specialize");
    let tel = config.telemetry.under(&root);

    // ---- Phase 1: Candidate Search ----
    let search = if tel.is_enabled() {
        let mut search_cfg = config.search.clone();
        search_cfg.telemetry = tel.clone();
        candidate_search(module, profile, estimator, &search_cfg)
    } else {
        candidate_search(module, profile, estimator, &config.search)
    };

    // Snapshot the pristine functions: semantics freezing and signatures
    // must see the unpatched IR even while we patch candidate by candidate.
    let pristine = module.clone();

    let mut outcomes = Vec::with_capacity(search.selection.selected.len());
    let mut const_time = SimTime::ZERO;
    let mut map_time = SimTime::ZERO;
    let mut par_time = SimTime::ZERO;
    let mut cache_hits = 0usize;

    // Group candidates by block so each block's DFG is built once.
    let selected: Vec<(Candidate, u64, u64, u64)> = search
        .selection
        .selected
        .iter()
        .map(|s| {
            (
                s.candidate.clone(),
                s.estimate.saved_per_exec(),
                s.estimate.exec_count,
                s.estimate.hw_cycles,
            )
        })
        .collect();

    for (cand, saved_per_exec, exec_count, hw_cycles) in selected {
        let pf = pristine.func(cand.key.func);
        let dfg = Dfg::build(pf, cand.key.block);
        let signature = cand.signature(pf, &dfg);
        let mut cand_span = tel.span("pipeline.candidate");
        let cand_tel = tel.under(&cand_span);

        let (cached_entry, cache_hit, c2v_t, const_stages, map_t, par_t) =
            match (config.use_cache, bitstream_cache.get(signature)) {
                (true, Some(hit)) => {
                    cache_hits += 1;
                    (
                        hit,
                        true,
                        SimTime::ZERO,
                        SimTime::ZERO,
                        SimTime::ZERO,
                        SimTime::ZERO,
                    )
                }
                _ => {
                    // Phase 2: Netlist Generation.
                    let (project, c2v) =
                        create_project_with(db, netlist_cache, pf, &dfg, &cand, &cand_tel)?;
                    // Phase 3: Instruction Implementation.
                    let flow = if cand_tel.is_enabled() {
                        let mut flow_cfg = config.flow.clone();
                        flow_cfg.telemetry = cand_tel.clone();
                        run_flow(&config.fabric, &project, &flow_cfg)?
                    } else {
                        run_flow(&config.fabric, &project, &config.flow)?
                    };
                    let entry = CachedCi {
                        signature,
                        bitstream: flow.bitstream.clone(),
                        timing: flow.timing.clone(),
                        generation_time: c2v.total() + flow.total(),
                    };
                    bitstream_cache.put(entry.clone());
                    (
                        entry,
                        false,
                        c2v.total(),
                        flow.constant_share(),
                        flow.map,
                        flow.par,
                    )
                }
            };

        if cache_hit {
            tel.add(names::BITSTREAM_CACHE_HITS, 1);
        } else {
            tel.add(names::BITSTREAM_CACHE_MISSES, 1);
        }
        const_time += c2v_t + const_stages;
        map_time += map_t;
        par_time += par_t;

        // Adaptation: load the CI (at the estimator-calibrated latency)
        // and patch the binary.
        let slot = machine.install(pf, &dfg, &cand, hw_cycles, cached_entry.bitstream)?;
        patch_candidate(module.func_mut(cand.key.func), &cand, slot)?;

        cand_span.set_sim_time(c2v_t + const_stages + map_t + par_t);
        cand_span.field("signature", TelValue::U64(signature));
        cand_span.field("size", TelValue::U64(cand.len() as u64));
        cand_span.field("cache_hit", TelValue::Bool(cache_hit));
        cand_span.field("slot", TelValue::U64(slot as u64));
        drop(cand_span);

        outcomes.push(CandidateOutcome {
            key: cand.key,
            size: cand.len(),
            signature,
            cache_hit,
            c2v: c2v_t,
            const_stages,
            map: map_t,
            par: par_t,
            slot,
            saved_per_exec,
            exec_count,
        });
    }

    let sum_time = const_time + map_time + par_time;
    root.set_sim_time(sum_time);
    root.field("candidates", TelValue::U64(outcomes.len() as u64));
    root.field("cache_hits", TelValue::U64(cache_hits as u64));
    drop(root);
    Ok(SpecializeReport {
        search,
        candidates: outcomes,
        const_time,
        map_time,
        par_time,
        sum_time,
        reconfig_time: machine.total_reconfig_time(),
        cache_hits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfix::hot_module;
    use jitise_vm::{Interpreter, Value};

    fn run_profile(m: &Module, n: i64) -> Profile {
        let mut vm = Interpreter::new(m);
        vm.run("main", &[Value::I(n)]).unwrap();
        vm.take_profile()
    }

    struct Ctx {
        db: CircuitDb,
        netlists: NetlistCache,
        bitstreams: BitstreamCache,
        estimator: PivPavEstimator,
    }

    impl Ctx {
        fn new() -> Ctx {
            Ctx {
                db: CircuitDb::build(),
                netlists: NetlistCache::new(),
                bitstreams: BitstreamCache::new(),
                estimator: PivPavEstimator::new(),
            }
        }

        fn specialize(&self, m: &mut Module, p: &Profile, machine: &Woolcano) -> SpecializeReport {
            specialize(
                m,
                p,
                machine,
                &self.estimator,
                &self.db,
                &self.netlists,
                &self.bitstreams,
                &SpecializeConfig::default(),
            )
            .unwrap()
        }
    }

    #[test]
    fn full_pipeline_speeds_up_and_preserves_semantics() {
        let ctx = Ctx::new();
        let base = hot_module();
        let mut m = base.clone();
        let profile = run_profile(&m, 5_000);
        let machine = Woolcano::new(16);
        let report = ctx.specialize(&mut m, &profile, &machine);
        assert!(!report.candidates.is_empty());
        assert!(report.sum_time > SimTime::ZERO);
        assert_eq!(report.cache_hits, 0);
        // Constant stages dominated by bitgen (paper: 85 %).
        assert!(report.const_time.as_secs_f64() > 150.0);

        let meas =
            jitise_woolcano::measure_speedup(&base, &m, &machine, "main", &[Value::I(5_000)])
                .unwrap();
        assert!(meas.speedup > 1.0, "speedup {}", meas.speedup);
    }

    #[test]
    fn cache_hit_skips_generation() {
        let ctx = Ctx::new();
        // First app run populates the cache.
        let mut m1 = hot_module();
        let p1 = run_profile(&m1, 2_000);
        let machine1 = Woolcano::new(16);
        let r1 = ctx.specialize(&mut m1, &p1, &machine1);
        assert_eq!(r1.cache_hits, 0);
        let first_sum = r1.sum_time;

        // Same program again: every candidate hits.
        let mut m2 = hot_module();
        let p2 = run_profile(&m2, 2_000);
        let machine2 = Woolcano::new(16);
        let r2 = ctx.specialize(&mut m2, &p2, &machine2);
        assert_eq!(r2.cache_hits, r2.candidates.len());
        assert_eq!(r2.sum_time, SimTime::ZERO, "all generation skipped");
        assert!(first_sum > SimTime::ZERO);

        // And the cached-bitstream machine still computes correctly.
        let base = hot_module();
        let meas =
            jitise_woolcano::measure_speedup(&base, &m2, &machine2, "main", &[Value::I(999)])
                .unwrap();
        assert!(meas.speedup > 1.0);
    }

    #[test]
    fn report_times_are_consistent() {
        let ctx = Ctx::new();
        let mut m = hot_module();
        let p = run_profile(&m, 2_000);
        let machine = Woolcano::new(16);
        let r = ctx.specialize(&mut m, &p, &machine);
        let per_cand: SimTime = r.candidates.iter().map(|c| c.total()).sum();
        assert_eq!(per_cand, r.sum_time);
        assert_eq!(r.sum_time, r.const_time + r.map_time + r.par_time);
        assert!(r.reconfig_time > SimTime::ZERO);
    }
}
