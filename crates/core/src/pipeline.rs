//! The ASIP specialization process (ASIP-SP, paper Fig. 2).
//!
//! Orchestrates the three phases over one profiled application:
//!
//! 1. **Candidate Search** — pruning, MAXMISO identification, PivPav
//!    estimation, selection (`jitise-ise` + `jitise-pivpav`);
//! 2. **Netlist Generation** — datapath VHDL, netlist extraction, CAD
//!    project creation (`jitise-pivpav`);
//! 3. **Instruction Implementation** — the FPGA CAD flow down to a partial
//!    bitstream (`jitise-cad`);
//!
//! followed by the **adaptation phase**: bitstreams are loaded into the
//! Woolcano slot file and the binary is patched to use the new custom
//! instructions (`jitise-woolcano`).
//!
//! The bitstream cache short-circuits phases 2–3 per candidate (§VI-A).
//!
//! ## The multi-worker CAD scheduler
//!
//! Phase 3 dominates the specialization overhead by minutes per candidate,
//! and candidates with distinct signatures are independent — so the
//! pipeline can farm their tool flows out to
//! [`SpecializeConfig::cad_workers`] OS threads. The run is split into
//! three stages (see `DESIGN.md` §10):
//!
//! * **dispatch** (serial, selection order) — quarantine checks, duplicate
//!   signature dedup, the attempt-1 cache probe, and phase 2 (netlist
//!   generation). These all touch shared state whose *outcome* depends on
//!   processing order, so they stay in selection order to keep every cache
//!   decision identical for any worker count;
//! * **pool** — phase 3 (and any retries) for the dispatched candidates
//!   runs on the worker pool, in any completion order;
//! * **finalize** (serial, selection order) — ICAP installs (one
//!   reconfiguration port), IR patching, quarantine updates, and report
//!   accounting.
//!
//! Simulated time is charged to a per-worker-lane schedule: the report's
//! `cpu_time` (total tool time, invariant across worker counts) and
//! `makespan` (critical path across [`SpecializeConfig::cad_workers`]
//! lanes) replace the single sequential total. Every other observable —
//! report fingerprint, patched module, caches, quarantine, canonical
//! telemetry journal — is bit-identical for any worker count.
//!
//! The three stages are also exposed directly as [`SpecializeSession`]
//! (`begin` → `execute` per job → `finalize`), so a multi-session runtime
//! (`jitise-serve`, DESIGN.md §16) can interleave CAD jobs from many
//! concurrent tenants through one shared bounded pool under its own fair
//! scheduling policy; [`specialize`] is that session driven end-to-end
//! with the in-process pool.

use crate::cache::{BitstreamCache, CachedCi};
use jitise_base::par::parallel_map_indexed;
use jitise_base::{Error, Result, SimTime};
use jitise_cad::{
    map_overlay, run_flow_accounted, Fabric, FlowOptions, InstallTier, OverlayLibrary,
};
use jitise_faults::{FaultInjector, FaultSite, Quarantine, RetryPolicy};
use jitise_ir::{Dfg, Function, Module};
use jitise_ise::{candidate_search, Candidate, SearchConfig, SearchOutcome};
use jitise_pivpav::{
    create_project_with, C2vTiming, CadProject, CircuitDb, NetlistCache, PivPavEstimator,
};
use jitise_store::{FaultTotals, Record, Store};
use jitise_telemetry::{names, Span, Telemetry, Value as TelValue};
use jitise_vm::{BlockKey, Profile, VmTier};
use jitise_woolcano::{patch_candidate, ReconfigController, Woolcano};
use std::collections::HashSet;
use std::sync::Arc;

/// Configuration of the whole specialization process.
pub struct SpecializeConfig {
    /// Candidate-search configuration (filter, algorithm, budget).
    pub search: SearchConfig,
    /// CAD flow options.
    pub flow: FlowOptions,
    /// The PR-region fabric.
    pub fabric: Fabric,
    /// Use the bitstream cache.
    pub use_cache: bool,
    /// Observability handle; propagated into the search and flow configs
    /// (their own `telemetry` fields are overridden when this is enabled).
    pub telemetry: Telemetry,
    /// Fault injection handle (disabled by default; zero overhead). The
    /// pipeline re-scopes it per `(candidate signature, attempt)` and
    /// overrides `flow.faults` with the scoped handle.
    pub faults: FaultInjector,
    /// Retry policy for failed candidate attempts (CAD crashes, poisoned
    /// cache entries, ICAP transfer corruption). Backoff is charged in
    /// simulated time, never slept.
    pub retry: RetryPolicy,
    /// Signatures that exhausted their retries; quarantined candidates are
    /// skipped without burning tool time. Share one `Arc` across sessions
    /// to persist the blacklist.
    pub quarantine: Arc<Quarantine>,
    /// CAD worker lanes for phases 2–3. `1` (the default) reproduces the
    /// fully sequential pipeline. Higher counts implement independent
    /// candidates concurrently — ICAP installs and IR patching stay
    /// serialized in selection order — and shrink the report's `makespan`
    /// while leaving every other observable bit-identical.
    pub cad_workers: usize,
    /// Optional crash-consistent store. When set, every *freshly*
    /// generated candidate, every newly quarantined signature, and the
    /// session's fault totals are journaled at commit time (the serial
    /// finalize pass), so a warm restart recovers them. Journaling is
    /// fire-and-forget: a dead store never fails the pipeline (append
    /// failures are counted by the store's own telemetry), and `None`
    /// (the default) is byte-identical to a storeless run.
    pub store: Option<Arc<Store>>,
    /// VM execution tier for workload runs driven alongside this
    /// specialization session (the pipeline itself never executes the
    /// workload — `run_adaptive`/`run_storm` and the evaluation harness
    /// read this knob from their own options and keep it in sync here so
    /// one config carries the full runtime surface, like `cad_workers`).
    pub vm_tier: VmTier,
    /// Overlay cell library for the two-tier install fast path (DESIGN.md
    /// §17). `Some` makes every cache-missing candidate assemble a
    /// millisecond-scale overlay implementation at dispatch and install it
    /// immediately; the full CAD flow still runs on the worker pool and
    /// atomically upgrades the slot at finalize. `None` (the default) is
    /// byte-identical to the full-only pipeline.
    pub overlay: Option<Arc<OverlayLibrary>>,
}

impl Default for SpecializeConfig {
    fn default() -> Self {
        SpecializeConfig {
            search: SearchConfig::default(),
            flow: FlowOptions::fast(),
            fabric: Fabric::pr_region(),
            use_cache: true,
            telemetry: Telemetry::disabled(),
            faults: FaultInjector::disabled(),
            retry: RetryPolicy::default(),
            quarantine: Arc::new(Quarantine::new()),
            cad_workers: 1,
            store: None,
            vm_tier: VmTier::Interp,
            overlay: None,
        }
    }
}

/// Per-candidate implementation record.
#[derive(Debug, Clone)]
pub struct CandidateOutcome {
    /// The candidate's block.
    pub key: BlockKey,
    /// Instructions covered.
    pub size: usize,
    /// Candidate signature.
    pub signature: u64,
    /// True if served from the bitstream cache.
    pub cache_hit: bool,
    /// Netlist-generation (C2V) time — zero on a cache hit.
    pub c2v: SimTime,
    /// Constant flow stages (Syn + Xst + Tra + Bitgen) — zero on a hit.
    pub const_stages: SimTime,
    /// Map time.
    pub map: SimTime,
    /// PAR time.
    pub par: SimTime,
    /// CI slot assigned.
    pub slot: u32,
    /// Estimated cycles saved per block execution.
    pub saved_per_exec: u64,
    /// Block executions in the profile.
    pub exec_count: u64,
    /// Attempts taken (1 = first try succeeded).
    pub attempts: u32,
    /// Simulated time burned by this candidate's *failed* attempts
    /// (wasted tool time + failed ICAP transfers + retry backoff). Zero
    /// when `attempts == 1`. Not part of [`Self::total`].
    pub time_lost: SimTime,
    /// Tier the slot serves when the session finishes: `Full` on the
    /// full-only path or after a successful upgrade swap, `Overlay` when
    /// the fast path installed and the background upgrade never landed.
    pub tier: InstallTier,
    /// Overlay assembly time charged on the fast path (zero on the
    /// full-only path and on an overlay cache hit). Not part of
    /// [`Self::total`] — it is overhead the overlay *adds*, not work a
    /// cache hit saves.
    pub overlay_time: SimTime,
    /// True iff an overlay install was later swapped to the full artifact.
    pub upgraded: bool,
    /// Estimated cycles saved per block execution while serving from the
    /// overlay tier (degraded clock ⇒ at most [`Self::saved_per_exec`];
    /// zero on the full-only path or when the overlay is no faster than
    /// software). Feeds the two-tier break-even model.
    pub overlay_saved_per_exec: u64,
}

impl CandidateOutcome {
    /// Total generation time for this candidate (what a cache hit saves).
    pub fn total(&self) -> SimTime {
        self.c2v + self.const_stages + self.map + self.par
    }
}

/// A candidate whose implementation failed after exhausting its retries
/// (or was skipped because its signature is quarantined). Failure is
/// isolated: the pipeline records it here and moves on.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedCandidate {
    /// The candidate's block.
    pub key: BlockKey,
    /// Instructions covered.
    pub size: usize,
    /// Candidate signature.
    pub signature: u64,
    /// Attempts burned (0 = skipped via the quarantine list).
    pub attempts: u32,
    /// The last error observed.
    pub error: String,
    /// Simulated time wasted on this candidate (tool time of failed flow
    /// runs + failed ICAP transfers + retry backoff).
    pub time_lost: SimTime,
    /// True if the signature is on the quarantine list.
    pub quarantined: bool,
}

/// Result of one specialization run.
pub struct SpecializeReport {
    /// Candidate-search phase outcome (Table II left half).
    pub search: SearchOutcome,
    /// Per-candidate implementation outcomes.
    pub candidates: Vec<CandidateOutcome>,
    /// Aggregate constant-stage time (Table II `const` column = C2V +
    /// Syn + Xst + Tra + Bitgen over all candidates).
    pub const_time: SimTime,
    /// Aggregate map time (Table II `map`).
    pub map_time: SimTime,
    /// Aggregate PAR time (Table II `par`).
    pub par_time: SimTime,
    /// Total overhead (Table II `sum`).
    pub sum_time: SimTime,
    /// Total ICAP reconfiguration time (adaptation phase).
    pub reconfig_time: SimTime,
    /// Cache hits during this run.
    pub cache_hits: usize,
    /// Candidates that failed after exhausting retries (or were skipped
    /// as quarantined). Never aborts the run.
    pub failed: Vec<FailedCandidate>,
    /// Retries performed across all candidates (attempts beyond each
    /// candidate's first).
    pub retries: u64,
    /// Constant-stage tool time (C2V + Syn + Xst + Tra + Bitgen) burned by
    /// failed attempts. Kept out of `const_time` so the Table II columns
    /// describe successful work only.
    pub fault_const_time: SimTime,
    /// Map time burned by failed attempts.
    pub fault_map_time: SimTime,
    /// PAR time burned by failed attempts.
    pub fault_par_time: SimTime,
    /// ICAP transfer time burned by failed (CRC-rejected) loads.
    pub fault_icap_time: SimTime,
    /// Simulated retry-backoff waits.
    pub backoff_time: SimTime,
    /// Total tool time charged across all candidates, successful and
    /// failed (`sum_time + fault_time()`). Invariant across worker counts.
    pub cpu_time: SimTime,
    /// Critical-path tool time under the per-lane schedule: each
    /// candidate's charge goes to the least-loaded of `cad_workers` lanes
    /// in selection order. Equals `cpu_time` at one worker and never
    /// exceeds it. This is the overhead a wall clock would see, and what
    /// break-even analysis amortizes.
    pub makespan: SimTime,
    /// Worker-lane count the makespan was scheduled over (echo of
    /// [`SpecializeConfig::cad_workers`], clamped to at least 1).
    pub cad_workers: usize,
    /// Overlay fast-path installs performed (fresh assemblies plus
    /// rehydrated overlay cache hits). Zero without an overlay library.
    pub overlay_installs: usize,
    /// Overlay slots successfully upgraded to the full artifact.
    pub upgrades: usize,
    /// Overlay slots whose upgrade swap exhausted its retries and kept
    /// serving the overlay tier.
    pub upgrades_failed: usize,
    /// Total overlay assembly time charged on the fast path. Part of
    /// `cpu_time` (the invariant is `cpu_time = sum_time + fault_time() +
    /// overlay_time`); zero without an overlay library.
    pub overlay_time: SimTime,
}

impl SpecializeReport {
    /// Total simulated time lost to faults (wasted tool time + failed
    /// ICAP transfers + backoff).
    pub fn fault_time(&self) -> SimTime {
        self.fault_const_time
            + self.fault_map_time
            + self.fault_par_time
            + self.fault_icap_time
            + self.backoff_time
    }

    /// Deterministic digest of every observable field. Two runs are
    /// byte-identical iff their fingerprints match — the chaos harness
    /// uses this to prove a zero-rate injector is observationally
    /// transparent, and the parallel-determinism suite to prove the
    /// scheduler is schedule-oblivious. `makespan` and `cad_workers` are
    /// deliberately excluded: they vary with the lane count by design.
    pub fn fingerprint(&self) -> String {
        format!(
            "sel={} ratio={:016x} hits={} retries={} const={} map={} par={} sum={} \
             cpu={} reconfig={} f_const={} f_map={} f_par={} f_icap={} backoff={} \
             ovl={} upg={} upgf={} ovl_ns={} candidates={:?} failed={:?}",
            self.search.selection.selected.len(),
            self.search.asip_ratio.to_bits(),
            self.cache_hits,
            self.retries,
            self.const_time.as_nanos(),
            self.map_time.as_nanos(),
            self.par_time.as_nanos(),
            self.sum_time.as_nanos(),
            self.cpu_time.as_nanos(),
            self.reconfig_time.as_nanos(),
            self.fault_const_time.as_nanos(),
            self.fault_map_time.as_nanos(),
            self.fault_par_time.as_nanos(),
            self.fault_icap_time.as_nanos(),
            self.backoff_time.as_nanos(),
            self.overlay_installs,
            self.upgrades,
            self.upgrades_failed,
            self.overlay_time.as_nanos(),
            self.candidates,
            self.failed,
        )
    }
}

/// Simulated time burned by one candidate's failed attempts, split the way
/// the report splits its fault columns.
#[derive(Debug, Clone, Copy, Default)]
struct Loss {
    constant: SimTime,
    map: SimTime,
    par: SimTime,
    icap: SimTime,
    backoff: SimTime,
}

impl Loss {
    fn absorb(&mut self, other: Loss) {
        self.constant += other.constant;
        self.map += other.map;
        self.par += other.par;
        self.icap += other.icap;
        self.backoff += other.backoff;
    }

    fn total(&self) -> SimTime {
        self.constant + self.map + self.par + self.icap + self.backoff
    }
}

/// One candidate's generated (or cache-served) implementation, carried
/// across install retries so an ICAP failure never regenerates it.
struct Produced {
    entry: CachedCi,
    cache_hit: bool,
    c2v: SimTime,
    const_stages: SimTime,
    map: SimTime,
    par: SimTime,
}

/// What an attempt-scoped bitstream-cache probe found.
enum Probe {
    /// A CRC-validated full-tier hit: generation is complete.
    Hit(Produced),
    /// A CRC-validated *overlay-tier* entry — the fast-path commit of a
    /// session that never finished (or never started) its upgrade. Not a
    /// finished implementation: the dispatcher reuses it as the fast path
    /// and still schedules the full flow.
    Overlay(CachedCi),
    /// Miss, cache disabled, or a poisoned entry that was just evicted.
    Miss,
}

/// Attempt-scoped bitstream-cache probe; the injector may corrupt the hit
/// in flight, in which case the poisoned entry is evicted and counted.
fn probe_cache(
    bitstream_cache: &BitstreamCache,
    config: &SpecializeConfig,
    inj: &FaultInjector,
    signature: u64,
    tel: &Telemetry,
) -> Probe {
    if !config.use_cache {
        return Probe::Miss;
    }
    let Some(mut hit) = bitstream_cache.get(signature) else {
        return Probe::Miss;
    };
    if let Some(kind) = inj.corrupt(FaultSite::CacheEntry, &mut hit.bitstream.bytes) {
        tel.add(names::FAULTS_INJECTED, 1);
        tel.event(
            "fault.injected",
            &[
                ("site", TelValue::Str(FaultSite::CacheEntry.name().into())),
                ("kind", TelValue::Str(kind.name().into())),
            ],
        );
    }
    if hit.bitstream.verify() {
        if hit.tier == InstallTier::Overlay {
            return Probe::Overlay(hit);
        }
        return Probe::Hit(Produced {
            entry: hit,
            cache_hit: true,
            c2v: SimTime::ZERO,
            const_stages: SimTime::ZERO,
            map: SimTime::ZERO,
            par: SimTime::ZERO,
        });
    }
    // Poisoned entry: evict it and regenerate from scratch.
    bitstream_cache.remove(signature);
    tel.add(names::BITSTREAM_CACHE_POISONED, 1);
    tel.event("cache.poisoned", &[("signature", TelValue::U64(signature))]);
    Probe::Miss
}

/// Phase 3 (the CAD flow) on an already-created project, then the cache
/// insert. On failure returns the simulated tool time the attempt wasted.
fn implement_project(
    bitstream_cache: &BitstreamCache,
    config: &SpecializeConfig,
    inj: &FaultInjector,
    project: &CadProject,
    c2v: C2vTiming,
    signature: u64,
    tel: &Telemetry,
) -> std::result::Result<Produced, (Error, Loss)> {
    let mut flow_cfg = config.flow.clone();
    flow_cfg.telemetry = tel.clone();
    flow_cfg.faults = inj.clone();
    let flow = run_flow_accounted(&config.fabric, project, &flow_cfg).map_err(|fe| {
        let loss = Loss {
            // The netlist-generation work preceding the dead flow is
            // wasted too (its netlists stay cached, so a retry re-derives
            // them cheaply — but the time was spent).
            constant: fe.spent.constant + c2v.total(),
            map: fe.spent.map,
            par: fe.spent.par,
            ..Loss::default()
        };
        (fe.error, loss)
    })?;
    let entry = CachedCi {
        signature,
        bitstream: flow.bitstream.clone(),
        timing: flow.timing.clone(),
        generation_time: c2v.total() + flow.total(),
        tier: InstallTier::Full,
    };
    bitstream_cache.put(entry.clone());
    Ok(Produced {
        entry,
        cache_hit: false,
        c2v: c2v.total(),
        const_stages: flow.constant_share(),
        map: flow.map,
        par: flow.par,
    })
}

/// Obtains the candidate's implementation: a CRC-validated cache hit, or a
/// fresh run of phases 2–3. A poisoned cache entry is evicted and counted,
/// then regeneration proceeds within the same attempt.
#[allow(clippy::too_many_arguments)]
fn obtain_entry(
    db: &CircuitDb,
    netlist_cache: &NetlistCache,
    bitstream_cache: &BitstreamCache,
    config: &SpecializeConfig,
    inj: &FaultInjector,
    pf: &Function,
    dfg: &Dfg,
    cand: &Candidate,
    signature: u64,
    tel: &Telemetry,
) -> std::result::Result<Produced, (Error, Loss)> {
    // An overlay-tier entry is deliberately *not* a hit here: generation
    // means producing the full artifact, so the overlay commit of a
    // crashed twin falls through to regeneration (and is overwritten).
    if let Probe::Hit(hit) = probe_cache(bitstream_cache, config, inj, signature, tel) {
        return Ok(hit);
    }
    // Phase 2: Netlist Generation.
    let (project, c2v) = create_project_with(db, netlist_cache, pf, dfg, cand, tel)
        .map_err(|e| (e, Loss::default()))?;
    // Phase 3: Instruction Implementation.
    implement_project(bitstream_cache, config, inj, &project, c2v, signature, tel)
}

/// Installs a produced bitstream over the ICAP. The transfer may be
/// corrupted in flight (caught by the controller's CRC check); a rejected
/// transfer is charged its full reconfiguration time.
#[allow(clippy::too_many_arguments)]
fn install_produced(
    p: &Produced,
    inj: &FaultInjector,
    pf: &Function,
    dfg: &Dfg,
    cand: &Candidate,
    machine: &Woolcano,
    hw_cycles: u64,
    tel: &Telemetry,
) -> std::result::Result<u32, (Error, Loss)> {
    let mut bitstream = p.entry.bitstream.clone();
    if let Some(kind) = inj.corrupt(FaultSite::IcapTransfer, &mut bitstream.bytes) {
        tel.add(names::FAULTS_INJECTED, 1);
        tel.event(
            "fault.injected",
            &[
                ("site", TelValue::Str(FaultSite::IcapTransfer.name().into())),
                ("kind", TelValue::Str(kind.name().into())),
            ],
        );
    }
    machine
        .install(pf, dfg, cand, hw_cycles, bitstream)
        .map_err(|e| {
            // The rejected transfer still occupied the ICAP for the full
            // bitstream length; the controller refuses to count it, so the
            // fault ledger does.
            let loss = Loss {
                icap: ReconfigController::reconfig_time(&p.entry.bitstream),
                ..Loss::default()
            };
            (e, loss)
        })
}

/// Salt folded into the fault scope of overlay fast-path installs so they
/// draw from a different deterministic stream than the candidate's full
/// generation/install attempts (which share the unsalted signature).
const OVERLAY_SCOPE_SALT: u64 = 0x006f_7665_726c_6179; // "overlay"

/// Dispatch-time state of one candidate's overlay fast path: the assembled
/// (or cache-rehydrated) overlay entry, ready to install at finalize.
struct OverlayPrep {
    /// Overlay-tier cache entry (descriptor bitstream + degraded timing).
    entry: CachedCi,
    /// Assembly time to charge — zero when rehydrated from the cache.
    assembly: SimTime,
    /// True iff the entry came out of the bitstream cache (a warm restart
    /// rehydrated the overlay commit of an interrupted session).
    cache_hit: bool,
    /// Execution cycles under the overlay clock model.
    hw_cycles: u64,
}

/// Installs the overlay fast-path bitstream over the ICAP. Same corruption
/// surface as a full install (the transfer crosses the same port).
#[allow(clippy::too_many_arguments)]
fn install_overlay(
    op: &OverlayPrep,
    inj: &FaultInjector,
    pf: &Function,
    dfg: &Dfg,
    cand: &Candidate,
    machine: &Woolcano,
    tel: &Telemetry,
) -> std::result::Result<u32, (Error, Loss)> {
    let mut bitstream = op.entry.bitstream.clone();
    if let Some(kind) = inj.corrupt(FaultSite::IcapTransfer, &mut bitstream.bytes) {
        tel.add(names::FAULTS_INJECTED, 1);
        tel.event(
            "fault.injected",
            &[
                ("site", TelValue::Str(FaultSite::IcapTransfer.name().into())),
                ("kind", TelValue::Str(kind.name().into())),
            ],
        );
    }
    machine
        .install_tiered(pf, dfg, cand, op.hw_cycles, bitstream, InstallTier::Overlay)
        .map_err(|e| {
            let loss = Loss {
                icap: ReconfigController::reconfig_time(&op.entry.bitstream),
                ..Loss::default()
            };
            (e, loss)
        })
}

/// Atomically swaps an overlay slot to the full artifact. The upgrade
/// transfer has its own fault site ([`FaultSite::UpgradeSwap`]); a rejected
/// swap leaves the overlay slot serving and is charged the wasted transfer.
fn upgrade_produced(
    p: &Produced,
    inj: &FaultInjector,
    machine: &Woolcano,
    signature: u64,
    hw_cycles: u64,
    tel: &Telemetry,
) -> std::result::Result<u32, (Error, Loss)> {
    let mut bitstream = p.entry.bitstream.clone();
    if let Some(kind) = inj.corrupt(FaultSite::UpgradeSwap, &mut bitstream.bytes) {
        tel.add(names::FAULTS_INJECTED, 1);
        tel.event(
            "fault.injected",
            &[
                ("site", TelValue::Str(FaultSite::UpgradeSwap.name().into())),
                ("kind", TelValue::Str(kind.name().into())),
            ],
        );
    }
    machine
        .upgrade(signature, hw_cycles, bitstream)
        .map_err(|e| {
            let loss = Loss {
                icap: ReconfigController::reconfig_time(&p.entry.bitstream),
                ..Loss::default()
            };
            (e, loss)
        })
}

/// Attempt-1 state a dispatched candidate carries to its worker. The
/// serial pre-pass already probed the cache (miss) and ran phase 2 —
/// netlist-cache miss accounting is order-sensitive, so it must happen in
/// selection order.
enum FirstAttempt {
    /// Project created; the worker starts with the tool flow.
    Ready(Box<(CadProject, C2vTiming)>),
    /// Project creation failed; attempt 1 is charged as a plain failure.
    Failed(Error),
}

/// What the bounded generation retry loop yielded for one candidate.
struct Generated {
    /// The implementation, if any attempt succeeded (or the cache hit).
    produced: Option<Produced>,
    /// Attempt generation succeeded at; `max_attempts` on exhaustion. The
    /// install loop continues the attempt numbering from here.
    attempt: u32,
    /// Fault ledger accumulated so far (failed flows + backoff).
    loss: Loss,
    /// Retries burned (attempts beyond the first).
    retries: u64,
    /// Last error, set iff every attempt failed.
    error: Option<Error>,
}

/// The generation retry loop for one candidate: attempts `1..=max` of
/// cache probe + phases 2–3, charging failures and backoff to the loss
/// ledger. `first` carries dispatch-time attempt-1 state (cache already
/// probed, project already created); `None` makes every attempt go through
/// [`obtain_entry`] — the duplicate-signature path. Installing is *not*
/// part of this loop: the caller resumes the attempt numbering at
/// [`Generated::attempt`] on the serial side.
#[allow(clippy::too_many_arguments)]
fn run_generation(
    db: &CircuitDb,
    netlist_cache: &NetlistCache,
    bitstream_cache: &BitstreamCache,
    config: &SpecializeConfig,
    pf: &Function,
    dfg: &Dfg,
    cand: &Candidate,
    signature: u64,
    mut first: Option<&FirstAttempt>,
    tel: &Telemetry,
) -> Generated {
    let max_attempts = config.retry.max_attempts.max(1);
    let mut attempt = 0u32;
    let mut loss = Loss::default();
    let mut retries = 0u64;
    loop {
        attempt += 1;
        let inj = config.faults.scope(signature, attempt);
        let result = match first.take() {
            Some(FirstAttempt::Ready(pair)) => {
                let (project, c2v) = pair.as_ref();
                implement_project(bitstream_cache, config, &inj, project, *c2v, signature, tel)
            }
            Some(FirstAttempt::Failed(e)) => Err((e.clone(), Loss::default())),
            None => obtain_entry(
                db,
                netlist_cache,
                bitstream_cache,
                config,
                &inj,
                pf,
                dfg,
                cand,
                signature,
                tel,
            ),
        };
        match result {
            Ok(p) => {
                return Generated {
                    produced: Some(p),
                    attempt,
                    loss,
                    retries,
                    error: None,
                }
            }
            Err((e, waste)) => {
                loss.absorb(waste);
                if attempt >= max_attempts {
                    return Generated {
                        produced: None,
                        attempt,
                        loss,
                        retries,
                        error: Some(e),
                    };
                }
                let backoff = config.retry.backoff_for(attempt);
                loss.backoff += backoff;
                retries += 1;
                tel.add(names::PIPELINE_RETRIES, 1);
                tel.event(
                    "candidate.retry",
                    &[
                        ("signature", TelValue::U64(signature)),
                        ("attempt", TelValue::U64(attempt as u64)),
                        ("backoff_ns", TelValue::U64(backoff.as_nanos())),
                        ("error", TelValue::Str(e.to_string())),
                    ],
                );
            }
        }
    }
}

/// Greedy lane schedule: each charge is placed on the least-loaded of
/// `lanes` lanes (lowest index on ties), in selection order. Returns the
/// maximum lane load — the modeled critical path ("makespan") of running
/// the candidates on `lanes` CAD workers. One lane degenerates to the
/// plain sum; the result never exceeds it.
fn lane_makespan(lanes: usize, charges: &[SimTime]) -> SimTime {
    let mut load = vec![SimTime::ZERO; lanes.max(1)];
    for &charge in charges {
        if let Some(min) = load.iter_mut().min_by_key(|l| **l) {
            *min += charge;
        }
    }
    load.into_iter().max().unwrap_or(SimTime::ZERO)
}

/// How the dispatch pre-pass settled one selected candidate.
enum Disposition {
    /// Signature was quarantined before the run: recorded at dispatch,
    /// charged nothing.
    Skip(String),
    /// Settled entirely at dispatch (a clean attempt-1 cache hit).
    Resolved(Generated),
    /// Phases 2–3 handed to the worker pool; index into the job list.
    Pool(usize),
    /// Same signature as an earlier candidate of this run. Deferred to the
    /// finalize pass (after its twin settled) and resolved inline there —
    /// the per-signature in-flight dedup that keeps cache timing identical
    /// to the sequential schedule.
    Dup,
}

/// One selected candidate, as staged by the dispatch pre-pass.
struct Prepared {
    cand: Candidate,
    saved_per_exec: u64,
    exec_count: u64,
    hw_cycles: u64,
    dfg: Dfg,
    signature: u64,
    disposition: Disposition,
    /// Overlay fast-path state, when the library is enabled and the
    /// candidate mapped (or rehydrated) onto it. `None` means full-only.
    overlay: Option<OverlayPrep>,
}

/// A pool job: everything a worker needs to run the generation loop for
/// one prepared candidate. [`SpecializeSession::begin`] hands these out;
/// whoever owns the session decides where and when each one runs — the
/// in-process pool in [`specialize`], or a shared cross-tenant scheduler
/// like `jitise-serve` — and feeds every result back to
/// [`SpecializeSession::finalize`]. Execution is order-free by
/// construction: all order-sensitive decisions already happened at
/// dispatch.
pub struct CadJob {
    prep: usize,
    pool: usize,
    first: FirstAttempt,
    tel: Telemetry,
    signature: u64,
}

impl CadJob {
    /// The candidate signature this job implements — the stable identity
    /// an external scheduler can key queues and fault scopes by.
    pub fn signature(&self) -> u64 {
        self.signature
    }
}

/// The opaque result of executing one [`CadJob`]; hand the full set back
/// to [`SpecializeSession::finalize`] in any order.
pub struct CadJobResult {
    pool: usize,
    generated: Generated,
}

/// A specialization run split open at its stage boundaries.
///
/// [`specialize`] is this session driven start-to-finish with an
/// in-process worker pool. Multi-session runtimes (`jitise-serve`) use the
/// session directly so CAD jobs from *many* concurrent tenants can share
/// one bounded pool under an external scheduling policy:
///
/// 1. [`SpecializeSession::begin`] — phase 1 (candidate search) plus the
///    serial dispatch pre-pass (quarantine checks, duplicate dedup, the
///    attempt-1 cache probe, phase 2), yielding the pool-able jobs;
/// 2. [`SpecializeSession::execute`] — phases 2–3 retries + the tool flow
///    for one job; `&self`, thread-safe, any order, any thread;
/// 3. [`SpecializeSession::finalize`] — the serial adaptation phase (ICAP
///    installs, IR patching, accounting, store journaling) and the report.
///
/// The determinism contract is unchanged: every observable of the
/// finalized report is a pure function of the inputs, independent of how
/// the owner interleaved `execute` calls.
pub struct SpecializeSession<'a> {
    machine: &'a Woolcano,
    db: &'a CircuitDb,
    netlist_cache: &'a NetlistCache,
    bitstream_cache: &'a BitstreamCache,
    config: &'a SpecializeConfig,
    pristine: Module,
    search: SearchOutcome,
    prepared: Vec<Prepared>,
    spans: Vec<Option<Span>>,
    root: Span,
    tel: Telemetry,
    job_count: usize,
}

/// Runs the complete ASIP specialization process on `module` (profiled by
/// `profile`), patching the module in place and loading the machine.
///
/// Returns the report; the specialized module and loaded `machine` are the
/// adaptation-phase outputs.
#[allow(clippy::too_many_arguments)]
pub fn specialize(
    module: &mut Module,
    profile: &Profile,
    machine: &Woolcano,
    estimator: &PivPavEstimator,
    db: &CircuitDb,
    netlist_cache: &NetlistCache,
    bitstream_cache: &BitstreamCache,
    config: &SpecializeConfig,
) -> Result<SpecializeReport> {
    let (session, jobs) = SpecializeSession::begin(
        module,
        profile,
        machine,
        estimator,
        db,
        netlist_cache,
        bitstream_cache,
        config,
    );
    // ---- Pool: phases 2–3 retries + the tool flow, any completion order ----
    let results = parallel_map_indexed(config.cad_workers, &jobs, |_, job| session.execute(job));
    session.finalize(module, results)
}

impl<'a> SpecializeSession<'a> {
    /// Phase 1 and the serial dispatch pre-pass; returns the session plus
    /// the pool jobs. Every job must be passed through [`Self::execute`]
    /// exactly once before [`Self::finalize`].
    #[allow(clippy::too_many_arguments)]
    pub fn begin(
        module: &Module,
        profile: &Profile,
        machine: &'a Woolcano,
        estimator: &PivPavEstimator,
        db: &'a CircuitDb,
        netlist_cache: &'a NetlistCache,
        bitstream_cache: &'a BitstreamCache,
        config: &'a SpecializeConfig,
    ) -> (SpecializeSession<'a>, Vec<CadJob>) {
        begin_session(
            module,
            profile,
            machine,
            estimator,
            db,
            netlist_cache,
            bitstream_cache,
            config,
        )
    }

    /// Runs phases 2–3 (with retries) for one job. Thread-safe (`&self`):
    /// the owner may call this from any worker thread, in any order —
    /// nothing order-sensitive happens here.
    pub fn execute(&self, job: &CadJob) -> CadJobResult {
        let prep = &self.prepared[job.prep];
        let pf = self.pristine.func(prep.cand.key.func);
        CadJobResult {
            pool: job.pool,
            generated: run_generation(
                self.db,
                self.netlist_cache,
                self.bitstream_cache,
                self.config,
                pf,
                &prep.dfg,
                &prep.cand,
                prep.signature,
                Some(&job.first),
                &job.tel,
            ),
        }
    }

    /// The serial adaptation phase: ICAP installs, IR patching, store
    /// journaling, and report accounting, in selection order. `results`
    /// must contain exactly one [`CadJobResult`] per job handed out by
    /// [`Self::begin`] (any order).
    pub fn finalize(
        self,
        module: &mut Module,
        results: Vec<CadJobResult>,
    ) -> Result<SpecializeReport> {
        finalize_session(self, module, results)
    }
}

#[allow(clippy::too_many_arguments)]
fn begin_session<'a>(
    module: &Module,
    profile: &Profile,
    machine: &'a Woolcano,
    estimator: &PivPavEstimator,
    db: &'a CircuitDb,
    netlist_cache: &'a NetlistCache,
    bitstream_cache: &'a BitstreamCache,
    config: &'a SpecializeConfig,
) -> (SpecializeSession<'a>, Vec<CadJob>) {
    let root = config.telemetry.span("pipeline.specialize");
    let tel = config.telemetry.under(&root);

    // ---- Phase 1: Candidate Search ----
    let search = if tel.is_enabled() {
        let mut search_cfg = config.search.clone();
        search_cfg.telemetry = tel.clone();
        candidate_search(module, profile, estimator, &search_cfg)
    } else {
        candidate_search(module, profile, estimator, &config.search)
    };

    // Snapshot the pristine functions: semantics freezing and signatures
    // must see the unpatched IR even while we patch candidate by candidate.
    let pristine = module.clone();

    let selected: Vec<(Candidate, u64, u64, u64)> = search
        .selection
        .selected
        .iter()
        .map(|s| {
            (
                s.candidate.clone(),
                s.estimate.saved_per_exec(),
                s.estimate.exec_count,
                s.estimate.hw_cycles,
            )
        })
        .collect();

    // ---- Dispatch pre-pass (serial, selection order) ----
    // Quarantine checks, duplicate dedup, the attempt-1 cache probe, and
    // phase 2 all observe shared state whose outcome depends on processing
    // order; running them here, in selection order, makes every hit/miss
    // decision identical for any worker count. Only the order-free tool
    // flow leaves this thread.
    let mut prepared: Vec<Prepared> = Vec::with_capacity(selected.len());
    let mut spans: Vec<Option<Span>> = Vec::with_capacity(selected.len());
    let mut jobs: Vec<CadJob> = Vec::new();
    let mut dispatched: HashSet<u64> = HashSet::new();

    for (cand, saved_per_exec, exec_count, hw_cycles) in selected {
        let pf = pristine.func(cand.key.func);
        let dfg = Dfg::build(pf, cand.key.block);
        let signature = cand.signature(pf, &dfg);
        let mut cand_span = tel.span("pipeline.candidate");
        let cand_tel = tel.under(&cand_span);
        cand_span.field("signature", TelValue::U64(signature));
        cand_span.field("size", TelValue::U64(cand.len() as u64));

        // A quarantined signature is skipped outright: it exhausted its
        // retries in a previous run and would only burn tool time again.
        let mut overlay: Option<OverlayPrep> = None;
        let disposition = if config.quarantine.contains(signature) {
            let reason = config
                .quarantine
                .reason(signature)
                .unwrap_or_else(|| "unknown".into());
            tel.add(names::CANDIDATES_FAILED, 1);
            cand_tel.event(
                "candidate.quarantine_skip",
                &[("signature", TelValue::U64(signature))],
            );
            cand_span.set_sim_time(SimTime::ZERO);
            cand_span.field("failed", TelValue::Bool(true));
            cand_span.field("attempts", TelValue::U64(0));
            drop(cand_span);
            spans.push(None);
            Disposition::Skip(reason)
        } else if !dispatched.insert(signature) {
            spans.push(Some(cand_span));
            Disposition::Dup
        } else {
            let inj = config.faults.scope(signature, 1);
            match probe_cache(bitstream_cache, config, &inj, signature, &cand_tel) {
                Probe::Hit(hit) => {
                    spans.push(Some(cand_span));
                    Disposition::Resolved(Generated {
                        produced: Some(hit),
                        attempt: 1,
                        loss: Loss::default(),
                        retries: 0,
                        error: None,
                    })
                }
                probe => {
                    // A rehydrated overlay commit (a warm restart after a
                    // crash mid-upgrade) serves as the fast path for free;
                    // the full flow still goes to the pool. With the
                    // overlay disabled the entry is ignored and the full
                    // regeneration overwrites it.
                    if let (Probe::Overlay(entry), Some(_)) = (&probe, &config.overlay) {
                        overlay = Some(OverlayPrep {
                            hw_cycles: machine.ci_cycles(&entry.timing),
                            entry: entry.clone(),
                            assembly: SimTime::ZERO,
                            cache_hit: true,
                        });
                    }
                    // Phase 2 stays on this thread: netlist extraction time
                    // is charged by first-touch misses, which must be
                    // observed in selection order to stay
                    // schedule-oblivious.
                    let first =
                        match create_project_with(db, netlist_cache, pf, &dfg, &cand, &cand_tel) {
                            Ok(pair) => {
                                // The overlay fast path assembles here too:
                                // cell mapping is a pure function of the
                                // project, and its outcome gates finalize
                                // decisions, so it stays in dispatch order.
                                if overlay.is_none() {
                                    if let Some(lib) = &config.overlay {
                                        match map_overlay(lib, &pair.0) {
                                            Ok(m) => {
                                                overlay = Some(OverlayPrep {
                                                    hw_cycles: machine.ci_cycles(&m.timing),
                                                    entry: CachedCi {
                                                        signature,
                                                        bitstream: m.bitstream,
                                                        timing: m.timing,
                                                        generation_time: m.assembly_time,
                                                        tier: InstallTier::Overlay,
                                                    },
                                                    assembly: m.assembly_time,
                                                    cache_hit: false,
                                                });
                                            }
                                            Err(e) => {
                                                // Unmappable candidate:
                                                // fall back to full-only.
                                                cand_tel.event(
                                                    "overlay.unmapped",
                                                    &[
                                                        ("signature", TelValue::U64(signature)),
                                                        ("error", TelValue::Str(e.to_string())),
                                                    ],
                                                );
                                            }
                                        }
                                    }
                                }
                                FirstAttempt::Ready(Box::new(pair))
                            }
                            Err(e) => FirstAttempt::Failed(e),
                        };
                    jobs.push(CadJob {
                        prep: prepared.len(),
                        pool: jobs.len(),
                        first,
                        tel: cand_tel,
                        signature,
                    });
                    spans.push(Some(cand_span));
                    Disposition::Pool(jobs.len() - 1)
                }
            }
        };
        prepared.push(Prepared {
            cand,
            saved_per_exec,
            exec_count,
            hw_cycles,
            dfg,
            signature,
            disposition,
            overlay,
        });
    }

    let job_count = jobs.len();
    (
        SpecializeSession {
            machine,
            db,
            netlist_cache,
            bitstream_cache,
            config,
            pristine,
            search,
            prepared,
            spans,
            root,
            tel,
            job_count,
        },
        jobs,
    )
}

fn finalize_session(
    session: SpecializeSession<'_>,
    module: &mut Module,
    results: Vec<CadJobResult>,
) -> Result<SpecializeReport> {
    let SpecializeSession {
        machine,
        db,
        netlist_cache,
        bitstream_cache,
        config,
        pristine,
        search,
        prepared,
        spans,
        mut root,
        tel,
        job_count,
    } = session;
    // Slot every pool result back at its dispatch position; arrival order
    // carries no information.
    assert_eq!(
        results.len(),
        job_count,
        "finalize needs exactly one result per dispatched job"
    );
    let mut pooled: Vec<Option<Generated>> = (0..job_count).map(|_| None).collect();
    for r in results {
        assert!(
            pooled[r.pool].is_none(),
            "job result delivered twice for pool slot {}",
            r.pool
        );
        pooled[r.pool] = Some(r.generated);
    }

    // ---- Finalize (serial, selection order) ----
    // The single ICAP port and the IR patcher impose a serial adaptation
    // phase anyway; doing all result accounting here too makes the report
    // independent of worker completion order.
    let mut outcomes = Vec::with_capacity(prepared.len());
    let mut failed: Vec<FailedCandidate> = Vec::new();
    let mut const_time = SimTime::ZERO;
    let mut map_time = SimTime::ZERO;
    let mut par_time = SimTime::ZERO;
    let mut cache_hits = 0usize;
    let mut retries = 0u64;
    let mut newly_quarantined = 0u64;
    let mut fault = Loss::default();
    let mut charges: Vec<SimTime> = Vec::with_capacity(prepared.len());
    let mut overlay_installs = 0usize;
    let mut upgrades = 0usize;
    let mut upgrades_failed = 0usize;
    let mut total_overlay_time = SimTime::ZERO;
    let max_attempts = config.retry.max_attempts.max(1);

    for (prep, mut cand_span) in prepared.into_iter().zip(spans) {
        let Prepared {
            cand,
            saved_per_exec,
            exec_count,
            hw_cycles,
            dfg,
            signature,
            disposition,
            overlay: overlay_prep,
        } = prep;
        let pf = pristine.func(cand.key.func);
        let cand_tel = match &cand_span {
            Some(span) => tel.under(span),
            None => tel.clone(),
        };

        let generated = match disposition {
            Disposition::Skip(reason) => {
                failed.push(FailedCandidate {
                    key: cand.key,
                    size: cand.len(),
                    signature,
                    attempts: 0,
                    error: format!("quarantined: {reason}"),
                    time_lost: SimTime::ZERO,
                    quarantined: true,
                });
                charges.push(SimTime::ZERO);
                continue;
            }
            Disposition::Resolved(g) => g,
            Disposition::Pool(idx) => pooled[idx].take().expect("pool result consumed once"),
            Disposition::Dup => {
                // The twin settled at its own finalize turn. Re-check the
                // quarantine — it may have grown this run — then run the
                // generation loop inline: in the common case a clean hit
                // on the entry the twin just cached.
                if config.quarantine.contains(signature) {
                    let reason = config
                        .quarantine
                        .reason(signature)
                        .unwrap_or_else(|| "unknown".into());
                    tel.add(names::CANDIDATES_FAILED, 1);
                    cand_tel.event(
                        "candidate.quarantine_skip",
                        &[("signature", TelValue::U64(signature))],
                    );
                    if let Some(mut span) = cand_span.take() {
                        span.set_sim_time(SimTime::ZERO);
                        span.field("failed", TelValue::Bool(true));
                        span.field("attempts", TelValue::U64(0));
                    }
                    failed.push(FailedCandidate {
                        key: cand.key,
                        size: cand.len(),
                        signature,
                        attempts: 0,
                        error: format!("quarantined: {reason}"),
                        time_lost: SimTime::ZERO,
                        quarantined: true,
                    });
                    charges.push(SimTime::ZERO);
                    continue;
                }
                run_generation(
                    db,
                    netlist_cache,
                    bitstream_cache,
                    config,
                    pf,
                    &dfg,
                    &cand,
                    signature,
                    None,
                    &cand_tel,
                )
            }
        };

        let Generated {
            mut produced,
            mut attempt,
            mut loss,
            retries: gen_retries,
            error,
        } = generated;
        retries += gen_retries;

        // ---- Overlay fast path (DESIGN.md §17) ----
        // Installed serially before the background result is applied: in
        // deployment the candidate serves at millisecond latency while the
        // full flow is still in flight. A failed overlay install falls back
        // to the full-only path; a fresh overlay commit is journaled so a
        // crash before the upgrade rehydrates the overlay tier.
        let mut overlay_time = SimTime::ZERO;
        let mut overlay_saved_per_exec = 0u64;
        let overlay_slot: Option<(u32, OverlayPrep)> = if let Some(op) = overlay_prep {
            let mut o_attempt = 0u32;
            let installed = loop {
                o_attempt += 1;
                let inj = config
                    .faults
                    .scope(signature ^ OVERLAY_SCOPE_SALT, o_attempt);
                match install_overlay(&op, &inj, pf, &dfg, &cand, machine, &cand_tel) {
                    Ok(slot) => break Some(slot),
                    Err((e, waste)) => {
                        loss.absorb(waste);
                        if o_attempt >= max_attempts {
                            // The assembly work is wasted along with the
                            // dead transfers; full-only fallback.
                            loss.constant += op.assembly;
                            cand_tel.event(
                                "overlay.install_failed",
                                &[
                                    ("signature", TelValue::U64(signature)),
                                    ("error", TelValue::Str(e.to_string())),
                                ],
                            );
                            break None;
                        }
                        let backoff = config.retry.backoff_for(o_attempt);
                        loss.backoff += backoff;
                        retries += 1;
                        tel.add(names::PIPELINE_RETRIES, 1);
                        cand_tel.event(
                            "candidate.retry",
                            &[
                                ("signature", TelValue::U64(signature)),
                                ("attempt", TelValue::U64(o_attempt as u64)),
                                ("backoff_ns", TelValue::U64(backoff.as_nanos())),
                                ("error", TelValue::Str(e.to_string())),
                            ],
                        );
                    }
                }
            };
            match installed {
                Some(slot) => {
                    // Savings under the overlay clock: the software cycles
                    // (`saved_per_exec + hw_cycles`) minus the overlay's
                    // own cycle count — floored at zero for candidates the
                    // degraded fabric cannot beat.
                    overlay_saved_per_exec = saved_per_exec
                        .saturating_add(hw_cycles)
                        .saturating_sub(op.hw_cycles);
                    overlay_time = op.assembly;
                    overlay_installs += 1;
                    tel.add(names::OVERLAY_INSTALLS, 1);
                    cand_tel.event(
                        "overlay.installed",
                        &[
                            ("signature", TelValue::U64(signature)),
                            ("slot", TelValue::U64(slot as u64)),
                        ],
                    );
                    // Journal the overlay commit now: a crash before the
                    // upgrade lands must rehydrate this tier.
                    if !op.cache_hit {
                        if let Some(store) = &config.store {
                            let _ = store.append(Record::CacheEntry(op.entry.clone().into()));
                        }
                    }
                    Some((slot, op))
                }
                None => None,
            }
        } else {
            None
        };
        total_overlay_time += overlay_time;

        // Adaptation: the ICAP install — or, on the two-tier path, the
        // upgrade swap — serialized here behind the single reconfiguration
        // port, continuing the attempt numbering where generation stopped.
        // Generation survives an install failure: only the transfer is
        // re-attempted.
        let mut tier = InstallTier::Full;
        let mut upgraded = false;
        let result: std::result::Result<u32, Error> = if let Some((oslot, op)) = overlay_slot {
            if let Some(e) = error {
                // The background generation exhausted its retries while
                // the overlay serves correct answers: the candidate
                // *succeeds* at the overlay tier. The generation waste
                // stays on the fault ledger, and the overlay entry is
                // committed to the in-memory cache so the next session
                // rehydrates the fast path instead of starting cold.
                tier = InstallTier::Overlay;
                cand_tel.event(
                    "overlay.retained",
                    &[
                        ("signature", TelValue::U64(signature)),
                        ("error", TelValue::Str(e.to_string())),
                    ],
                );
                if config.use_cache {
                    bitstream_cache.put(op.entry.clone());
                }
                Ok(oslot)
            } else {
                loop {
                    let p = produced.as_ref().expect("generation succeeded");
                    let inj = config.faults.scope(signature, attempt);
                    match upgrade_produced(p, &inj, machine, signature, hw_cycles, &cand_tel) {
                        Ok(slot) => {
                            upgraded = true;
                            upgrades += 1;
                            break Ok(slot);
                        }
                        Err((e, waste)) => {
                            loss.absorb(waste);
                            if attempt >= max_attempts {
                                // Swap abandoned: the overlay keeps
                                // serving. The full artifact stays cached
                                // (and journaled below), so the next
                                // session upgrades from a clean start.
                                tier = InstallTier::Overlay;
                                upgrades_failed += 1;
                                tel.add(names::OVERLAY_UPGRADES_FAILED, 1);
                                cand_tel.event(
                                    "overlay.upgrade_abandoned",
                                    &[
                                        ("signature", TelValue::U64(signature)),
                                        ("error", TelValue::Str(e.to_string())),
                                    ],
                                );
                                break Ok(oslot);
                            }
                            let backoff = config.retry.backoff_for(attempt);
                            loss.backoff += backoff;
                            retries += 1;
                            tel.add(names::PIPELINE_RETRIES, 1);
                            cand_tel.event(
                                "candidate.retry",
                                &[
                                    ("signature", TelValue::U64(signature)),
                                    ("attempt", TelValue::U64(attempt as u64)),
                                    ("backoff_ns", TelValue::U64(backoff.as_nanos())),
                                    ("error", TelValue::Str(e.to_string())),
                                ],
                            );
                            attempt += 1;
                        }
                    }
                }
            }
        } else if let Some(e) = error {
            Err(e)
        } else {
            loop {
                let p = produced.as_ref().expect("generation succeeded");
                let inj = config.faults.scope(signature, attempt);
                match install_produced(p, &inj, pf, &dfg, &cand, machine, hw_cycles, &cand_tel) {
                    Ok(slot) => break Ok(slot),
                    Err((e, waste)) => {
                        loss.absorb(waste);
                        if attempt >= max_attempts {
                            break Err(e);
                        }
                        let backoff = config.retry.backoff_for(attempt);
                        loss.backoff += backoff;
                        retries += 1;
                        tel.add(names::PIPELINE_RETRIES, 1);
                        cand_tel.event(
                            "candidate.retry",
                            &[
                                ("signature", TelValue::U64(signature)),
                                ("attempt", TelValue::U64(attempt as u64)),
                                ("backoff_ns", TelValue::U64(backoff.as_nanos())),
                                ("error", TelValue::Str(e.to_string())),
                            ],
                        );
                        attempt += 1;
                    }
                }
            }
        };

        // Patching is deterministic IR surgery: an error there is not
        // retryable, but it is still isolated to this candidate.
        let result: std::result::Result<u32, Error> = result.and_then(|slot| {
            patch_candidate(module.func_mut(cand.key.func), &cand, slot).map(|_| slot)
        });

        match result {
            Ok(slot) => {
                // `produced` is absent on the overlay-retained path (the
                // background generation failed and the overlay serves).
                let (p_cache_hit, p_c2v, p_const, p_map, p_par) = match produced.take() {
                    Some(p) => {
                        if p.cache_hit {
                            cache_hits += 1;
                            tel.add(names::BITSTREAM_CACHE_HITS, 1);
                        } else {
                            tel.add(names::BITSTREAM_CACHE_MISSES, 1);
                            // Commit the freshly generated implementation
                            // to the persistent store (cache hits were
                            // journaled by the session that generated
                            // them). Fire-and-forget: a dead store must
                            // never fail the candidate.
                            if let Some(store) = &config.store {
                                let _ = store.append(Record::CacheEntry(p.entry.clone().into()));
                            }
                        }
                        const_time += p.c2v + p.const_stages;
                        map_time += p.map;
                        par_time += p.par;
                        (p.cache_hit, p.c2v, p.const_stages, p.map, p.par)
                    }
                    None => (
                        false,
                        SimTime::ZERO,
                        SimTime::ZERO,
                        SimTime::ZERO,
                        SimTime::ZERO,
                    ),
                };
                fault.absorb(loss);
                let charge = p_c2v + p_const + p_map + p_par + loss.total() + overlay_time;
                if let Some(mut span) = cand_span.take() {
                    span.set_sim_time(charge);
                    span.field("cache_hit", TelValue::Bool(p_cache_hit));
                    span.field("slot", TelValue::U64(slot as u64));
                    span.field("attempts", TelValue::U64(attempt as u64));
                    span.field("tier", TelValue::Str(tier.name().into()));
                    span.field("upgraded", TelValue::Bool(upgraded));
                }
                charges.push(charge);
                outcomes.push(CandidateOutcome {
                    key: cand.key,
                    size: cand.len(),
                    signature,
                    cache_hit: p_cache_hit,
                    c2v: p_c2v,
                    const_stages: p_const,
                    map: p_map,
                    par: p_par,
                    slot,
                    saved_per_exec,
                    exec_count,
                    attempts: attempt,
                    time_lost: loss.total(),
                    tier,
                    overlay_time,
                    upgraded,
                    overlay_saved_per_exec,
                });
            }
            Err(e) => {
                // Exhausted: everything this candidate burned — including
                // a successful generation whose install then failed — is
                // wasted time, charged to the fault ledger so the journal
                // still reconciles exactly.
                if let Some(p) = produced.take() {
                    loss.constant += p.c2v + p.const_stages;
                    loss.map += p.map;
                    loss.par += p.par;
                }
                let error = e.to_string();
                let newly = config.quarantine.insert(signature, &error);
                tel.add(names::CANDIDATES_FAILED, 1);
                if newly {
                    tel.add(names::CANDIDATES_QUARANTINED, 1);
                    cand_tel.event(
                        "candidate.quarantined",
                        &[
                            ("signature", TelValue::U64(signature)),
                            ("error", TelValue::Str(error.clone())),
                        ],
                    );
                    newly_quarantined += 1;
                    if let Some(store) = &config.store {
                        let _ = store.append(Record::Quarantine {
                            signature,
                            reason: error.clone(),
                        });
                    }
                }
                cand_tel.event(
                    "candidate.failed",
                    &[
                        ("signature", TelValue::U64(signature)),
                        ("attempts", TelValue::U64(attempt as u64)),
                        ("error", TelValue::Str(error.clone())),
                    ],
                );
                fault.absorb(loss);
                if let Some(mut span) = cand_span.take() {
                    // `overlay_time` is non-zero here only when patching
                    // failed after a successful overlay install; the charge
                    // keeps the lane ledger reconciling exactly.
                    span.set_sim_time(loss.total() + overlay_time);
                    span.field("failed", TelValue::Bool(true));
                    span.field("attempts", TelValue::U64(attempt as u64));
                }
                charges.push(loss.total() + overlay_time);
                failed.push(FailedCandidate {
                    key: cand.key,
                    size: cand.len(),
                    signature,
                    attempts: attempt,
                    error,
                    time_lost: loss.total(),
                    quarantined: newly,
                });
            }
        }
    }

    let sum_time = const_time + map_time + par_time;
    let cpu_time: SimTime = charges.iter().copied().sum();
    debug_assert_eq!(cpu_time, sum_time + fault.total() + total_overlay_time);

    // Journal the cumulative fault-ledger totals (latest-wins on replay).
    if let Some(store) = &config.store {
        let prior = store.state().totals;
        let _ = store.append(Record::FaultTotals(FaultTotals {
            sessions: prior.sessions + 1,
            retries: prior.retries + retries,
            quarantined: prior.quarantined + newly_quarantined,
            fault_time_ns: prior.fault_time_ns.saturating_add(fault.total().as_nanos()),
        }));
    }
    let lanes = config.cad_workers.max(1);
    let makespan = lane_makespan(lanes, &charges);
    root.set_sim_time(cpu_time);
    root.field("candidates", TelValue::U64(outcomes.len() as u64));
    root.field("cache_hits", TelValue::U64(cache_hits as u64));
    root.field("failed", TelValue::U64(failed.len() as u64));
    root.field("retries", TelValue::U64(retries));
    root.field("cad_workers", TelValue::U64(lanes as u64));
    root.field("makespan_ns", TelValue::U64(makespan.as_nanos()));
    root.field("overlay_installs", TelValue::U64(overlay_installs as u64));
    root.field("upgrades", TelValue::U64(upgrades as u64));
    drop(root);
    Ok(SpecializeReport {
        search,
        candidates: outcomes,
        const_time,
        map_time,
        par_time,
        sum_time,
        reconfig_time: machine.total_reconfig_time(),
        cache_hits,
        failed,
        retries,
        fault_const_time: fault.constant,
        fault_map_time: fault.map,
        fault_par_time: fault.par,
        fault_icap_time: fault.icap,
        backoff_time: fault.backoff,
        cpu_time,
        makespan,
        cad_workers: lanes,
        overlay_installs,
        upgrades,
        upgrades_failed,
        overlay_time: total_overlay_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfix::hot_module;
    use jitise_vm::{Interpreter, Value};

    fn run_profile(m: &Module, n: i64) -> Profile {
        let mut vm = Interpreter::new(m);
        vm.run("main", &[Value::I(n)]).unwrap();
        vm.take_profile()
    }

    struct Ctx {
        db: CircuitDb,
        netlists: NetlistCache,
        bitstreams: BitstreamCache,
        estimator: PivPavEstimator,
    }

    impl Ctx {
        fn new() -> Ctx {
            Ctx {
                db: CircuitDb::build(),
                netlists: NetlistCache::new(),
                bitstreams: BitstreamCache::new(),
                estimator: PivPavEstimator::new(),
            }
        }

        fn specialize(&self, m: &mut Module, p: &Profile, machine: &Woolcano) -> SpecializeReport {
            specialize(
                m,
                p,
                machine,
                &self.estimator,
                &self.db,
                &self.netlists,
                &self.bitstreams,
                &SpecializeConfig::default(),
            )
            .unwrap()
        }
    }

    #[test]
    fn full_pipeline_speeds_up_and_preserves_semantics() {
        let ctx = Ctx::new();
        let base = hot_module();
        let mut m = base.clone();
        let profile = run_profile(&m, 5_000);
        let machine = Woolcano::new(16);
        let report = ctx.specialize(&mut m, &profile, &machine);
        assert!(!report.candidates.is_empty());
        assert!(report.sum_time > SimTime::ZERO);
        assert_eq!(report.cache_hits, 0);
        // Constant stages dominated by bitgen (paper: 85 %).
        assert!(report.const_time.as_secs_f64() > 150.0);

        let meas =
            jitise_woolcano::measure_speedup(&base, &m, &machine, "main", &[Value::I(5_000)])
                .unwrap();
        assert!(meas.speedup > 1.0, "speedup {}", meas.speedup);
    }

    #[test]
    fn cache_hit_skips_generation() {
        let ctx = Ctx::new();
        // First app run populates the cache.
        let mut m1 = hot_module();
        let p1 = run_profile(&m1, 2_000);
        let machine1 = Woolcano::new(16);
        let r1 = ctx.specialize(&mut m1, &p1, &machine1);
        assert_eq!(r1.cache_hits, 0);
        let first_sum = r1.sum_time;

        // Same program again: every candidate hits.
        let mut m2 = hot_module();
        let p2 = run_profile(&m2, 2_000);
        let machine2 = Woolcano::new(16);
        let r2 = ctx.specialize(&mut m2, &p2, &machine2);
        assert_eq!(r2.cache_hits, r2.candidates.len());
        assert_eq!(r2.sum_time, SimTime::ZERO, "all generation skipped");
        assert!(first_sum > SimTime::ZERO);

        // And the cached-bitstream machine still computes correctly.
        let base = hot_module();
        let meas =
            jitise_woolcano::measure_speedup(&base, &m2, &machine2, "main", &[Value::I(999)])
                .unwrap();
        assert!(meas.speedup > 1.0);
    }

    #[test]
    fn report_times_are_consistent() {
        let ctx = Ctx::new();
        let mut m = hot_module();
        let p = run_profile(&m, 2_000);
        let machine = Woolcano::new(16);
        let r = ctx.specialize(&mut m, &p, &machine);
        let per_cand: SimTime = r.candidates.iter().map(|c| c.total()).sum();
        assert_eq!(per_cand, r.sum_time);
        assert_eq!(r.sum_time, r.const_time + r.map_time + r.par_time);
        assert_eq!(r.cpu_time, r.sum_time + r.fault_time() + r.overlay_time);
        assert_eq!(r.overlay_time, SimTime::ZERO, "no overlay library");
        assert_eq!(r.overlay_installs, 0);
        assert_eq!(r.upgrades, 0);
        assert_eq!(r.makespan, r.cpu_time, "one lane: makespan is the sum");
        assert_eq!(r.cad_workers, 1);
        assert!(r.reconfig_time > SimTime::ZERO);
        assert!(r.failed.is_empty());
        assert_eq!(r.retries, 0);
        assert_eq!(r.fault_time(), SimTime::ZERO);
    }

    #[test]
    fn lane_makespan_schedules_greedily() {
        let c = SimTime::from_secs;
        let charges = [c(4), c(3), c(2), c(1)];
        assert_eq!(lane_makespan(1, &charges), c(10));
        // Two lanes: 4 | 3, then 2 joins the 3-lane, 1 the 4-lane.
        assert_eq!(lane_makespan(2, &charges), c(5));
        assert_eq!(lane_makespan(4, &charges), c(4));
        assert_eq!(lane_makespan(8, &charges), c(4), "idle lanes are free");
        assert_eq!(lane_makespan(0, &charges), c(10), "clamped to one lane");
        assert_eq!(lane_makespan(3, &[]), SimTime::ZERO);
    }

    #[test]
    fn worker_count_leaves_everything_but_makespan_identical() {
        let run = |workers: usize| {
            let ctx = Ctx::new();
            let mut m = hot_module();
            let p = run_profile(&m, 2_000);
            let machine = Woolcano::new(16);
            let cfg = SpecializeConfig {
                cad_workers: workers,
                ..SpecializeConfig::default()
            };
            let r = specialize_with(&ctx, &mut m, &p, &machine, &cfg);
            (r, m)
        };
        let (r1, m1) = run(1);
        let (r4, m4) = run(4);
        assert_eq!(r1.fingerprint(), r4.fingerprint());
        assert_eq!(m1, m4, "patched modules identical");
        assert_eq!(r1.cpu_time, r4.cpu_time);
        assert!(r4.makespan <= r4.cpu_time);
        if r4.candidates.len() >= 2 {
            assert!(
                r4.makespan < r4.cpu_time,
                "two lanes must overlap: makespan {} cpu {}",
                r4.makespan,
                r4.cpu_time
            );
        }
    }

    use jitise_faults::{FaultPlan, FaultSite};

    fn faulty_config(plan: FaultPlan) -> SpecializeConfig {
        SpecializeConfig {
            faults: FaultInjector::from_plan(plan),
            ..SpecializeConfig::default()
        }
    }

    fn specialize_with(
        ctx: &Ctx,
        m: &mut Module,
        p: &Profile,
        machine: &Woolcano,
        config: &SpecializeConfig,
    ) -> SpecializeReport {
        specialize(
            m,
            p,
            machine,
            &ctx.estimator,
            &ctx.db,
            &ctx.netlists,
            &ctx.bitstreams,
            config,
        )
        .unwrap()
    }

    #[test]
    fn zero_rate_injector_leaves_report_byte_identical() {
        let mk = || {
            let ctx = Ctx::new();
            let m = hot_module();
            let p = run_profile(&m, 2_000);
            let machine = Woolcano::new(16);
            (ctx, m, p, machine)
        };
        let (ctx_a, mut m_a, p_a, machine_a) = mk();
        let base = ctx_a.specialize(&mut m_a, &p_a, &machine_a);
        let (ctx_b, mut m_b, p_b, machine_b) = mk();
        let cfg = faulty_config(FaultPlan::uniform(0.0, 42));
        let zeroed = specialize_with(&ctx_b, &mut m_b, &p_b, &machine_b, &cfg);
        assert_eq!(base.fingerprint(), zeroed.fingerprint());
        assert_eq!(m_a, m_b, "patched modules identical");
    }

    #[test]
    fn persistent_fault_isolates_and_quarantines_candidate() {
        let ctx = Ctx::new();
        let base = hot_module();
        let mut m = base.clone();
        let p = run_profile(&m, 2_000);
        let machine = Woolcano::new(16);
        let mut plan = FaultPlan::none(7).with_rate(FaultSite::CadMap, 1.0);
        plan.persistent_frac = 1.0; // every fault is persistent
        let cfg = faulty_config(plan);
        let r = specialize_with(&ctx, &mut m, &p, &machine, &cfg);
        assert!(r.candidates.is_empty(), "every candidate fails");
        assert!(!r.failed.is_empty());
        for f in &r.failed {
            assert!(f.quarantined);
            assert_eq!(f.attempts, cfg.retry.max_attempts);
            assert!(f.error.contains("injected"));
            assert!(f.time_lost > SimTime::ZERO);
        }
        assert_eq!(
            r.retries,
            r.failed.len() as u64 * (cfg.retry.max_attempts as u64 - 1)
        );
        assert_eq!(cfg.quarantine.len(), r.failed.len());
        assert!(
            r.fault_map_time > SimTime::ZERO,
            "map ran before each death"
        );
        assert!(r.backoff_time > SimTime::ZERO);
        assert_eq!(r.sum_time, SimTime::ZERO, "no successful generation");
        assert_eq!(r.cpu_time, r.fault_time(), "all charged time is waste");

        // The unpatched module still computes the original answer.
        let mut vm_base = Interpreter::new(&base);
        let want = vm_base.run("main", &[Value::I(500)]).unwrap();
        let mut vm = Interpreter::new(&m);
        let got = vm.run("main", &[Value::I(500)]).unwrap();
        assert_eq!(want.ret, got.ret);

        // A second session sharing the quarantine skips without tool time.
        let mut m2 = hot_module();
        let p2 = run_profile(&m2, 2_000);
        let machine2 = Woolcano::new(16);
        let cfg2 = SpecializeConfig {
            quarantine: Arc::clone(&cfg.quarantine),
            ..SpecializeConfig::default()
        };
        let r2 = specialize_with(&ctx, &mut m2, &p2, &machine2, &cfg2);
        assert!(r2.candidates.is_empty());
        assert!(r2.failed.iter().all(|f| f.attempts == 0 && f.quarantined));
        assert_eq!(r2.fault_time(), SimTime::ZERO, "skip burns nothing");
        assert_eq!(r2.makespan, SimTime::ZERO, "skips occupy no lane");
    }

    #[test]
    fn transient_fault_retries_then_succeeds() {
        let ctx = Ctx::new();
        let base = hot_module();
        let mut m = base.clone();
        let p = run_profile(&m, 5_000);
        let machine = Woolcano::new(16);
        let mut plan = FaultPlan::none(11).with_rate(FaultSite::CadMap, 1.0);
        plan.persistent_frac = 0.0; // every fault clears within the budget
        let cfg = faulty_config(plan);
        let r = specialize_with(&ctx, &mut m, &p, &machine, &cfg);
        assert!(
            r.failed.is_empty(),
            "transients always clear: {:?}",
            r.failed
        );
        assert!(!r.candidates.is_empty());
        assert!(r.candidates.iter().all(|c| c.attempts > 1));
        assert!(r.retries > 0);
        assert!(r.fault_map_time > SimTime::ZERO);
        assert!(r.backoff_time > SimTime::ZERO);
        assert!(cfg.quarantine.is_empty());

        let meas =
            jitise_woolcano::measure_speedup(&base, &m, &machine, "main", &[Value::I(5_000)])
                .unwrap();
        assert!(meas.speedup > 1.0, "speedup {}", meas.speedup);
    }

    #[test]
    fn icap_corruption_is_caught_and_retried_without_regeneration() {
        let ctx = Ctx::new();
        let base = hot_module();
        let mut m = base.clone();
        let p = run_profile(&m, 2_000);
        let machine = Woolcano::new(16);
        let mut plan = FaultPlan::none(13).with_rate(FaultSite::IcapTransfer, 1.0);
        plan.persistent_frac = 0.0;
        let cfg = faulty_config(plan);
        let r = specialize_with(&ctx, &mut m, &p, &machine, &cfg);
        assert!(r.failed.is_empty(), "{:?}", r.failed);
        for c in &r.candidates {
            assert!(c.attempts > 1, "first transfer was corrupted");
            assert!(!c.cache_hit);
            assert!(c.total() > SimTime::ZERO, "generation time still reported");
        }
        assert!(r.fault_icap_time > SimTime::ZERO, "dead transfers ledgered");
        assert_eq!(
            r.fault_const_time + r.fault_map_time + r.fault_par_time,
            SimTime::ZERO,
            "generation ran exactly once per candidate"
        );

        let meas =
            jitise_woolcano::measure_speedup(&base, &m, &machine, "main", &[Value::I(2_000)])
                .unwrap();
        assert!(meas.speedup > 1.0);
    }

    #[test]
    fn poisoned_cache_entry_is_evicted_and_regenerated() {
        let ctx = Ctx::new();
        // Populate the cache fault-free.
        let mut m1 = hot_module();
        let p1 = run_profile(&m1, 2_000);
        let machine1 = Woolcano::new(16);
        let r1 = ctx.specialize(&mut m1, &p1, &machine1);
        assert_eq!(r1.cache_hits, 0);

        // Second run: every cache read comes back corrupted (transient, so
        // only attempt 1 is poisoned — but regeneration happens within the
        // same attempt and replaces the entry).
        let base = hot_module();
        let mut m2 = base.clone();
        let p2 = run_profile(&m2, 2_000);
        let machine2 = Woolcano::new(16);
        let mut plan = FaultPlan::none(17).with_rate(FaultSite::CacheEntry, 1.0);
        plan.persistent_frac = 0.0;
        let cfg = faulty_config(plan);
        let r2 = specialize_with(&ctx, &mut m2, &p2, &machine2, &cfg);
        assert!(r2.failed.is_empty(), "{:?}", r2.failed);
        assert_eq!(r2.cache_hits, 0, "poisoned hits do not count as hits");
        assert!(r2.sum_time > SimTime::ZERO, "regeneration happened");
        assert!(r2.candidates.iter().all(|c| !c.cache_hit));

        let meas =
            jitise_woolcano::measure_speedup(&base, &m2, &machine2, "main", &[Value::I(999)])
                .unwrap();
        assert!(meas.speedup > 1.0);
    }

    fn overlay_config(ctx: &Ctx) -> SpecializeConfig {
        SpecializeConfig {
            overlay: Some(Arc::new(OverlayLibrary::from_db(&ctx.db))),
            ..SpecializeConfig::default()
        }
    }

    #[test]
    fn overlay_two_tier_installs_then_upgrades_to_full() {
        let ctx = Ctx::new();
        let base = hot_module();
        let mut m = base.clone();
        let p = run_profile(&m, 5_000);
        let machine = Woolcano::new(16);
        let cfg = overlay_config(&ctx);
        let r = specialize_with(&ctx, &mut m, &p, &machine, &cfg);
        assert!(!r.candidates.is_empty());
        assert!(r.failed.is_empty(), "{:?}", r.failed);
        assert_eq!(r.overlay_installs, r.candidates.len());
        assert_eq!(r.upgrades, r.candidates.len());
        assert_eq!(r.upgrades_failed, 0);
        for c in &r.candidates {
            assert_eq!(c.tier, InstallTier::Full, "background upgrade landed");
            assert!(c.upgraded);
            assert!(c.overlay_time > SimTime::ZERO, "fresh assembly charged");
        }
        // The install-latency headline: assembling and installing the
        // overlay is orders of magnitude cheaper than the full CAD flow.
        assert!(
            r.sum_time.as_nanos() > 100 * r.overlay_time.as_nanos(),
            "overlay {} vs full {}",
            r.overlay_time,
            r.sum_time
        );
        assert_eq!(r.cpu_time, r.sum_time + r.fault_time() + r.overlay_time);

        let meas =
            jitise_woolcano::measure_speedup(&base, &m, &machine, "main", &[Value::I(5_000)])
                .unwrap();
        assert!(meas.speedup > 1.0, "speedup {}", meas.speedup);
    }

    #[test]
    fn upgrade_swap_fault_keeps_overlay_serving() {
        let ctx = Ctx::new();
        let base = hot_module();
        let mut m = base.clone();
        let p = run_profile(&m, 2_000);
        let machine = Woolcano::new(16);
        let mut plan = FaultPlan::none(19).with_rate(FaultSite::UpgradeSwap, 1.0);
        plan.persistent_frac = 1.0; // every swap transfer dies
        let cfg = SpecializeConfig {
            faults: FaultInjector::from_plan(plan),
            ..overlay_config(&ctx)
        };
        let r = specialize_with(&ctx, &mut m, &p, &machine, &cfg);
        assert!(r.failed.is_empty(), "overlay keeps serving: {:?}", r.failed);
        assert!(!r.candidates.is_empty());
        assert_eq!(r.upgrades, 0);
        assert_eq!(r.upgrades_failed, r.candidates.len());
        for c in &r.candidates {
            assert_eq!(c.tier, InstallTier::Overlay, "swap never landed");
            assert!(!c.upgraded);
        }
        assert!(r.fault_icap_time > SimTime::ZERO, "dead swaps ledgered");
        assert!(
            r.sum_time > SimTime::ZERO,
            "full generation still succeeded"
        );
        assert!(
            cfg.quarantine.is_empty(),
            "a serving slot never quarantines"
        );

        // The overlay tier computes the same answers as software.
        jitise_woolcano::measure_speedup(&base, &m, &machine, "main", &[Value::I(777)]).unwrap();
    }

    #[test]
    fn worker_count_invariance_holds_with_overlay() {
        let run = |workers: usize| {
            let ctx = Ctx::new();
            let mut m = hot_module();
            let p = run_profile(&m, 2_000);
            let machine = Woolcano::new(16);
            let cfg = SpecializeConfig {
                cad_workers: workers,
                ..overlay_config(&ctx)
            };
            let r = specialize_with(&ctx, &mut m, &p, &machine, &cfg);
            (r.fingerprint(), m)
        };
        let (f1, m1) = run(1);
        let (f2, m2) = run(2);
        let (f8, m8) = run(8);
        assert_eq!(f1, f2);
        assert_eq!(f1, f8);
        assert_eq!(m1, m2, "patched modules identical");
        assert_eq!(m1, m8);
    }

    #[test]
    fn overlay_cache_entry_rehydrates_fast_path_and_upgrades() {
        let ctx = Ctx::new();
        // Session 1: generation is persistently dead; the overlay serves
        // and its entry is committed to the cache at the overlay tier.
        let mut m1 = hot_module();
        let p1 = run_profile(&m1, 2_000);
        let machine1 = Woolcano::new(16);
        let mut plan = FaultPlan::none(23).with_rate(FaultSite::CadMap, 1.0);
        plan.persistent_frac = 1.0;
        let cfg1 = SpecializeConfig {
            faults: FaultInjector::from_plan(plan),
            ..overlay_config(&ctx)
        };
        let r1 = specialize_with(&ctx, &mut m1, &p1, &machine1, &cfg1);
        assert!(r1.failed.is_empty(), "{:?}", r1.failed);
        assert!(!r1.candidates.is_empty());
        assert!(r1.candidates.iter().all(|c| c.tier == InstallTier::Overlay));
        assert_eq!(r1.sum_time, SimTime::ZERO, "no full generation landed");
        assert!(r1.overlay_time > SimTime::ZERO);
        assert!(
            cfg1.quarantine.is_empty(),
            "served candidates never quarantine"
        );

        // Session 2 (fault-free, shared caches): the overlay entry serves
        // the fast path for free — no re-assembly — and the full flow
        // finishes the upgrade.
        let mut m2 = hot_module();
        let p2 = run_profile(&m2, 2_000);
        let machine2 = Woolcano::new(16);
        let cfg2 = overlay_config(&ctx);
        let r2 = specialize_with(&ctx, &mut m2, &p2, &machine2, &cfg2);
        assert!(r2.failed.is_empty(), "{:?}", r2.failed);
        assert_eq!(r2.overlay_installs, r2.candidates.len());
        assert_eq!(r2.upgrades, r2.candidates.len());
        assert!(r2.candidates.iter().all(|c| c.tier == InstallTier::Full));
        assert_eq!(r2.overlay_time, SimTime::ZERO, "rehydrated: no assembly");
        assert!(r2.sum_time > SimTime::ZERO, "the full flow still ran");
    }
}
