//! Shared test fixtures for the jitise-core test modules.

use jitise_ir::{FunctionBuilder, Module, Operand as Op, Type};

/// A module with one hot, multiply-heavy counted loop — the canonical
/// specialization target used across the pipeline and runtime tests.
pub fn hot_module() -> Module {
    let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
    let cell = b.alloca(4);
    b.store(Op::ci32(1), cell);
    b.counted_loop("i", Op::ci32(0), Op::Arg(0), |b, i| {
        let acc = b.load(Type::I32, cell);
        let x = b.mul(acc, i);
        let y = b.mul(x, Op::ci32(3));
        let z = b.add(y, i);
        let w = b.xor(z, Op::ci32(0x5a));
        b.store(w, cell);
    });
    let out = b.load(Type::I32, cell);
    b.ret(out);
    let mut m = Module::new("hot");
    m.add_func(b.finish());
    m
}
