//! Shared test fixtures for the jitise-core test modules.

use crate::cache::CachedCi;
use jitise_base::SimTime;
use jitise_ir::{FunctionBuilder, Module, Operand as Op, Type};

/// A fully implemented cache entry built by running the real CAD flow on
/// a tiny synthetic core — the shared fixture for cache and store tests.
pub fn sample_cached_ci(sig: u64) -> CachedCi {
    let fabric = jitise_cad::Fabric::tiny();
    let nl = jitise_pivpav::netlist::synthesize_core("x", 4, 8, 2, 0, sig);
    let p = jitise_cad::place(&fabric, &nl, jitise_cad::PlaceEffort::fast(), 1)
        .expect("place stage must succeed on the tiny fixture netlist");
    let r = jitise_cad::route(&fabric, &nl, &p, jitise_cad::RouteEffort::fast())
        .expect("route stage must succeed on the tiny fixture netlist");
    let bitstream = jitise_cad::bitgen(&fabric, &nl, &p, &r, true);
    let timing = jitise_cad::analyze(&fabric, &nl, &p, &r);
    CachedCi {
        signature: sig,
        bitstream,
        timing,
        generation_time: SimTime::from_secs(220),
        tier: jitise_cad::InstallTier::Full,
    }
}

/// A module with one hot, multiply-heavy counted loop — the canonical
/// specialization target used across the pipeline and runtime tests.
pub fn hot_module() -> Module {
    let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
    let cell = b.alloca(4);
    b.store(Op::ci32(1), cell);
    b.counted_loop("i", Op::ci32(0), Op::Arg(0), |b, i| {
        let acc = b.load(Type::I32, cell);
        let x = b.mul(acc, i);
        let y = b.mul(x, Op::ci32(3));
        let z = b.add(y, i);
        let w = b.xor(z, Op::ci32(0x5a));
        b.store(w, cell);
    });
    let out = b.load(Type::I32, cell);
    b.ret(out);
    let mut m = Module::new("hot");
    m.add_func(b.finish());
    m
}
