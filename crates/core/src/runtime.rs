//! The concurrent JIT runtime.
//!
//! Fig. 1's right half: the application executes on the VM while the ASIP
//! specialization process runs *concurrently* ("this process is performed
//! concurrently with the execution of the application. As soon as it is
//! completed … the adaptation phase occurs where [the] ASIP architecture
//! is reconfigured and the application binary is modified").
//!
//! [`run_adaptive`] models exactly that: the main thread keeps executing
//! the workload run after run; a background worker profiles-and-
//! specializes; on completion the main loop hot-swaps to the specialized
//! binary and the loaded Woolcano machine. §VI-B's observation that one
//! can "run the FPGA tool concurrently" is realized by the worker pool.

use crate::cache::BitstreamCache;
use crate::evaluation::EvalContext;
use crate::pipeline::{specialize, SpecializeConfig, SpecializeReport};
use jitise_base::{Result, SimTime};
use jitise_ir::Module;
use jitise_telemetry::Value as TelValue;
use jitise_vm::{Interpreter, Profile, Value};
use jitise_woolcano::Woolcano;
use std::sync::mpsc::sync_channel;

/// Outcome of an adaptive execution session.
pub struct AdaptiveOutcome {
    /// Workload runs executed before the specialized binary was ready.
    pub runs_before: u32,
    /// Runs executed after adaptation.
    pub runs_after: u32,
    /// Average cycles per run before adaptation.
    pub cycles_before: u64,
    /// Average cycles per run after adaptation.
    pub cycles_after: u64,
    /// Observed speedup (before / after).
    pub observed_speedup: f64,
    /// The specialization report from the worker.
    pub report: SpecializeReport,
    /// Simulated specialization overhead (what a real deployment would
    /// wait for; the worker's wall time is irrelevant here).
    pub overhead: SimTime,
}

/// Runs `total_runs` executions of `entry(args)`, specializing in the
/// background after the first (profiling) run and hot-swapping when ready.
///
/// `ready_after_runs` models the tool-flow latency in units of workload
/// runs: the swap happens once specialization has finished *and* at least
/// that many runs have completed (deterministic tests set it explicitly).
pub fn run_adaptive(
    ctx: &EvalContext,
    cache: &BitstreamCache,
    module: &Module,
    entry: &str,
    args: &[Value],
    total_runs: u32,
    ready_after_runs: u32,
) -> Result<AdaptiveOutcome> {
    assert!(total_runs >= 2, "need at least profiling + one more run");

    let mut root = ctx.telemetry.span("runtime.adaptive");
    let tel = ctx.telemetry.under(&root);

    // Profiling run.
    let mut vm = Interpreter::new(module);
    vm.set_telemetry(tel.clone());
    vm.run(entry, args)?;
    let profile: Profile = vm.take_profile();
    let first_cycles = profile.total_cycles();

    let (tx, rx) = sync_channel::<Result<(Module, Woolcano, SpecializeReport)>>(1);

    let outcome = std::thread::scope(|scope| -> Result<AdaptiveOutcome> {
        // Background specialization worker. Its spans stitch under this
        // session's root span even though they run on another thread.
        let worker_module = module.clone();
        let worker_profile = profile;
        let worker_tel = tel.clone();
        scope.spawn(move || {
            let wspan = worker_tel.span("runtime.worker");
            let wtel = worker_tel.under(&wspan);
            let mut m = worker_module;
            let machine = Woolcano::with_telemetry(512, wtel.clone());
            let result = specialize(
                &mut m,
                &worker_profile,
                &machine,
                &ctx.estimator,
                &ctx.db,
                &ctx.netlists,
                cache,
                &SpecializeConfig {
                    telemetry: wtel,
                    ..SpecializeConfig::default()
                },
            )
            .map(|report| (m, machine, report));
            drop(wspan);
            let _ = tx.send(result);
        });

        // Main loop: keep running the workload; swap when the worker is
        // done and the latency gate has passed.
        let mut specialized: Option<(Module, Woolcano, SpecializeReport)> = None;
        let mut runs_before = 1u32; // the profiling run
        let mut runs_after = 0u32;
        let mut cycles_before = first_cycles;
        let mut cycles_after = 0u64;

        for run in 1..total_runs {
            if specialized.is_none() && run >= ready_after_runs {
                // Block for the worker the first time we are allowed to
                // swap; afterwards the specialized binary is in place.
                specialized = Some(rx.recv().expect("worker alive")?);
                tel.event("runtime.swap", &[("run", TelValue::U64(run as u64))]);
            }
            match &specialized {
                Some((m, machine, _)) => {
                    let mut vm = Interpreter::new(m);
                    vm.set_custom_handler(machine);
                    vm.set_telemetry(tel.clone());
                    let out = vm.run(entry, args)?;
                    cycles_after += out.cycles;
                    runs_after += 1;
                }
                None => {
                    let mut vm = Interpreter::new(module);
                    vm.set_telemetry(tel.clone());
                    let out = vm.run(entry, args)?;
                    cycles_before += out.cycles;
                    runs_before += 1;
                }
            }
        }
        // If the gate never opened (all runs before readiness), join now so
        // the report is still returned.
        let (_, _, report) = match specialized {
            Some(t) => t,
            None => rx.recv().expect("worker alive")?,
        };

        let avg_before = cycles_before / runs_before.max(1) as u64;
        let avg_after = if runs_after > 0 {
            cycles_after / runs_after as u64
        } else {
            avg_before
        };
        Ok(AdaptiveOutcome {
            runs_before,
            runs_after,
            cycles_before: avg_before,
            cycles_after: avg_after,
            observed_speedup: avg_before as f64 / avg_after.max(1) as f64,
            overhead: report.sum_time,
            report,
        })
    })?;

    root.field("runs_before", TelValue::U64(outcome.runs_before as u64));
    root.field("runs_after", TelValue::U64(outcome.runs_after as u64));
    root.set_sim_time(outcome.overhead);
    drop(root);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfix::hot_module;

    #[test]
    fn adapts_and_speeds_up() {
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let m = hot_module();
        let out = run_adaptive(&ctx, &cache, &m, "main", &[Value::I(3_000)], 6, 2).unwrap();
        assert!(out.runs_after >= 1, "must run specialized at least once");
        assert!(
            out.observed_speedup > 1.0,
            "specialized runs must be faster: {}",
            out.observed_speedup
        );
        assert!(out.overhead > SimTime::ZERO);
        assert!(!out.report.candidates.is_empty());
    }

    #[test]
    fn late_gate_still_returns_report() {
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let m = hot_module();
        // Gate beyond total runs: everything executes unspecialized, but
        // the report must still arrive.
        let out = run_adaptive(&ctx, &cache, &m, "main", &[Value::I(500)], 3, 99).unwrap();
        assert_eq!(out.runs_after, 0);
        assert_eq!(out.runs_before, 3);
        assert!((out.observed_speedup - 1.0).abs() < 1e-9);
        assert!(!out.report.candidates.is_empty());
    }

    #[test]
    fn second_session_hits_cache() {
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let m = hot_module();
        let first = run_adaptive(&ctx, &cache, &m, "main", &[Value::I(1_000)], 4, 2).unwrap();
        assert_eq!(first.report.cache_hits, 0);
        let second = run_adaptive(&ctx, &cache, &m, "main", &[Value::I(1_000)], 4, 2).unwrap();
        assert_eq!(
            second.report.cache_hits,
            second.report.candidates.len(),
            "second session must be served from the bitstream cache"
        );
        assert_eq!(second.overhead, SimTime::ZERO);
    }
}
