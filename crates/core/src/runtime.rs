//! The concurrent JIT runtime.
//!
//! Fig. 1's right half: the application executes on the VM while the ASIP
//! specialization process runs *concurrently* ("this process is performed
//! concurrently with the execution of the application. As soon as it is
//! completed … the adaptation phase occurs where [the] ASIP architecture
//! is reconfigured and the application binary is modified").
//!
//! [`run_adaptive`] models exactly that: the main thread keeps executing
//! the workload run after run; a background worker profiles-and-
//! specializes; on completion the main loop hot-swaps to the specialized
//! binary and the loaded Woolcano machine. §VI-B's observation that one
//! can "run the FPGA tool concurrently" is realized by the worker pool.
//!
//! The runtime never depends on the worker's health: a dead, panicked, or
//! stalled worker degrades the session to software-only execution
//! (correct results, speedup 1.0) instead of hanging or crashing the
//! application — see [`DegradedReason`] and DESIGN.md §9.

use crate::cache::BitstreamCache;
use crate::evaluation::EvalContext;
use crate::pipeline::{specialize, SpecializeConfig, SpecializeReport};
use jitise_base::hash::SigHasher;
use jitise_base::{Error, Result, SimTime};
use jitise_cad::OverlayLibrary;
use jitise_faults::{FaultInjector, FaultSite, Quarantine, RetryPolicy};
use jitise_ir::Module;
use jitise_ise::{SearchConfig, SearchMemo};
use jitise_store::{Record, Store};
use jitise_telemetry::{names, Telemetry, Value as TelValue};
use jitise_vm::{
    BlockKey, CostModel, HotnessWindow, Interpreter, PredecodedModule, Profile, Value, VmTier,
};
use jitise_woolcano::Woolcano;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

/// Why a session fell back to software-only execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradedReason {
    /// The worker thread died (or was killed) without reporting.
    WorkerDisconnected,
    /// The worker missed the watchdog deadline and was abandoned.
    WorkerStalled,
    /// Specialization itself returned an error.
    SpecializeFailed(String),
    /// The tenant's specialization exceeded its per-tenant deadline
    /// budget and the session fell back to software-only execution
    /// (multi-tenant serve runtime; see DESIGN.md §16). The single-
    /// session runtime never emits this — its wall-clock bound is the
    /// watchdog, reported as [`DegradedReason::WorkerStalled`].
    DeadlineExceeded,
}

/// Robustness knobs for [`run_adaptive_with`].
pub struct AdaptiveOptions {
    /// Wall-clock budget the main loop grants the worker before abandoning
    /// it and degrading to software-only execution. This is *host* time —
    /// the one place the runtime must bound a real thread, not a simulated
    /// clock.
    pub watchdog: Duration,
    /// Fault injection handle, threaded through to the pipeline and used
    /// for worker stall/death injection (disabled by default).
    pub faults: FaultInjector,
    /// Retry policy for the specialization pipeline.
    pub retry: RetryPolicy,
    /// Quarantine list shared with the pipeline (and, if the caller keeps
    /// the `Arc`, across sessions).
    pub quarantine: Arc<Quarantine>,
    /// CAD worker lanes for the specialization pipeline (default 1 = the
    /// sequential pipeline). More lanes shrink the simulated adaptation
    /// overhead; every other observable stays bit-identical.
    pub cad_workers: usize,
    /// Candidate-search worker lanes inside the specialization worker
    /// (default 1 = sequential search). Changes only wall-clock, never
    /// results.
    pub search_workers: usize,
    /// Optional identification memo. Keep the `Arc` across sessions and
    /// repeated adaptive searches skip re-identifying unchanged blocks.
    pub search_memo: Option<Arc<SearchMemo>>,
    /// Optional crash-consistent store (opened/recovered by the caller).
    /// At session start its recovered cache entries hydrate the bitstream
    /// cache (a warm restart: they count as cache hits) and its recovered
    /// quarantine signatures are honored; during the session every fresh
    /// implementation and quarantine decision is journaled back. `None`
    /// (the default) leaves the session byte-identical to today.
    pub store: Option<Arc<Store>>,
    /// Execution tier for every workload run in the session (default
    /// [`VmTier::Interp`]). The fast tier pre-decodes each binary once —
    /// base module at session start, specialized module at swap — and is
    /// bit-identical in results, cycles, and profiles, so fingerprints
    /// are unchanged; only host wall-clock improves.
    pub vm_tier: VmTier,
    /// Optional overlay cell library enabling two-tier installation in
    /// every specialization this session runs (initial install and storm
    /// re-specializations alike): candidates go live on a millisecond
    /// cell-assembly overlay while the full CAD flow runs as a background
    /// upgrade (DESIGN.md §17). `None` (the default) keeps the session
    /// byte-identical to the full-only pipeline.
    pub overlay: Option<Arc<OverlayLibrary>>,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            watchdog: Duration::from_secs(30),
            faults: FaultInjector::disabled(),
            retry: RetryPolicy::default(),
            quarantine: Arc::new(Quarantine::new()),
            cad_workers: 1,
            search_workers: 1,
            search_memo: None,
            store: None,
            vm_tier: VmTier::Interp,
            overlay: None,
        }
    }
}

/// Outcome of an adaptive execution session.
pub struct AdaptiveOutcome {
    /// Workload runs executed before the specialized binary was ready.
    pub runs_before: u32,
    /// Runs executed after adaptation.
    pub runs_after: u32,
    /// Average cycles per run before adaptation.
    pub cycles_before: u64,
    /// Average cycles per run after adaptation.
    pub cycles_after: u64,
    /// Observed speedup (before / after).
    pub observed_speedup: f64,
    /// The specialization report from the worker; `None` when the session
    /// degraded before the worker reported.
    pub report: Option<SpecializeReport>,
    /// Why the session fell back to software-only execution, if it did.
    pub degraded: Option<DegradedReason>,
    /// Return value of every workload run, in order (profiling run first).
    /// Degraded or not, these must match a fault-free session: the
    /// workload's answers are never allowed to change.
    pub results: Vec<Option<Value>>,
    /// Simulated specialization overhead (what a real deployment would
    /// wait for; the worker's wall time is irrelevant here). This is the
    /// pipeline's makespan: with one CAD lane, the sum of all tool time
    /// plus the fault ledger — wasted tool time and retry backoff are real
    /// waiting — and with more lanes, the critical path.
    pub overhead: SimTime,
}

impl AdaptiveOutcome {
    /// Deterministic digest of every observable field (see
    /// [`SpecializeReport::fingerprint`]).
    pub fn fingerprint(&self) -> String {
        format!(
            "rb={} ra={} cb={} ca={} sp={:016x} ov={} degraded={:?} results={:?} report={}",
            self.runs_before,
            self.runs_after,
            self.cycles_before,
            self.cycles_after,
            self.observed_speedup.to_bits(),
            self.overhead.as_nanos(),
            self.degraded,
            self.results,
            self.report
                .as_ref()
                .map(|r| r.fingerprint())
                .unwrap_or_else(|| "none".into()),
        )
    }
}

/// Sets the cancel flag when dropped, releasing a stalled worker so
/// `thread::scope` can join it — on *every* exit path, including panics.
struct CancelGuard(Arc<AtomicBool>);

impl Drop for CancelGuard {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Relaxed);
    }
}

fn wait_for_worker(
    rx: &Receiver<Result<(Module, Woolcano, SpecializeReport)>>,
    watchdog: Duration,
) -> std::result::Result<(Module, Woolcano, SpecializeReport), DegradedReason> {
    match rx.recv_timeout(watchdog) {
        Ok(Ok(t)) => Ok(t),
        Ok(Err(e)) => Err(DegradedReason::SpecializeFailed(e.to_string())),
        Err(RecvTimeoutError::Timeout) => Err(DegradedReason::WorkerStalled),
        Err(RecvTimeoutError::Disconnected) => Err(DegradedReason::WorkerDisconnected),
    }
}

fn note_degraded(tel: &Telemetry, reason: DegradedReason) -> DegradedReason {
    tel.add(names::RUNTIME_DEGRADED, 1);
    tel.event(
        "runtime.degraded",
        &[("reason", TelValue::Str(format!("{reason:?}")))],
    );
    reason
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".into()
    }
}

/// Records a worker-level injector firing (counter + journal event).
fn injected_worker_fault(tel: &Telemetry, inj: &FaultInjector, site: FaultSite) -> bool {
    let Some(kind) = inj.decide(site) else {
        return false;
    };
    tel.add(names::FAULTS_INJECTED, 1);
    tel.event(
        "fault.injected",
        &[
            ("site", TelValue::Str(site.name().into())),
            ("kind", TelValue::Str(kind.name().into())),
        ],
    );
    true
}

/// Runs `total_runs` executions of `entry(args)`, specializing in the
/// background after the first (profiling) run and hot-swapping when ready.
///
/// `ready_after_runs` models the tool-flow latency in units of workload
/// runs: the swap happens once specialization has finished *and* at least
/// that many runs have completed (deterministic tests set it explicitly).
///
/// Equivalent to [`run_adaptive_with`] under [`AdaptiveOptions::default`].
pub fn run_adaptive(
    ctx: &EvalContext,
    cache: &BitstreamCache,
    module: &Module,
    entry: &str,
    args: &[Value],
    total_runs: u32,
    ready_after_runs: u32,
) -> Result<AdaptiveOutcome> {
    run_adaptive_with(
        ctx,
        cache,
        module,
        entry,
        args,
        total_runs,
        ready_after_runs,
        &AdaptiveOptions::default(),
    )
}

/// [`run_adaptive`] with explicit robustness options.
///
/// The session *always* terminates with correct workload results: a
/// worker that dies, panics, stalls past the watchdog, or fails
/// specialization degrades the session to software-only execution and
/// records the [`DegradedReason`] instead of propagating the failure.
/// Builds a workload VM on the session's execution tier. On the fast tier
/// the module is pre-decoded once (memoized in `pd`) and the decoded form
/// is shared by every subsequent run of the same binary — the whole point
/// of paying the decode: the adaptive loop executes each module many times.
fn tiered_vm<'m>(
    module: &'m Module,
    tier: VmTier,
    pd: &mut Option<Arc<PredecodedModule>>,
) -> Interpreter<'m> {
    let mut vm = Interpreter::new(module);
    if tier == VmTier::Fast {
        let pd = pd
            .get_or_insert_with(|| Arc::new(PredecodedModule::build(module, &CostModel::ppc405())));
        vm.set_predecoded(Arc::clone(pd));
    }
    vm
}

/// Per-session workload execution state: the run/swap/cycle accounting
/// from [`run_adaptive_with`]'s main loop, factored into a struct so a
/// multi-session runtime (`jitise-serve`, DESIGN.md §16) can interleave
/// many tenants' workload runs while each tenant keeps exactly the
/// accounting a dedicated [`run_adaptive_with`] session would produce.
///
/// The profiling run charges the *profiled* cycle total (the VM's cycle
/// field is zero when profiling) and every later run charges the run's
/// own cycle count, matching the single-session runtime bit for bit.
/// On the fast tier the base and specialized modules are each
/// pre-decoded once and memoized for the life of the session.
pub struct WorkloadSession {
    tier: VmTier,
    base_pd: Option<Arc<PredecodedModule>>,
    spec_pd: Option<Arc<PredecodedModule>>,
    runs_before: u32,
    runs_after: u32,
    cycles_before: u64,
    cycles_after: u64,
    results: Vec<Option<Value>>,
}

impl WorkloadSession {
    /// A fresh session on the given execution tier; no runs yet.
    pub fn new(tier: VmTier) -> WorkloadSession {
        WorkloadSession {
            tier,
            base_pd: None,
            spec_pd: None,
            runs_before: 0,
            runs_after: 0,
            cycles_before: 0,
            cycles_after: 0,
            results: Vec::new(),
        }
    }

    /// The profiling run: executes `entry(args)` on the unmodified
    /// module, charges the profiled cycle total to the pre-swap bucket,
    /// and returns the [`Profile`] that seeds specialization.
    pub fn profile_run(
        &mut self,
        module: &Module,
        entry: &str,
        args: &[Value],
        tel: &Telemetry,
    ) -> Result<Profile> {
        let mut vm = tiered_vm(module, self.tier, &mut self.base_pd);
        vm.set_telemetry(tel.clone());
        let out = vm.run(entry, args)?;
        let profile: Profile = vm.take_profile();
        self.cycles_before += profile.total_cycles();
        self.runs_before += 1;
        self.results.push(out.ret);
        Ok(profile)
    }

    /// A pre-swap (or degraded software-only) run of the base module.
    pub fn software_run(
        &mut self,
        module: &Module,
        entry: &str,
        args: &[Value],
        tel: &Telemetry,
    ) -> Result<()> {
        let mut vm = tiered_vm(module, self.tier, &mut self.base_pd);
        vm.set_telemetry(tel.clone());
        let out = vm.run(entry, args)?;
        self.cycles_before += out.cycles;
        self.runs_before += 1;
        self.results.push(out.ret);
        Ok(())
    }

    /// A post-swap run of the specialized module on the loaded machine.
    pub fn adapted_run(
        &mut self,
        module: &Module,
        machine: &Woolcano,
        entry: &str,
        args: &[Value],
        tel: &Telemetry,
    ) -> Result<()> {
        let mut vm = tiered_vm(module, self.tier, &mut self.spec_pd);
        vm.set_custom_handler(machine);
        vm.set_telemetry(tel.clone());
        let out = vm.run(entry, args)?;
        self.cycles_after += out.cycles;
        self.runs_after += 1;
        self.results.push(out.ret);
        Ok(())
    }

    /// Runs executed before the swap (profiling run included).
    pub fn runs_before(&self) -> u32 {
        self.runs_before
    }

    /// Runs executed after the swap.
    pub fn runs_after(&self) -> u32 {
        self.runs_after
    }

    /// Return value of every run so far, in execution order.
    pub fn results(&self) -> &[Option<Value>] {
        &self.results
    }

    /// Average cycles per pre-swap run.
    pub fn avg_before(&self) -> u64 {
        self.cycles_before / self.runs_before.max(1) as u64
    }

    /// Average cycles per post-swap run; with no post-swap runs this is
    /// the pre-swap average (speedup 1.0), matching the degraded path
    /// of [`run_adaptive_with`].
    pub fn avg_after(&self) -> u64 {
        if self.runs_after > 0 {
            self.cycles_after / self.runs_after as u64
        } else {
            self.avg_before()
        }
    }

    /// Observed speedup: pre-swap average over post-swap average.
    pub fn observed_speedup(&self) -> f64 {
        self.avg_before() as f64 / self.avg_after().max(1) as f64
    }

    /// Consumes the session, yielding the per-run return values.
    pub fn into_results(self) -> Vec<Option<Value>> {
        self.results
    }
}

#[allow(clippy::too_many_arguments)]
pub fn run_adaptive_with(
    ctx: &EvalContext,
    cache: &BitstreamCache,
    module: &Module,
    entry: &str,
    args: &[Value],
    total_runs: u32,
    ready_after_runs: u32,
    options: &AdaptiveOptions,
) -> Result<AdaptiveOutcome> {
    assert!(total_runs >= 2, "need at least profiling + one more run");

    let mut root = ctx.telemetry.span("runtime.adaptive");
    let tel = ctx.telemetry.under(&root);

    // Warm restart: hydrate the bitstream cache and the quarantine from
    // the store's recovered state before any specialization work. The
    // recovered entries then count as ordinary cache hits, so a second
    // session after a restart pays zero regeneration overhead (§VI-A's
    // break-even improves exactly as if the process had never died).
    if let Some(store) = &options.store {
        let state = store.state();
        if !state.is_empty() {
            let absorbed = cache.absorb_store(&state);
            let mut quarantined = 0u64;
            for (sig, reason) in &state.quarantine {
                if options.quarantine.insert(*sig, reason) {
                    quarantined += 1;
                }
            }
            tel.add(names::STORE_WARM_RESTARTS, 1);
            tel.event(
                "runtime.warm_restart",
                &[
                    ("entries_absorbed", TelValue::U64(absorbed as u64)),
                    ("quarantine_absorbed", TelValue::U64(quarantined)),
                ],
            );
        }
    }

    // Per-session workload state: fast-tier pre-decode memos plus run
    // and cycle accounting. Profiling run first.
    let tier = options.vm_tier;
    let mut ws = WorkloadSession::new(tier);
    let profile = ws.profile_run(module, entry, args, &tel)?;

    // Worker-level faults are keyed by the session entry point so stall
    // and death decisions are deterministic per (plan seed, workload).
    let worker_key = {
        let mut h = SigHasher::new();
        h.write_str("runtime.worker");
        h.write_str(entry);
        h.finish()
    };
    let winj = options.faults.scope(worker_key, 1);
    let cancel = Arc::new(AtomicBool::new(false));

    let (tx, rx) = sync_channel::<Result<(Module, Woolcano, SpecializeReport)>>(1);

    let outcome = std::thread::scope(|scope| -> Result<AdaptiveOutcome> {
        // Whatever happens below — success, error propagation, even a
        // panicking test assertion — the guard releases a stalled worker
        // so the scope can join it.
        let _release_worker = CancelGuard(Arc::clone(&cancel));

        // Background specialization worker. Its spans stitch under this
        // session's root span even though they run on another thread.
        let worker_module = module.clone();
        let worker_profile = profile;
        let worker_tel = tel.clone();
        let worker_cancel = Arc::clone(&cancel);
        let worker_inj = winj.clone();
        let worker_faults = options.faults.clone();
        let worker_retry = options.retry;
        let worker_lanes = options.cad_workers;
        let worker_search_lanes = options.search_workers;
        let worker_search_memo = options.search_memo.clone();
        let worker_quarantine = Arc::clone(&options.quarantine);
        let worker_store = options.store.clone();
        let worker_tier = tier;
        let worker_overlay = options.overlay.clone();
        let watchdog = options.watchdog;
        scope.spawn(move || {
            let wspan = worker_tel.span("runtime.worker");
            let wtel = worker_tel.under(&wspan);
            // An injected death: the worker exits without ever reporting,
            // which the main loop sees as a disconnected channel.
            if injected_worker_fault(&wtel, &worker_inj, FaultSite::WorkerDeath) {
                return;
            }
            // An injected stall: the worker hangs (a wedged CAD tool)
            // until the main loop abandons it and flips the cancel flag.
            // The hard cap keeps a lost flag from hanging the scope.
            if injected_worker_fault(&wtel, &worker_inj, FaultSite::WorkerStall) {
                let cap = watchdog.saturating_mul(20).max(Duration::from_millis(100));
                let start = std::time::Instant::now();
                while !worker_cancel.load(Ordering::Relaxed) && start.elapsed() < cap {
                    std::thread::sleep(Duration::from_millis(2));
                }
                return;
            }
            // A panic anywhere in the pipeline must not tear down the
            // process: convert it into an error the main loop can handle.
            let result = catch_unwind(AssertUnwindSafe(|| {
                let mut m = worker_module;
                let machine = Woolcano::with_telemetry(512, wtel.clone());
                specialize(
                    &mut m,
                    &worker_profile,
                    &machine,
                    &ctx.estimator,
                    &ctx.db,
                    &ctx.netlists,
                    cache,
                    &SpecializeConfig {
                        search: SearchConfig {
                            workers: worker_search_lanes,
                            memo: worker_search_memo,
                            ..SearchConfig::default()
                        },
                        telemetry: wtel.clone(),
                        faults: worker_faults,
                        retry: worker_retry,
                        quarantine: worker_quarantine,
                        cad_workers: worker_lanes,
                        store: worker_store,
                        vm_tier: worker_tier,
                        overlay: worker_overlay,
                        ..SpecializeConfig::default()
                    },
                )
                .map(|report| (m, machine, report))
            }));
            let message = match result {
                Ok(r) => r,
                Err(payload) => Err(Error::Arch(format!(
                    "worker panicked: {}",
                    panic_message(payload.as_ref())
                ))),
            };
            drop(wspan);
            let _ = tx.send(message);
        });

        // Main loop: keep running the workload; swap when the worker is
        // done and the latency gate has passed. A degraded session stops
        // waiting and keeps executing the unmodified binary.
        let mut specialized: Option<(Module, Woolcano, SpecializeReport)> = None;
        let mut degraded: Option<DegradedReason> = None;

        for run in 1..total_runs {
            if specialized.is_none() && degraded.is_none() && run >= ready_after_runs {
                // Block for the worker the first time we are allowed to
                // swap; afterwards the specialized binary is in place.
                match wait_for_worker(&rx, options.watchdog) {
                    Ok(t) => {
                        specialized = Some(t);
                        tel.event("runtime.swap", &[("run", TelValue::U64(run as u64))]);
                    }
                    Err(reason) => degraded = Some(note_degraded(&tel, reason)),
                }
            }
            match &specialized {
                Some((m, machine, _)) => ws.adapted_run(m, machine, entry, args, &tel)?,
                None => ws.software_run(module, entry, args, &tel)?,
            }
        }
        // If the gate never opened (all runs before readiness), collect
        // the report now — unless the session already degraded.
        let report = match specialized {
            Some((_, _, report)) => Some(report),
            None if degraded.is_none() => match wait_for_worker(&rx, options.watchdog) {
                Ok((_, _, report)) => Some(report),
                Err(reason) => {
                    degraded = Some(note_degraded(&tel, reason));
                    None
                }
            },
            None => None,
        };

        Ok(AdaptiveOutcome {
            runs_before: ws.runs_before(),
            runs_after: ws.runs_after(),
            cycles_before: ws.avg_before(),
            cycles_after: ws.avg_after(),
            observed_speedup: ws.observed_speedup(),
            overhead: report.as_ref().map(|r| r.makespan).unwrap_or(SimTime::ZERO),
            report,
            degraded,
            results: ws.into_results(),
        })
    })?;

    root.field("runs_before", TelValue::U64(outcome.runs_before as u64));
    root.field("runs_after", TelValue::U64(outcome.runs_after as u64));
    if let Some(reason) = &outcome.degraded {
        root.field("degraded", TelValue::Str(format!("{reason:?}")));
    }
    root.set_sim_time(outcome.overhead);
    drop(root);
    Ok(outcome)
}

/// One segment of a phased workload schedule: `runs` executions of the
/// session entry point with these arguments. A storm schedule is a list
/// of segments — the argument change *is* the phase change (e.g. the
/// kernel selector of [`jitise_apps::build_phased`]'s `main`).
#[derive(Debug, Clone)]
pub struct PhaseSegment {
    /// Arguments for every run in this segment.
    pub args: Vec<Value>,
    /// Number of workload runs in this segment.
    pub runs: u32,
}

impl PhaseSegment {
    /// Convenience constructor.
    pub fn new(args: Vec<Value>, runs: u32) -> PhaseSegment {
        PhaseSegment { args, runs }
    }
}

/// Phase-detector, eviction, and re-specialization policy (DESIGN.md §14).
///
/// All thresholds operate on exact integer cycle counts from the
/// [`HotnessWindow`], so decisions are bit-identical for a fixed seed
/// regardless of host or CAD worker count.
#[derive(Debug, Clone, Copy)]
pub struct PhasePolicy {
    /// Runs retained by the hotness window. The detector only trusts a
    /// full window, so this is also the minimum lag before a phase change
    /// can be noticed.
    pub window: usize,
    /// An installed CI set whose share of windowed cycles falls below
    /// this is "cold" — it has stopped earning its slot.
    pub cold_share: f64,
    /// Consecutive cold runs required before declaring a phase change.
    /// This is the anti-thrash hysteresis: a workload that alternates its
    /// hot set faster than the window keeps the installed share warm and
    /// never accumulates a streak.
    pub hysteresis: u32,
    /// Runs after any swap (install or re-specialization) before the
    /// detector re-arms — the backoff that stops a detect/respec loop
    /// from oscillating.
    pub cooldown: u32,
    /// Re-specialization attempts allowed per session. Once exhausted,
    /// further phase changes are detected and evicted but not re-
    /// specialized (the session stays correct, merely cold).
    pub max_respecs: u32,
}

impl Default for PhasePolicy {
    fn default() -> Self {
        PhasePolicy {
            window: 4,
            cold_share: 0.10,
            hysteresis: 3,
            cooldown: 4,
            max_respecs: 4,
        }
    }
}

/// Options for [`run_storm`].
pub struct StormOptions {
    /// The underlying robustness options (watchdog, faults, retry,
    /// quarantine, CAD/search lanes, store).
    pub base: AdaptiveOptions,
    /// Phase-detection and eviction policy.
    pub policy: PhasePolicy,
    /// Latency gate for the *initial* background specialization, in
    /// workload runs (as in [`run_adaptive`]).
    pub ready_after_runs: u32,
    /// ICAP slot capacity of each Woolcano machine instantiated by the
    /// session.
    pub slots: usize,
}

impl Default for StormOptions {
    fn default() -> Self {
        StormOptions {
            base: AdaptiveOptions::default(),
            policy: PhasePolicy::default(),
            ready_after_runs: 2,
            slots: 512,
        }
    }
}

/// Outcome of a storm session ([`run_storm`]).
pub struct StormOutcome {
    /// Return value of every workload run, in order. Degraded, evicted,
    /// re-specialized or not: these must match a software-only session.
    pub results: Vec<Option<Value>>,
    /// Simulated cycles of every run, in order (the speedup trajectory
    /// across phase changes).
    pub run_cycles: Vec<u64>,
    /// Phase changes declared by the detector.
    pub phases_detected: u32,
    /// Bitstream-cache entries evicted as zero-benefit.
    pub evictions: u64,
    /// Successful re-specializations (each one is also a hot-swap).
    pub respecs: u32,
    /// Phase changes that wanted a re-specialization but were denied by
    /// the `max_respecs` budget.
    pub respecs_denied: u32,
    /// Hot-swaps performed (initial install + re-specializations).
    pub swaps: u32,
    /// Degraded transitions observed (worker faults, failed respecs).
    /// Unlike [`AdaptiveOutcome`], a storm session survives degradation
    /// and may re-specialize successfully later, so this is a count.
    pub degraded_events: u32,
    /// The most recent degradation, if any.
    pub degraded: Option<DegradedReason>,
    /// Every specialization report, in chronological order (initial
    /// install first, then one per successful re-specialization).
    pub reports: Vec<SpecializeReport>,
    /// Total simulated specialization overhead (initial makespan + every
    /// respec makespan). Lane-dependent, hence excluded from
    /// [`Self::fingerprint`].
    pub overhead: SimTime,
}

impl StormOutcome {
    /// Deterministic digest of every observable that must be bit-identical
    /// for a fixed seed across `cad_workers` / `search_workers` settings.
    /// Deliberately excludes `overhead` (makespans shrink with more lanes;
    /// see [`SpecializeReport::fingerprint`], which excludes makespan for
    /// the same reason).
    pub fn fingerprint(&self) -> String {
        format!(
            "phases={} evict={} respec={} denied={} swaps={} dev={} degraded={:?} cycles={:?} results={:?} reports=[{}]",
            self.phases_detected,
            self.evictions,
            self.respecs,
            self.respecs_denied,
            self.swaps,
            self.degraded_events,
            self.degraded,
            self.run_cycles,
            self.results,
            self.reports
                .iter()
                .map(|r| r.fingerprint())
                .collect::<Vec<_>>()
                .join(" | "),
        )
    }
}

/// Runs a phased workload schedule under the full storm machinery:
/// background initial specialization (as [`run_adaptive_with`]), a
/// windowed-hotness phase detector, benefit-scored eviction of cold CIs
/// from the bitstream cache (journaled to the store as
/// [`Record::Evict`] tombstones), and bounded synchronous
/// re-specialization from the window's aggregate profile.
///
/// Robustness contract: whatever the fault plan does — worker deaths and
/// stalls (burst-correlated or not), CAD failures, store crashes — the
/// session terminates with workload results bit-identical to a
/// software-only run. Degradation is survivable: a respec denied by a
/// fault burst can succeed at the next phase change.
pub fn run_storm(
    ctx: &EvalContext,
    cache: &BitstreamCache,
    module: &Module,
    entry: &str,
    schedule: &[PhaseSegment],
    options: &StormOptions,
) -> Result<StormOutcome> {
    assert!(!schedule.is_empty(), "storm schedule must not be empty");
    let total_runs: u32 = schedule.iter().map(|s| s.runs).sum();
    assert!(total_runs >= 2, "need at least profiling + one more run");

    // Segment index of every run, precomputed so the loop body is a
    // plain indexed lookup.
    let mut seg_of: Vec<usize> = Vec::with_capacity(total_runs as usize);
    for (i, seg) in schedule.iter().enumerate() {
        for _ in 0..seg.runs {
            seg_of.push(i);
        }
    }

    let mut root = ctx.telemetry.span("runtime.storm");
    let tel = ctx.telemetry.under(&root);

    // Warm restart: exactly as in [`run_adaptive_with`]. Because evictions
    // are journaled, the recovered state is the *post-eviction* cache — a
    // restart mid-storm does not resurrect CIs the session already retired.
    if let Some(store) = &options.base.store {
        let state = store.state();
        if !state.is_empty() {
            let absorbed = cache.absorb_store(&state);
            let mut quarantined = 0u64;
            for (sig, reason) in &state.quarantine {
                if options.base.quarantine.insert(*sig, reason) {
                    quarantined += 1;
                }
            }
            tel.add(names::STORE_WARM_RESTARTS, 1);
            tel.event(
                "runtime.warm_restart",
                &[
                    ("entries_absorbed", TelValue::U64(absorbed as u64)),
                    ("quarantine_absorbed", TelValue::U64(quarantined)),
                ],
            );
        }
    }

    // Pre-decoded forms (fast tier only): the base module is decoded once
    // for the whole storm; each installed binary is decoded at its swap
    // and the decode is dropped when a re-specialization replaces it.
    let tier = options.base.vm_tier;
    let mut base_pd: Option<Arc<PredecodedModule>> = None;
    let mut spec_pd: Option<Arc<PredecodedModule>> = None;

    // Profiling run (first segment's arguments).
    let mut vm = tiered_vm(module, tier, &mut base_pd);
    vm.set_telemetry(tel.clone());
    let first = vm.run(entry, &schedule[seg_of[0]].args)?;
    let profile: Profile = vm.take_profile();
    let first_cycles = profile.total_cycles();

    let worker_key = {
        let mut h = SigHasher::new();
        h.write_str("runtime.worker");
        h.write_str(entry);
        h.finish()
    };
    let winj = options.base.faults.scope(worker_key, 1);
    let cancel = Arc::new(AtomicBool::new(false));
    let (tx, rx) = sync_channel::<Result<(Module, Woolcano, SpecializeReport)>>(1);

    let outcome = std::thread::scope(|scope| -> Result<StormOutcome> {
        let _release_worker = CancelGuard(Arc::clone(&cancel));

        // Initial background specialization — the same worker machinery
        // as [`run_adaptive_with`], seeded from the profiling run.
        let worker_module = module.clone();
        let worker_profile = profile.clone();
        let worker_tel = tel.clone();
        let worker_cancel = Arc::clone(&cancel);
        let worker_inj = winj.clone();
        let worker_faults = options.base.faults.clone();
        let worker_retry = options.base.retry;
        let worker_lanes = options.base.cad_workers;
        let worker_search_lanes = options.base.search_workers;
        let worker_search_memo = options.base.search_memo.clone();
        let worker_quarantine = Arc::clone(&options.base.quarantine);
        let worker_store = options.base.store.clone();
        let worker_tier = tier;
        let worker_overlay = options.base.overlay.clone();
        let worker_slots = options.slots;
        let watchdog = options.base.watchdog;
        scope.spawn(move || {
            let wspan = worker_tel.span("runtime.worker");
            let wtel = worker_tel.under(&wspan);
            if injected_worker_fault(&wtel, &worker_inj, FaultSite::WorkerDeath) {
                return;
            }
            if injected_worker_fault(&wtel, &worker_inj, FaultSite::WorkerStall) {
                let cap = watchdog.saturating_mul(20).max(Duration::from_millis(100));
                let start = std::time::Instant::now();
                while !worker_cancel.load(Ordering::Relaxed) && start.elapsed() < cap {
                    std::thread::sleep(Duration::from_millis(2));
                }
                return;
            }
            let result = catch_unwind(AssertUnwindSafe(|| {
                let mut m = worker_module;
                let machine = Woolcano::with_telemetry(worker_slots, wtel.clone());
                specialize(
                    &mut m,
                    &worker_profile,
                    &machine,
                    &ctx.estimator,
                    &ctx.db,
                    &ctx.netlists,
                    cache,
                    &SpecializeConfig {
                        search: SearchConfig {
                            workers: worker_search_lanes,
                            memo: worker_search_memo,
                            ..SearchConfig::default()
                        },
                        telemetry: wtel.clone(),
                        faults: worker_faults,
                        retry: worker_retry,
                        quarantine: worker_quarantine,
                        cad_workers: worker_lanes,
                        store: worker_store,
                        vm_tier: worker_tier,
                        overlay: worker_overlay,
                        ..SpecializeConfig::default()
                    },
                )
                .map(|report| (m, machine, report))
            }));
            let message = match result {
                Ok(r) => r,
                Err(payload) => Err(Error::Arch(format!(
                    "worker panicked: {}",
                    panic_message(payload.as_ref())
                ))),
            };
            drop(wspan);
            let _ = tx.send(message);
        });

        // Main loop state.
        let mut specialized: Option<(Module, Woolcano)> = None;
        let mut current_report: Option<SpecializeReport> = None;
        // (signature, block, saved_per_exec) of every installed CI — the
        // set the detector and the eviction scorer watch.
        let mut installed: Vec<(u64, BlockKey, u64)> = Vec::new();
        let mut window = HotnessWindow::new(options.policy.window);
        window.push(profile);
        let mut reports: Vec<SpecializeReport> = Vec::new();
        let mut results: Vec<Option<Value>> = Vec::with_capacity(total_runs as usize);
        results.push(first.ret);
        let mut run_cycles: Vec<u64> = Vec::with_capacity(total_runs as usize);
        run_cycles.push(first_cycles);
        let mut degraded: Option<DegradedReason> = None;
        let mut worker_collected = false;
        let mut overhead = SimTime::ZERO;
        let mut phases_detected = 0u32;
        let mut evictions = 0u64;
        let mut respecs = 0u32;
        let mut respecs_denied = 0u32;
        let mut respec_attempts = 0u32;
        let mut degraded_events = 0u32;
        let mut swaps = 0u32;
        let mut cold_streak = 0u32;
        let mut cooldown_until = 0u32;

        for run in 1..total_runs {
            let args = &schedule[seg_of[run as usize]].args;

            // Initial install gate (one-shot, as in run_adaptive).
            if !worker_collected && degraded.is_none() && run >= options.ready_after_runs {
                worker_collected = true;
                match wait_for_worker(&rx, options.base.watchdog) {
                    Ok((m, machine, report)) => {
                        installed = report
                            .candidates
                            .iter()
                            .map(|c| (c.signature, c.key, c.saved_per_exec))
                            .collect();
                        overhead += report.makespan;
                        current_report = Some(report);
                        spec_pd = None;
                        specialized = Some((m, machine));
                        swaps += 1;
                        window.clear();
                        cold_streak = 0;
                        cooldown_until = run + options.policy.cooldown;
                        tel.event("runtime.swap", &[("run", TelValue::U64(run as u64))]);
                    }
                    Err(reason) => {
                        degraded_events += 1;
                        degraded = Some(note_degraded(&tel, reason));
                    }
                }
            }

            // Execute the run on whatever binary is current.
            let (ret, cycles, run_profile) = match &specialized {
                Some((m, machine)) => {
                    let mut vm = tiered_vm(m, tier, &mut spec_pd);
                    vm.set_custom_handler(machine);
                    vm.set_telemetry(tel.clone());
                    let out = vm.run(entry, args)?;
                    let p = vm.take_profile();
                    (out.ret, out.cycles, p)
                }
                None => {
                    let mut vm = tiered_vm(module, tier, &mut base_pd);
                    vm.set_telemetry(tel.clone());
                    let out = vm.run(entry, args)?;
                    let p = vm.take_profile();
                    (out.ret, out.cycles, p)
                }
            };
            results.push(ret);
            run_cycles.push(cycles);
            window.push(run_profile);

            // Phase detector: only with something installed, a full
            // window, and past the post-swap cooldown.
            if specialized.is_none() || run < cooldown_until || !window.is_full() {
                continue;
            }
            let keys: Vec<BlockKey> = installed.iter().map(|&(_, k, _)| k).collect();
            let share = window.cycles_share(&keys);
            if share < options.policy.cold_share {
                cold_streak += 1;
            } else {
                cold_streak = 0;
            }
            if cold_streak < options.policy.hysteresis {
                continue;
            }

            // Phase change declared.
            cold_streak = 0;
            phases_detected += 1;
            tel.add(names::RUNTIME_PHASE_DETECTED, 1);
            tel.event(
                "runtime.phase_change",
                &[
                    ("run", TelValue::U64(run as u64)),
                    ("share_permille", TelValue::U64((share * 1000.0) as u64)),
                ],
            );

            // Benefit-scored eviction: a CI whose windowed benefit
            // (executions × saved cycles per execution) is zero has
            // stopped earning its cache slot. Journal each eviction so a
            // crash-restart rehydrates the post-eviction cache.
            for &(sig, key, saved) in &installed {
                let benefit = window.count_of(key) * saved;
                if benefit == 0 && cache.remove(sig) {
                    evictions += 1;
                    tel.add(names::RUNTIME_EVICTIONS, 1);
                    tel.event("runtime.evict", &[("signature", TelValue::U64(sig))]);
                    if let Some(store) = &options.base.store {
                        // A dead store must not kill the session; the
                        // append failure is already counted by the store.
                        let _ = store.append(Record::Evict { signature: sig });
                    }
                }
            }

            // Bounded re-specialization.
            if respec_attempts >= options.policy.max_respecs {
                respecs_denied += 1;
                tel.event(
                    "runtime.respec_denied",
                    &[("run", TelValue::U64(run as u64))],
                );
                cooldown_until = run + options.policy.cooldown;
                continue;
            }
            respec_attempts += 1;
            // Worker faults apply to respecs too, epoch-keyed by run so
            // burst plans can concentrate them into storm windows. A
            // firing degrades this respec (the old binary stays — cold
            // but correct) without blocking a later retry.
            let rinj = options
                .base
                .faults
                .scope(worker_key, 1)
                .at_epoch(run as u64);
            if injected_worker_fault(&tel, &rinj, FaultSite::WorkerDeath) {
                degraded_events += 1;
                degraded = Some(note_degraded(&tel, DegradedReason::WorkerDisconnected));
                cooldown_until = run + options.policy.cooldown;
                continue;
            }
            if injected_worker_fault(&tel, &rinj, FaultSite::WorkerStall) {
                degraded_events += 1;
                degraded = Some(note_degraded(&tel, DegradedReason::WorkerStalled));
                cooldown_until = run + options.policy.cooldown;
                continue;
            }
            // Synchronous re-specialization from the window's aggregate —
            // the workload's *current* behavior, not its history. Runs on
            // the main thread for determinism; its simulated makespan is
            // the price, accounted in `overhead`.
            let rspan = tel.span("runtime.respec");
            let rtel = tel.under(&rspan);
            let mut m2 = module.clone();
            let machine2 = Woolcano::with_telemetry(options.slots, rtel.clone());
            let agg = window.aggregate();
            let spec = catch_unwind(AssertUnwindSafe(|| {
                specialize(
                    &mut m2,
                    &agg,
                    &machine2,
                    &ctx.estimator,
                    &ctx.db,
                    &ctx.netlists,
                    cache,
                    &SpecializeConfig {
                        search: SearchConfig {
                            workers: options.base.search_workers,
                            memo: options.base.search_memo.clone(),
                            ..SearchConfig::default()
                        },
                        telemetry: rtel.clone(),
                        faults: options.base.faults.at_epoch(run as u64),
                        retry: options.base.retry,
                        quarantine: Arc::clone(&options.base.quarantine),
                        cad_workers: options.base.cad_workers,
                        store: options.base.store.clone(),
                        vm_tier: tier,
                        overlay: options.base.overlay.clone(),
                        ..SpecializeConfig::default()
                    },
                )
            }));
            drop(rspan);
            match spec {
                Ok(Ok(report)) => {
                    // Retire the old machine: every occupied slot is an
                    // ICAP-level eviction.
                    if let Some((_, old_machine)) = &specialized {
                        let (_, _, occupied, _) = old_machine.slot_stats();
                        tel.add(names::ICAP_EVICTIONS, occupied as u64);
                    }
                    installed = report
                        .candidates
                        .iter()
                        .map(|c| (c.signature, c.key, c.saved_per_exec))
                        .collect();
                    overhead += report.makespan;
                    if let Some(prev) = current_report.replace(report) {
                        reports.push(prev);
                    }
                    spec_pd = None;
                    specialized = Some((m2, machine2));
                    respecs += 1;
                    swaps += 1;
                    tel.add(names::RUNTIME_RESPECS, 1);
                    tel.event("runtime.respec", &[("run", TelValue::U64(run as u64))]);
                    window.clear();
                }
                Ok(Err(e)) => {
                    degraded_events += 1;
                    degraded = Some(note_degraded(
                        &tel,
                        DegradedReason::SpecializeFailed(e.to_string()),
                    ));
                }
                Err(payload) => {
                    degraded_events += 1;
                    degraded = Some(note_degraded(
                        &tel,
                        DegradedReason::SpecializeFailed(format!(
                            "respec panicked: {}",
                            panic_message(payload.as_ref())
                        )),
                    ));
                }
            }
            cold_streak = 0;
            cooldown_until = run + options.policy.cooldown;
        }

        // Collect the initial worker if the gate never opened.
        if !worker_collected && degraded.is_none() {
            match wait_for_worker(&rx, options.base.watchdog) {
                Ok((_, _, report)) => {
                    overhead += report.makespan;
                    reports.push(report);
                }
                Err(reason) => {
                    degraded_events += 1;
                    degraded = Some(note_degraded(&tel, reason));
                }
            }
        }
        if let Some(r) = current_report.take() {
            reports.push(r);
        }

        Ok(StormOutcome {
            results,
            run_cycles,
            phases_detected,
            evictions,
            respecs,
            respecs_denied,
            swaps,
            degraded_events,
            degraded,
            reports,
            overhead,
        })
    })?;

    root.field("phases", TelValue::U64(outcome.phases_detected as u64));
    root.field("evictions", TelValue::U64(outcome.evictions));
    root.field("respecs", TelValue::U64(outcome.respecs as u64));
    root.field("swaps", TelValue::U64(outcome.swaps as u64));
    if let Some(reason) = &outcome.degraded {
        root.field("degraded", TelValue::Str(format!("{reason:?}")));
    }
    root.set_sim_time(outcome.overhead);
    drop(root);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfix::hot_module;
    use jitise_faults::FaultPlan;

    #[test]
    fn adapts_and_speeds_up() {
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let m = hot_module();
        let out = run_adaptive(&ctx, &cache, &m, "main", &[Value::I(3_000)], 6, 2).unwrap();
        assert!(out.runs_after >= 1, "must run specialized at least once");
        assert!(
            out.observed_speedup > 1.0,
            "specialized runs must be faster: {}",
            out.observed_speedup
        );
        assert!(out.overhead > SimTime::ZERO);
        assert!(out.degraded.is_none());
        assert!(!out.report.as_ref().unwrap().candidates.is_empty());
        assert_eq!(out.results.len(), 6);
        assert!(out.results.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn late_gate_still_returns_report() {
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let m = hot_module();
        // Gate beyond total runs: everything executes unspecialized, but
        // the report must still arrive.
        let out = run_adaptive(&ctx, &cache, &m, "main", &[Value::I(500)], 3, 99).unwrap();
        assert_eq!(out.runs_after, 0);
        assert_eq!(out.runs_before, 3);
        assert!((out.observed_speedup - 1.0).abs() < 1e-9);
        assert!(out.degraded.is_none());
        assert!(!out.report.as_ref().unwrap().candidates.is_empty());
    }

    #[test]
    fn second_session_hits_cache() {
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let m = hot_module();
        let first = run_adaptive(&ctx, &cache, &m, "main", &[Value::I(1_000)], 4, 2).unwrap();
        assert_eq!(first.report.as_ref().unwrap().cache_hits, 0);
        let second = run_adaptive(&ctx, &cache, &m, "main", &[Value::I(1_000)], 4, 2).unwrap();
        let report = second.report.as_ref().unwrap();
        assert_eq!(
            report.cache_hits,
            report.candidates.len(),
            "second session must be served from the bitstream cache"
        );
        assert_eq!(second.overhead, SimTime::ZERO);
    }

    fn degraded_options(site: FaultSite, watchdog_ms: u64) -> AdaptiveOptions {
        AdaptiveOptions {
            watchdog: Duration::from_millis(watchdog_ms),
            faults: FaultInjector::from_plan(FaultPlan::none(23).with_rate(site, 1.0)),
            ..AdaptiveOptions::default()
        }
    }

    fn software_results(m: &Module, n: i64, runs: usize) -> Vec<Option<Value>> {
        let mut vm = Interpreter::new(m);
        let want = vm.run("main", &[Value::I(n)]).unwrap().ret;
        vec![want; runs]
    }

    #[test]
    fn dead_worker_degrades_to_software_only() {
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let m = hot_module();
        let opts = degraded_options(FaultSite::WorkerDeath, 2_000);
        let out =
            run_adaptive_with(&ctx, &cache, &m, "main", &[Value::I(800)], 4, 2, &opts).unwrap();
        assert_eq!(out.degraded, Some(DegradedReason::WorkerDisconnected));
        assert!(out.report.is_none());
        assert_eq!(out.runs_after, 0);
        assert_eq!(out.runs_before, 4);
        assert!((out.observed_speedup - 1.0).abs() < 1e-9);
        assert_eq!(out.overhead, SimTime::ZERO);
        assert_eq!(out.results, software_results(&m, 800, 4));
    }

    #[test]
    fn stalled_worker_is_abandoned_by_the_watchdog() {
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let m = hot_module();
        let opts = degraded_options(FaultSite::WorkerStall, 200);
        let start = std::time::Instant::now();
        let out =
            run_adaptive_with(&ctx, &cache, &m, "main", &[Value::I(800)], 4, 2, &opts).unwrap();
        assert_eq!(out.degraded, Some(DegradedReason::WorkerStalled));
        assert!(out.report.is_none());
        assert_eq!(out.runs_before, 4);
        assert_eq!(out.results, software_results(&m, 800, 4));
        // One watchdog expiry plus the joined (cancelled) worker — never
        // the stall cap.
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn warm_restart_serves_recovered_entries_as_cache_hits() {
        use jitise_store::{Store, StoreOptions, TempDir};
        let tmp = TempDir::new("runtime-warm");
        let m = hot_module();

        // Session 1: fresh process, store-backed. Everything is a miss and
        // gets journaled.
        {
            let ctx = EvalContext::new();
            let cache = BitstreamCache::new();
            let store = Arc::new(Store::open_with(tmp.path(), StoreOptions::default()).unwrap());
            let opts = AdaptiveOptions {
                store: Some(Arc::clone(&store)),
                ..AdaptiveOptions::default()
            };
            let out = run_adaptive_with(&ctx, &cache, &m, "main", &[Value::I(1_000)], 4, 2, &opts)
                .unwrap();
            let report = out.report.as_ref().unwrap();
            assert_eq!(report.cache_hits, 0);
            assert!(!report.candidates.is_empty());
            assert!(
                !store.state().entries.is_empty(),
                "commits must be journaled"
            );
        }

        // Session 2: simulated process restart — fresh cache, fresh store
        // handle recovered from disk. Every candidate must be a cache hit
        // and the adaptation overhead must vanish.
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let store = Arc::new(Store::open_with(tmp.path(), StoreOptions::default()).unwrap());
        assert!(!store.recovery().wal_stale);
        let opts = AdaptiveOptions {
            store: Some(Arc::clone(&store)),
            ..AdaptiveOptions::default()
        };
        let out =
            run_adaptive_with(&ctx, &cache, &m, "main", &[Value::I(1_000)], 4, 2, &opts).unwrap();
        let report = out.report.as_ref().unwrap();
        assert_eq!(
            report.cache_hits,
            report.candidates.len(),
            "warm restart must serve every candidate from the recovered cache"
        );
        assert_eq!(out.overhead, SimTime::ZERO);
    }

    #[test]
    fn warm_restart_matches_session_seeded_with_recovered_cache() {
        use jitise_store::{Store, StoreOptions, TempDir};
        let tmp = TempDir::new("runtime-warm-ident");
        let m = hot_module();
        {
            let ctx = EvalContext::new();
            let cache = BitstreamCache::new();
            let store = Arc::new(Store::open_with(tmp.path(), StoreOptions::default()).unwrap());
            let opts = AdaptiveOptions {
                store: Some(store),
                ..AdaptiveOptions::default()
            };
            run_adaptive_with(&ctx, &cache, &m, "main", &[Value::I(700)], 4, 2, &opts).unwrap();
        }
        let store = Arc::new(Store::open_with(tmp.path(), StoreOptions::default()).unwrap());

        // Reference: a storeless session whose cache was seeded by hand
        // from the recovered state.
        let ctx = EvalContext::new();
        let seeded = BitstreamCache::new();
        seeded.absorb_store(&store.state());
        let want = run_adaptive(&ctx, &seeded, &m, "main", &[Value::I(700)], 4, 2).unwrap();

        // Warm restart through the store must be observationally identical.
        let ctx2 = EvalContext::new();
        let cache = BitstreamCache::new();
        let opts = AdaptiveOptions {
            store: Some(store),
            ..AdaptiveOptions::default()
        };
        let got =
            run_adaptive_with(&ctx2, &cache, &m, "main", &[Value::I(700)], 4, 2, &opts).unwrap();
        assert_eq!(
            got.report.as_ref().unwrap().fingerprint(),
            want.report.as_ref().unwrap().fingerprint(),
            "warm restart must be bit-identical to a hand-seeded session"
        );
        assert_eq!(got.fingerprint(), want.fingerprint());
    }

    fn overlay_lib(ctx: &EvalContext) -> Option<Arc<OverlayLibrary>> {
        Some(Arc::new(OverlayLibrary::from_db(&ctx.db)))
    }

    #[test]
    fn adaptive_overlay_session_installs_fast_then_upgrades() {
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let m = hot_module();
        let opts = AdaptiveOptions {
            overlay: overlay_lib(&ctx),
            ..AdaptiveOptions::default()
        };
        let out =
            run_adaptive_with(&ctx, &cache, &m, "main", &[Value::I(3_000)], 6, 2, &opts).unwrap();
        assert!(out.degraded.is_none());
        let report = out.report.as_ref().unwrap();
        assert!(!report.candidates.is_empty());
        assert_eq!(report.overlay_installs, report.candidates.len());
        assert_eq!(report.upgrades, report.candidates.len());
        assert!(report
            .candidates
            .iter()
            .all(|c| c.tier == jitise_cad::InstallTier::Full && c.upgraded));
        assert!(out.observed_speedup > 1.0);

        // Two-tier or not, the workload's answers never change.
        let ctx2 = EvalContext::new();
        let cache2 = BitstreamCache::new();
        let base = run_adaptive(&ctx2, &cache2, &m, "main", &[Value::I(3_000)], 6, 2).unwrap();
        assert_eq!(out.results, base.results);
    }

    #[test]
    fn warm_restart_rehydrates_overlay_tier_and_upgrades() {
        use jitise_store::{Store, StoreOptions, TempDir};
        let tmp = TempDir::new("runtime-warm-overlay");
        let m = hot_module();

        // Session 1: full generation is persistently dead, so every
        // candidate is served by the overlay and journaled at the overlay
        // tier.
        {
            let ctx = EvalContext::new();
            let cache = BitstreamCache::new();
            let store = Arc::new(Store::open_with(tmp.path(), StoreOptions::default()).unwrap());
            let mut plan = FaultPlan::none(29).with_rate(FaultSite::CadMap, 1.0);
            plan.persistent_frac = 1.0;
            let opts = AdaptiveOptions {
                store: Some(Arc::clone(&store)),
                faults: FaultInjector::from_plan(plan),
                overlay: overlay_lib(&ctx),
                ..AdaptiveOptions::default()
            };
            let out = run_adaptive_with(&ctx, &cache, &m, "main", &[Value::I(1_000)], 4, 2, &opts)
                .unwrap();
            assert!(out.degraded.is_none(), "the overlay must carry the session");
            let report = out.report.as_ref().unwrap();
            assert!(!report.candidates.is_empty());
            assert!(report
                .candidates
                .iter()
                .all(|c| c.tier == jitise_cad::InstallTier::Overlay));
            let state = store.state();
            assert!(!state.entries.is_empty(), "overlay commits must journal");
            assert!(
                state
                    .entries
                    .values()
                    .all(|r| r.tier == jitise_cad::InstallTier::Overlay),
                "the journal must record the overlay tier"
            );
        }

        // Session 2: simulated restart — fresh cache, store recovered from
        // disk, faults gone. The rehydrated overlay entries serve the fast
        // path with zero re-assembly and every candidate upgrades to Full.
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let store = Arc::new(Store::open_with(tmp.path(), StoreOptions::default()).unwrap());
        let opts = AdaptiveOptions {
            store: Some(Arc::clone(&store)),
            overlay: overlay_lib(&ctx),
            ..AdaptiveOptions::default()
        };
        let out =
            run_adaptive_with(&ctx, &cache, &m, "main", &[Value::I(1_000)], 4, 2, &opts).unwrap();
        let report = out.report.as_ref().unwrap();
        assert_eq!(report.overlay_installs, report.candidates.len());
        assert_eq!(report.upgrades, report.candidates.len());
        assert!(report
            .candidates
            .iter()
            .all(|c| c.tier == jitise_cad::InstallTier::Full));
        assert_eq!(
            report.overlay_time,
            SimTime::ZERO,
            "rehydrated entries need no re-assembly"
        );
        // The journal now carries the full-tier artifact for session 3.
        assert!(store
            .state()
            .entries
            .values()
            .all(|r| r.tier == jitise_cad::InstallTier::Full));
    }

    #[test]
    fn storeless_session_is_byte_identical_to_default() {
        let m = hot_module();
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let base = run_adaptive(&ctx, &cache, &m, "main", &[Value::I(900)], 4, 2).unwrap();

        let ctx2 = EvalContext::new();
        let cache2 = BitstreamCache::new();
        let opts = AdaptiveOptions {
            store: None,
            ..AdaptiveOptions::default()
        };
        let out =
            run_adaptive_with(&ctx2, &cache2, &m, "main", &[Value::I(900)], 4, 2, &opts).unwrap();
        assert_eq!(
            out.fingerprint(),
            base.fingerprint(),
            "store: None must leave the session untouched"
        );
    }

    #[test]
    fn degraded_session_matches_healthy_results() {
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let m = hot_module();
        let healthy = run_adaptive(&ctx, &cache, &m, "main", &[Value::I(600)], 4, 2).unwrap();
        let cache2 = BitstreamCache::new();
        let opts = degraded_options(FaultSite::WorkerDeath, 2_000);
        let degraded =
            run_adaptive_with(&ctx, &cache2, &m, "main", &[Value::I(600)], 4, 2, &opts).unwrap();
        assert_eq!(
            healthy.results, degraded.results,
            "degradation must never change workload answers"
        );
    }

    // ---- storm runtime ----

    use jitise_apps::{build_phased, PhasedSpec};

    fn storm_module(near_duplicate: bool) -> Module {
        build_phased(&PhasedSpec {
            kernels: 2,
            hot_iters: 120,
            near_duplicate,
            ..PhasedSpec::default()
        })
    }

    fn seg(sel: i64, runs: u32) -> PhaseSegment {
        PhaseSegment::new(vec![Value::I(sel), Value::I(2)], runs)
    }

    fn storm_options() -> StormOptions {
        StormOptions {
            policy: PhasePolicy {
                window: 2,
                cold_share: 0.2,
                hysteresis: 2,
                cooldown: 2,
                max_respecs: 2,
            },
            ready_after_runs: 2,
            ..StormOptions::default()
        }
    }

    fn software_schedule_results(m: &Module, schedule: &[PhaseSegment]) -> Vec<Option<Value>> {
        let mut out = Vec::new();
        for s in schedule {
            for _ in 0..s.runs {
                let mut vm = Interpreter::new(m);
                out.push(vm.run("main", &s.args).unwrap().ret);
            }
        }
        out
    }

    #[test]
    fn storm_detects_phase_change_evicts_and_respecializes() {
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let m = storm_module(false);
        let schedule = [seg(0, 8), seg(1, 12)];
        let out = run_storm(&ctx, &cache, &m, "main", &schedule, &storm_options()).unwrap();

        assert!(out.degraded.is_none(), "healthy storm must not degrade");
        assert!(out.phases_detected >= 1, "rotation must be detected");
        assert!(out.evictions >= 1, "cold CIs must be evicted");
        assert!(out.respecs >= 1, "a re-specialization must land");
        assert_eq!(out.swaps, 1 + out.respecs, "initial install + respecs");
        assert_eq!(out.reports.len() as u32, 1 + out.respecs);
        assert_eq!(out.run_cycles.len(), 20);

        // The workload's answers never change.
        assert_eq!(out.results, software_schedule_results(&m, &schedule));

        // Eviction pays off: after the respec, the new phase runs faster
        // than it did on the stale binary right after the phase change.
        let stale = out.run_cycles[8]; // first phase-B run, stale CIs
        let steady = *out.run_cycles.last().unwrap();
        assert!(
            steady < stale,
            "post-respec steady state ({steady}) must beat the stale binary ({stale})"
        );
    }

    #[test]
    fn storm_fingerprint_invariant_across_cad_workers() {
        let m = storm_module(false);
        let schedule = [seg(0, 6), seg(1, 8)];
        let fp = |lanes: usize| {
            let ctx = EvalContext::new();
            let cache = BitstreamCache::new();
            let opts = StormOptions {
                base: AdaptiveOptions {
                    cad_workers: lanes,
                    search_workers: lanes.min(2),
                    ..AdaptiveOptions::default()
                },
                ..storm_options()
            };
            run_storm(&ctx, &cache, &m, "main", &schedule, &opts)
                .unwrap()
                .fingerprint()
        };
        let base = fp(1);
        assert_eq!(base, fp(4), "cad_workers must never change observables");
    }

    #[test]
    fn storm_fingerprint_invariant_across_cad_workers_with_overlay() {
        let m = storm_module(false);
        let schedule = [seg(0, 6), seg(1, 8)];
        let fp = |lanes: usize| {
            let ctx = EvalContext::new();
            let cache = BitstreamCache::new();
            let opts = StormOptions {
                base: AdaptiveOptions {
                    cad_workers: lanes,
                    overlay: overlay_lib(&ctx),
                    ..AdaptiveOptions::default()
                },
                ..storm_options()
            };
            let out = run_storm(&ctx, &cache, &m, "main", &schedule, &opts).unwrap();
            assert!(
                out.reports.iter().any(|r| r.overlay_installs > 0),
                "the two-tier path must actually engage"
            );
            out.fingerprint()
        };
        let base = fp(1);
        assert_eq!(base, fp(2), "two lanes must not change observables");
        assert_eq!(base, fp(8), "eight lanes must not change observables");
    }

    #[test]
    fn storm_fingerprint_invariant_across_vm_tiers() {
        let m = storm_module(false);
        let schedule = [seg(0, 6), seg(1, 8)];
        let fp = |tier: VmTier| {
            let ctx = EvalContext::new();
            let cache = BitstreamCache::new();
            let opts = StormOptions {
                base: AdaptiveOptions {
                    vm_tier: tier,
                    ..AdaptiveOptions::default()
                },
                ..storm_options()
            };
            run_storm(&ctx, &cache, &m, "main", &schedule, &opts)
                .unwrap()
                .fingerprint()
        };
        assert_eq!(
            fp(VmTier::Interp),
            fp(VmTier::Fast),
            "the fast tier must never change observables"
        );
    }

    #[test]
    fn adaptive_session_identical_on_fast_tier() {
        let m = hot_module();
        let run = |tier: VmTier| {
            let ctx = EvalContext::new();
            let cache = BitstreamCache::new();
            let opts = AdaptiveOptions {
                vm_tier: tier,
                ..AdaptiveOptions::default()
            };
            run_adaptive_with(&ctx, &cache, &m, "main", &[Value::I(3_000)], 6, 2, &opts).unwrap()
        };
        let a = run(VmTier::Interp);
        let b = run(VmTier::Fast);
        assert_eq!(a.results, b.results);
        assert_eq!(a.cycles_before, b.cycles_before);
        assert_eq!(a.cycles_after, b.cycles_after);
        assert_eq!(
            a.report.as_ref().unwrap().fingerprint(),
            b.report.as_ref().unwrap().fingerprint()
        );
        assert!(b.runs_after >= 1, "fast tier must still hot-swap");
    }

    #[test]
    fn thrash_population_does_not_oscillate_the_installer() {
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let m = storm_module(true);
        // Near-duplicate kernels alternating every run: faster than the
        // window, so the installed share stays warm and hysteresis holds.
        let schedule: Vec<PhaseSegment> = (0..16).map(|i| seg(i % 2, 1)).collect();
        let opts = StormOptions {
            policy: PhasePolicy {
                window: 4,
                cold_share: 0.2,
                hysteresis: 2,
                cooldown: 2,
                max_respecs: 4,
            },
            ready_after_runs: 2,
            ..StormOptions::default()
        };
        let out = run_storm(&ctx, &cache, &m, "main", &schedule, &opts).unwrap();
        assert!(out.degraded.is_none());
        assert_eq!(out.swaps, 1, "thrash must not oscillate the installer");
        assert_eq!(out.phases_detected, 0);
        assert_eq!(out.respecs, 0);
        assert_eq!(out.evictions, 0);
        assert_eq!(out.results, software_schedule_results(&m, &schedule));
    }

    #[test]
    fn respec_budget_bounds_the_installer() {
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let m = storm_module(false);
        // Two real phase changes but a budget of zero: both are detected
        // (and evicted), neither re-specializes.
        let schedule = [seg(0, 8), seg(1, 8)];
        let opts = StormOptions {
            policy: PhasePolicy {
                max_respecs: 0,
                ..storm_options().policy
            },
            ..storm_options()
        };
        let out = run_storm(&ctx, &cache, &m, "main", &schedule, &opts).unwrap();
        assert!(out.phases_detected >= 1);
        assert_eq!(out.respecs, 0);
        assert!(out.respecs_denied >= 1);
        assert_eq!(out.swaps, 1);
        assert_eq!(out.results, software_schedule_results(&m, &schedule));
    }

    #[test]
    fn storm_journals_evictions_so_restart_sees_post_eviction_cache() {
        use jitise_store::{Store, StoreOptions, TempDir};
        let tmp = TempDir::new("storm-evict-journal");
        let m = storm_module(false);
        let schedule = [seg(0, 8), seg(1, 12)];

        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let store = Arc::new(Store::open_with(tmp.path(), StoreOptions::default()).unwrap());
        let opts = StormOptions {
            base: AdaptiveOptions {
                store: Some(Arc::clone(&store)),
                ..AdaptiveOptions::default()
            },
            ..storm_options()
        };
        let out = run_storm(&ctx, &cache, &m, "main", &schedule, &opts).unwrap();
        assert!(out.evictions >= 1, "need at least one journaled eviction");
        drop(store);

        // A fresh process recovering the store must reconstruct exactly
        // the live cache: evicted entries gone, respec entries present.
        let reopened = Store::open_with(tmp.path(), StoreOptions::default()).unwrap();
        let restored = BitstreamCache::new();
        restored.absorb_store(&reopened.state());
        assert_eq!(
            restored.to_bytes(),
            cache.to_bytes(),
            "recovered cache must equal the post-eviction live cache"
        );
    }

    #[test]
    fn respec_denied_by_worker_fault_keeps_session_correct() {
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let m = storm_module(false);
        let schedule = [seg(0, 8), seg(1, 12)];
        // Worker deaths fire only inside a burst window positioned so the
        // initial worker (epoch 0) is calm but every respec epoch (run
        // numbers ≥ 10, where phase-B detection lands) is hot:
        // pos(epoch) = (epoch + 190) % 200, window = [0, 150).
        let plan = FaultPlan::none(190)
            .with_rate(FaultSite::WorkerDeath, 1.0)
            .with_bursts(jitise_faults::Bursts {
                period: 200,
                width: 150,
                boost: 1.0,
                calm: 0.0,
            });
        let opts = StormOptions {
            base: AdaptiveOptions {
                faults: FaultInjector::from_plan(plan),
                ..AdaptiveOptions::default()
            },
            ..storm_options()
        };
        let out = run_storm(&ctx, &cache, &m, "main", &schedule, &opts).unwrap();
        assert!(out.swaps >= 1, "initial install is outside the burst");
        assert!(out.phases_detected >= 1, "rotation still detected");
        assert_eq!(out.respecs, 0, "every respec attempt dies in the burst");
        assert_eq!(out.degraded, Some(DegradedReason::WorkerDisconnected));
        assert!(out.degraded_events >= 1);
        // Degraded mid-storm or not, answers stay bit-identical.
        assert_eq!(out.results, software_schedule_results(&m, &schedule));
    }
}
