//! The concurrent JIT runtime.
//!
//! Fig. 1's right half: the application executes on the VM while the ASIP
//! specialization process runs *concurrently* ("this process is performed
//! concurrently with the execution of the application. As soon as it is
//! completed … the adaptation phase occurs where [the] ASIP architecture
//! is reconfigured and the application binary is modified").
//!
//! [`run_adaptive`] models exactly that: the main thread keeps executing
//! the workload run after run; a background worker profiles-and-
//! specializes; on completion the main loop hot-swaps to the specialized
//! binary and the loaded Woolcano machine. §VI-B's observation that one
//! can "run the FPGA tool concurrently" is realized by the worker pool.
//!
//! The runtime never depends on the worker's health: a dead, panicked, or
//! stalled worker degrades the session to software-only execution
//! (correct results, speedup 1.0) instead of hanging or crashing the
//! application — see [`DegradedReason`] and DESIGN.md §9.

use crate::cache::BitstreamCache;
use crate::evaluation::EvalContext;
use crate::pipeline::{specialize, SpecializeConfig, SpecializeReport};
use jitise_base::hash::SigHasher;
use jitise_base::{Error, Result, SimTime};
use jitise_faults::{FaultInjector, FaultSite, Quarantine, RetryPolicy};
use jitise_ir::Module;
use jitise_ise::{SearchConfig, SearchMemo};
use jitise_store::Store;
use jitise_telemetry::{names, Telemetry, Value as TelValue};
use jitise_vm::{Interpreter, Profile, Value};
use jitise_woolcano::Woolcano;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

/// Why a session fell back to software-only execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradedReason {
    /// The worker thread died (or was killed) without reporting.
    WorkerDisconnected,
    /// The worker missed the watchdog deadline and was abandoned.
    WorkerStalled,
    /// Specialization itself returned an error.
    SpecializeFailed(String),
}

/// Robustness knobs for [`run_adaptive_with`].
pub struct AdaptiveOptions {
    /// Wall-clock budget the main loop grants the worker before abandoning
    /// it and degrading to software-only execution. This is *host* time —
    /// the one place the runtime must bound a real thread, not a simulated
    /// clock.
    pub watchdog: Duration,
    /// Fault injection handle, threaded through to the pipeline and used
    /// for worker stall/death injection (disabled by default).
    pub faults: FaultInjector,
    /// Retry policy for the specialization pipeline.
    pub retry: RetryPolicy,
    /// Quarantine list shared with the pipeline (and, if the caller keeps
    /// the `Arc`, across sessions).
    pub quarantine: Arc<Quarantine>,
    /// CAD worker lanes for the specialization pipeline (default 1 = the
    /// sequential pipeline). More lanes shrink the simulated adaptation
    /// overhead; every other observable stays bit-identical.
    pub cad_workers: usize,
    /// Candidate-search worker lanes inside the specialization worker
    /// (default 1 = sequential search). Changes only wall-clock, never
    /// results.
    pub search_workers: usize,
    /// Optional identification memo. Keep the `Arc` across sessions and
    /// repeated adaptive searches skip re-identifying unchanged blocks.
    pub search_memo: Option<Arc<SearchMemo>>,
    /// Optional crash-consistent store (opened/recovered by the caller).
    /// At session start its recovered cache entries hydrate the bitstream
    /// cache (a warm restart: they count as cache hits) and its recovered
    /// quarantine signatures are honored; during the session every fresh
    /// implementation and quarantine decision is journaled back. `None`
    /// (the default) leaves the session byte-identical to today.
    pub store: Option<Arc<Store>>,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            watchdog: Duration::from_secs(30),
            faults: FaultInjector::disabled(),
            retry: RetryPolicy::default(),
            quarantine: Arc::new(Quarantine::new()),
            cad_workers: 1,
            search_workers: 1,
            search_memo: None,
            store: None,
        }
    }
}

/// Outcome of an adaptive execution session.
pub struct AdaptiveOutcome {
    /// Workload runs executed before the specialized binary was ready.
    pub runs_before: u32,
    /// Runs executed after adaptation.
    pub runs_after: u32,
    /// Average cycles per run before adaptation.
    pub cycles_before: u64,
    /// Average cycles per run after adaptation.
    pub cycles_after: u64,
    /// Observed speedup (before / after).
    pub observed_speedup: f64,
    /// The specialization report from the worker; `None` when the session
    /// degraded before the worker reported.
    pub report: Option<SpecializeReport>,
    /// Why the session fell back to software-only execution, if it did.
    pub degraded: Option<DegradedReason>,
    /// Return value of every workload run, in order (profiling run first).
    /// Degraded or not, these must match a fault-free session: the
    /// workload's answers are never allowed to change.
    pub results: Vec<Option<Value>>,
    /// Simulated specialization overhead (what a real deployment would
    /// wait for; the worker's wall time is irrelevant here). This is the
    /// pipeline's makespan: with one CAD lane, the sum of all tool time
    /// plus the fault ledger — wasted tool time and retry backoff are real
    /// waiting — and with more lanes, the critical path.
    pub overhead: SimTime,
}

impl AdaptiveOutcome {
    /// Deterministic digest of every observable field (see
    /// [`SpecializeReport::fingerprint`]).
    pub fn fingerprint(&self) -> String {
        format!(
            "rb={} ra={} cb={} ca={} sp={:016x} ov={} degraded={:?} results={:?} report={}",
            self.runs_before,
            self.runs_after,
            self.cycles_before,
            self.cycles_after,
            self.observed_speedup.to_bits(),
            self.overhead.as_nanos(),
            self.degraded,
            self.results,
            self.report
                .as_ref()
                .map(|r| r.fingerprint())
                .unwrap_or_else(|| "none".into()),
        )
    }
}

/// Sets the cancel flag when dropped, releasing a stalled worker so
/// `thread::scope` can join it — on *every* exit path, including panics.
struct CancelGuard(Arc<AtomicBool>);

impl Drop for CancelGuard {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Relaxed);
    }
}

fn wait_for_worker(
    rx: &Receiver<Result<(Module, Woolcano, SpecializeReport)>>,
    watchdog: Duration,
) -> std::result::Result<(Module, Woolcano, SpecializeReport), DegradedReason> {
    match rx.recv_timeout(watchdog) {
        Ok(Ok(t)) => Ok(t),
        Ok(Err(e)) => Err(DegradedReason::SpecializeFailed(e.to_string())),
        Err(RecvTimeoutError::Timeout) => Err(DegradedReason::WorkerStalled),
        Err(RecvTimeoutError::Disconnected) => Err(DegradedReason::WorkerDisconnected),
    }
}

fn note_degraded(tel: &Telemetry, reason: DegradedReason) -> DegradedReason {
    tel.add(names::RUNTIME_DEGRADED, 1);
    tel.event(
        "runtime.degraded",
        &[("reason", TelValue::Str(format!("{reason:?}")))],
    );
    reason
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".into()
    }
}

/// Records a worker-level injector firing (counter + journal event).
fn injected_worker_fault(tel: &Telemetry, inj: &FaultInjector, site: FaultSite) -> bool {
    let Some(kind) = inj.decide(site) else {
        return false;
    };
    tel.add(names::FAULTS_INJECTED, 1);
    tel.event(
        "fault.injected",
        &[
            ("site", TelValue::Str(site.name().into())),
            ("kind", TelValue::Str(kind.name().into())),
        ],
    );
    true
}

/// Runs `total_runs` executions of `entry(args)`, specializing in the
/// background after the first (profiling) run and hot-swapping when ready.
///
/// `ready_after_runs` models the tool-flow latency in units of workload
/// runs: the swap happens once specialization has finished *and* at least
/// that many runs have completed (deterministic tests set it explicitly).
///
/// Equivalent to [`run_adaptive_with`] under [`AdaptiveOptions::default`].
pub fn run_adaptive(
    ctx: &EvalContext,
    cache: &BitstreamCache,
    module: &Module,
    entry: &str,
    args: &[Value],
    total_runs: u32,
    ready_after_runs: u32,
) -> Result<AdaptiveOutcome> {
    run_adaptive_with(
        ctx,
        cache,
        module,
        entry,
        args,
        total_runs,
        ready_after_runs,
        &AdaptiveOptions::default(),
    )
}

/// [`run_adaptive`] with explicit robustness options.
///
/// The session *always* terminates with correct workload results: a
/// worker that dies, panics, stalls past the watchdog, or fails
/// specialization degrades the session to software-only execution and
/// records the [`DegradedReason`] instead of propagating the failure.
#[allow(clippy::too_many_arguments)]
pub fn run_adaptive_with(
    ctx: &EvalContext,
    cache: &BitstreamCache,
    module: &Module,
    entry: &str,
    args: &[Value],
    total_runs: u32,
    ready_after_runs: u32,
    options: &AdaptiveOptions,
) -> Result<AdaptiveOutcome> {
    assert!(total_runs >= 2, "need at least profiling + one more run");

    let mut root = ctx.telemetry.span("runtime.adaptive");
    let tel = ctx.telemetry.under(&root);

    // Warm restart: hydrate the bitstream cache and the quarantine from
    // the store's recovered state before any specialization work. The
    // recovered entries then count as ordinary cache hits, so a second
    // session after a restart pays zero regeneration overhead (§VI-A's
    // break-even improves exactly as if the process had never died).
    if let Some(store) = &options.store {
        let state = store.state();
        if !state.is_empty() {
            let absorbed = cache.absorb_store(&state);
            let mut quarantined = 0u64;
            for (sig, reason) in &state.quarantine {
                if options.quarantine.insert(*sig, reason) {
                    quarantined += 1;
                }
            }
            tel.add(names::STORE_WARM_RESTARTS, 1);
            tel.event(
                "runtime.warm_restart",
                &[
                    ("entries_absorbed", TelValue::U64(absorbed as u64)),
                    ("quarantine_absorbed", TelValue::U64(quarantined)),
                ],
            );
        }
    }

    // Profiling run.
    let mut vm = Interpreter::new(module);
    vm.set_telemetry(tel.clone());
    let first = vm.run(entry, args)?;
    let profile: Profile = vm.take_profile();
    let first_cycles = profile.total_cycles();

    // Worker-level faults are keyed by the session entry point so stall
    // and death decisions are deterministic per (plan seed, workload).
    let worker_key = {
        let mut h = SigHasher::new();
        h.write_str("runtime.worker");
        h.write_str(entry);
        h.finish()
    };
    let winj = options.faults.scope(worker_key, 1);
    let cancel = Arc::new(AtomicBool::new(false));

    let (tx, rx) = sync_channel::<Result<(Module, Woolcano, SpecializeReport)>>(1);

    let outcome = std::thread::scope(|scope| -> Result<AdaptiveOutcome> {
        // Whatever happens below — success, error propagation, even a
        // panicking test assertion — the guard releases a stalled worker
        // so the scope can join it.
        let _release_worker = CancelGuard(Arc::clone(&cancel));

        // Background specialization worker. Its spans stitch under this
        // session's root span even though they run on another thread.
        let worker_module = module.clone();
        let worker_profile = profile;
        let worker_tel = tel.clone();
        let worker_cancel = Arc::clone(&cancel);
        let worker_inj = winj.clone();
        let worker_faults = options.faults.clone();
        let worker_retry = options.retry;
        let worker_lanes = options.cad_workers;
        let worker_search_lanes = options.search_workers;
        let worker_search_memo = options.search_memo.clone();
        let worker_quarantine = Arc::clone(&options.quarantine);
        let worker_store = options.store.clone();
        let watchdog = options.watchdog;
        scope.spawn(move || {
            let wspan = worker_tel.span("runtime.worker");
            let wtel = worker_tel.under(&wspan);
            // An injected death: the worker exits without ever reporting,
            // which the main loop sees as a disconnected channel.
            if injected_worker_fault(&wtel, &worker_inj, FaultSite::WorkerDeath) {
                return;
            }
            // An injected stall: the worker hangs (a wedged CAD tool)
            // until the main loop abandons it and flips the cancel flag.
            // The hard cap keeps a lost flag from hanging the scope.
            if injected_worker_fault(&wtel, &worker_inj, FaultSite::WorkerStall) {
                let cap = watchdog.saturating_mul(20).max(Duration::from_millis(100));
                let start = std::time::Instant::now();
                while !worker_cancel.load(Ordering::Relaxed) && start.elapsed() < cap {
                    std::thread::sleep(Duration::from_millis(2));
                }
                return;
            }
            // A panic anywhere in the pipeline must not tear down the
            // process: convert it into an error the main loop can handle.
            let result = catch_unwind(AssertUnwindSafe(|| {
                let mut m = worker_module;
                let machine = Woolcano::with_telemetry(512, wtel.clone());
                specialize(
                    &mut m,
                    &worker_profile,
                    &machine,
                    &ctx.estimator,
                    &ctx.db,
                    &ctx.netlists,
                    cache,
                    &SpecializeConfig {
                        search: SearchConfig {
                            workers: worker_search_lanes,
                            memo: worker_search_memo,
                            ..SearchConfig::default()
                        },
                        telemetry: wtel.clone(),
                        faults: worker_faults,
                        retry: worker_retry,
                        quarantine: worker_quarantine,
                        cad_workers: worker_lanes,
                        store: worker_store,
                        ..SpecializeConfig::default()
                    },
                )
                .map(|report| (m, machine, report))
            }));
            let message = match result {
                Ok(r) => r,
                Err(payload) => Err(Error::Arch(format!(
                    "worker panicked: {}",
                    panic_message(payload.as_ref())
                ))),
            };
            drop(wspan);
            let _ = tx.send(message);
        });

        // Main loop: keep running the workload; swap when the worker is
        // done and the latency gate has passed. A degraded session stops
        // waiting and keeps executing the unmodified binary.
        let mut specialized: Option<(Module, Woolcano, SpecializeReport)> = None;
        let mut degraded: Option<DegradedReason> = None;
        let mut runs_before = 1u32; // the profiling run
        let mut runs_after = 0u32;
        let mut cycles_before = first_cycles;
        let mut cycles_after = 0u64;
        let mut results: Vec<Option<Value>> = Vec::with_capacity(total_runs as usize);
        results.push(first.ret);

        for run in 1..total_runs {
            if specialized.is_none() && degraded.is_none() && run >= ready_after_runs {
                // Block for the worker the first time we are allowed to
                // swap; afterwards the specialized binary is in place.
                match wait_for_worker(&rx, options.watchdog) {
                    Ok(t) => {
                        specialized = Some(t);
                        tel.event("runtime.swap", &[("run", TelValue::U64(run as u64))]);
                    }
                    Err(reason) => degraded = Some(note_degraded(&tel, reason)),
                }
            }
            match &specialized {
                Some((m, machine, _)) => {
                    let mut vm = Interpreter::new(m);
                    vm.set_custom_handler(machine);
                    vm.set_telemetry(tel.clone());
                    let out = vm.run(entry, args)?;
                    cycles_after += out.cycles;
                    runs_after += 1;
                    results.push(out.ret);
                }
                None => {
                    let mut vm = Interpreter::new(module);
                    vm.set_telemetry(tel.clone());
                    let out = vm.run(entry, args)?;
                    cycles_before += out.cycles;
                    runs_before += 1;
                    results.push(out.ret);
                }
            }
        }
        // If the gate never opened (all runs before readiness), collect
        // the report now — unless the session already degraded.
        let report = match specialized {
            Some((_, _, report)) => Some(report),
            None if degraded.is_none() => match wait_for_worker(&rx, options.watchdog) {
                Ok((_, _, report)) => Some(report),
                Err(reason) => {
                    degraded = Some(note_degraded(&tel, reason));
                    None
                }
            },
            None => None,
        };

        let avg_before = cycles_before / runs_before.max(1) as u64;
        let avg_after = if runs_after > 0 {
            cycles_after / runs_after as u64
        } else {
            avg_before
        };
        Ok(AdaptiveOutcome {
            runs_before,
            runs_after,
            cycles_before: avg_before,
            cycles_after: avg_after,
            observed_speedup: avg_before as f64 / avg_after.max(1) as f64,
            overhead: report.as_ref().map(|r| r.makespan).unwrap_or(SimTime::ZERO),
            report,
            degraded,
            results,
        })
    })?;

    root.field("runs_before", TelValue::U64(outcome.runs_before as u64));
    root.field("runs_after", TelValue::U64(outcome.runs_after as u64));
    if let Some(reason) = &outcome.degraded {
        root.field("degraded", TelValue::Str(format!("{reason:?}")));
    }
    root.set_sim_time(outcome.overhead);
    drop(root);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfix::hot_module;
    use jitise_faults::FaultPlan;

    #[test]
    fn adapts_and_speeds_up() {
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let m = hot_module();
        let out = run_adaptive(&ctx, &cache, &m, "main", &[Value::I(3_000)], 6, 2).unwrap();
        assert!(out.runs_after >= 1, "must run specialized at least once");
        assert!(
            out.observed_speedup > 1.0,
            "specialized runs must be faster: {}",
            out.observed_speedup
        );
        assert!(out.overhead > SimTime::ZERO);
        assert!(out.degraded.is_none());
        assert!(!out.report.as_ref().unwrap().candidates.is_empty());
        assert_eq!(out.results.len(), 6);
        assert!(out.results.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn late_gate_still_returns_report() {
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let m = hot_module();
        // Gate beyond total runs: everything executes unspecialized, but
        // the report must still arrive.
        let out = run_adaptive(&ctx, &cache, &m, "main", &[Value::I(500)], 3, 99).unwrap();
        assert_eq!(out.runs_after, 0);
        assert_eq!(out.runs_before, 3);
        assert!((out.observed_speedup - 1.0).abs() < 1e-9);
        assert!(out.degraded.is_none());
        assert!(!out.report.as_ref().unwrap().candidates.is_empty());
    }

    #[test]
    fn second_session_hits_cache() {
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let m = hot_module();
        let first = run_adaptive(&ctx, &cache, &m, "main", &[Value::I(1_000)], 4, 2).unwrap();
        assert_eq!(first.report.as_ref().unwrap().cache_hits, 0);
        let second = run_adaptive(&ctx, &cache, &m, "main", &[Value::I(1_000)], 4, 2).unwrap();
        let report = second.report.as_ref().unwrap();
        assert_eq!(
            report.cache_hits,
            report.candidates.len(),
            "second session must be served from the bitstream cache"
        );
        assert_eq!(second.overhead, SimTime::ZERO);
    }

    fn degraded_options(site: FaultSite, watchdog_ms: u64) -> AdaptiveOptions {
        AdaptiveOptions {
            watchdog: Duration::from_millis(watchdog_ms),
            faults: FaultInjector::from_plan(FaultPlan::none(23).with_rate(site, 1.0)),
            ..AdaptiveOptions::default()
        }
    }

    fn software_results(m: &Module, n: i64, runs: usize) -> Vec<Option<Value>> {
        let mut vm = Interpreter::new(m);
        let want = vm.run("main", &[Value::I(n)]).unwrap().ret;
        vec![want; runs]
    }

    #[test]
    fn dead_worker_degrades_to_software_only() {
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let m = hot_module();
        let opts = degraded_options(FaultSite::WorkerDeath, 2_000);
        let out =
            run_adaptive_with(&ctx, &cache, &m, "main", &[Value::I(800)], 4, 2, &opts).unwrap();
        assert_eq!(out.degraded, Some(DegradedReason::WorkerDisconnected));
        assert!(out.report.is_none());
        assert_eq!(out.runs_after, 0);
        assert_eq!(out.runs_before, 4);
        assert!((out.observed_speedup - 1.0).abs() < 1e-9);
        assert_eq!(out.overhead, SimTime::ZERO);
        assert_eq!(out.results, software_results(&m, 800, 4));
    }

    #[test]
    fn stalled_worker_is_abandoned_by_the_watchdog() {
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let m = hot_module();
        let opts = degraded_options(FaultSite::WorkerStall, 200);
        let start = std::time::Instant::now();
        let out =
            run_adaptive_with(&ctx, &cache, &m, "main", &[Value::I(800)], 4, 2, &opts).unwrap();
        assert_eq!(out.degraded, Some(DegradedReason::WorkerStalled));
        assert!(out.report.is_none());
        assert_eq!(out.runs_before, 4);
        assert_eq!(out.results, software_results(&m, 800, 4));
        // One watchdog expiry plus the joined (cancelled) worker — never
        // the stall cap.
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn warm_restart_serves_recovered_entries_as_cache_hits() {
        use jitise_store::{Store, StoreOptions, TempDir};
        let tmp = TempDir::new("runtime-warm");
        let m = hot_module();

        // Session 1: fresh process, store-backed. Everything is a miss and
        // gets journaled.
        {
            let ctx = EvalContext::new();
            let cache = BitstreamCache::new();
            let store = Arc::new(Store::open_with(tmp.path(), StoreOptions::default()).unwrap());
            let opts = AdaptiveOptions {
                store: Some(Arc::clone(&store)),
                ..AdaptiveOptions::default()
            };
            let out = run_adaptive_with(&ctx, &cache, &m, "main", &[Value::I(1_000)], 4, 2, &opts)
                .unwrap();
            let report = out.report.as_ref().unwrap();
            assert_eq!(report.cache_hits, 0);
            assert!(!report.candidates.is_empty());
            assert!(
                !store.state().entries.is_empty(),
                "commits must be journaled"
            );
        }

        // Session 2: simulated process restart — fresh cache, fresh store
        // handle recovered from disk. Every candidate must be a cache hit
        // and the adaptation overhead must vanish.
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let store = Arc::new(Store::open_with(tmp.path(), StoreOptions::default()).unwrap());
        assert!(!store.recovery().wal_stale);
        let opts = AdaptiveOptions {
            store: Some(Arc::clone(&store)),
            ..AdaptiveOptions::default()
        };
        let out =
            run_adaptive_with(&ctx, &cache, &m, "main", &[Value::I(1_000)], 4, 2, &opts).unwrap();
        let report = out.report.as_ref().unwrap();
        assert_eq!(
            report.cache_hits,
            report.candidates.len(),
            "warm restart must serve every candidate from the recovered cache"
        );
        assert_eq!(out.overhead, SimTime::ZERO);
    }

    #[test]
    fn warm_restart_matches_session_seeded_with_recovered_cache() {
        use jitise_store::{Store, StoreOptions, TempDir};
        let tmp = TempDir::new("runtime-warm-ident");
        let m = hot_module();
        {
            let ctx = EvalContext::new();
            let cache = BitstreamCache::new();
            let store = Arc::new(Store::open_with(tmp.path(), StoreOptions::default()).unwrap());
            let opts = AdaptiveOptions {
                store: Some(store),
                ..AdaptiveOptions::default()
            };
            run_adaptive_with(&ctx, &cache, &m, "main", &[Value::I(700)], 4, 2, &opts).unwrap();
        }
        let store = Arc::new(Store::open_with(tmp.path(), StoreOptions::default()).unwrap());

        // Reference: a storeless session whose cache was seeded by hand
        // from the recovered state.
        let ctx = EvalContext::new();
        let seeded = BitstreamCache::new();
        seeded.absorb_store(&store.state());
        let want = run_adaptive(&ctx, &seeded, &m, "main", &[Value::I(700)], 4, 2).unwrap();

        // Warm restart through the store must be observationally identical.
        let ctx2 = EvalContext::new();
        let cache = BitstreamCache::new();
        let opts = AdaptiveOptions {
            store: Some(store),
            ..AdaptiveOptions::default()
        };
        let got =
            run_adaptive_with(&ctx2, &cache, &m, "main", &[Value::I(700)], 4, 2, &opts).unwrap();
        assert_eq!(
            got.report.as_ref().unwrap().fingerprint(),
            want.report.as_ref().unwrap().fingerprint(),
            "warm restart must be bit-identical to a hand-seeded session"
        );
        assert_eq!(got.fingerprint(), want.fingerprint());
    }

    #[test]
    fn storeless_session_is_byte_identical_to_default() {
        let m = hot_module();
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let base = run_adaptive(&ctx, &cache, &m, "main", &[Value::I(900)], 4, 2).unwrap();

        let ctx2 = EvalContext::new();
        let cache2 = BitstreamCache::new();
        let opts = AdaptiveOptions {
            store: None,
            ..AdaptiveOptions::default()
        };
        let out =
            run_adaptive_with(&ctx2, &cache2, &m, "main", &[Value::I(900)], 4, 2, &opts).unwrap();
        assert_eq!(
            out.fingerprint(),
            base.fingerprint(),
            "store: None must leave the session untouched"
        );
    }

    #[test]
    fn degraded_session_matches_healthy_results() {
        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let m = hot_module();
        let healthy = run_adaptive(&ctx, &cache, &m, "main", &[Value::I(600)], 4, 2).unwrap();
        let cache2 = BitstreamCache::new();
        let opts = degraded_options(FaultSite::WorkerDeath, 2_000);
        let degraded =
            run_adaptive_with(&ctx, &cache2, &m, "main", &[Value::I(600)], 4, 2, &opts).unwrap();
        assert_eq!(
            healthy.results, degraded.results,
            "degradation must never change workload answers"
        );
    }
}
