//! Per-application evaluation driver.
//!
//! Runs the complete measurement protocol of §IV–§V for one benchmark:
//! profile on every dataset, coverage classification, kernel analysis,
//! VM/native execution times, the unpruned upper-bound ASIP ratio, the
//! pruned specialization run with per-phase overheads, and both break-even
//! models. The table-reproduction binaries and integration tests consume
//! the resulting [`AppEvaluation`].

use crate::breakeven::{break_even_scaled, break_even_two_tier, BreakEvenInputs, TwoTierInputs};
use crate::cache::BitstreamCache;
use crate::pipeline::{specialize, SpecializeConfig, SpecializeReport};
use jitise_apps::App;
use jitise_base::SimTime;
use jitise_ise::{candidate_search, PruneFilter, SearchConfig, SearchMemo};
use jitise_pivpav::{CircuitDb, NetlistCache, PivPavEstimator};
use jitise_telemetry::Telemetry;
use jitise_vm::coverage::{classify, CoverageClass, CoverageReport};
use jitise_vm::exec_model::ExecTimes;
use jitise_vm::kernel::{kernel, KernelReport, KERNEL_THRESHOLD};
use jitise_vm::{CostModel, Profile, VmTier};
use jitise_woolcano::Woolcano;
use std::sync::Arc;

/// Shared evaluation context (databases and caches reused across apps).
pub struct EvalContext {
    /// The PivPav circuit database.
    pub db: CircuitDb,
    /// Netlist cache.
    pub netlists: NetlistCache,
    /// Bitstream cache.
    pub bitstreams: BitstreamCache,
    /// Estimator.
    pub estimator: PivPavEstimator,
    /// CPU model.
    pub cost: CostModel,
    /// Observability handle propagated into every specialization run this
    /// context drives (disabled by default).
    pub telemetry: Telemetry,
    /// CAD worker lanes for every specialization run this context drives
    /// (default 1 = the sequential pipeline). Only the report's `makespan`
    /// — and hence the break-even overhead — depends on this.
    pub cad_workers: usize,
    /// Candidate-search worker lanes for every search this context drives
    /// (default 1 = sequential). Changes only wall-clock, never results.
    pub search_workers: usize,
    /// Optional identification memo shared by every search this context
    /// drives (default `None` = no caching).
    pub search_memo: Option<Arc<SearchMemo>>,
    /// Execution tier for every VM run this context drives (default
    /// [`VmTier::Interp`]). The fast tier is bit-identical in results,
    /// cycles, steps, and profiles — it changes only host wall-clock.
    pub vm_tier: VmTier,
    /// Overlay cell library for two-tier installs (DESIGN.md §17); `None`
    /// (the default) evaluates the full-only pipeline.
    pub overlay: Option<Arc<jitise_cad::OverlayLibrary>>,
}

impl Default for EvalContext {
    fn default() -> Self {
        Self::new()
    }
}

impl EvalContext {
    /// Builds the context (database construction is the expensive part).
    pub fn new() -> EvalContext {
        Self::with_telemetry(Telemetry::disabled())
    }

    /// A context whose pipeline runs record to `telemetry`.
    pub fn with_telemetry(telemetry: Telemetry) -> EvalContext {
        EvalContext {
            db: CircuitDb::build(),
            netlists: NetlistCache::new(),
            bitstreams: BitstreamCache::new(),
            estimator: PivPavEstimator::new(),
            cost: CostModel::ppc405(),
            telemetry,
            cad_workers: 1,
            search_workers: 1,
            search_memo: None,
            vm_tier: VmTier::Interp,
            overlay: None,
        }
    }

    /// The same context with the overlay fast path enabled (the library is
    /// generated from this context's own circuit database).
    pub fn with_overlay(mut self) -> EvalContext {
        self.overlay = Some(Arc::new(jitise_cad::OverlayLibrary::from_db(&self.db)));
        self
    }
}

/// Everything measured about one application.
pub struct AppEvaluation {
    /// The application name.
    pub name: &'static str,
    /// Static counts.
    pub blocks: usize,
    /// Static instruction count.
    pub insts: usize,
    /// Modeled compile-to-bitcode time.
    pub compile_time: SimTime,
    /// VM / native execution times and ratio.
    pub exec: ExecTimes,
    /// Coverage classification.
    pub coverage: CoverageReport,
    /// Kernel analysis.
    pub kernel: KernelReport,
    /// Upper-bound ASIP ratio (no pruning, every candidate implemented).
    pub asip_ratio_max: f64,
    /// The specialization report (pruned, Table II).
    pub report: SpecializeReport,
    /// Pruned ASIP ratio (Table II `ratio`).
    pub asip_ratio_pruned: f64,
    /// Break-even time, frequency-scaled model (`None` = never).
    pub break_even: Option<SimTime>,
    /// Break-even time of the two-tier deployment, measured from the
    /// specialization request (`None` when the overlay is disabled or
    /// nothing is saved). Comparable to `upgrade_ready + break_even`, the
    /// full-only time from the request.
    pub break_even_two_tier: Option<SimTime>,
    /// The scaled train profile used throughout.
    pub profile: Profile,
}

/// Break-even inputs extracted for reuse by the Table IV extrapolation.
pub struct BreakEvenBasis {
    /// Per-candidate generation times.
    pub candidate_times: Vec<SimTime>,
    /// Model inputs with `overhead` left at the full (no-cache) value.
    pub inputs: BreakEvenInputs,
    /// Measured overlay assembly overhead (zero without an overlay).
    pub overlay_overhead: SimTime,
    /// Measured fraction of the full savings rate the overlay achieves
    /// (execution-weighted over all candidates; zero without an overlay).
    pub overlay_saved_frac: f64,
}

/// Evaluates one application end to end.
pub fn evaluate_app(ctx: &EvalContext, app: &App) -> AppEvaluation {
    // ---- profiling on all datasets ----
    let raw_profiles = app.profile_all_datasets_tier(ctx.vm_tier);
    let scale = app.time_scale(&raw_profiles[0]);
    let profile = raw_profiles[0].scaled(scale);

    // ---- static + dynamic characterization ----
    let coverage = classify(&app.module, &raw_profiles);
    let kern = kernel(&app.module, &raw_profiles[0], KERNEL_THRESHOLD);
    let exec = app.exec_model.times(&app.module, &profile, &ctx.cost);

    // ---- upper bound: no pruning, min size 2, generous budget ----
    let unpruned_cfg = SearchConfig {
        filter: PruneFilter::none(),
        workers: ctx.search_workers,
        memo: ctx.search_memo.clone(),
        ..SearchConfig::default()
    };
    let unpruned = candidate_search(&app.module, &profile, &ctx.estimator, &unpruned_cfg);

    // ---- pruned specialization (the paper's JIT configuration) ----
    let mut specialized = app.module.clone();
    let machine = Woolcano::new(512);
    let report = specialize(
        &mut specialized,
        &profile,
        &machine,
        &ctx.estimator,
        &ctx.db,
        &ctx.netlists,
        &ctx.bitstreams,
        &SpecializeConfig {
            search: SearchConfig {
                workers: ctx.search_workers,
                memo: ctx.search_memo.clone(),
                ..SearchConfig::default()
            },
            telemetry: ctx.telemetry.clone(),
            cad_workers: ctx.cad_workers,
            vm_tier: ctx.vm_tier,
            overlay: ctx.overlay.clone(),
            ..SpecializeConfig::default()
        },
    )
    .unwrap_or_else(|e| panic!("{}: specialization failed: {e}", app.name));
    let asip_ratio_pruned = report.search.asip_ratio;

    // ---- break-even ----
    let basis = break_even_basis(ctx, &coverage, &profile, &report);
    let break_even = break_even_scaled(basis.inputs);
    let break_even_two_tier = if report.overlay_installs > 0 {
        break_even_two_tier(TwoTierInputs {
            base: basis.inputs,
            overlay_overhead: basis.overlay_overhead,
            overlay_saved_frac: basis.overlay_saved_frac,
            upgrade_ready: report.makespan,
        })
    } else {
        None
    };

    AppEvaluation {
        name: app.name,
        blocks: app.module.num_blocks(),
        insts: app.module.num_insts(),
        compile_time: app.compile_time_model(),
        exec,
        coverage,
        kernel: kern,
        asip_ratio_max: unpruned.asip_ratio,
        report,
        asip_ratio_pruned,
        break_even,
        break_even_two_tier,
        profile,
    }
}

/// Extracts the frequency-scaled break-even inputs from a specialization
/// report (shared with the Table IV extrapolation, which re-evaluates the
/// same basis under varying cache rates and tool speedups).
pub fn break_even_basis(
    ctx: &EvalContext,
    coverage: &CoverageReport,
    profile: &Profile,
    report: &SpecializeReport,
) -> BreakEvenBasis {
    // Split execution time into live / const by block class.
    let mut live_cycles: u64 = 0;
    let mut const_cycles: u64 = 0;
    for key in profile.keys() {
        match coverage.class_of(key) {
            CoverageClass::Live => live_cycles += profile.block_cycles(key),
            CoverageClass::Const => const_cycles += profile.block_cycles(key),
            CoverageClass::Dead => {}
        }
    }
    // Savings by class of the candidate's home block; the overlay-tier
    // savings are tracked in parallel to derive the execution-weighted
    // fraction of the full rate the degraded fabric achieves.
    let mut live_saved: u64 = 0;
    let mut const_saved: u64 = 0;
    let mut full_saved_weighted: u64 = 0;
    let mut overlay_saved_weighted: u64 = 0;
    for c in &report.candidates {
        let saved = c.saved_per_exec * profile.count(c.key);
        full_saved_weighted = full_saved_weighted.saturating_add(saved);
        overlay_saved_weighted = overlay_saved_weighted.saturating_add(
            c.overlay_saved_per_exec
                .saturating_mul(profile.count(c.key)),
        );
        match coverage.class_of(c.key) {
            CoverageClass::Live => live_saved += saved,
            CoverageClass::Const => const_saved += saved,
            CoverageClass::Dead => {}
        }
    }
    let overlay_saved_frac = if full_saved_weighted > 0 {
        overlay_saved_weighted as f64 / full_saved_weighted as f64
    } else {
        0.0
    };
    let candidate_times: Vec<SimTime> = report.candidates.iter().map(|c| c.total()).collect();
    BreakEvenBasis {
        inputs: BreakEvenInputs {
            const_time: ctx.cost.cycles_to_time(const_cycles),
            live_time: ctx.cost.cycles_to_time(live_cycles),
            const_saved: ctx.cost.cycles_to_time(const_saved),
            live_saved: ctx.cost.cycles_to_time(live_saved),
            // Amortize the wall-clock overhead: with one CAD worker the
            // makespan is exactly the sequential `sum + fault` total, with
            // more workers only the critical path must be paid off.
            overhead: report.makespan,
        },
        candidate_times,
        overlay_overhead: report.overlay_time,
        overlay_saved_frac,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluates_sor_end_to_end() {
        let ctx = EvalContext::new();
        let app = App::build("sor").unwrap();
        let ev = evaluate_app(&ctx, &app);
        assert!(ev.asip_ratio_max >= ev.asip_ratio_pruned * 0.95);
        assert!(ev.asip_ratio_pruned > 1.0, "sor must accelerate");
        assert!(ev.exec.ratio > 0.9 && ev.exec.ratio < 1.6);
        assert!(ev.kernel.time_frac >= 0.9);
        let be = ev.break_even.expect("sor amortizes");
        // Paper: 24 minutes. Same order of magnitude: minutes-to-hours.
        assert!(
            be.as_hours_f64() < 24.0,
            "sor break-even {be} should be far under a day"
        );
        assert!(ev.report.sum_time > SimTime::ZERO);
    }

    #[test]
    fn two_tier_break_even_collapses_the_wait() {
        let ctx = EvalContext::new().with_overlay();
        let app = App::build("sor").unwrap();
        let ev = evaluate_app(&ctx, &app);
        assert!(ev.report.overlay_installs > 0);
        assert!(ev.report.upgrades > 0, "background upgrades landed");
        let two_tier = ev
            .break_even_two_tier
            .expect("overlay run yields a two-tier break-even");
        let basis = break_even_basis(&ctx, &ev.coverage, &ev.profile, &ev.report);
        assert!(basis.overlay_overhead > SimTime::ZERO);
        if basis.overlay_saved_frac > 0.0 {
            // Measured from the request, full-only cannot save anything
            // until the CAD makespan elapses; the overlay starts earning
            // immediately and must amortize sooner.
            let full_only = ev.report.makespan + ev.break_even.unwrap();
            assert!(
                two_tier < full_only,
                "two-tier {two_tier} vs full-only-from-request {full_only}"
            );
        }
    }

    #[test]
    fn coverage_classes_present_in_synthetic_app() {
        let ctx = EvalContext::new();
        let app = App::build("429.mcf").unwrap();
        let ev = evaluate_app(&ctx, &app);
        assert!(ev.coverage.dead_frac > 0.0, "dead section must exist");
        assert!(ev.coverage.live_frac > 0.0);
        assert!(ev.coverage.const_frac > 0.0);
    }
}
