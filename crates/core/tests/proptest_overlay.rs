//! Differential property tests for the two-tier overlay path
//! (DESIGN.md §17).
//!
//! The overlay tier is allowed to change exactly two things: when a
//! candidate first goes live (milliseconds instead of the full CAD
//! makespan) and how many cycles it saves while serving (the degraded
//! fabric is honest about being slower). It must change *nothing*
//! observable about program behaviour:
//!
//! 1. an adaptive session with the overlay enabled returns **bit-identical
//!    answers** to the same session without it and to a software-only
//!    interpreter pass, over random phased workloads;
//! 2. the same holds for a full storm session (evictions,
//!    re-specializations, upgrades racing phase changes), and the storm's
//!    answers survive an upgrade-swap fault plan unchanged.

use jitise_apps::{build_phased, PhasedSpec};
use jitise_cad::OverlayLibrary;
use jitise_core::{
    run_adaptive_with, run_storm, AdaptiveOptions, BitstreamCache, EvalContext, PhasePolicy,
    PhaseSegment, StormOptions,
};
use jitise_faults::{FaultInjector, FaultPlan, FaultSite};
use jitise_vm::{Interpreter, Value};
use std::sync::Arc;

use proptest::prelude::*;

fn module_of(seed: u64, kernels: u32, hot_iters: i32) -> jitise_ir::Module {
    build_phased(&PhasedSpec {
        seed,
        kernels,
        hot_iters,
        ..PhasedSpec::default()
    })
}

/// Software-only reference answers for one argument set.
fn software_answer(m: &jitise_ir::Module, args: &[Value]) -> Option<Value> {
    Interpreter::new(m).run("main", args).unwrap().ret
}

fn adaptive_opts(ctx: &EvalContext, overlay: bool) -> AdaptiveOptions {
    AdaptiveOptions {
        overlay: overlay.then(|| Arc::new(OverlayLibrary::from_db(&ctx.db))),
        ..AdaptiveOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn adaptive_overlay_answers_match_full_and_software(
        seed in 0u64..1_000,
        kernels in 1u32..3,
        hot_iters in 60i32..160,
        sel in 0i64..2,
    ) {
        let m = module_of(seed, kernels, hot_iters);
        let args = [Value::I(sel), Value::I(2)];
        let want = software_answer(&m, &args);

        let run = |overlay: bool| {
            let ctx = EvalContext::new();
            run_adaptive_with(
                &ctx,
                &BitstreamCache::new(),
                &m,
                "main",
                &args,
                4,
                2,
                &adaptive_opts(&ctx, overlay),
            )
            .expect("session terminates")
        };
        let full = run(false);
        let two_tier = run(true);

        // Answers: overlay == full-CAD-only == software, run by run.
        prop_assert_eq!(&full.results, &two_tier.results);
        for (i, got) in two_tier.results.iter().enumerate() {
            prop_assert_eq!(got, &want, "run {i} diverged from software");
        }

        // The fast path actually engaged whenever the session specialized.
        if let Some(r) = &two_tier.report {
            prop_assert!(r.overlay_installs >= 1);
            prop_assert_eq!(r.upgrades + r.upgrades_failed, r.overlay_installs);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn storm_overlay_answers_match_software_even_under_swap_faults(
        seed in 0u64..1_000,
        phase_a in 4u32..8,
        phase_b in 4u32..8,
        swap_rate in 0.0f64..1.0,
    ) {
        let m = module_of(seed, 2, 120);
        let schedule = vec![
            PhaseSegment::new(vec![Value::I(0), Value::I(2)], phase_a),
            PhaseSegment::new(vec![Value::I(1), Value::I(2)], phase_b),
        ];
        let mut want = Vec::new();
        for s in &schedule {
            for _ in 0..s.runs {
                want.push(software_answer(&m, &s.args));
            }
        }

        let run = |overlay: bool, swap_rate: f64| {
            let ctx = EvalContext::new();
            let options = StormOptions {
                base: AdaptiveOptions {
                    faults: FaultInjector::from_plan(
                        FaultPlan::none(seed).with_rate(FaultSite::UpgradeSwap, swap_rate),
                    ),
                    ..adaptive_opts(&ctx, overlay)
                },
                policy: PhasePolicy {
                    window: 2,
                    cold_share: 0.2,
                    hysteresis: 2,
                    cooldown: 2,
                    max_respecs: 3,
                },
                ready_after_runs: 2,
                ..StormOptions::default()
            };
            run_storm(&ctx, &BitstreamCache::new(), &m, "main", &schedule, &options)
                .expect("storm terminates")
        };

        let full = run(false, 0.0);
        let clean = run(true, 0.0);
        let faulty = run(true, swap_rate);

        prop_assert_eq!(&full.results, &clean.results);
        prop_assert_eq!(&clean.results, &faulty.results);
        for (i, got) in faulty.results.iter().enumerate() {
            prop_assert_eq!(got, &want[i], "run {i} diverged from software");
        }
    }
}
