//! Tier invariance for the adaptive runtime (DESIGN.md §15).
//!
//! The fast dispatch tier is allowed to change exactly one thing: host
//! wall-clock. Every observable of an adaptive or storm session — run
//! results, cycle accounting, specialization reports, phase decisions,
//! simulated overhead — must be bit-identical whichever tier executes the
//! workload. These tests run full sessions once per tier and compare the
//! outcome fingerprints (which fold in results, cycles, reports, and
//! degradation state).

use jitise_apps::{build_phased, App, PhasedSpec};
use jitise_core::{
    run_adaptive_with, run_storm, AdaptiveOptions, BitstreamCache, EvalContext, PhasePolicy,
    PhaseSegment, StormOptions,
};
use jitise_vm::{Value, VmTier};

fn adaptive_fingerprint(tier: VmTier) -> String {
    let app = App::build("adpcm").expect("paper app");
    let outcome = run_adaptive_with(
        &EvalContext::new(),
        &BitstreamCache::new(),
        &app.module,
        app.entry,
        &app.datasets[0].args,
        4,
        2,
        &AdaptiveOptions {
            vm_tier: tier,
            ..AdaptiveOptions::default()
        },
    )
    .expect("session terminates");
    outcome.fingerprint()
}

#[test]
fn adaptive_session_is_tier_invariant() {
    assert_eq!(
        adaptive_fingerprint(VmTier::Interp),
        adaptive_fingerprint(VmTier::Fast),
        "fast tier changed an adaptive-session observable"
    );
}

fn storm_fingerprint(tier: VmTier) -> String {
    let m = build_phased(&PhasedSpec {
        seed: 7,
        kernels: 2,
        hot_iters: 120,
        ..PhasedSpec::default()
    });
    let schedule = vec![
        PhaseSegment::new(vec![Value::I(0), Value::I(2)], 6),
        PhaseSegment::new(vec![Value::I(1), Value::I(2)], 8),
    ];
    let options = StormOptions {
        base: AdaptiveOptions {
            vm_tier: tier,
            ..AdaptiveOptions::default()
        },
        policy: PhasePolicy {
            window: 2,
            cold_share: 0.2,
            hysteresis: 2,
            cooldown: 2,
            max_respecs: 3,
        },
        ready_after_runs: 2,
        ..StormOptions::default()
    };
    let outcome = run_storm(
        &EvalContext::new(),
        &BitstreamCache::new(),
        &m,
        "main",
        &schedule,
        &options,
    )
    .expect("storm terminates");
    outcome.fingerprint()
}

#[test]
fn storm_session_is_tier_invariant() {
    assert_eq!(
        storm_fingerprint(VmTier::Interp),
        storm_fingerprint(VmTier::Fast),
        "fast tier changed a storm-session observable"
    );
}
