//! Property tests for the phase-storm contract (DESIGN.md §14):
//!
//! 1. a phase-changing workload run under the full storm machinery —
//!    windowed phase detection, benefit-scored eviction, bounded
//!    re-specialization — produces **bit-identical program outputs** to a
//!    software-only interpreter pass, and its cycle accounting never
//!    charges a run more than software execution would;
//! 2. the whole storm is **bit-identical across CAD worker counts** for a
//!    fixed seed (only the simulated overhead may differ);
//! 3. a **crash mid-storm** loses nothing committed: the recovered store
//!    equals the post-eviction committed prefix, and a warm restart from
//!    it completes a second storm correctly.

use jitise_apps::{build_phased, PhasedSpec};
use jitise_core::{
    run_storm, AdaptiveOptions, BitstreamCache, EvalContext, PhasePolicy, PhaseSegment,
    StormOptions,
};
use jitise_faults::{CrashSwitch, StoreCrash};
use jitise_store::{Store, StoreOptions, TempDir};
use jitise_vm::{Interpreter, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn storm_opts(cad_workers: usize, store: Option<Arc<Store>>) -> StormOptions {
    StormOptions {
        base: AdaptiveOptions {
            cad_workers,
            store,
            ..AdaptiveOptions::default()
        },
        policy: PhasePolicy {
            window: 2,
            cold_share: 0.2,
            hysteresis: 2,
            cooldown: 2,
            max_respecs: 3,
        },
        ready_after_runs: 2,
        ..StormOptions::default()
    }
}

fn schedule_of(phase_a: u32, phase_b: u32, scale: i64) -> Vec<PhaseSegment> {
    vec![
        PhaseSegment::new(vec![Value::I(0), Value::I(scale)], phase_a),
        PhaseSegment::new(vec![Value::I(1), Value::I(scale)], phase_b),
    ]
}

/// Per-run software-only reference: return values and cycle counts.
fn software_reference(
    m: &jitise_ir::Module,
    schedule: &[PhaseSegment],
) -> (Vec<Option<Value>>, Vec<u64>) {
    let mut rets = Vec::new();
    let mut cycles = Vec::new();
    for s in schedule {
        for _ in 0..s.runs {
            let mut vm = Interpreter::new(m);
            let out = vm.run("main", &s.args).unwrap();
            rets.push(out.ret);
            cycles.push(out.cycles);
        }
    }
    (rets, cycles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn storm_is_software_equivalent_and_lane_invariant(
        seed in any::<u64>(),
        phase_a in 5u32..8,
        phase_b in 7u32..10,
        scale in 1i64..3,
    ) {
        let m = build_phased(&PhasedSpec {
            seed,
            kernels: 2,
            hot_iters: 120,
            ..PhasedSpec::default()
        });
        let schedule = schedule_of(phase_a, phase_b, scale);
        let (want_rets, want_cycles) = software_reference(&m, &schedule);

        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let out = run_storm(&ctx, &cache, &m, "main", &schedule, &storm_opts(1, None)).unwrap();

        // 1. Outputs bit-identical to software; cycle accounting never
        //    exceeds software (custom instructions only save cycles).
        prop_assert_eq!(&out.results, &want_rets, "storm changed a workload answer");
        prop_assert_eq!(out.run_cycles.len(), want_cycles.len());
        prop_assert_eq!(out.run_cycles[0], want_cycles[0], "profiling run is pure software");
        for (got, want) in out.run_cycles.iter().zip(&want_cycles) {
            prop_assert!(got <= want, "a specialized run got slower: {got} > {want}");
        }

        // 2. Bit-identical across CAD lanes.
        let ctx2 = EvalContext::new();
        let cache2 = BitstreamCache::new();
        let out2 =
            run_storm(&ctx2, &cache2, &m, "main", &schedule, &storm_opts(4, None)).unwrap();
        prop_assert_eq!(out.fingerprint(), out2.fingerprint());
    }
}

/// A crash killing the store mid-storm must leave exactly the committed
/// prefix — including any journaled evictions — and a warm restart from
/// the survivor must serve that post-eviction state.
#[test]
fn warm_restart_mid_storm_recovers_post_eviction_prefix() {
    let m = build_phased(&PhasedSpec {
        kernels: 2,
        hot_iters: 120,
        ..PhasedSpec::default()
    });
    let schedule = schedule_of(8, 12, 2);
    let (want_rets, _) = software_reference(&m, &schedule);

    // Dry pass: measure the bytes a full healthy storm journals, and
    // prove the scenario actually evicts.
    let dry_dir = TempDir::new("storm-dry");
    let dry_store = Arc::new(Store::open(dry_dir.path()).unwrap());
    let ctx = EvalContext::new();
    let cache = BitstreamCache::new();
    let dry = run_storm(
        &ctx,
        &cache,
        &m,
        "main",
        &schedule,
        &storm_opts(1, Some(Arc::clone(&dry_store))),
    )
    .unwrap();
    assert!(dry.evictions >= 1, "scenario must journal evictions");
    assert!(dry.respecs >= 1);
    let total_bytes = dry_store.bytes_written();
    drop(dry_store);

    // Crash run: the store dies at 60% of the byte stream — after the
    // initial install's entries, inside the eviction/respec tail.
    let crash_dir = TempDir::new("storm-crash");
    let store = Arc::new(
        Store::open_with(
            crash_dir.path(),
            StoreOptions {
                crash: CrashSwitch::armed(StoreCrash {
                    after_bytes: total_bytes * 6 / 10,
                }),
                ..StoreOptions::default()
            },
        )
        .unwrap(),
    );
    let ctx = EvalContext::new();
    let cache = BitstreamCache::new();
    let out = run_storm(
        &ctx,
        &cache,
        &m,
        "main",
        &schedule,
        &storm_opts(1, Some(Arc::clone(&store))),
    )
    .unwrap();
    // The store's death never leaks into execution.
    assert_eq!(out.results, want_rets);
    assert!(
        out.degraded.is_none(),
        "store crash must not degrade execution"
    );
    // In-memory fold == acknowledged prefix, by the store's append
    // contract; capture it as the ground truth for recovery.
    let committed = store.state().fingerprint();
    drop(store);

    // Restart: recovery must restore exactly the committed prefix (post-
    // eviction for every eviction whose tombstone reached the log).
    let survivor = Arc::new(Store::open(crash_dir.path()).unwrap());
    assert_eq!(
        survivor.state().fingerprint(),
        committed,
        "recovered store must equal the committed (post-eviction) prefix"
    );

    // And a second storm warm-restarted from the survivor still computes
    // the right answers.
    let ctx = EvalContext::new();
    let cache = BitstreamCache::new();
    let again = run_storm(
        &ctx,
        &cache,
        &m,
        "main",
        &schedule,
        &storm_opts(1, Some(survivor)),
    )
    .unwrap();
    assert_eq!(again.results, want_rets);
}
