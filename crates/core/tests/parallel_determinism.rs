//! Determinism suite for the multi-worker CAD scheduler (DESIGN.md §10).
//!
//! The contract: for any `cad_workers` count, with or without fault
//! injection, a specialization run must leave every observable identical —
//! report fingerprint, patched module, bitstream-cache state, quarantine
//! contents, telemetry counters, and the canonical (order-independent)
//! event journal. Only the `makespan` may change, and it may only shrink.

use jitise_apps::App;
use jitise_base::SimTime;
use jitise_core::{specialize, BitstreamCache, SpecializeConfig};
use jitise_faults::{FaultInjector, FaultPlan};
use jitise_ir::Module;
use jitise_pivpav::{CircuitDb, NetlistCache, PivPavEstimator};
use jitise_telemetry::Telemetry;
use jitise_woolcano::Woolcano;

/// Everything observable about one specialization run, frozen for
/// comparison across worker counts.
struct Artifacts {
    fingerprint: String,
    module: Module,
    cache_bytes: Vec<u8>,
    quarantine: Vec<u64>,
    counters: Vec<(String, u64)>,
    journal: String,
    candidates: usize,
    cpu_time: SimTime,
    makespan: SimTime,
}

/// One full specialization of `app` on fresh caches with `workers` CAD
/// lanes and an optional fault plan.
fn run(app_name: &str, workers: usize, plan: Option<FaultPlan>) -> Artifacts {
    let app = App::build(app_name).expect("paper app");
    let profile = app.profile_all_datasets().remove(0);
    let db = CircuitDb::build();
    let netlists = NetlistCache::new();
    let bitstreams = BitstreamCache::new();
    let estimator = PivPavEstimator::new();
    let tel = Telemetry::enabled();
    let cfg = SpecializeConfig {
        telemetry: tel.clone(),
        faults: plan
            .map(FaultInjector::from_plan)
            .unwrap_or_else(FaultInjector::disabled),
        cad_workers: workers,
        ..SpecializeConfig::default()
    };
    let mut module = app.module.clone();
    let machine = Woolcano::new(512);
    let report = specialize(
        &mut module,
        &profile,
        &machine,
        &estimator,
        &db,
        &netlists,
        &bitstreams,
        &cfg,
    )
    .expect("specialization never aborts the run");
    assert_eq!(
        report.cpu_time,
        report.sum_time + report.fault_time(),
        "cpu_time is the full charged total"
    );
    assert!(report.makespan <= report.cpu_time);
    assert_eq!(report.cad_workers, workers.max(1));
    let snap = tel.snapshot();
    Artifacts {
        fingerprint: report.fingerprint(),
        module,
        cache_bytes: bitstreams.to_bytes(),
        quarantine: cfg.quarantine.signatures(),
        counters: snap.counters.clone(),
        journal: snap.canonical_journal(),
        candidates: report.candidates.len() + report.failed.len(),
        cpu_time: report.cpu_time,
        makespan: report.makespan,
    }
}

fn assert_schedule_oblivious(app_name: &str, plan: Option<FaultPlan>) {
    let base = run(app_name, 1, plan.clone());
    assert_eq!(
        base.makespan, base.cpu_time,
        "one lane: the makespan is the sequential total"
    );
    for workers in [2usize, 8] {
        let par = run(app_name, workers, plan.clone());
        assert_eq!(base.fingerprint, par.fingerprint, "workers={workers}");
        assert_eq!(base.module, par.module, "patched module, workers={workers}");
        assert_eq!(
            base.cache_bytes, par.cache_bytes,
            "bitstream-cache state, workers={workers}"
        );
        assert_eq!(
            base.quarantine, par.quarantine,
            "quarantine contents, workers={workers}"
        );
        assert_eq!(base.counters, par.counters, "counters, workers={workers}");
        assert_eq!(
            base.journal, par.journal,
            "canonical journal, workers={workers}"
        );
        assert_eq!(base.cpu_time, par.cpu_time, "cpu_time, workers={workers}");
        assert!(par.makespan <= par.cpu_time, "workers={workers}");
    }
}

#[test]
fn fault_free_run_is_identical_for_any_worker_count() {
    assert_schedule_oblivious("adpcm", None);
}

#[test]
fn faulty_run_is_identical_for_any_worker_count() {
    // A moderate uniform rate exercises flow deaths, poisoned cache reads,
    // corrupted ICAP transfers, retries, and quarantining — all of which
    // must settle identically regardless of lane count.
    assert_schedule_oblivious("adpcm", Some(FaultPlan::uniform(0.35, 9)));
}

#[test]
fn persistent_faults_quarantine_identically_in_parallel() {
    let mut plan = FaultPlan::uniform(0.6, 23);
    plan.persistent_frac = 1.0;
    assert_schedule_oblivious("sor", Some(plan));
}

#[test]
fn four_workers_strictly_beat_the_sequential_total() {
    let seq = run("adpcm", 1, None);
    let par = run("adpcm", 4, None);
    assert!(
        par.candidates >= 2,
        "need at least two candidates to overlap, got {}",
        par.candidates
    );
    assert_eq!(seq.cpu_time, par.cpu_time);
    assert!(
        par.makespan < seq.cpu_time,
        "4 lanes must shorten the critical path: makespan {} vs cpu {}",
        par.makespan,
        seq.cpu_time
    );
}
