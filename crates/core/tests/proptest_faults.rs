//! Property tests for the fault-injection contract (DESIGN.md §9):
//!
//! 1. a **zero-rate** fault plan is observationally transparent — the
//!    pipeline produces byte-identical reports and patched modules with
//!    and without the injector wired in;
//! 2. under **any** seeded fault plan, the adaptive runtime terminates
//!    and returns bit-identical workload results to plain software
//!    execution — faults may cost time, never correctness.

use jitise_core::{
    run_adaptive_with, specialize, AdaptiveOptions, BitstreamCache, EvalContext, SpecializeConfig,
    SpecializeReport,
};
use jitise_faults::{FaultInjector, FaultPlan};
use jitise_ir::{FunctionBuilder, Module, Operand as Op, Type};
use jitise_pivpav::{CircuitDb, NetlistCache, PivPavEstimator};
use jitise_vm::{Interpreter, Profile, Value};
use jitise_woolcano::Woolcano;
use proptest::prelude::*;
use std::time::Duration;

/// A module whose hot loop body is a chain of ops drawn from the seed.
fn module_of(ops: &[u8]) -> Module {
    let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
    let cell = b.alloca(4);
    b.store(Op::ci32(1), cell);
    b.counted_loop("i", Op::ci32(0), Op::Arg(0), |b, i| {
        let mut v = b.load(Type::I32, cell);
        for (k, op) in ops.iter().enumerate() {
            let c = Op::ci32(k as i32 * 7 + 3);
            v = match op % 5 {
                0 => b.add(v, i),
                1 => b.mul(v, c),
                2 => b.xor(v, c),
                3 => b.sub(v, i),
                _ => {
                    let t = b.mul(v, i);
                    b.add(t, c)
                }
            };
        }
        b.store(v, cell);
    });
    let out = b.load(Type::I32, cell);
    b.ret(out);
    let mut m = Module::new("prop");
    m.add_func(b.finish());
    m
}

fn profile_of(m: &Module, n: i64) -> Profile {
    let mut vm = Interpreter::new(m);
    vm.run("main", &[Value::I(n)]).unwrap();
    vm.take_profile()
}

/// One specialization on fresh caches, returning the patched module and
/// report.
fn specialize_once(m: &Module, n: i64, faults: FaultInjector) -> (Module, SpecializeReport) {
    let db = CircuitDb::build();
    let netlists = NetlistCache::new();
    let bitstreams = BitstreamCache::new();
    let estimator = PivPavEstimator::new();
    let profile = profile_of(m, n);
    let machine = Woolcano::new(64);
    let mut patched = m.clone();
    let report = specialize(
        &mut patched,
        &profile,
        &machine,
        &estimator,
        &db,
        &netlists,
        &bitstreams,
        &SpecializeConfig {
            faults,
            ..SpecializeConfig::default()
        },
    )
    .unwrap();
    (patched, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn zero_rate_plan_is_observationally_transparent(
        ops in prop::collection::vec(0u8..5, 2..6),
        n in 500i64..2500,
        seed in any::<u64>(),
    ) {
        let m = module_of(&ops);
        let (p_off, r_off) = specialize_once(&m, n, FaultInjector::disabled());
        let injector = FaultInjector::from_plan(FaultPlan::uniform(0.0, seed));
        let (p_on, r_on) = specialize_once(&m, n, injector);
        prop_assert_eq!(&p_off, &p_on, "patched modules must be identical");
        prop_assert_eq!(r_off.fingerprint(), r_on.fingerprint());
    }

    #[test]
    fn any_fault_plan_preserves_workload_results(
        ops in prop::collection::vec(0u8..5, 2..6),
        n in 500i64..1500,
        seed in any::<u64>(),
        rate in 0.0f64..1.0,
    ) {
        let m = module_of(&ops);
        let mut vm = Interpreter::new(&m);
        let want = vm.run("main", &[Value::I(n)]).unwrap().ret;

        let ctx = EvalContext::new();
        let cache = BitstreamCache::new();
        let options = AdaptiveOptions {
            watchdog: Duration::from_millis(300),
            faults: FaultInjector::from_plan(FaultPlan::uniform(rate, seed)),
            ..AdaptiveOptions::default()
        };
        let out = run_adaptive_with(
            &ctx, &cache, &m, "main", &[Value::I(n)], 3, 2, &options,
        ).unwrap();
        prop_assert_eq!(out.results.len(), 3);
        for got in &out.results {
            prop_assert_eq!(got, &want, "fault plan changed a workload answer");
        }
    }
}
