//! Property tests for the pipeline's observability contract:
//!
//! 1. the span journal **reconciles** with the [`SpecializeReport`] — the
//!    per-phase simulated-time totals recorded by the instrumentation are
//!    the *same integers* the report sums itself;
//! 2. telemetry is **observation only** — running the pipeline with an
//!    enabled handle produces byte-identical results to
//!    [`Telemetry::disabled`].

use jitise_core::{specialize, BitstreamCache, SpecializeConfig, SpecializeReport};
use jitise_ir::{FunctionBuilder, Module, Operand as Op, Type};
use jitise_pivpav::{CircuitDb, NetlistCache, PivPavEstimator};
use jitise_telemetry::{names, Telemetry};
use jitise_vm::{Interpreter, Profile, Value};
use jitise_woolcano::Woolcano;
use proptest::prelude::*;

/// A module whose hot loop body is a chain of ops drawn from the seed.
fn module_of(ops: &[u8]) -> Module {
    let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
    let cell = b.alloca(4);
    b.store(Op::ci32(1), cell);
    b.counted_loop("i", Op::ci32(0), Op::Arg(0), |b, i| {
        let mut v = b.load(Type::I32, cell);
        for (k, op) in ops.iter().enumerate() {
            let c = Op::ci32(k as i32 * 7 + 3);
            v = match op % 5 {
                0 => b.add(v, i),
                1 => b.mul(v, c),
                2 => b.xor(v, c),
                3 => b.sub(v, i),
                _ => {
                    let t = b.mul(v, i);
                    b.add(t, c)
                }
            };
        }
        b.store(v, cell);
    });
    let out = b.load(Type::I32, cell);
    b.ret(out);
    let mut m = Module::new("prop");
    m.add_func(b.finish());
    m
}

fn profile_of(m: &Module, n: i64) -> Profile {
    let mut vm = Interpreter::new(m);
    vm.run("main", &[Value::I(n)]).unwrap();
    vm.take_profile()
}

/// Runs one specialization on fresh caches and returns the patched module
/// and report.
fn run_once(m: &Module, n: i64, telemetry: Telemetry) -> (Module, SpecializeReport) {
    let db = CircuitDb::build();
    let netlists = NetlistCache::new();
    let bitstreams = BitstreamCache::new();
    let estimator = PivPavEstimator::new();
    let profile = profile_of(m, n);
    let machine = Woolcano::new(64);
    let mut patched = m.clone();
    let report = specialize(
        &mut patched,
        &profile,
        &machine,
        &estimator,
        &db,
        &netlists,
        &bitstreams,
        &SpecializeConfig {
            telemetry,
            ..SpecializeConfig::default()
        },
    )
    .unwrap();
    (patched, report)
}

/// Everything deterministic a specialization produces, as one comparable
/// string (wall-clock fields excluded by construction).
fn fingerprint(patched: &Module, r: &SpecializeReport) -> String {
    format!(
        "{:?}|{}|{}|{}|{}|{}|{:?}",
        patched, r.const_time, r.map_time, r.par_time, r.sum_time, r.cache_hits, r.candidates
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn journal_reconciles_with_report(ops in prop::collection::vec(0u8..5, 2..6),
                                      n in 500i64..2500) {
        let m = module_of(&ops);
        let tel = Telemetry::enabled();
        let (_, report) = run_once(&m, n, tel.clone());
        let snap = tel.snapshot();

        let const_total = snap.sim_total("pivpav.c2v")
            + snap.sim_total("cad.syntax")
            + snap.sim_total("cad.xst")
            + snap.sim_total("cad.translate")
            + snap.sim_total("cad.bitgen");
        prop_assert_eq!(const_total, report.const_time);
        prop_assert_eq!(snap.sim_total("cad.map"), report.map_time);
        prop_assert_eq!(snap.sim_total("cad.par"), report.par_time);
        prop_assert_eq!(snap.sim_total("pipeline.candidate"), report.sum_time);
        prop_assert_eq!(
            snap.counter(names::BITSTREAM_CACHE_HITS) as usize,
            report.cache_hits
        );
        prop_assert_eq!(
            (snap.counter(names::BITSTREAM_CACHE_HITS)
                + snap.counter(names::BITSTREAM_CACHE_MISSES)) as usize,
            report.candidates.len()
        );
        // Every selected candidate got a span, and cache hits contribute
        // zero simulated time to the journal exactly as to the report.
        let totals = snap.phase_totals();
        if let Some(t) = totals.get("pipeline.candidate") {
            prop_assert_eq!(t.count as usize, report.candidates.len());
        } else {
            prop_assert!(report.candidates.is_empty());
        }
    }

    #[test]
    fn disabled_telemetry_is_observation_only(ops in prop::collection::vec(0u8..5, 2..6),
                                              n in 500i64..2500) {
        let m = module_of(&ops);
        let (p_off, r_off) = run_once(&m, n, Telemetry::disabled());
        let tel = Telemetry::enabled();
        let (p_on, r_on) = run_once(&m, n, tel);
        prop_assert_eq!(fingerprint(&p_off, &r_off), fingerprint(&p_on, &r_on));
    }
}
