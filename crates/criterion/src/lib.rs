//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset the workspace's `harness = false` benches use:
//! [`Criterion`], benchmark groups with `sample_size`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], `Bencher::iter`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurement is plain
//! wall-clock sampling (min / mean / max per benchmark printed to
//! stdout) — no statistics engine, plots, or baseline comparisons.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque hint that prevents the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Things usable as a benchmark name.
pub trait IntoBenchmarkName {
    /// The rendered name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkName for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_name(self) -> String {
        self
    }
}

/// Passed to the measured closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `f` (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std_black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: &str, name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{name}: no samples");
        return;
    }
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{group}/{name}: min {min:?}  mean {mean:?}  max {max:?}  ({} samples)",
        samples.len()
    );
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkName, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&self.name, &id.into_name(), &b.samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkName,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&self.name, &id.into_name(), &b.samples);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkName, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("f", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
        group.bench_with_input(BenchmarkId::new("p", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    fn a_bench(c: &mut Criterion) {
        c.benchmark_group("m")
            .sample_size(2)
            .bench_function("x", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(benches, a_bench);

    #[test]
    fn macros_expand() {
        benches();
    }
}
