//! Published per-application data from the paper (Tables I and II).
//!
//! These records serve two purposes: they parameterize the synthetic
//! application generator (so each generated app matches its original's
//! shape), and they are the "paper" column in every table reproduction in
//! `EXPERIMENTS.md`.

/// Application domain, deciding which half of Tables I/II a row lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// SPEC2006 / SPEC2000 ("scientific" in the paper).
    Scientific,
    /// MiBench / SciMark2 ("embedded").
    Embedded,
}

/// One application's published characteristics.
#[derive(Debug, Clone)]
pub struct AppProfile {
    /// Benchmark name (paper row label).
    pub name: &'static str,
    /// Domain.
    pub domain: Domain,
    /// Source files (Table I `files`).
    pub files: u32,
    /// Lines of code (Table I `LOC`).
    pub loc: u32,
    /// Compile-to-bitcode seconds (Table I `real [s]`).
    pub compile_s: f64,
    /// Basic blocks (Table I `blk`).
    pub blocks: u32,
    /// Bitcode instructions (Table I `ins`).
    pub insts: u32,
    /// VM runtime seconds (Table I `VM`).
    pub vm_s: f64,
    /// Native runtime seconds (Table I `Native`).
    pub native_s: f64,
    /// VM/native ratio (Table I `Ratio`).
    pub vm_ratio: f64,
    /// Upper-bound ASIP speedup, all candidates implemented (Table I
    /// `ASIP Ratio`).
    pub asip_ratio_max: f64,
    /// Live code fraction (Table I `live` %, as 0–1).
    pub live: f64,
    /// Dead code fraction.
    pub dead: f64,
    /// Constant code fraction.
    pub const_: f64,
    /// Kernel size as fraction of instructions (Table I `size` %).
    pub kernel_size: f64,
    /// Kernel coverage of execution time (Table I `freq` %).
    pub kernel_freq: f64,
    // ---- Table II ----
    /// Candidate-search real time (ms).
    pub search_ms: f64,
    /// Pruning efficiency.
    pub prune_efficiency: f64,
    /// Blocks surviving @50pS3L.
    pub pruned_blocks: u32,
    /// Instructions in surviving blocks.
    pub pruned_insts: u32,
    /// Candidates selected.
    pub candidates: u32,
    /// ASIP speedup with pruned selection (Table II `ratio`).
    pub asip_ratio_pruned: f64,
    /// Constant CAD overhead, minutes:seconds as seconds (Table II `const`).
    pub const_overhead_s: u64,
    /// Mapping time (Table II `map`), seconds.
    pub map_s: u64,
    /// Place-and-route time (Table II `par`), seconds.
    pub par_s: u64,
    /// Total overhead (Table II `sum`), seconds.
    pub sum_s: u64,
    /// Break-even time in seconds (Table II last column).
    pub break_even_s: u64,
}

const fn dhms(d: u64, h: u64, m: u64, s: u64) -> u64 {
    ((d * 24 + h) * 60 + m) * 60 + s
}

const fn ms(m: u64, s: u64) -> u64 {
    m * 60 + s
}

/// All 14 applications of the evaluation, paper values transcribed from
/// Tables I and II.
pub const PAPER_APPS: &[AppProfile] = &[
    AppProfile {
        name: "164.gzip",
        domain: Domain::Scientific,
        files: 20,
        loc: 8605,
        compile_s: 3.89,
        blocks: 1006,
        insts: 6925,
        vm_s: 23.71,
        native_s: 18.47,
        vm_ratio: 1.28,
        asip_ratio_max: 1.17,
        live: 0.3886,
        dead: 0.4466,
        const_: 0.1648,
        kernel_size: 0.0452,
        kernel_freq: 0.9105,
        search_ms: 1.44,
        prune_efficiency: 71.79,
        pruned_blocks: 2,
        pruned_insts: 100,
        candidates: 19,
        asip_ratio_pruned: 1.00,
        const_overhead_s: ms(56, 22),
        map_s: ms(13, 2),
        par_s: ms(18, 28),
        sum_s: ms(87, 52),
        break_even_s: dhms(206, 22, 15, 50),
    },
    AppProfile {
        name: "179.art",
        domain: Domain::Scientific,
        files: 1,
        loc: 1270,
        compile_s: 1.06,
        blocks: 376,
        insts: 2164,
        vm_s: 69.92,
        native_s: 74.70,
        vm_ratio: 0.94,
        asip_ratio_max: 1.46,
        live: 0.4205,
        dead: 0.2847,
        const_: 0.2948,
        kernel_size: 0.0504,
        kernel_freq: 0.9163,
        search_ms: 1.05,
        prune_efficiency: 23.37,
        pruned_blocks: 3,
        pruned_insts: 79,
        candidates: 9,
        asip_ratio_pruned: 1.01,
        const_overhead_s: ms(26, 42),
        map_s: ms(8, 58),
        par_s: ms(13, 20),
        sum_s: ms(49, 0),
        break_even_s: dhms(1, 12, 18, 13),
    },
    AppProfile {
        name: "183.equake",
        domain: Domain::Scientific,
        files: 1,
        loc: 1513,
        compile_s: 1.71,
        blocks: 257,
        insts: 2670,
        vm_s: 7.97,
        native_s: 6.79,
        vm_ratio: 1.17,
        asip_ratio_max: 2.08,
        live: 0.7539,
        dead: 0.0891,
        const_: 0.1569,
        kernel_size: 0.1532,
        kernel_freq: 0.948,
        search_ms: 2.25,
        prune_efficiency: 8.33,
        pruned_blocks: 2,
        pruned_insts: 244,
        candidates: 11,
        asip_ratio_pruned: 1.00,
        const_overhead_s: ms(32, 38),
        map_s: ms(7, 56),
        par_s: ms(16, 12),
        sum_s: ms(56, 46),
        break_even_s: dhms(259, 2, 28, 33),
    },
    AppProfile {
        name: "188.ammp",
        domain: Domain::Scientific,
        files: 31,
        loc: 13483,
        compile_s: 10.10,
        blocks: 4244,
        insts: 26647,
        vm_s: 23.18,
        native_s: 17.24,
        vm_ratio: 1.34,
        asip_ratio_max: 3.44,
        live: 0.1922,
        dead: 0.7089,
        const_: 0.0989,
        kernel_size: 0.0343,
        kernel_freq: 0.9579,
        search_ms: 3.27,
        prune_efficiency: 52.29,
        pruned_blocks: 1,
        pruned_insts: 382,
        candidates: 92,
        asip_ratio_pruned: 1.41,
        const_overhead_s: ms(272, 58),
        map_s: ms(102, 12),
        par_s: ms(142, 49),
        sum_s: ms(517, 59),
        break_even_s: dhms(0, 14, 56, 39),
    },
    AppProfile {
        name: "429.mcf",
        domain: Domain::Scientific,
        files: 25,
        loc: 2685,
        compile_s: 0.97,
        blocks: 284,
        insts: 1917,
        vm_s: 23.94,
        native_s: 24.06,
        vm_ratio: 1.00,
        asip_ratio_max: 1.08,
        live: 0.759,
        dead: 0.1309,
        const_: 0.1101,
        kernel_size: 0.2034,
        kernel_freq: 0.9418,
        search_ms: 1.05,
        prune_efficiency: 28.2,
        pruned_blocks: 1,
        pruned_insts: 77,
        candidates: 5,
        asip_ratio_pruned: 1.00,
        const_overhead_s: ms(14, 50),
        map_s: ms(4, 6),
        par_s: ms(7, 48),
        sum_s: ms(26, 44),
        break_even_s: dhms(213, 20, 5, 55),
    },
    AppProfile {
        name: "433.milc",
        domain: Domain::Scientific,
        files: 89,
        loc: 15042,
        compile_s: 10.88,
        blocks: 1538,
        insts: 14260,
        vm_s: 20.95,
        native_s: 16.43,
        vm_ratio: 1.28,
        asip_ratio_max: 1.26,
        live: 0.6167,
        dead: 0.3472,
        const_: 0.0361,
        kernel_size: 0.1083,
        kernel_freq: 0.9347,
        search_ms: 6.6,
        prune_efficiency: 26.71,
        pruned_blocks: 2,
        pruned_insts: 673,
        candidates: 9,
        asip_ratio_pruned: 1.00,
        const_overhead_s: ms(26, 42),
        map_s: ms(6, 44),
        par_s: ms(15, 8),
        sum_s: ms(48, 34),
        break_even_s: dhms(568, 6, 8, 5),
    },
    AppProfile {
        name: "444.namd",
        domain: Domain::Scientific,
        files: 32,
        loc: 5315,
        compile_s: 22.77,
        blocks: 5147,
        insts: 47534,
        vm_s: 39.94,
        native_s: 34.31,
        vm_ratio: 1.16,
        asip_ratio_max: 1.61,
        live: 0.3171,
        dead: 0.6281,
        const_: 0.0548,
        kernel_size: 0.0733,
        kernel_freq: 0.9359,
        search_ms: 7.68,
        prune_efficiency: 57.43,
        pruned_blocks: 3,
        pruned_insts: 776,
        candidates: 129,
        asip_ratio_pruned: 1.03,
        const_overhead_s: ms(382, 45),
        map_s: ms(117, 24),
        par_s: ms(178, 4),
        sum_s: ms(678, 13),
        break_even_s: dhms(6, 16, 0, 48),
    },
    AppProfile {
        name: "458.sjeng",
        domain: Domain::Scientific,
        files: 23,
        loc: 13847,
        compile_s: 8.49,
        blocks: 3373,
        insts: 20531,
        vm_s: 180.41,
        native_s: 155.66,
        vm_ratio: 1.16,
        asip_ratio_max: 1.13,
        live: 0.4849,
        dead: 0.4944,
        const_: 0.0207,
        kernel_size: 0.4622,
        kernel_freq: 1.0,
        search_ms: 1.8,
        prune_efficiency: 184.11,
        pruned_blocks: 3,
        pruned_insts: 121,
        candidates: 8,
        asip_ratio_pruned: 1.00,
        const_overhead_s: ms(23, 44),
        map_s: ms(6, 56),
        par_s: ms(12, 58),
        sum_s: ms(43, 38),
        break_even_s: dhms(2403, 1, 35, 57),
    },
    AppProfile {
        name: "470.lbm",
        domain: Domain::Scientific,
        files: 6,
        loc: 1155,
        compile_s: 1.36,
        blocks: 104,
        insts: 1988,
        vm_s: 5.68,
        native_s: 5.36,
        vm_ratio: 1.06,
        asip_ratio_max: 2.61,
        live: 0.5523,
        dead: 0.249,
        const_: 0.1987,
        kernel_size: 0.2938,
        kernel_freq: 0.9312,
        search_ms: 10.62,
        prune_efficiency: 2.43,
        pruned_blocks: 3,
        pruned_insts: 961,
        candidates: 179,
        asip_ratio_pruned: 2.53,
        const_overhead_s: ms(531, 7),
        map_s: ms(181, 51),
        par_s: ms(308, 24),
        sum_s: ms(1021, 22),
        break_even_s: dhms(1, 3, 29, 48),
    },
    AppProfile {
        name: "473.astar",
        domain: Domain::Scientific,
        files: 19,
        loc: 5829,
        compile_s: 3.68,
        blocks: 757,
        insts: 6010,
        vm_s: 66.00,
        native_s: 67.68,
        vm_ratio: 0.98,
        asip_ratio_max: 1.21,
        live: 0.7879,
        dead: 0.0531,
        const_: 0.1591,
        kernel_size: 0.083,
        kernel_freq: 0.9411,
        search_ms: 2.25,
        prune_efficiency: 38.2,
        pruned_blocks: 3,
        pruned_insts: 184,
        candidates: 33,
        asip_ratio_pruned: 1.00,
        const_overhead_s: ms(97, 54),
        map_s: ms(29, 46),
        par_s: ms(46, 59),
        sum_s: ms(174, 39),
        break_even_s: dhms(5149, 2, 19, 14),
    },
    AppProfile {
        name: "adpcm",
        domain: Domain::Embedded,
        files: 6,
        loc: 448,
        compile_s: 0.29,
        blocks: 43,
        insts: 305,
        vm_s: 29.22,
        native_s: 28.35,
        vm_ratio: 1.03,
        asip_ratio_max: 1.21,
        live: 0.8541,
        dead: 0.0129,
        const_: 0.133,
        kernel_size: 0.3992,
        kernel_freq: 0.9178,
        search_ms: 0.84,
        prune_efficiency: 5.59,
        pruned_blocks: 2,
        pruned_insts: 61,
        candidates: 8,
        asip_ratio_pruned: 1.08,
        const_overhead_s: ms(23, 44),
        map_s: ms(6, 0),
        par_s: ms(10, 34),
        sum_s: ms(40, 18),
        break_even_s: dhms(0, 4, 34, 10),
    },
    AppProfile {
        name: "fft",
        domain: Domain::Embedded,
        files: 3,
        loc: 187,
        compile_s: 0.26,
        blocks: 47,
        insts: 304,
        vm_s: 18.47,
        native_s: 18.49,
        vm_ratio: 1.00,
        asip_ratio_max: 2.94,
        live: 0.6061,
        dead: 0.2458,
        const_: 0.1481,
        kernel_size: 0.4558,
        kernel_freq: 0.9756,
        search_ms: 0.78,
        prune_efficiency: 3.78,
        pruned_blocks: 2,
        pruned_insts: 75,
        candidates: 14,
        asip_ratio_pruned: 2.40,
        const_overhead_s: ms(41, 32),
        map_s: ms(11, 44),
        par_s: ms(20, 56),
        sum_s: ms(74, 12),
        break_even_s: dhms(0, 1, 53, 7),
    },
    AppProfile {
        name: "sor",
        domain: Domain::Embedded,
        files: 3,
        loc: 74,
        compile_s: 0.13,
        blocks: 19,
        insts: 129,
        vm_s: 15.83,
        native_s: 15.85,
        vm_ratio: 1.00,
        asip_ratio_max: 6.93,
        live: 0.6364,
        dead: 0.0909,
        const_: 0.2727,
        kernel_size: 0.10,
        kernel_freq: 0.9999,
        search_ms: 0.24,
        prune_efficiency: 2.21,
        pruned_blocks: 1,
        pruned_insts: 22,
        candidates: 2,
        asip_ratio_pruned: 1.00,
        const_overhead_s: ms(5, 56),
        map_s: ms(4, 48),
        par_s: ms(10, 12),
        sum_s: ms(20, 56),
        break_even_s: dhms(0, 0, 24, 19),
    },
    AppProfile {
        name: "whetstone",
        domain: Domain::Embedded,
        files: 1,
        loc: 442,
        compile_s: 0.25,
        blocks: 44,
        insts: 284,
        vm_s: 28.66,
        native_s: 28.50,
        vm_ratio: 1.01,
        asip_ratio_max: 17.78,
        live: 0.3474,
        dead: 0.2632,
        const_: 0.3895,
        kernel_size: 0.0954,
        kernel_freq: 0.9327,
        search_ms: 0.54,
        prune_efficiency: 7.7,
        pruned_blocks: 2,
        pruned_insts: 49,
        candidates: 9,
        asip_ratio_pruned: 15.43,
        const_overhead_s: ms(26, 42),
        map_s: ms(11, 34),
        par_s: ms(25, 52),
        sum_s: ms(64, 8),
        break_even_s: dhms(0, 1, 8, 4),
    },
];

/// Looks up a paper profile by name.
pub fn paper_profile(name: &str) -> Option<&'static AppProfile> {
    PAPER_APPS.iter().find(|p| p.name == name)
}

/// Names of the scientific apps, in table order.
pub fn scientific_names() -> Vec<&'static str> {
    PAPER_APPS
        .iter()
        .filter(|p| p.domain == Domain::Scientific)
        .map(|p| p.name)
        .collect()
}

/// Names of the embedded apps, in table order.
pub fn embedded_names() -> Vec<&'static str> {
    PAPER_APPS
        .iter()
        .filter(|p| p.domain == Domain::Embedded)
        .map(|p| p.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_apps_ten_plus_four() {
        assert_eq!(PAPER_APPS.len(), 14);
        assert_eq!(scientific_names().len(), 10);
        assert_eq!(embedded_names().len(), 4);
    }

    #[test]
    fn coverage_fractions_sum_to_one() {
        for p in PAPER_APPS {
            let sum = p.live + p.dead + p.const_;
            assert!(
                (sum - 1.0).abs() < 0.01,
                "{}: coverage sums to {sum}",
                p.name
            );
        }
    }

    #[test]
    fn vm_ratio_consistent_with_times() {
        for p in PAPER_APPS {
            let ratio = p.vm_s / p.native_s;
            assert!(
                (ratio - p.vm_ratio).abs() < 0.02,
                "{}: ratio {} vs column {}",
                p.name,
                ratio,
                p.vm_ratio
            );
        }
    }

    #[test]
    fn sum_column_is_const_plus_map_plus_par() {
        for p in PAPER_APPS {
            let sum = p.const_overhead_s + p.map_s + p.par_s;
            assert_eq!(sum, p.sum_s, "{}: overhead sum mismatch", p.name);
        }
    }

    #[test]
    fn paper_averages_match_avg_rows() {
        // AVG-E sum column: 49:53 = 2993 s.
        let emb: Vec<_> = PAPER_APPS
            .iter()
            .filter(|p| p.domain == Domain::Embedded)
            .collect();
        let avg_sum: f64 = emb.iter().map(|p| p.sum_s as f64).sum::<f64>() / emb.len() as f64;
        assert!(
            (avg_sum - (49.0 * 60.0 + 53.0)).abs() < 2.0,
            "AVG-E sum {avg_sum}"
        );
        // AVG-E ASIP pruned ratio 4.98.
        let avg_ratio: f64 =
            emb.iter().map(|p| p.asip_ratio_pruned).sum::<f64>() / emb.len() as f64;
        assert!((avg_ratio - 4.98).abs() < 0.01);
        // AVG-S max ASIP ratio 1.71.
        let sci: Vec<_> = PAPER_APPS
            .iter()
            .filter(|p| p.domain == Domain::Scientific)
            .collect();
        let avg_max: f64 = sci.iter().map(|p| p.asip_ratio_max).sum::<f64>() / sci.len() as f64;
        assert!((avg_max - 1.705).abs() < 0.01, "AVG-S max {avg_max}");
    }

    #[test]
    fn lookup_by_name() {
        assert!(paper_profile("470.lbm").is_some());
        assert_eq!(paper_profile("470.lbm").unwrap().candidates, 179);
        assert!(paper_profile("never-heard-of-it").is_none());
    }
}
