//! The four embedded benchmarks (MiBench / SciMark2), §IV: `adpcm`, `fft`,
//! `sor`, and `whetstone`, hand-written against the IR builder as real
//! algorithm kernels.
//!
//! "Due to the unavailability of standard data sets for the embedded
//! applications, we have used our own data sets" — same here: each app
//! ships ≥ 2 synthetic datasets sized so the train set exercises the
//! computational kernel for an analyzable number of iterations.

use crate::app::{App, Dataset};
use crate::profile::Domain;
use jitise_ir::passes::{optimize_module, OptLevel};
use jitise_ir::{CmpOp, ExtFunc, FunctionBuilder, Global, Module, Operand as Op, Type};
use jitise_vm::exec_model::ExecModel;
use jitise_vm::Value;

/// IMA ADPCM step-size table (the standard 89-entry table).
const STEPSIZES: [i32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// IMA ADPCM index-adjust table.
const INDEX_ADJ: [i32; 8] = [-1, -1, -1, -1, 2, 4, 6, 8];

/// Appends a never-called error-handling/configuration function of roughly
/// `dead_ins` instructions. Real MiBench/SciMark builds carry such code
/// (option parsing, error paths) — it is what Table I's `dead` column
/// measures for the embedded apps (1.3 %–26.3 %).
fn add_dead_code(module: &mut Module, dead_ins: u32) {
    if dead_ins == 0 {
        return;
    }
    let mut b = FunctionBuilder::new("error_path", vec![Type::I32], Type::I32);
    let mut v = Op::Arg(0);
    for i in 0..dead_ins {
        v = match i % 4 {
            0 => b.add(v, Op::ci32(i as i32 + 1)),
            1 => b.xor(v, Op::ci32(0x7f)),
            2 => b.mul(v, Op::ci32(3)),
            _ => b.and(v, Op::ci32(0xffff)),
        };
    }
    b.ret(v);
    module.add_func(b.finish());
}

fn finish_app(
    name: &'static str,
    mut module: Module,
    datasets: Vec<Dataset>,
    jit_quality: f64,
) -> App {
    // Dead-code share calibrated to Table I (never executed, so it only
    // affects the static coverage statistics). Added after -O3 would be
    // pointless (DCE cannot see across the never-taken call edge anyway);
    // added before, the optimizer keeps it like a real build would.
    let dead_ins = match name {
        "adpcm" => 2,
        "fft" => 42,
        "sor" => 5,
        "whetstone" => 38,
        _ => 0,
    };
    add_dead_code(&mut module, dead_ins);
    optimize_module(&mut module, OptLevel::O3);
    jitise_ir::verify::verify_module(&module)
        .unwrap_or_else(|e| panic!("{name}: generated module invalid: {e}"));
    App {
        name,
        domain: Domain::Embedded,
        module,
        datasets,
        exec_model: ExecModel {
            jit_quality,
            ..ExecModel::default()
        },
        entry: "main",
    }
}

/// `adpcm` — IMA ADPCM encode + decode round trip over a synthetic PCM
/// waveform. Integer, branchy, memory-heavy: the paper measures only a
/// 1.21× ASIP ceiling for it.
pub fn adpcm() -> App {
    const N: u32 = 2048;
    let mut m = Module::new("adpcm");
    let steps = m.add_global(Global::of_i32("stepsize", &STEPSIZES));
    let adj = m.add_global(Global::of_i32("index_adj", &INDEX_ADJ));
    let pcm_in = m.add_global(Global::zeroed("pcm_in", Type::I32, N));
    let codes = m.add_global(Global::zeroed("codes", Type::I32, N));
    let pcm_out = m.add_global(Global::zeroed("pcm_out", Type::I32, N));

    // fn encode(n): IMA quantizer loop.
    let encode = {
        let mut b = FunctionBuilder::new("encode", vec![Type::I32], Type::Void);
        let input = b.global_addr(pcm_in);
        let out = b.global_addr(codes);
        let step_tbl = b.global_addr(steps);
        let adj_tbl = b.global_addr(adj);
        let state = b.alloca(8); // valpred @0, index @4
        b.store(Op::ci32(0), state);
        let index_cell = b.gep(state, Op::ci32(1), 4);
        b.store(Op::ci32(0), index_cell);
        b.counted_loop("i", Op::ci32(0), Op::Arg(0), |b, i| {
            let sp = b.gep(input, i, 4);
            let sample = b.load(Type::I32, sp);
            let valpred = b.load(Type::I32, state);
            let index = b.load(Type::I32, index_cell);
            let step_p = b.gep(step_tbl, index, 4);
            let step = b.load(Type::I32, step_p);
            // diff and sign.
            let diff0 = b.sub(sample, valpred);
            let neg = b.cmp(CmpOp::Slt, diff0, Op::ci32(0));
            let negdiff = b.neg(diff0);
            let diff = b.select(neg, negdiff, diff0);
            // 3-step quantization: delta = (diff<<2)/step approximated by
            // the canonical compare-subtract ladder.
            let d4 = b.shl(diff, Op::ci32(2));
            let q = b.sdiv(d4, step);
            let qc = b.cmp(CmpOp::Sgt, q, Op::ci32(7));
            let delta = b.select(qc, Op::ci32(7), q);
            // Reconstruct predicted value: vpdiff = (delta*step)>>2 + step>>3.
            let ds = b.mul(delta, step);
            let vp0 = b.ashr(ds, Op::ci32(2));
            let s8 = b.ashr(step, Op::ci32(3));
            let vpdiff = b.add(vp0, s8);
            let nvp = b.sub(valpred, vpdiff);
            let pvp = b.add(valpred, vpdiff);
            let val1 = b.select(neg, nvp, pvp);
            // Clamp to 16-bit.
            let hi = b.cmp(CmpOp::Sgt, val1, Op::ci32(32767));
            let val2 = b.select(hi, Op::ci32(32767), val1);
            let lo = b.cmp(CmpOp::Slt, val2, Op::ci32(-32768));
            let val3 = b.select(lo, Op::ci32(-32768), val2);
            b.store(val3, state);
            // Index update from the adjust table, clamped to 0..88.
            let adj_p = b.gep(adj_tbl, delta, 4);
            let da = b.load(Type::I32, adj_p);
            let idx1 = b.add(index, da);
            let ic = b.cmp(CmpOp::Slt, idx1, Op::ci32(0));
            let idx2 = b.select(ic, Op::ci32(0), idx1);
            let ic2 = b.cmp(CmpOp::Sgt, idx2, Op::ci32(88));
            let idx3 = b.select(ic2, Op::ci32(88), idx2);
            b.store(idx3, index_cell);
            // Emit the 4-bit code (sign in bit 3).
            let sign_bit = b.select(neg, Op::ci32(8), Op::ci32(0));
            let code = b.or(delta, sign_bit);
            let cp = b.gep(out, i, 4);
            b.store(code, cp);
        });
        b.ret_void();
        m.add_func(b.finish())
    };

    // fn decode(n): inverse quantizer.
    let decode = {
        let mut b = FunctionBuilder::new("decode", vec![Type::I32], Type::Void);
        let input = b.global_addr(codes);
        let out = b.global_addr(pcm_out);
        let step_tbl = b.global_addr(steps);
        let adj_tbl = b.global_addr(adj);
        let state = b.alloca(8);
        b.store(Op::ci32(0), state);
        let index_cell = b.gep(state, Op::ci32(1), 4);
        b.store(Op::ci32(0), index_cell);
        b.counted_loop("i", Op::ci32(0), Op::Arg(0), |b, i| {
            let cp = b.gep(input, i, 4);
            let code = b.load(Type::I32, cp);
            let valpred = b.load(Type::I32, state);
            let index = b.load(Type::I32, index_cell);
            let step_p = b.gep(step_tbl, index, 4);
            let step = b.load(Type::I32, step_p);
            let delta = b.and(code, Op::ci32(7));
            let sign = b.and(code, Op::ci32(8));
            let ds = b.mul(delta, step);
            let vp0 = b.ashr(ds, Op::ci32(2));
            let s8 = b.ashr(step, Op::ci32(3));
            let vpdiff = b.add(vp0, s8);
            let is_neg = b.cmp(CmpOp::Ne, sign, Op::ci32(0));
            let nvp = b.sub(valpred, vpdiff);
            let pvp = b.add(valpred, vpdiff);
            let val1 = b.select(is_neg, nvp, pvp);
            let hi = b.cmp(CmpOp::Sgt, val1, Op::ci32(32767));
            let val2 = b.select(hi, Op::ci32(32767), val1);
            let lo = b.cmp(CmpOp::Slt, val2, Op::ci32(-32768));
            let val3 = b.select(lo, Op::ci32(-32768), val2);
            b.store(val3, state);
            let adj_p = b.gep(adj_tbl, delta, 4);
            let da = b.load(Type::I32, adj_p);
            let idx1 = b.add(index, da);
            let ic = b.cmp(CmpOp::Slt, idx1, Op::ci32(0));
            let idx2 = b.select(ic, Op::ci32(0), idx1);
            let ic2 = b.cmp(CmpOp::Sgt, idx2, Op::ci32(88));
            let idx3 = b.select(ic2, Op::ci32(88), idx2);
            b.store(idx3, index_cell);
            let op = b.gep(out, i, 4);
            b.store(val3, op);
        });
        b.ret_void();
        m.add_func(b.finish())
    };

    // fn main(reps): fill waveform, run encode/decode `reps` times, return
    // an output checksum.
    {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let input = b.global_addr(pcm_in);
        // Synthetic waveform: sample = ((i*37) & 255) - 128 + ((i>>4)*3 & 63).
        b.counted_loop("fill", Op::ci32(0), Op::ci32(N as i32), |b, i| {
            let a = b.mul(i, Op::ci32(37));
            let a = b.and(a, Op::ci32(255));
            let a = b.sub(a, Op::ci32(128));
            let c = b.ashr(i, Op::ci32(4));
            let c = b.mul(c, Op::ci32(3));
            let c = b.and(c, Op::ci32(63));
            let s = b.add(a, c);
            let p = b.gep(input, i, 4);
            b.store(s, p);
        });
        b.counted_loop("reps", Op::ci32(0), Op::Arg(0), |b, _| {
            b.call(encode, vec![Op::ci32(N as i32)], Type::Void);
            b.call(decode, vec![Op::ci32(N as i32)], Type::Void);
        });
        let out = b.global_addr(pcm_out);
        let acc = b.alloca(4);
        b.store(Op::ci32(0), acc);
        b.counted_loop("sum", Op::ci32(0), Op::ci32(N as i32), |b, i| {
            let p = b.gep(out, i, 4);
            let v = b.load(Type::I32, p);
            let a = b.load(Type::I32, acc);
            let x = b.xor(a, v);
            let r = b.add(x, Op::ci32(1));
            b.store(r, acc);
        });
        let r = b.load(Type::I32, acc);
        b.ret(r);
        m.add_func(b.finish());
    }

    finish_app(
        "adpcm",
        m,
        vec![
            Dataset {
                name: "train",
                args: vec![Value::I(24)],
            },
            Dataset {
                name: "small",
                args: vec![Value::I(6)],
            },
        ],
        1.02,
    )
}

/// `fft` — radix-2 complex FFT (SciMark2 flavor) over 256-point arrays,
/// float butterflies with trig twiddles.
pub fn fft() -> App {
    const N: u32 = 256;
    const LOG2N: i32 = 8;
    let mut m = Module::new("fft");
    let re = m.add_global(Global::zeroed("re", Type::F64, N));
    let im = m.add_global(Global::zeroed("im", Type::F64, N));
    // Precomputed twiddle factors (table-based FFT, as SciMark2 does): the
    // trig calls happen once per transform in `twiddles`, keeping the
    // butterfly loop pure float arithmetic — the ISE-minable kernel.
    let wr_tbl = m.add_global(Global::zeroed("wr", Type::F64, N / 2));
    let wi_tbl = m.add_global(Global::zeroed("wi", Type::F64, N / 2));

    let twiddle_fn = {
        let mut b = FunctionBuilder::new("twiddles", vec![], Type::Void);
        let wr_p = b.global_addr(wr_tbl);
        let wi_p = b.global_addr(wi_tbl);
        b.counted_loop("tw", Op::ci32(0), Op::ci32((N / 2) as i32), |b, k| {
            let kf = b.sitofp(k, Type::F64);
            let ang = b.fmul(kf, Op::cf64(-2.0 * std::f64::consts::PI / N as f64));
            let c = b.call_ext(ExtFunc::Cos, vec![ang]);
            let s = b.call_ext(ExtFunc::Sin, vec![ang]);
            let pc = b.gep(wr_p, k, 8);
            let ps = b.gep(wi_p, k, 8);
            b.store(c, pc);
            b.store(s, ps);
        });
        b.ret_void();
        m.add_func(b.finish())
    };

    // fn fft(): in-place decimation-in-time, naive bit-reversal.
    let fft_fn = {
        let mut b = FunctionBuilder::new("fft", vec![], Type::Void);
        let re_p = b.global_addr(re);
        let im_p = b.global_addr(im);
        // Bit-reverse permutation.
        b.counted_loop("rev", Op::ci32(0), Op::ci32(N as i32), |b, i| {
            // j = bit_reverse(i, 8) via shift/mask ladder.
            let mut j = Op::ci32(0);
            for bit in 0..LOG2N {
                let m1 = b.ashr(i, Op::ci32(bit));
                let m2 = b.and(m1, Op::ci32(1));
                let m3 = b.shl(m2, Op::ci32(LOG2N - 1 - bit));
                j = b.or(j, m3);
            }
            let c = b.cmp(CmpOp::Slt, i, j);
            // Swap when i < j, via select-based conditional swap on both
            // arrays (branch-free keeps the block large, like -O3 output).
            for arr in [re_p, im_p] {
                let pi = b.gep(arr, i, 8);
                let pj = b.gep(arr, j, 8);
                let vi = b.load(Type::F64, pi);
                let vj = b.load(Type::F64, pj);
                let wi = b.select(c, vj, vi);
                let wj = b.select(c, vi, vj);
                b.store(wi, pi);
                b.store(wj, pj);
            }
        });
        // Stages. Twiddle index for butterfly k of a stage with group
        // length `len` is k * (N / len); the factors come from the table.
        let wr_p = b.global_addr(wr_tbl);
        let wi_p = b.global_addr(wi_tbl);
        b.counted_loop("stage", Op::ci32(0), Op::ci32(LOG2N), |b, s| {
            let len = b.shl(Op::ci32(2), s); // 2^(s+1)
            let half = b.ashr(len, Op::ci32(1));
            let stride = b.sdiv(Op::ci32(N as i32), len);
            let groups = stride;
            b.counted_loop("group", Op::ci32(0), groups, |b, g| {
                let base = b.mul(g, len);
                b.counted_loop("bf", Op::ci32(0), half, |b, k| {
                    let widx = b.mul(k, stride);
                    let pwr = b.gep(wr_p, widx, 8);
                    let pwi = b.gep(wi_p, widx, 8);
                    let wr = b.load(Type::F64, pwr);
                    let wi = b.load(Type::F64, pwi);
                    let t = b.add(base, k);
                    let u = b.add(t, half);
                    let pr_t = b.gep(re_p, t, 8);
                    let pi_t = b.gep(im_p, t, 8);
                    let pr_u = b.gep(re_p, u, 8);
                    let pi_u = b.gep(im_p, u, 8);
                    let ar = b.load(Type::F64, pr_t);
                    let ai = b.load(Type::F64, pi_t);
                    let br_ = b.load(Type::F64, pr_u);
                    let bi = b.load(Type::F64, pi_u);
                    // tr = wr*br - wi*bi; ti = wr*bi + wi*br — the butterfly
                    // kernel the ISE mines.
                    let m1 = b.fmul(wr, br_);
                    let m2 = b.fmul(wi, bi);
                    let tr = b.fsub(m1, m2);
                    let m3 = b.fmul(wr, bi);
                    let m4 = b.fmul(wi, br_);
                    let ti = b.fadd(m3, m4);
                    let or1 = b.fadd(ar, tr);
                    let oi1 = b.fadd(ai, ti);
                    let or2 = b.fsub(ar, tr);
                    let oi2 = b.fsub(ai, ti);
                    b.store(or1, pr_t);
                    b.store(oi1, pi_t);
                    b.store(or2, pr_u);
                    b.store(oi2, pi_u);
                });
            });
        });
        b.ret_void();
        m.add_func(b.finish())
    };

    // fn main(reps): init arrays, run fft reps times, return checksum.
    {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let re_p = b.global_addr(re);
        let im_p = b.global_addr(im);
        b.call(twiddle_fn, vec![], Type::Void);
        b.counted_loop("reps", Op::ci32(0), Op::Arg(0), |b, _| {
            b.counted_loop("init", Op::ci32(0), Op::ci32(N as i32), |b, i| {
                let x = b.sitofp(i, Type::F64);
                let v = b.fmul(x, Op::cf64(0.03125));
                let pi_ = b.gep(im_p, i, 8);
                let pr = b.gep(re_p, i, 8);
                b.store(v, pr);
                b.store(Op::cf64(0.0), pi_);
            });
            b.call(fft_fn, vec![], Type::Void);
        });
        let p1 = b.gep(re_p, Op::ci32(1), 8);
        let v = b.load(Type::F64, p1);
        let scaled = b.fmul(v, Op::cf64(1000.0));
        let out = b.fptosi(scaled, Type::I32);
        b.ret(out);
        m.add_func(b.finish());
    }

    finish_app(
        "fft",
        m,
        vec![
            Dataset {
                name: "train",
                args: vec![Value::I(10)],
            },
            Dataset {
                name: "small",
                args: vec![Value::I(3)],
            },
        ],
        1.0,
    )
}

/// `sor` — SciMark2 Jacobi successive over-relaxation on a 64×64 grid; a
/// single ultra-hot float block, hence the paper's 6.93× ceiling.
pub fn sor() -> App {
    const DIM: i32 = 64;
    let mut m = Module::new("sor");
    let grid = m.add_global(Global::zeroed("grid", Type::F64, (DIM * DIM) as u32));

    let relax = {
        let mut b = FunctionBuilder::new("relax", vec![Type::I32], Type::Void);
        let g = b.global_addr(grid);
        b.counted_loop("it", Op::ci32(0), Op::Arg(0), |b, _| {
            b.counted_loop("i", Op::ci32(1), Op::ci32(DIM - 1), |b, i| {
                let row = b.mul(i, Op::ci32(DIM));
                b.counted_loop("j", Op::ci32(1), Op::ci32(DIM - 1), |b, j| {
                    let idx = b.add(row, j);
                    let up = b.sub(idx, Op::ci32(DIM));
                    let down = b.add(idx, Op::ci32(DIM));
                    let left = b.sub(idx, Op::ci32(1));
                    let right = b.add(idx, Op::ci32(1));
                    let pc = b.gep(g, idx, 8);
                    let pu = b.gep(g, up, 8);
                    let pd = b.gep(g, down, 8);
                    let pl = b.gep(g, left, 8);
                    let pr = b.gep(g, right, 8);
                    let c = b.load(Type::F64, pc);
                    let u = b.load(Type::F64, pu);
                    let d = b.load(Type::F64, pd);
                    let l = b.load(Type::F64, pl);
                    let r = b.load(Type::F64, pr);
                    // omega*0.25*(u+d+l+r) + (1-omega)*c, omega = 1.25.
                    let s1 = b.fadd(u, d);
                    let s2 = b.fadd(l, r);
                    let s3 = b.fadd(s1, s2);
                    let w = b.fmul(s3, Op::cf64(1.25 * 0.25));
                    let keep = b.fmul(c, Op::cf64(1.0 - 1.25));
                    let out = b.fadd(w, keep);
                    b.store(out, pc);
                });
            });
        });
        b.ret_void();
        m.add_func(b.finish())
    };

    {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let g = b.global_addr(grid);
        b.counted_loop("init", Op::ci32(0), Op::ci32(DIM * DIM), |b, i| {
            let x = b.srem(i, Op::ci32(17));
            let xf = b.sitofp(x, Type::F64);
            let v = b.fmul(xf, Op::cf64(0.0625));
            let p = b.gep(g, i, 8);
            b.store(v, p);
        });
        b.call(relax, vec![Op::Arg(0)], Type::Void);
        let center = b.gep(g, Op::ci32(DIM * DIM / 2 + DIM / 2), 8);
        let v = b.load(Type::F64, center);
        let scaled = b.fmul(v, Op::cf64(1_000_000.0));
        let out = b.fptosi(scaled, Type::I32);
        b.ret(out);
        m.add_func(b.finish());
    }

    finish_app(
        "sor",
        m,
        vec![
            Dataset {
                name: "train",
                args: vec![Value::I(40)],
            },
            Dataset {
                name: "small",
                args: vec![Value::I(10)],
            },
        ],
        1.0,
    )
}

/// `whetstone` — the classic synthetic float benchmark: arithmetic modules
/// with long dependent float chains (the paper's best case at 17.78×).
pub fn whetstone() -> App {
    let mut m = Module::new("whetstone");
    let e1 = m.add_global(Global::of_f64("e1", &[1.0, -1.0, -1.0, -1.0]));

    // Module N8-style procedure: p(x, y) -> t*(x + y) chains.
    let p3 = {
        let mut b = FunctionBuilder::new("p3", vec![Type::F64, Type::F64], Type::F64);
        let t = Op::cf64(0.499975);
        let t2 = Op::cf64(2.0);
        let mut x = Op::Arg(0);
        let mut y = Op::Arg(1);
        // x = t*(x+y); y = t*(x+y); repeated — a pure float dependency
        // chain, ideal ISE material.
        for _ in 0..4 {
            let s = b.fadd(x, y);
            x = b.fmul(t, s);
            let s2 = b.fadd(x, y);
            let num = b.fmul(t, s2);
            y = b.fdiv(num, t2);
        }
        let out = b.fadd(x, y);
        b.ret(out);
        m.add_func(b.finish())
    };

    // fn main(reps): modules N1 (simple identifiers), N2 (array elements),
    // N6 (integer arithmetic), N7 (procedure calls), N11 (standard
    // functions — stays in software: ext calls are forbidden for ISE).
    {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let e1_p = b.global_addr(e1);
        let acc = b.alloca(8);
        b.store(Op::cf64(0.0), acc);
        let int_acc = b.alloca(4);
        b.store(Op::ci32(7), int_acc);

        // N1: simple identifiers — long float chain; the dominant module
        // (whetstone's kernel concentrates in its arithmetic modules).
        let n1 = b.mul(Op::Arg(0), Op::ci32(45));
        b.counted_loop("n1", Op::ci32(0), n1, |b, i| {
            let t = Op::cf64(0.499975);
            let xf = b.sitofp(i, Type::F64);
            let x0 = b.fmul(xf, Op::cf64(1e-3));
            let x1 = b.fadd(x0, Op::cf64(1.0));
            let a = b.fadd(x1, x0);
            let a2 = b.fsub(a, x0);
            let a3 = b.fmul(a2, t);
            let c = b.fadd(a3, x1);
            let c2 = b.fsub(c, a3);
            let c3 = b.fmul(c2, t);
            let d = b.fadd(c3, a3);
            let d2 = b.fmul(d, t);
            let prev = b.load(Type::F64, acc);
            let s = b.fadd(prev, d2);
            b.store(s, acc);
        });

        // N2: array elements — e1[] updates, the second kernel.
        let n2 = b.mul(Op::Arg(0), Op::ci32(25));
        b.counted_loop("n2", Op::ci32(0), n2, |b, _| {
            let t = Op::cf64(0.499975);
            let p0 = b.gep(e1_p, Op::ci32(0), 8);
            let p1 = b.gep(e1_p, Op::ci32(1), 8);
            let p2 = b.gep(e1_p, Op::ci32(2), 8);
            let p3_ = b.gep(e1_p, Op::ci32(3), 8);
            let v0 = b.load(Type::F64, p0);
            let v1 = b.load(Type::F64, p1);
            let v2 = b.load(Type::F64, p2);
            let v3 = b.load(Type::F64, p3_);
            let s1 = b.fadd(v0, v1);
            let s2 = b.fadd(s1, v2);
            let s3 = b.fsub(s2, v3);
            let w0 = b.fmul(s3, t);
            let s4 = b.fadd(w0, v2);
            let s5 = b.fsub(s4, v3);
            let w1 = b.fmul(s5, t);
            let s6 = b.fsub(w1, v0);
            let s7 = b.fadd(s6, v3);
            let w2 = b.fmul(s7, t);
            let s8 = b.fadd(w2, w0);
            let s9 = b.fsub(s8, w1);
            let w3 = b.fmul(s9, t);
            b.store(w0, p0);
            b.store(w1, p1);
            b.store(w2, p2);
            b.store(w3, p3_);
        });

        // N6: integer arithmetic (cold by comparison).
        let n6 = b.mul(Op::Arg(0), Op::ci32(3));
        b.counted_loop("n6", Op::ci32(0), n6, |b, i| {
            let j = b.load(Type::I32, int_acc);
            let a = b.mul(j, Op::ci32(3));
            let c = b.sub(a, j);
            let d = b.add(c, i);
            let e = b.and(d, Op::ci32(0xffff));
            b.store(e, int_acc);
        });

        // N7: procedure calls with float chains.
        let n7 = b.mul(Op::Arg(0), Op::ci32(2));
        b.counted_loop("n7", Op::ci32(0), n7, |b, i| {
            let xf = b.sitofp(i, Type::F64);
            let x = b.fmul(xf, Op::cf64(0.5));
            let r = b.call(p3, vec![x, x], Type::F64);
            let prev = b.load(Type::F64, acc);
            let s = b.fadd(prev, r);
            b.store(s, acc);
        });

        // N11: standard functions (sqrt/exp/log) — software-only work,
        // scaled down so the accelerable kernels dominate (paper: 93 %).
        let n11 = b.ashr(Op::Arg(0), Op::ci32(3));
        b.counted_loop("n11", Op::ci32(0), n11, |b, i| {
            let xf = b.sitofp(i, Type::F64);
            let x = b.fadd(xf, Op::cf64(1.0));
            let r1 = b.call_ext(ExtFunc::Sqrt, vec![x]);
            let r2 = b.call_ext(ExtFunc::Log, vec![r1]);
            let r3 = b.call_ext(ExtFunc::Exp, vec![r2]);
            let prev = b.load(Type::F64, acc);
            let s = b.fadd(prev, r3);
            b.store(s, acc);
        });

        let facc = b.load(Type::F64, acc);
        let iacc = b.load(Type::I32, int_acc);
        let fi = b.fptosi(facc, Type::I32);
        let out = b.xor(fi, iacc);
        b.ret(out);
        m.add_func(b.finish());
    }

    finish_app(
        "whetstone",
        m,
        vec![
            Dataset {
                name: "train",
                args: vec![Value::I(900)],
            },
            Dataset {
                name: "small",
                args: vec![Value::I(200)],
            },
        ],
        1.01,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_vm::Interpreter;

    fn run(app: &App, n: i64) -> i64 {
        let mut vm = Interpreter::new(&app.module);
        vm.run("main", &[Value::I(n)]).unwrap().ret.unwrap().as_i()
    }

    #[test]
    fn adpcm_roundtrip_deterministic() {
        let app = adpcm();
        let a = run(&app, 2);
        let b = run(&app, 2);
        assert_eq!(a, b);
        // Decode output should track the input waveform: checksum nonzero.
        assert_ne!(a, 0);
    }

    #[test]
    fn fft_energy_preserved_shape() {
        let app = fft();
        // Different rep counts exercise the same transform; result is the
        // checksum of the last transform and must be identical.
        assert_eq!(run(&app, 1), run(&app, 3));
    }

    #[test]
    fn sor_converges_toward_smooth_grid() {
        let app = sor();
        let few = run(&app, 2);
        let many = run(&app, 50);
        // With omega 1.25 and zero boundary the interior decays.
        assert!(many.abs() <= few.abs().max(1));
    }

    #[test]
    fn whetstone_scales_with_reps() {
        let app = whetstone();
        let a = run(&app, 10);
        let b = run(&app, 20);
        assert_ne!(a, b, "more reps change the accumulator");
    }

    #[test]
    fn block_and_inst_counts_in_paper_ballpark() {
        // The generated apps should be the same order of magnitude as the
        // originals (Table I: adpcm 43/305, fft 47/304, sor 19/129,
        // whetstone 44/284 blocks/instructions).
        for (app, blk_lo, blk_hi, ins_lo, ins_hi) in [
            (adpcm(), 15, 90, 120, 600),
            (fft(), 15, 95, 120, 620),
            (sor(), 8, 40, 40, 260),
            (whetstone(), 15, 90, 90, 570),
        ] {
            let blk = app.module.num_blocks();
            let ins = app.module.num_insts();
            assert!(
                (blk_lo..=blk_hi).contains(&blk),
                "{}: {blk} blocks outside [{blk_lo},{blk_hi}]",
                app.name
            );
            assert!(
                (ins_lo..=ins_hi).contains(&ins),
                "{}: {ins} insts outside [{ins_lo},{ins_hi}]",
                app.name
            );
        }
    }

    #[test]
    fn hot_kernels_dominate_profiles() {
        for app in [adpcm(), fft(), sor(), whetstone()] {
            let p = app.run_dataset(0);
            let hot = p.hottest_blocks();
            let top_share = hot[0].1 as f64 / p.total_cycles() as f64;
            assert!(
                top_share > 0.15,
                "{}: hottest block only {top_share:.2} of time",
                app.name
            );
        }
    }
}
