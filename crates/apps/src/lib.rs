//! # jitise-apps — the 14 benchmark applications
//!
//! The paper's evaluation suite (§IV): ten scientific applications from
//! SPEC2000/SPEC2006 and four embedded applications from MiBench/SciMark2.
//!
//! * [`profile`] — the published Table I/II data for every application
//!   (the calibration source and the "paper" column of every reproduced
//!   table).
//! * [`embedded`] — `adpcm`, `fft`, `sor`, `whetstone` as hand-written IR
//!   kernels (real algorithms).
//! * [`synth`] — the shape-calibrated synthetic generator standing in for
//!   the SPEC applications (see DESIGN.md §1).
//! * [`app`] — the [`app::App`] bundle: module + datasets + VM model, and
//!   the registry ([`app::App::build`], [`app::App::all`]).

pub mod app;
pub mod embedded;
pub mod profile;
pub mod synth;

pub use app::{App, Dataset};
pub use profile::{
    embedded_names, paper_profile, scientific_names, AppProfile, Domain, PAPER_APPS,
};
pub use synth::{build_phased, PhasedSpec};
