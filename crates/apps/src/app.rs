//! Application bundles.
//!
//! An [`App`] is everything the evaluation needs about one benchmark: its
//! IR module, at least two input datasets (the coverage analysis of §IV-C
//! requires comparing runs), a VM-overhead model calibrated to the paper's
//! measured VM/native ratio, and a link to the paper's published profile.

use crate::embedded;
use crate::profile::{paper_profile, AppProfile, Domain};
use crate::synth;
use jitise_base::SimTime;
use jitise_ir::Module;
use jitise_vm::exec_model::ExecModel;
use jitise_vm::{Interpreter, Profile, RunConfig, Value, VmTier};

/// One input data set.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Data-set label (`train`, `ref`, …).
    pub name: &'static str,
    /// Arguments passed to the entry function.
    pub args: Vec<Value>,
}

/// A benchmark application, ready to execute and analyze.
pub struct App {
    /// Benchmark name (matches [`crate::profile::PAPER_APPS`]).
    pub name: &'static str,
    /// Domain.
    pub domain: Domain,
    /// The compiled (optimized) module.
    pub module: Module,
    /// Input datasets; index 0 is the "train" set used for headline
    /// numbers, further sets exist for coverage classification.
    pub datasets: Vec<Dataset>,
    /// Dynamic-translation model calibrated to the paper's `Ratio` column.
    pub exec_model: ExecModel,
    /// Entry function name.
    pub entry: &'static str,
}

impl App {
    /// Builds an application by benchmark name.
    pub fn build(name: &str) -> Option<App> {
        match name {
            "adpcm" => Some(embedded::adpcm()),
            "fft" => Some(embedded::fft()),
            "sor" => Some(embedded::sor()),
            "whetstone" => Some(embedded::whetstone()),
            other => {
                let profile = paper_profile(other)?;
                if profile.domain == Domain::Scientific {
                    Some(synth::build_scientific(profile))
                } else {
                    None
                }
            }
        }
    }

    /// Builds all 14 applications in table order.
    pub fn all() -> Vec<App> {
        crate::profile::PAPER_APPS
            .iter()
            .map(|p| App::build(p.name).expect("registry covers all paper apps"))
            .collect()
    }

    /// Builds only the embedded applications.
    pub fn embedded() -> Vec<App> {
        crate::profile::embedded_names()
            .into_iter()
            .map(|n| App::build(n).expect("embedded app"))
            .collect()
    }

    /// The paper's published profile for this app.
    pub fn paper(&self) -> &'static AppProfile {
        paper_profile(self.name).expect("every app has a paper profile")
    }

    /// Runs one dataset and returns its profile.
    pub fn run_dataset(&self, idx: usize) -> Profile {
        self.run_dataset_tier(idx, VmTier::Interp)
    }

    /// Runs one dataset on the given execution tier. Both tiers produce
    /// bit-identical profiles; the fast tier just gets there sooner.
    pub fn run_dataset_tier(&self, idx: usize, tier: VmTier) -> Profile {
        let ds = &self.datasets[idx];
        let mut vm = Interpreter::with_config(
            &self.module,
            jitise_vm::CostModel::ppc405(),
            RunConfig::default(),
        );
        vm.set_tier(tier);
        vm.run(self.entry, &ds.args)
            .unwrap_or_else(|e| panic!("{}: dataset {} failed: {e}", self.name, ds.name));
        vm.take_profile()
    }

    /// Profiles every dataset (for coverage classification).
    pub fn profile_all_datasets(&self) -> Vec<Profile> {
        self.profile_all_datasets_tier(VmTier::Interp)
    }

    /// Profiles every dataset on the given execution tier.
    pub fn profile_all_datasets_tier(&self, tier: VmTier) -> Vec<Profile> {
        (0..self.datasets.len())
            .map(|i| self.run_dataset_tier(i, tier))
            .collect()
    }

    /// The scale factor extrapolating the measured train-set profile to the
    /// paper's reported VM runtime: the paper ran full benchmark inputs
    /// ("for a few or several tens of seconds"), which would take hours to
    /// interpret 1:1; we run a shortened input and scale the profile (see
    /// DESIGN.md §1).
    pub fn time_scale(&self, measured: &Profile) -> u64 {
        let cost = jitise_vm::CostModel::ppc405();
        let measured_time = cost.cycles_to_time(measured.total_cycles());
        if measured_time == SimTime::ZERO {
            return 1;
        }
        let target = SimTime::from_secs_f64(self.paper().native_s);
        (target.as_nanos() / measured_time.as_nanos().max(1)).max(1)
    }

    /// Train-set profile scaled to the paper's runtime.
    pub fn scaled_profile(&self) -> Profile {
        let p = self.run_dataset(0);
        let scale = self.time_scale(&p);
        p.scaled(scale)
    }

    /// Models the compile-to-bitcode time (Table I `real [s]`): dominated
    /// by parsing/IR-generation (∝ LOC) plus -O3 (∝ instructions). The
    /// coefficients are fit to the paper's llvm-gcc measurements.
    pub fn compile_time_model(&self) -> SimTime {
        let p = self.paper();
        let s = 0.08 + 0.00035 * p.loc as f64 + 0.00038 * p.insts as f64;
        SimTime::from_secs_f64(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_embedded() {
        for name in ["adpcm", "fft", "sor", "whetstone"] {
            let app = App::build(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(app.name, name);
            assert!(app.datasets.len() >= 2, "{name}: need >=2 datasets");
            jitise_ir::verify::verify_module(&app.module)
                .unwrap_or_else(|e| panic!("{name}: invalid module: {e}"));
        }
    }

    #[test]
    fn unknown_app_is_none() {
        assert!(App::build("999.nonesuch").is_none());
    }

    #[test]
    fn embedded_apps_execute_and_profile() {
        for app in App::embedded() {
            let p = app.run_dataset(0);
            assert!(p.total_cycles() > 0, "{}: no cycles recorded", app.name);
            assert!(p.total_insts() > 0);
        }
    }

    #[test]
    fn datasets_differ_in_work() {
        let app = App::build("sor").unwrap();
        let p0 = app.run_dataset(0);
        let p1 = app.run_dataset(1);
        assert_ne!(
            p0.total_cycles(),
            p1.total_cycles(),
            "datasets must exercise different amounts of work"
        );
    }

    #[test]
    fn time_scale_reasonable() {
        let app = App::build("fft").unwrap();
        let p = app.run_dataset(0);
        let scale = app.time_scale(&p);
        assert!(scale >= 1);
        let scaled = p.scaled(scale);
        let t = jitise_vm::CostModel::ppc405().cycles_to_time(scaled.total_cycles());
        let target = app.paper().native_s;
        // Integer scaling: within a factor of 2 of the target runtime.
        assert!(
            t.as_secs_f64() > target * 0.4 && t.as_secs_f64() < target * 2.1,
            "scaled time {} vs target {target}",
            t.as_secs_f64()
        );
    }

    #[test]
    fn compile_model_shape() {
        // Embedded compile times must be much smaller than scientific ones
        // (paper: 28x on average).
        let fft = App::build("fft").unwrap().compile_time_model();
        let namd = App::build("444.namd").unwrap().compile_time_model();
        assert!(namd.as_secs_f64() > 10.0 * fft.as_secs_f64());
    }
}
