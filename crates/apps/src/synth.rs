//! Synthetic scientific applications.
//!
//! The paper evaluates ten SPEC2000/SPEC2006 applications. Their sources
//! and data sets cannot be redistributed, so each is reproduced as a
//! *shape-calibrated synthetic program* (see DESIGN.md §1): the generator
//! reads the application's published profile (Table I/II) and emits a
//! module with
//!
//! * the same basic-block and instruction totals,
//! * the same live/dead/constant instruction split (by construction:
//!   sections whose execution frequency varies with / is independent of /
//!   never reaches the input),
//! * a hot kernel whose largest blocks match the post-pruning `blk`/`ins`
//!   columns, subdivided into candidate-sized arithmetic segments between
//!   hardware-infeasible memory operations (reproducing the paper's ~7
//!   instructions-per-candidate observation and its cause, §V-D),
//! * an operator mix (integer vs float vs memory) steering the achievable
//!   ASIP speedup toward the app's published ratio.
//!
//! Everything is deterministic per application name.

use crate::app::{App, Dataset};
use crate::profile::AppProfile;
use jitise_base::hash::SigHasher;
use jitise_base::rng::SplitMix64;
use jitise_ir::{FunctionBuilder, Global, GlobalId, Module, Operand as Op, Type};
use jitise_vm::exec_model::ExecModel;
use jitise_vm::Value;

/// Per-app generation knobs not derivable from the paper tables.
struct Knobs {
    /// Fraction of float operations in hot-segment arithmetic.
    hot_float: f64,
    /// Arithmetic-segment length between forbidden ops in hot blocks
    /// (controls candidate size ≈ this, and candidate count ≈
    /// pruned_insts / (seg + 2)).
    seg_len: u32,
    /// Inner iterations of the kernel loop per outer iteration.
    hot_iters: i32,
    /// Fraction of multiplies among integer arithmetic (profitability).
    int_mul: f64,
}

fn knobs(p: &AppProfile) -> Knobs {
    // seg chosen so pruned_insts / (seg_len + overhead) ≈ candidates.
    let seg = if p.candidates > 0 {
        ((p.pruned_insts as f64 / p.candidates as f64) - 2.0)
            .round()
            .clamp(3.0, 24.0) as u32
    } else {
        7
    };
    // (hot_float, int_mul): the operator-mix pair steering per-app
    // profitability toward the paper's pruned ASIP ratios — lbm/ammp are
    // the only scientific apps with visible speedups (2.53 / 1.41); the
    // integer SPEC codes sit at ≈ 1.00 because their candidates are mostly
    // marginal (cheap single-cycle ALU ops).
    // Values fit against the measured transfer curve ratio ≈
    // 1/(1 - 40f/(40f + 3.8)) so each app's pruned ASIP ratio lands near
    // its Table II value (lbm 2.53, ammp 1.41, namd 1.03, rest ≈ 1.0x).
    let (hot_float, int_mul) = match p.name {
        "470.lbm" => (0.14, 0.10),
        "188.ammp" => (0.045, 0.10),
        "444.namd" => (0.008, 0.10),
        "183.equake" => (0.006, 0.10),
        "433.milc" => (0.005, 0.10),
        "179.art" => (0.008, 0.10),
        _ => (0.0, 0.08), // gzip, mcf, sjeng, astar: integer codes
    };
    Knobs {
        hot_float,
        seg_len: seg,
        hot_iters: 260,
        int_mul,
    }
}

/// Deterministic seed from the app name.
fn seed_of(name: &str) -> u64 {
    let mut h = SigHasher::new();
    h.write_str(name);
    h.finish()
}

/// Emits one straight-line block body of `size` instructions into the
/// current block: arithmetic segments of `seg_len` separated by
/// loads/stores to the data globals (the hardware-infeasible breakers).
/// Returns the final integer value for checksum chaining.
#[allow(clippy::too_many_arguments)]
fn emit_body(
    b: &mut FunctionBuilder,
    rng: &mut SplitMix64,
    size: u32,
    seg_len: u32,
    float_frac: f64,
    int_mul: f64,
    int_data: GlobalId,
    float_data: GlobalId,
    seed_val: Op,
) -> Op {
    let int_base = b.global_addr(int_data);
    let float_base = b.global_addr(float_data);
    let mut emitted = 2u32;
    let mut v = seed_val; // running int value
    let mut w: Option<Op> = None; // running float value
    let mut slot = 0i32;

    while emitted < size {
        // One arithmetic segment.
        let is_float_seg = rng.next_f64() < float_frac;
        let this_seg = seg_len.min(size - emitted);
        if is_float_seg {
            // Load a float seed if none live.
            let mut cur = match w {
                Some(x) => x,
                None => {
                    let p = b.gep(float_base, Op::ci32(slot & 63), 8);
                    emitted += 2;
                    slot += 1;
                    b.load(Type::F64, p)
                }
            };
            for k in 0..this_seg {
                cur = match rng.next_index(4) {
                    0 => b.fmul(cur, Op::cf64(0.995)),
                    1 => b.fadd(cur, Op::cf64(0.125 + k as f64 * 0.01)),
                    2 => {
                        let t = b.fmul(cur, Op::cf64(0.5));
                        emitted += 1;
                        b.fsub(cur, t)
                    }
                    _ => b.fmul(cur, Op::cf64(1.003)),
                };
                emitted += 1;
            }
            // Forbidden breaker: store the float.
            let p = b.gep(float_base, Op::ci32(slot & 63), 8);
            b.store(cur, p);
            emitted += 2;
            slot += 1;
            w = Some(cur);
        } else {
            for k in 0..this_seg {
                v = match (rng.next_f64() < int_mul, rng.next_index(4)) {
                    (true, _) => b.mul(v, Op::ci32(3 + (k as i32 & 3) * 2)),
                    (false, 0) => b.add(v, Op::ci32(k as i32 + 1)),
                    (false, 1) => b.xor(v, Op::ci32(0x5a5a)),
                    (false, 2) => {
                        let t = b.shl(v, Op::ci32(1));
                        emitted += 1;
                        b.sub(t, v)
                    }
                    (false, _) => b.and(v, Op::ci32(0x00ff_ffff)),
                };
                emitted += 1;
            }
            // Forbidden breaker: store + reload from the int array.
            let p = b.gep(int_base, Op::ci32(slot & 255), 4);
            b.store(v, p);
            emitted += 2;
            slot += 1;
        }
    }
    v
}

/// Emits a chain of `nblocks` blocks totalling ~`total_ins` instructions
/// inside the current function, leaving the insertion point in the last
/// block. Returns the final running value.
#[allow(clippy::too_many_arguments)]
fn emit_chain(
    b: &mut FunctionBuilder,
    rng: &mut SplitMix64,
    label: &str,
    nblocks: u32,
    total_ins: u32,
    seg_len: u32,
    float_frac: f64,
    int_mul: f64,
    int_data: GlobalId,
    float_data: GlobalId,
    seed: Op,
) -> Op {
    let nblocks = nblocks.max(1);
    let per_block = (total_ins / nblocks).max(3);
    let mut v = seed;
    for i in 0..nblocks {
        let blk = b.new_block(format!("{label}.{i}"));
        b.br(blk);
        b.switch_to(blk);
        v = emit_body(
            b, rng, per_block, seg_len, float_frac, int_mul, int_data, float_data, v,
        );
    }
    v
}

/// Builds one synthetic scientific application from its paper profile.
pub fn build_scientific(p: &AppProfile) -> App {
    let mut rng = SplitMix64::new(seed_of(p.name));
    let k = knobs(p);
    let mut m = Module::new(p.name);
    let int_data = m.add_global(Global::zeroed("idata", Type::I32, 256));
    let float_data = {
        let vals: Vec<f64> = (0..64).map(|i| 1.0 + i as f64 * 0.01).collect();
        m.add_global(Global::of_f64("fdata", &vals))
    };

    let total = p.insts;
    let kernel_ins = ((p.kernel_size * total as f64) as u32).max(p.pruned_insts);
    let hot_ins = p.pruned_insts;
    let warm_ins = kernel_ins.saturating_sub(hot_ins);
    let live_total = (p.live * total as f64) as u32;
    let live_rest = live_total.saturating_sub(kernel_ins);
    let const_ins = (p.const_ * total as f64) as u32;
    let dead_ins = (p.dead * total as f64) as u32;

    // Small-block budget: distribute remaining blocks across sections
    // proportionally to their instruction share.
    let avg_small = (total as f64 / p.blocks as f64).clamp(3.0, 12.0) as u32;
    let blocks_of = |ins: u32| (ins / avg_small.max(1)).max(1);

    // ---- hot function: the kernel ----
    let hot_fn = {
        let mut b = FunctionBuilder::new("hot", vec![Type::I32], Type::I32);
        // The big post-pruning blocks, one per pruned block, iterated hard.
        let hot_sizes: Vec<u32> = {
            let n = p.pruned_blocks.max(1);
            let base = hot_ins / n;
            (0..n)
                .map(|i| {
                    if i == 0 {
                        hot_ins - base * (n - 1)
                    } else {
                        base
                    }
                })
                .collect()
        };
        b.counted_loop("kern", Op::ci32(0), Op::ci32(k.hot_iters), |b, i| {
            let mut v = i;
            for (bi, &sz) in hot_sizes.iter().enumerate() {
                let blk = b.new_block(format!("hotblk.{bi}"));
                b.br(blk);
                b.switch_to(blk);
                v = emit_body(
                    b,
                    &mut rng,
                    sz,
                    k.seg_len,
                    k.hot_float,
                    k.int_mul,
                    int_data,
                    float_data,
                    v,
                );
            }
        });
        // Warm kernel remainder at lower frequency.
        if warm_ins > 0 {
            let warm_blocks = blocks_of(warm_ins).min(64);
            b.counted_loop("warm", Op::ci32(0), Op::ci32(k.hot_iters / 8), |b, _| {
                emit_chain(
                    b,
                    &mut rng,
                    "warmblk",
                    warm_blocks,
                    warm_ins,
                    k.seg_len,
                    k.hot_float / 2.0,
                    k.int_mul,
                    int_data,
                    float_data,
                    Op::Arg(0),
                );
            });
        }
        b.ret(Op::Arg(0));
        m.add_func(b.finish())
    };

    // ---- live remainder ----
    let live_fn = {
        let mut b = FunctionBuilder::new("live_rest", vec![Type::I32], Type::I32);
        let blocks = blocks_of(live_rest).min(1200);
        let v = emit_chain(
            b_ref(&mut b),
            &mut rng,
            "live",
            blocks,
            live_rest,
            k.seg_len,
            0.05,
            k.int_mul,
            int_data,
            float_data,
            Op::Arg(0),
        );
        b.ret(v);
        m.add_func(b.finish())
    };

    // ---- constant section (fixed work, input-independent) ----
    let const_fn = {
        let mut b = FunctionBuilder::new("startup", vec![], Type::I32);
        let blocks = blocks_of(const_ins).min(800);
        let v = emit_chain(
            b_ref(&mut b),
            &mut rng,
            "const",
            blocks,
            const_ins,
            k.seg_len,
            0.05,
            k.int_mul,
            int_data,
            float_data,
            Op::ci32(0x1234),
        );
        b.ret(v);
        m.add_func(b.finish())
    };

    // ---- dead section (never called with our datasets) ----
    let dead_fn = {
        let mut b = FunctionBuilder::new("coldpath", vec![], Type::I32);
        let blocks = blocks_of(dead_ins).min(2500);
        let v = emit_chain(
            b_ref(&mut b),
            &mut rng,
            "dead",
            blocks,
            dead_ins,
            k.seg_len,
            0.05,
            k.int_mul,
            int_data,
            float_data,
            Op::ci32(0x4321),
        );
        b.ret(v);
        m.add_func(b.finish())
    };

    // ---- main(scale) ----
    {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let acc = b.alloca(4);
        let c0 = b.call(const_fn, vec![], Type::I32);
        b.store(c0, acc);
        b.counted_loop("outer", Op::ci32(0), Op::Arg(0), |b, i| {
            let l = b.call(live_fn, vec![i], Type::I32);
            let h = b.call(hot_fn, vec![l], Type::I32);
            let a = b.load(Type::I32, acc);
            let x = b.xor(a, h);
            b.store(x, acc);
        });
        // Dead guard: negative scales never occur in the datasets.
        let dead_blk = b.new_block("deadcall");
        let exit_blk = b.new_block("exit");
        let is_neg = b.cmp(jitise_ir::CmpOp::Slt, Op::Arg(0), Op::ci32(0));
        b.cond_br(is_neg, dead_blk, exit_blk);
        b.switch_to(dead_blk);
        let d = b.call(dead_fn, vec![], Type::I32);
        let a = b.load(Type::I32, acc);
        let x = b.or(a, d);
        b.store(x, acc);
        b.br(exit_blk);
        b.switch_to(exit_blk);
        let out = b.load(Type::I32, acc);
        b.ret(out);
        m.add_func(b.finish());
    }

    jitise_ir::verify::verify_module(&m)
        .unwrap_or_else(|e| panic!("{}: synthetic module invalid: {e}", p.name));

    App {
        name: p.name,
        domain: p.domain,
        module: m,
        datasets: vec![
            Dataset {
                name: "train",
                args: vec![Value::I(4)],
            },
            Dataset {
                name: "small",
                args: vec![Value::I(2)],
            },
        ],
        exec_model: ExecModel {
            jit_quality: p.vm_ratio.clamp(0.90, 1.40),
            ..ExecModel::default()
        },
        entry: "main",
    }
}

/// Identity helper keeping borrowck happy when a closure would otherwise
/// capture the builder twice.
fn b_ref(b: &mut FunctionBuilder) -> &mut FunctionBuilder {
    b
}

// ---------------------------------------------------------------------------
// Phase-changing workloads (the storm runtime's adversary)
// ---------------------------------------------------------------------------

/// Spec for a seeded *phase-changing* workload: `kernels` independent hot
/// kernels behind one dispatching `main(sel, scale)`. Rotating `sel`
/// between runs rotates the hot set — every custom instruction installed
/// for the previous phase goes cold instantly, which is the threat the
/// storm runtime's phase detector / eviction policy must survive.
///
/// Two populations:
///
/// * **Hot-set rotation** (`near_duplicate: false`): each kernel is an
///   independently generated arithmetic loop. A phase change moves all
///   execution to structurally different code with disjoint candidates.
/// * **Near-duplicate thrash** (`near_duplicate: true`): kernels share one
///   generation stream and differ only by a few per-kernel tweak
///   instructions — same shape, *distinct candidate signatures*. Rotating
///   them quickly produces the cache-thrash population: every phase is a
///   compulsory miss, and a policy without hysteresis would oscillate the
///   installer forever.
#[derive(Debug, Clone)]
pub struct PhasedSpec {
    /// Generation seed (every module field is a pure function of it).
    pub seed: u64,
    /// Number of rotatable hot kernels (≥ 1).
    pub kernels: u32,
    /// Hot blocks per kernel.
    pub kernel_blocks: u32,
    /// Instructions per hot block.
    pub block_ins: u32,
    /// Arithmetic-segment length between forbidden memory breakers
    /// (controls candidate size, as in the scientific generator).
    pub seg_len: u32,
    /// Kernel loop trip count per call.
    pub hot_iters: i32,
    /// Near-duplicate thrash population instead of independent kernels.
    pub near_duplicate: bool,
}

impl Default for PhasedSpec {
    fn default() -> PhasedSpec {
        PhasedSpec {
            seed: 2011,
            kernels: 3,
            kernel_blocks: 2,
            block_ins: 48,
            seg_len: 6,
            hot_iters: 240,
            near_duplicate: false,
        }
    }
}

/// Shape of one phased hot block: total instruction budget, arithmetic
/// segment length, and the near-duplicate tweak knobs (extra per-segment
/// add instructions — distinct instruction counts guarantee distinct
/// candidate signatures).
#[derive(Clone, Copy)]
struct PhasedBlockShape {
    size: u32,
    seg_len: u32,
    tweaks: u32,
    tweak_const: i32,
}

/// Emits one integer-only hot block body: `seg_len`-instruction arithmetic
/// segments split by store breakers, per `shape`.
fn emit_phased_block(
    b: &mut FunctionBuilder,
    rng: &mut SplitMix64,
    shape: PhasedBlockShape,
    data: GlobalId,
    seed_val: Op,
) -> Op {
    let PhasedBlockShape {
        size,
        seg_len,
        tweaks,
        tweak_const,
    } = shape;
    let base = b.global_addr(data);
    let mut emitted = 1u32;
    let mut v = seed_val;
    let mut slot = 0i32;
    while emitted < size {
        let this_seg = seg_len.min(size - emitted).max(1);
        for k in 0..this_seg {
            v = match rng.next_index(5) {
                0 | 1 => b.mul(v, Op::ci32(3 + (k as i32 & 3) * 2)),
                2 => b.add(v, Op::ci32(k as i32 + 1)),
                3 => b.xor(v, Op::ci32(0x3c3c)),
                _ => b.and(v, Op::ci32(0x00ff_ffff)),
            };
            emitted += 1;
        }
        for t in 0..tweaks {
            v = b.add(v, Op::ci32(tweak_const + t as i32));
            emitted += 1;
        }
        // Forbidden breaker between candidate-sized segments.
        let p = b.gep(base, Op::ci32(slot & 255), 4);
        b.store(v, p);
        emitted += 2;
        slot += 1;
    }
    v
}

/// Builds the phase-changing module for `spec`. Entry point:
/// `main(sel: i32, scale: i32) -> i32` — runs the `sel`-selected kernel
/// `scale` times and folds the results into a checksum. Deterministic per
/// seed; out-of-range `sel` falls through to the last kernel.
pub fn build_phased(spec: &PhasedSpec) -> Module {
    let kernels = spec.kernels.max(1);
    let name = if spec.near_duplicate {
        "phased-thrash"
    } else {
        "phased-rotation"
    };
    let mut m = Module::new(name);
    let data = m.add_global(Global::zeroed("pdata", Type::I32, 256));

    let kern_fns: Vec<_> = (0..kernels)
        .map(|ki| {
            // Rotation: independent streams → structurally different
            // kernels. Thrash: one shared stream re-seeded per kernel →
            // near-identical shape, differentiated only by the tweaks.
            let mut rng = if spec.near_duplicate {
                SplitMix64::new(spec.seed)
            } else {
                SplitMix64::new(spec.seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(ki as u64 + 1))
            };
            let tweaks = if spec.near_duplicate { 1 + ki % 3 } else { 0 };
            let mut b = FunctionBuilder::new(format!("kern{ki}"), vec![Type::I32], Type::I32);
            let out = b.alloca(4);
            b.store(Op::Arg(0), out);
            b.counted_loop("k", Op::ci32(0), Op::ci32(spec.hot_iters.max(1)), |b, i| {
                let mut v = b.load(Type::I32, out);
                v = b.xor(v, i);
                for blk_i in 0..spec.kernel_blocks.max(1) {
                    let blk = b.new_block(format!("k{ki}.hot{blk_i}"));
                    b.br(blk);
                    b.switch_to(blk);
                    v = emit_phased_block(
                        b,
                        &mut rng,
                        PhasedBlockShape {
                            size: spec.block_ins.max(4),
                            seg_len: spec.seg_len.max(2),
                            tweaks,
                            tweak_const: 17 + ki as i32,
                        },
                        data,
                        v,
                    );
                }
                b.store(v, out);
            });
            let v = b.load(Type::I32, out);
            b.ret(v);
            m.add_func(b.finish())
        })
        .collect();

    // main(sel, scale): dispatch to the selected kernel each iteration.
    {
        let mut b = FunctionBuilder::new("main", vec![Type::I32, Type::I32], Type::I32);
        let acc = b.alloca(4);
        b.store(Op::ci32(0x5eed), acc);
        b.counted_loop("outer", Op::ci32(0), Op::Arg(1), |b, i| {
            let merge = b.new_block("disp.merge");
            for (ki, &kf) in kern_fns.iter().enumerate() {
                let call_blk = b.new_block(format!("disp.call{ki}"));
                let next_chk = if ki + 1 < kern_fns.len() {
                    let chk = b.new_block(format!("disp.chk{}", ki + 1));
                    let is = b.cmp(jitise_ir::CmpOp::Eq, Op::Arg(0), Op::ci32(ki as i32));
                    b.cond_br(is, call_blk, chk);
                    Some(chk)
                } else {
                    // Out-of-range selectors land in the last kernel.
                    b.br(call_blk);
                    None
                };
                b.switch_to(call_blk);
                let h = b.call(kf, vec![i], Type::I32);
                let a = b.load(Type::I32, acc);
                let x = b.xor(a, h);
                b.store(x, acc);
                b.br(merge);
                if let Some(chk) = next_chk {
                    b.switch_to(chk);
                }
            }
            b.switch_to(merge);
        });
        let out = b.load(Type::I32, acc);
        b.ret(out);
        m.add_func(b.finish());
    }

    jitise_ir::verify::verify_module(&m)
        .unwrap_or_else(|e| panic!("{name}: phased module invalid: {e}"));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::paper_profile;

    #[test]
    fn builds_all_ten_scientific_apps() {
        for name in crate::profile::scientific_names() {
            let p = paper_profile(name).unwrap();
            let app = build_scientific(p);
            assert_eq!(app.name, name);
            let blk = app.module.num_blocks() as f64;
            let ins = app.module.num_insts() as f64;
            // Shape calibration: within a factor of ~2.5 of the published
            // totals (the generator works in whole blocks).
            assert!(
                blk > p.blocks as f64 / 3.0 && blk < p.blocks as f64 * 3.0,
                "{name}: {blk} blocks vs paper {}",
                p.blocks
            );
            assert!(
                ins > p.insts as f64 / 3.0 && ins < p.insts as f64 * 3.0,
                "{name}: {ins} insts vs paper {}",
                p.insts
            );
        }
    }

    #[test]
    fn deterministic_generation() {
        let p = paper_profile("470.lbm").unwrap();
        let a = build_scientific(p);
        let b = build_scientific(p);
        assert_eq!(a.module, b.module);
    }

    #[test]
    fn executes_and_scales_with_input() {
        let p = paper_profile("429.mcf").unwrap();
        let app = build_scientific(p);
        let p1 = app.run_dataset(0); // scale 4
        let p2 = app.run_dataset(1); // scale 2
        assert!(p1.total_cycles() > p2.total_cycles());
    }

    #[test]
    fn dead_code_never_executes() {
        let p = paper_profile("164.gzip").unwrap();
        let app = build_scientific(p);
        let prof = app.run_dataset(0);
        // The coldpath function's blocks must all have zero counts.
        let dead_fid = app.module.func_by_name("coldpath").unwrap();
        for bid in app.module.func(dead_fid).block_ids() {
            assert_eq!(
                prof.count(jitise_vm::BlockKey::new(dead_fid, bid)),
                0,
                "dead block executed"
            );
        }
    }

    fn run_phased(m: &Module, sel: i64, scale: i64) -> (Option<Value>, jitise_vm::Profile) {
        let mut vm = jitise_vm::Interpreter::new(m);
        let out = vm.run("main", &[Value::I(sel), Value::I(scale)]).unwrap();
        (out.ret, vm.take_profile())
    }

    fn kernel_cycles(m: &Module, prof: &jitise_vm::Profile, name: &str) -> u64 {
        let fid = m.func_by_name(name).unwrap();
        m.func(fid)
            .block_ids()
            .map(|bid| prof.block_cycles(jitise_vm::BlockKey::new(fid, bid)))
            .sum()
    }

    #[test]
    fn phased_generation_is_deterministic() {
        for near_duplicate in [false, true] {
            let spec = PhasedSpec {
                near_duplicate,
                ..PhasedSpec::default()
            };
            assert_eq!(build_phased(&spec), build_phased(&spec));
            let other = PhasedSpec { seed: 7, ..spec };
            assert_ne!(build_phased(&other), build_phased(&spec));
        }
    }

    #[test]
    fn phase_selector_rotates_the_hot_set() {
        let m = build_phased(&PhasedSpec::default());
        for sel in 0..3i64 {
            let (_, prof) = run_phased(&m, sel, 2);
            for k in 0..3 {
                let cycles = kernel_cycles(&m, &prof, &format!("kern{k}"));
                if k == sel {
                    assert!(cycles > 0, "selected kernel must run (sel={sel})");
                    assert!(
                        cycles as f64 / prof.total_cycles() as f64 > 0.5,
                        "selected kernel must dominate"
                    );
                } else {
                    assert_eq!(cycles, 0, "kernel {k} must be cold under sel={sel}");
                }
            }
        }
    }

    #[test]
    fn rotation_kernels_are_structurally_distinct() {
        let m = build_phased(&PhasedSpec::default());
        let f0 = m.func(m.func_by_name("kern0").unwrap());
        let f1 = m.func(m.func_by_name("kern1").unwrap());
        assert_ne!(format!("{f0:?}"), format!("{f1:?}"));
    }

    #[test]
    fn near_duplicate_kernels_differ_only_by_tweaks() {
        let spec = PhasedSpec {
            near_duplicate: true,
            ..PhasedSpec::default()
        };
        let m = build_phased(&spec);
        let ins_of = |name: &str| {
            let fid = m.func_by_name(name).unwrap();
            m.func(fid)
                .block_ids()
                .map(|b| m.func(fid).block(b).insts.len())
                .sum::<usize>()
        };
        let body_of = |name: &str| {
            let fid = m.func_by_name(name).unwrap();
            format!("{:?}", m.func(fid))
        };
        // Near-identical size (the tweaks displace arithmetic within the
        // same block budget) but structurally distinct segment tails —
        // same shape, guaranteed-distinct candidate signatures.
        let (n0, n1) = (ins_of("kern0"), ins_of("kern1"));
        assert!(
            n0.abs_diff(n1) * 10 < n0,
            "near-duplicates must stay within 10% in size: {n0} vs {n1}"
        );
        let (b0, b1, b2) = (body_of("kern0"), body_of("kern1"), body_of("kern2"));
        assert_ne!(b0, b1);
        assert_ne!(b1, b2);
        // All kernels execute correctly.
        for sel in 0..3 {
            let (ret, _) = run_phased(&m, sel, 2);
            assert!(ret.is_some());
        }
    }

    #[test]
    fn out_of_range_selector_falls_to_last_kernel() {
        let m = build_phased(&PhasedSpec::default());
        let (ret_hi, prof) = run_phased(&m, 99, 2);
        assert!(kernel_cycles(&m, &prof, "kern2") > 0);
        let (ret_last, _) = run_phased(&m, 2, 2);
        assert_eq!(ret_hi, ret_last);
    }

    #[test]
    fn kernel_dominates_execution() {
        let p = paper_profile("470.lbm").unwrap();
        let app = build_scientific(p);
        let prof = app.run_dataset(0);
        let hot_fid = app.module.func_by_name("hot").unwrap();
        let hot_cycles: u64 = app
            .module
            .func(hot_fid)
            .block_ids()
            .map(|bid| prof.block_cycles(jitise_vm::BlockKey::new(hot_fid, bid)))
            .sum();
        let frac = hot_cycles as f64 / prof.total_cycles() as f64;
        assert!(
            frac > 0.70,
            "kernel holds {frac:.2} of cycles, expected > 0.70"
        );
    }
}
