//! Whole-application differential test: every paper app, every dataset,
//! interpreter vs. pre-decoded fast tier. The tiers must agree on the
//! return value, `cycles`, `steps`, and the full per-block profile — and
//! on the corrected accounting, `ExecOutcome::steps` must equal
//! `Profile::total_insts` (terminators excluded from both; see DESIGN.md
//! §15).

use jitise_apps::App;
use jitise_vm::{CostModel, Interpreter, RunConfig, VmTier};

#[test]
fn all_apps_identical_across_tiers() {
    for app in App::all() {
        for (idx, ds) in app.datasets.iter().enumerate() {
            let run = |tier: VmTier| {
                let mut vm = Interpreter::with_config(
                    &app.module,
                    CostModel::ppc405(),
                    RunConfig::default(),
                );
                vm.set_tier(tier);
                let out = vm.run(app.entry, &ds.args).unwrap_or_else(|e| {
                    panic!("{}/{}: {tier:?} run failed: {e}", app.name, ds.name)
                });
                (out, vm.take_profile())
            };
            let (oi, pi) = run(VmTier::Interp);
            let (of, pf) = run(VmTier::Fast);
            assert_eq!(oi, of, "{}/{}: outcome diverged", app.name, ds.name);
            assert_eq!(pi, pf, "{}/{}: profile diverged", app.name, ds.name);
            assert_eq!(
                oi.steps,
                pi.total_insts(),
                "{}/{} (dataset {idx}): steps must equal the profile's \
                 dynamic instruction total",
                app.name,
                ds.name
            );
        }
    }
}
