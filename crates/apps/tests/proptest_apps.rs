//! Property tests over the application suite: every registered benchmark
//! must execute deterministically, scale with its input, and expose the
//! structure (hot kernel, coverage classes) the evaluation relies on.

use jitise_apps::{App, Domain, PAPER_APPS};
use jitise_vm::coverage::classify;
use jitise_vm::{Interpreter, Value};
use proptest::prelude::*;

/// Names as a strategy (cheap apps only; the biggest synthetics are
/// exercised once in the integration suite).
fn app_names() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        "adpcm",
        "fft",
        "sor",
        "whetstone",
        "429.mcf",
        "470.lbm",
        "179.art",
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn apps_execute_deterministically(name in app_names(), scale in 1i64..4) {
        let app = App::build(name).unwrap();
        let run = |s: i64| {
            let mut vm = Interpreter::new(&app.module);
            let out = vm.run("main", &[Value::I(s)]).expect("runs");
            (out.ret, out.cycles)
        };
        prop_assert_eq!(run(scale), run(scale));
    }

    #[test]
    fn work_scales_with_input(name in app_names()) {
        let app = App::build(name).unwrap();
        let cycles = |s: i64| {
            let mut vm = Interpreter::new(&app.module);
            vm.run("main", &[Value::I(s)]).expect("runs").cycles
        };
        prop_assert!(cycles(3) > cycles(1));
    }

    #[test]
    fn coverage_classes_always_partition(name in app_names()) {
        let app = App::build(name).unwrap();
        let profiles = app.profile_all_datasets();
        let rep = classify(&app.module, &profiles);
        prop_assert!((rep.live_frac + rep.dead_frac + rep.const_frac - 1.0).abs() < 1e-9);
        prop_assert!(rep.live_frac > 0.0, "some code must vary with input");
    }
}

#[test]
fn registry_is_complete_and_domains_match() {
    for p in PAPER_APPS {
        let app = App::build(p.name).unwrap_or_else(|| panic!("{} missing", p.name));
        assert_eq!(app.domain, p.domain);
        assert_eq!(app.name, p.name);
        assert!(app.datasets.len() >= 2);
    }
    assert_eq!(App::all().len(), 14);
    assert_eq!(
        App::all()
            .iter()
            .filter(|a| a.domain == Domain::Embedded)
            .count(),
        4
    );
}

#[test]
fn all_modules_verify() {
    for app in App::all() {
        jitise_ir::verify::verify_module(&app.module)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name));
    }
}
