//! The IR interpreter.
//!
//! A straightforward block-at-a-time interpreter with exact phi (parallel
//! copy) semantics, a bounds-checked linear memory, recursive calls, fuel
//! limiting, and cycle accounting against a [`CostModel`]. Every block
//! execution is recorded into a [`Profile`], which is the raw material for
//! the paper's coverage, kernel, and break-even analyses.
//!
//! Arithmetic semantics are shared with the constant folder
//! ([`jitise_ir::passes::constfold`]) so that optimized and unoptimized
//! code compute identical results — a property the proptest suite checks.

use crate::cost::CostModel;
use crate::mem::Memory;
use crate::predecode::{PredecodedModule, VmTier};
use crate::profile::{BlockKey, Profile};
use crate::value::Value;
use jitise_base::{Error, Result};
use jitise_ir::passes::constfold::{fold_cmp, fold_float_bin, fold_int_bin, fold_un};
use jitise_ir::{
    BlockId, ExtFunc, FuncId, Function, Imm, InstKind, Module, Operand, Terminator, Type,
};
use jitise_telemetry::{names, Telemetry, Value as TelValue};
use std::sync::Arc;

/// Executes loaded custom instructions on behalf of the interpreter.
///
/// The Woolcano architecture model implements this: it evaluates the
/// candidate's original data-flow graph (hardware is functionally
/// equivalent) and charges the *hardware* cycle count.
pub trait CustomHandler {
    /// Executes the custom instruction in `slot`; returns the result value
    /// and the cycles to charge.
    fn exec_custom(&self, slot: u32, args: &[Value]) -> Result<(Value, u64)>;
}

/// Interpreter limits and sizing.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Alloca stack size in bytes.
    pub stack_bytes: u32,
    /// Dynamic-instruction budget; exceeded → error (guards against
    /// runaway loops in generated workloads).
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_call_depth: u32,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            stack_bytes: 1 << 20,
            max_steps: 500_000_000,
            max_call_depth: 256,
        }
    }
}

/// Result of one program execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Return value of the entry function.
    pub ret: Option<Value>,
    /// Total cycles charged.
    pub cycles: u64,
    /// Dynamic instructions executed.
    pub steps: u64,
}

/// The virtual machine.
pub struct Interpreter<'m> {
    pub(crate) module: &'m Module,
    pub(crate) cost: CostModel,
    /// Linear memory (public for test setup and result inspection).
    pub mem: Memory,
    pub(crate) profile: Profile,
    pub(crate) custom: Option<&'m dyn CustomHandler>,
    pub(crate) cfg: RunConfig,
    telemetry: Telemetry,
    pub(crate) steps: u64,
    pub(crate) cycles: u64,
    pub(crate) blocks: u64,
    tier: VmTier,
    predecoded: Option<Arc<PredecodedModule>>,
    /// Recycled fast-tier call frames (see [`crate::predecode::Frame`]).
    pub(crate) fast_frames: Vec<crate::predecode::Frame>,
    /// Dense fast-tier profile rows, `[func][block]`, merged into
    /// `profile` when the outermost fast frame exits.
    pub(crate) fast_prof: Vec<Vec<crate::predecode::BlockStat>>,
    /// `(func, block)` indices with nonzero rows in `fast_prof`.
    pub(crate) fast_prof_touched: Vec<(u32, u32)>,
}

impl<'m> Interpreter<'m> {
    /// Creates a VM for `module` with the default PPC405 cost model.
    pub fn new(module: &'m Module) -> Self {
        Self::with_config(module, CostModel::ppc405(), RunConfig::default())
    }

    /// Creates a VM with explicit cost model and limits.
    pub fn with_config(module: &'m Module, cost: CostModel, cfg: RunConfig) -> Self {
        let mem = Memory::for_module(module, cfg.stack_bytes);
        Interpreter {
            module,
            cost,
            mem,
            profile: Profile::new(),
            custom: None,
            cfg,
            telemetry: Telemetry::disabled(),
            steps: 0,
            cycles: 0,
            blocks: 0,
            tier: VmTier::Interp,
            predecoded: None,
            fast_frames: Vec::new(),
            fast_prof: Vec::new(),
            fast_prof_touched: Vec::new(),
        }
    }

    /// Selects the execution tier. The fast tier pre-decodes the module on
    /// first use (or reuses a representation installed with
    /// [`Interpreter::set_predecoded`]) and is bit-identical to the
    /// interpreter in results, cycles, steps, profile, and error strings.
    pub fn set_tier(&mut self, tier: VmTier) {
        self.tier = tier;
    }

    /// The currently selected execution tier.
    pub fn tier(&self) -> VmTier {
        self.tier
    }

    /// Installs a shared pre-decoded representation (built with
    /// [`PredecodedModule::build`] from the *same* module and cost model)
    /// and switches to the fast tier. Lets long-lived runtimes pay the
    /// decode cost once per module instead of once per VM instance.
    pub fn set_predecoded(&mut self, pd: Arc<PredecodedModule>) {
        assert!(
            pd.matches(self.module, &self.cost),
            "predecoded representation does not match this module/cost model"
        );
        self.predecoded = Some(pd);
        self.tier = VmTier::Fast;
    }

    /// Installs a custom-instruction handler (the Woolcano model).
    pub fn set_custom_handler(&mut self, h: &'m dyn CustomHandler) {
        self.custom = Some(h);
    }

    /// Attaches a telemetry handle: each [`Interpreter::run_func`] records
    /// a `vm.run` span (simulated duration = charged cycles at the core
    /// clock) and retires instruction/block counters.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The profile accumulated so far.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Takes the profile, resetting the accumulator.
    pub fn take_profile(&mut self) -> Profile {
        std::mem::take(&mut self.profile)
    }

    /// Runs a function by name.
    pub fn run(&mut self, name: &str, args: &[Value]) -> Result<ExecOutcome> {
        let fid = self
            .module
            .func_by_name(name)
            .ok_or_else(|| Error::Vm(format!("no function named {name}")))?;
        self.run_func(fid, args)
    }

    /// Runs a function by id.
    pub fn run_func(&mut self, fid: FuncId, args: &[Value]) -> Result<ExecOutcome> {
        let start_steps = self.steps;
        let start_cycles = self.cycles;
        let start_blocks = self.blocks;
        let mut span = self.telemetry.span("vm.run");
        let ret = match self.tier {
            VmTier::Interp => self.exec_func(fid, args, 0)?,
            VmTier::Fast => {
                let pd = match &self.predecoded {
                    Some(pd) => Arc::clone(pd),
                    None => {
                        let pd = Arc::new(PredecodedModule::build(self.module, &self.cost));
                        self.predecoded = Some(Arc::clone(&pd));
                        pd
                    }
                };
                crate::predecode::exec_fast(self, &pd, fid, args, 0)?
            }
        };
        let out = ExecOutcome {
            ret,
            cycles: self.cycles - start_cycles,
            steps: self.steps - start_steps,
        };
        if self.telemetry.is_enabled() {
            span.set_sim_time(self.cost.cycles_to_time(out.cycles));
            span.field("func", TelValue::Str(self.module.func(fid).name.clone()));
            span.field("steps", TelValue::U64(out.steps));
            span.field("cycles", TelValue::U64(out.cycles));
            self.telemetry.add(names::VM_INSTRUCTIONS, out.steps);
            self.telemetry
                .add(names::VM_BLOCKS, self.blocks - start_blocks);
        }
        Ok(out)
    }

    fn exec_func(&mut self, fid: FuncId, args: &[Value], depth: u32) -> Result<Option<Value>> {
        if depth >= self.cfg.max_call_depth {
            return Err(Error::Vm(format!(
                "call depth limit {} exceeded",
                self.cfg.max_call_depth
            )));
        }
        let f = self.module.func(fid);
        if args.len() != f.params.len() {
            return Err(Error::Vm(format!(
                "{}: expected {} args, got {}",
                f.name,
                f.params.len(),
                args.len()
            )));
        }
        let stack_mark = self.mem.stack_mark();
        let mut regs: Vec<Option<Value>> = vec![None; f.insts.len()];
        let mut cur = f.entry();
        let mut prev: Option<BlockId> = None;

        let ret = loop {
            let mut block_cycles: u64 = 0;
            let mut block_insts: u64 = 0;

            // ---- phi resolution (parallel copy semantics) ----
            let block = f.block(cur);
            let mut phi_end = 0usize;
            if let Some(from) = prev {
                let mut phi_writes: Vec<(usize, Value)> = Vec::new();
                for (i, &iid) in block.insts.iter().enumerate() {
                    if let InstKind::Phi(incoming) = &f.inst(iid).kind {
                        // Phi moves are dynamic instructions: they charge
                        // `steps` (and the fuel guard) exactly like
                        // straight-line code, so `ExecOutcome::steps` always
                        // equals `Profile::total_insts`.
                        self.steps += 1;
                        block_insts += 1;
                        if self.steps > self.cfg.max_steps {
                            return Err(Error::Vm(format!(
                                "step budget {} exhausted in {}",
                                self.cfg.max_steps, f.name
                            )));
                        }
                        let op = incoming
                            .iter()
                            .find(|(b, _)| *b == from)
                            .map(|(_, op)| *op)
                            .ok_or_else(|| {
                                Error::Vm(format!(
                                    "{}: phi in {} has no incoming edge from {}",
                                    f.name,
                                    block.name,
                                    f.block(from).name
                                ))
                            })?;
                        let v = self.eval_operand(f, &regs, args, op)?;
                        phi_writes.push((iid.idx(), v.normalize(f.inst(iid).ty)));
                        phi_end = i + 1;
                        block_cycles += self.cost.inst_cycles(&f.inst(iid).kind);
                    } else {
                        break;
                    }
                }
                for (idx, v) in phi_writes {
                    regs[idx] = Some(v);
                }
            } else {
                // Entry block: skip leading phis (verifier guarantees none
                // with incoming edges; tolerate empty ones).
                while phi_end < block.insts.len() {
                    let iid = block.insts[phi_end];
                    if matches!(f.inst(iid).kind, InstKind::Phi(_)) {
                        phi_end += 1;
                    } else {
                        break;
                    }
                }
            }

            // ---- straight-line instructions ----
            for &iid in &block.insts[phi_end..] {
                let inst = f.inst(iid);
                self.steps += 1;
                block_insts += 1;
                if self.steps > self.cfg.max_steps {
                    return Err(Error::Vm(format!(
                        "step budget {} exhausted in {}",
                        self.cfg.max_steps, f.name
                    )));
                }
                let mut extra_cycles = 0u64;
                let result: Option<Value> = match &inst.kind {
                    InstKind::Bin(op, a, b) => {
                        let va = self.eval_operand(f, &regs, args, *a)?;
                        let vb = self.eval_operand(f, &regs, args, *b)?;
                        if op.is_float() {
                            let r = fold_float_bin(*op, va.as_f(), vb.as_f()).expect("float binop");
                            Some(Value::F(r).normalize(inst.ty))
                        } else {
                            let r = fold_int_bin(*op, inst.ty, va.as_i(), vb.as_i()).ok_or_else(
                                || Error::Vm(format!("{}: division by zero", f.name)),
                            )?;
                            Some(Value::I(r))
                        }
                    }
                    InstKind::Un(op, a) => {
                        let va = self.eval_operand(f, &regs, args, *a)?;
                        let src_ty = jitise_ir::verify::operand_ty(f, *a);
                        let imm = value_to_imm(va, src_ty);
                        let out = fold_un(*op, inst.ty, &imm).ok_or_else(|| {
                            Error::Vm(format!("{}: invalid cast of {va:?}", f.name))
                        })?;
                        Some(Value::from_imm(out))
                    }
                    InstKind::Cmp(op, a, b) => {
                        let va = self.eval_operand(f, &regs, args, *a)?;
                        let vb = self.eval_operand(f, &regs, args, *b)?;
                        let ty = jitise_ir::verify::operand_ty(f, *a);
                        let (ia, ib) = (value_to_imm(va, ty), value_to_imm(vb, ty));
                        Some(Value::I(fold_cmp(*op, ty, &ia, &ib) as i64))
                    }
                    InstKind::Select(c, a, b) => {
                        let vc = self.eval_operand(f, &regs, args, *c)?;
                        let chosen = if vc.as_bool() { *a } else { *b };
                        // Normalize like the float Bin path: an arm operand
                        // may carry more precision than `inst.ty` (e.g. an
                        // f64 constant feeding an F32 select).
                        Some(
                            self.eval_operand(f, &regs, args, chosen)?
                                .normalize(inst.ty),
                        )
                    }
                    InstKind::Load(p) => {
                        let addr = self.eval_operand(f, &regs, args, *p)?.as_ptr();
                        Some(self.mem.load(inst.ty, addr)?)
                    }
                    InstKind::Store(v, p) => {
                        let val = self.eval_operand(f, &regs, args, *v)?;
                        let addr = self.eval_operand(f, &regs, args, *p)?.as_ptr();
                        let val_ty = jitise_ir::verify::operand_ty(f, *v);
                        self.mem.store(val_ty, addr, val)?;
                        None
                    }
                    InstKind::Gep {
                        base,
                        index,
                        elem_bytes,
                    } => {
                        let b = self.eval_operand(f, &regs, args, *base)?.as_ptr();
                        let i = self.eval_operand(f, &regs, args, *index)?.as_i();
                        let addr = (b as i64).wrapping_add(i.wrapping_mul(*elem_bytes as i64));
                        Some(Value::I(addr as u32 as i64))
                    }
                    InstKind::Alloca(bytes) => Some(Value::I(self.mem.alloca(*bytes)? as i64)),
                    InstKind::GlobalAddr(g) => Some(Value::I(self.mem.global_addr(g.idx()) as i64)),
                    InstKind::Call(callee, call_args) => {
                        let mut vals = Vec::with_capacity(call_args.len());
                        for a in call_args {
                            vals.push(self.eval_operand(f, &regs, args, *a)?);
                        }
                        self.exec_func(*callee, &vals, depth + 1)?
                    }
                    InstKind::CallExt(ef, call_args) => {
                        let mut vals = Vec::with_capacity(call_args.len());
                        for a in call_args {
                            vals.push(self.eval_operand(f, &regs, args, *a)?);
                        }
                        Some(Value::F(eval_ext(*ef, &vals)?))
                    }
                    InstKind::Custom(slot, call_args) => {
                        let handler = self.custom.ok_or_else(|| {
                            Error::Vm("custom instruction without handler".into())
                        })?;
                        let mut vals = Vec::with_capacity(call_args.len());
                        for a in call_args {
                            vals.push(self.eval_operand(f, &regs, args, *a)?);
                        }
                        let (v, hw_cycles) = handler.exec_custom(*slot, &vals)?;
                        extra_cycles = hw_cycles;
                        Some(v)
                    }
                    InstKind::Phi(_) => {
                        return Err(Error::Vm(format!(
                            "{}: phi after non-phi instruction",
                            f.name
                        )));
                    }
                };
                if let Some(v) = result {
                    regs[iid.idx()] = Some(v);
                }
                block_cycles += self.cost.inst_cycles(&inst.kind) + extra_cycles;
            }

            // ---- terminator ----
            let term = block.terminator();
            let next = match term {
                Terminator::Br(t) => {
                    block_cycles += self.cost.branch_cycles();
                    Some(*t)
                }
                Terminator::CondBr(c, a, b) => {
                    block_cycles += self.cost.branch_cycles();
                    let vc = self.eval_operand(f, &regs, args, *c)?;
                    Some(if vc.as_bool() { *a } else { *b })
                }
                Terminator::Switch(v, cases, default) => {
                    block_cycles += self.cost.branch_cycles() + cases.len() as u64 / 2;
                    let val = self.eval_operand(f, &regs, args, *v)?.as_i();
                    Some(
                        cases
                            .iter()
                            .find(|(k, _)| *k == val)
                            .map(|(_, b)| *b)
                            .unwrap_or(*default),
                    )
                }
                Terminator::Ret(v) => {
                    let out = match v {
                        Some(op) => Some(self.eval_operand(f, &regs, args, *op)?),
                        None => None,
                    };
                    self.cycles += block_cycles;
                    self.blocks += 1;
                    self.profile
                        .record(BlockKey::new(fid, cur), block_cycles, block_insts);
                    break out;
                }
            };
            self.cycles += block_cycles;
            self.blocks += 1;
            self.profile
                .record(BlockKey::new(fid, cur), block_cycles, block_insts);
            prev = Some(cur);
            cur = next.expect("non-ret terminator has target");
        };
        self.mem.stack_release(stack_mark);
        Ok(ret)
    }

    fn eval_operand(
        &self,
        f: &Function,
        regs: &[Option<Value>],
        args: &[Value],
        op: Operand,
    ) -> Result<Value> {
        match op {
            Operand::Const(imm) => Ok(Value::from_imm(imm)),
            Operand::Arg(i) => Ok(args[i as usize]),
            Operand::Inst(id) => regs[id.idx()].ok_or_else(|| {
                Error::Vm(format!(
                    "{}: read of undefined value %{} (unreachable-path artifact)",
                    f.name, id.0
                ))
            }),
        }
    }
}

pub(crate) fn value_to_imm(v: Value, ty: Type) -> Imm {
    match v {
        Value::I(x) => Imm::int(if ty.is_int() { ty } else { Type::I64 }, x),
        Value::F(x) => {
            if ty == Type::F32 {
                Imm::f32(x as f32)
            } else {
                Imm::f64(x)
            }
        }
    }
}

pub(crate) fn eval_ext(f: ExtFunc, args: &[Value]) -> Result<f64> {
    let arg = |i: usize| -> Result<f64> {
        args.get(i)
            .map(|v| v.as_f())
            .ok_or_else(|| Error::Vm(format!("{}: missing argument {i}", f.name())))
    };
    Ok(match f {
        ExtFunc::Sqrt => arg(0)?.sqrt(),
        ExtFunc::Sin => arg(0)?.sin(),
        ExtFunc::Cos => arg(0)?.cos(),
        ExtFunc::Atan => arg(0)?.atan(),
        ExtFunc::Exp => arg(0)?.exp(),
        ExtFunc::Log => arg(0)?.ln(),
        ExtFunc::Pow => arg(0)?.powf(arg(1)?),
        ExtFunc::Fabs => arg(0)?.abs(),
        ExtFunc::Floor => arg(0)?.floor(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::{CmpOp, FunctionBuilder, Global, Operand as Op};

    fn module_of(f: Function) -> Module {
        let mut m = Module::new("t");
        m.add_func(f);
        m
    }

    #[test]
    fn arithmetic_and_return() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32, Type::I32], Type::I32);
        let s = b.add(Op::Arg(0), Op::Arg(1));
        let p = b.mul(s, Op::ci32(10));
        b.ret(p);
        let m = module_of(b.finish());
        let mut vm = Interpreter::new(&m);
        let out = vm.run("main", &[Value::I(3), Value::I(4)]).unwrap();
        assert_eq!(out.ret, Some(Value::I(70)));
        assert!(out.cycles > 0);
        assert_eq!(out.steps, 2);
    }

    #[test]
    fn loop_sums_correctly() {
        // sum of 0..n via counted loop with memory accumulator.
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let cell = b.alloca(4);
        b.store(Op::ci32(0), cell);
        b.counted_loop("i", Op::ci32(0), Op::Arg(0), |b, i| {
            let acc = b.load(Type::I32, cell);
            let acc2 = b.add(acc, i);
            b.store(acc2, cell);
        });
        let out = b.load(Type::I32, cell);
        b.ret(out);
        let m = module_of(b.finish());
        let mut vm = Interpreter::new(&m);
        let out = vm.run("main", &[Value::I(100)]).unwrap();
        assert_eq!(out.ret, Some(Value::I(4950)));
    }

    #[test]
    fn phi_parallel_copy_semantics() {
        // Swap pattern: (a, b) <- (b, a) each iteration; classic test that
        // phis read pre-transition values.
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let header = b.new_block("header");
        let body = b.new_block("body");
        let exit = b.new_block("exit");
        let pre = b.current();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I32);
        let a = b.phi(Type::I32);
        let bb = b.phi(Type::I32);
        b.add_incoming(i, pre, Op::ci32(0));
        b.add_incoming(a, pre, Op::ci32(1));
        b.add_incoming(bb, pre, Op::ci32(2));
        let c = b.cmp(CmpOp::Slt, i, Op::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.add(i, Op::ci32(1));
        b.add_incoming(i, body, i2);
        b.add_incoming(a, body, bb); // a <- b
        b.add_incoming(bb, body, a); // b <- a (must use OLD a)
        b.br(header);
        b.switch_to(exit);
        let r = b.shl(a, Op::ci32(8));
        let r2 = b.or(r, bb);
        b.ret(r2);
        let m = module_of(b.finish());
        let mut vm = Interpreter::new(&m);
        // After 1 iteration: a=2,b=1 -> 0x201.
        let out = vm.run("main", &[Value::I(1)]).unwrap();
        assert_eq!(out.ret, Some(Value::I(0x201)));
        // After 2 iterations: swapped back -> 0x102.
        let mut vm = Interpreter::new(&m);
        let out = vm.run("main", &[Value::I(2)]).unwrap();
        assert_eq!(out.ret, Some(Value::I(0x102)));
    }

    #[test]
    fn globals_and_memory() {
        let mut m = Module::new("t");
        let g = m.add_global(Global::of_i32("tbl", &[5, 6, 7]));
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let base = b.global_addr(g);
        let p = b.gep(base, Op::Arg(0), 4);
        let v = b.load(Type::I32, p);
        b.ret(v);
        m.add_func(b.finish());
        let mut vm = Interpreter::new(&m);
        assert_eq!(
            vm.run("main", &[Value::I(2)]).unwrap().ret,
            Some(Value::I(7))
        );
    }

    #[test]
    fn recursive_calls() {
        // fact(n) = n<=1 ? 1 : n*fact(n-1), via two mutually visible funcs.
        let mut m = Module::new("t");
        // Reserve id 0 for fact so it can self-reference.
        let mut b = FunctionBuilder::new("fact", vec![Type::I32], Type::I32);
        let then_b = b.new_block("base");
        let else_b = b.new_block("rec");
        let c = b.cmp(CmpOp::Sle, Op::Arg(0), Op::ci32(1));
        b.cond_br(c, then_b, else_b);
        b.switch_to(then_b);
        b.ret(Op::ci32(1));
        b.switch_to(else_b);
        let nm1 = b.sub(Op::Arg(0), Op::ci32(1));
        let sub = b.call(FuncId(0), vec![nm1], Type::I32);
        let r = b.mul(Op::Arg(0), sub);
        b.ret(r);
        m.add_func(b.finish());
        let mut vm = Interpreter::new(&m);
        assert_eq!(
            vm.run("fact", &[Value::I(10)]).unwrap().ret,
            Some(Value::I(3_628_800))
        );
    }

    #[test]
    fn float_and_ext_functions() {
        let mut b = FunctionBuilder::new("main", vec![Type::F64], Type::F64);
        let sq = b.fmul(Op::Arg(0), Op::Arg(0));
        let root = b.call_ext(ExtFunc::Sqrt, vec![sq]);
        b.ret(root);
        let m = module_of(b.finish());
        let mut vm = Interpreter::new(&m);
        let out = vm.run("main", &[Value::F(-3.0)]).unwrap();
        assert_eq!(out.ret, Some(Value::F(3.0)));
    }

    #[test]
    fn division_by_zero_traps() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let d = b.sdiv(Op::ci32(1), Op::Arg(0));
        b.ret(d);
        let m = module_of(b.finish());
        let mut vm = Interpreter::new(&m);
        let err = vm.run("main", &[Value::I(0)]).unwrap_err();
        assert!(err.to_string().contains("division by zero"));
    }

    #[test]
    fn fuel_limit_stops_infinite_loop() {
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let spin = b.new_block("spin");
        b.br(spin);
        b.switch_to(spin);
        let _ = b.add(Op::ci32(1), Op::ci32(1));
        b.br(spin);
        let m = module_of(b.finish());
        let mut vm = Interpreter::with_config(
            &m,
            CostModel::ppc405(),
            RunConfig {
                max_steps: 10_000,
                ..Default::default()
            },
        );
        let err = vm.run("main", &[]).unwrap_err();
        assert!(err.to_string().contains("step budget"));
    }

    #[test]
    fn phi_steps_match_profile_total_insts() {
        // Phi-heavy loop: the swap pattern executes 3 phi moves per
        // iteration. `ExecOutcome::steps` must count them, i.e. equal
        // `Profile::total_insts` exactly (terminators are excluded from
        // both — see DESIGN.md §15).
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let header = b.new_block("header");
        let body = b.new_block("body");
        let exit = b.new_block("exit");
        let pre = b.current();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I32);
        let a = b.phi(Type::I32);
        let bb = b.phi(Type::I32);
        b.add_incoming(i, pre, Op::ci32(0));
        b.add_incoming(a, pre, Op::ci32(1));
        b.add_incoming(bb, pre, Op::ci32(2));
        let c = b.cmp(CmpOp::Slt, i, Op::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.add(i, Op::ci32(1));
        b.add_incoming(i, body, i2);
        b.add_incoming(a, body, bb);
        b.add_incoming(bb, body, a);
        b.br(header);
        b.switch_to(exit);
        let r = b.add(a, bb);
        b.ret(r);
        let m = module_of(b.finish());
        let mut vm = Interpreter::new(&m);
        let out = vm.run("main", &[Value::I(25)]).unwrap();
        assert_eq!(
            out.steps,
            vm.profile().total_insts(),
            "every dynamic instruction (phis included) must appear in both"
        );
        // Per-iteration: 3 phi moves + 1 cmp in the header, 1 add in the
        // body; 26 header entries (3 phis + cmp each), 25 body entries.
        assert_eq!(out.steps, 26 * 4 + 25 + 1);
    }

    #[test]
    fn phi_only_spin_loop_trips_max_steps() {
        // A loop whose body is nothing but a phi move must still be
        // stopped by the fuel guard.
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let spin = b.new_block("spin");
        let pre = b.current();
        b.br(spin);
        b.switch_to(spin);
        let x = b.phi(Type::I32);
        b.add_incoming(x, pre, Op::ci32(0));
        b.add_incoming(x, spin, x);
        b.br(spin);
        let m = module_of(b.finish());
        let mut vm = Interpreter::with_config(
            &m,
            CostModel::ppc405(),
            RunConfig {
                max_steps: 1_000,
                ..Default::default()
            },
        );
        let err = vm.run("main", &[]).unwrap_err();
        assert!(
            err.to_string().contains("step budget"),
            "phi-only loop must hit the step budget, got: {err}"
        );
    }

    #[test]
    fn select_normalizes_to_result_type() {
        // An F32 select whose arms carry f64 precision must round the
        // chosen value through f32, like every other F32-producing op.
        for (cond, arm) in [(1, 0.1f64), (0, 0.2f64)] {
            let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::F32);
            let s = Op::Inst(b.push(
                InstKind::Select(
                    Op::Arg(0),
                    Op::Const(Imm::f64(0.1)),
                    Op::Const(Imm::f64(0.2)),
                ),
                Type::F32,
            ));
            b.ret(s);
            let m = module_of(b.finish());
            let mut vm = Interpreter::new(&m);
            let out = vm.run("main", &[Value::I(cond)]).unwrap();
            assert_eq!(out.ret, Some(Value::F(arm as f32 as f64)));
            assert_ne!(out.ret, Some(Value::F(arm)), "f64 precision must not leak");
        }
    }

    #[test]
    fn terminators_excluded_from_steps_but_charged_cycles() {
        // "Dynamic instruction" excludes terminators (DESIGN.md §15): a
        // chain of empty blocks executes zero steps and records zero
        // profile insts, yet still charges branch cycles.
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let b1 = b.new_block("b1");
        let b2 = b.new_block("b2");
        b.br(b1);
        b.switch_to(b1);
        b.br(b2);
        b.switch_to(b2);
        b.ret_void();
        let m = module_of(b.finish());
        let mut vm = Interpreter::new(&m);
        let out = vm.run("main", &[]).unwrap();
        assert_eq!(out.steps, 0);
        assert_eq!(vm.profile().total_insts(), 0);
        assert_eq!(out.cycles, 2 * CostModel::ppc405().branch_cycles());
        assert_eq!(out.cycles, vm.profile().total_cycles());
    }

    #[test]
    fn profile_records_block_frequencies() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        b.counted_loop("i", Op::ci32(0), Op::Arg(0), |_, _| {});
        b.ret(Op::ci32(0));
        let m = module_of(b.finish());
        let mut vm = Interpreter::new(&m);
        vm.run("main", &[Value::I(50)]).unwrap();
        let p = vm.profile();
        // entry once, header 51 times, body 50 times, exit once.
        assert_eq!(p.count(BlockKey::new(FuncId(0), BlockId(0))), 1);
        assert_eq!(p.count(BlockKey::new(FuncId(0), BlockId(1))), 51);
        assert_eq!(p.count(BlockKey::new(FuncId(0), BlockId(2))), 50);
        assert_eq!(p.count(BlockKey::new(FuncId(0), BlockId(3))), 1);
    }

    #[test]
    fn switch_dispatch() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let c1 = b.new_block("c1");
        let c2 = b.new_block("c2");
        let d = b.new_block("d");
        b.switch(Op::Arg(0), vec![(1, c1), (2, c2)], d);
        b.switch_to(c1);
        b.ret(Op::ci32(100));
        b.switch_to(c2);
        b.ret(Op::ci32(200));
        b.switch_to(d);
        b.ret(Op::ci32(-1));
        let m = module_of(b.finish());
        for (input, expect) in [(1, 100), (2, 200), (9, -1)] {
            let mut vm = Interpreter::new(&m);
            assert_eq!(
                vm.run("main", &[Value::I(input)]).unwrap().ret,
                Some(Value::I(expect))
            );
        }
    }

    #[test]
    fn custom_handler_invoked() {
        struct Doubler;
        impl CustomHandler for Doubler {
            fn exec_custom(&self, slot: u32, args: &[Value]) -> Result<(Value, u64)> {
                assert_eq!(slot, 3);
                Ok((Value::I(args[0].as_i() * 2), 7))
            }
        }
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let r = Op::Inst(b.push(InstKind::Custom(3, vec![Op::Arg(0)]), Type::I32));
        b.ret(r);
        let m = module_of(b.finish());
        let handler = Doubler;
        let mut vm = Interpreter::new(&m);
        vm.set_custom_handler(&handler);
        let out = vm.run("main", &[Value::I(21)]).unwrap();
        assert_eq!(out.ret, Some(Value::I(42)));

        // Without a handler the same program must error.
        let mut vm = Interpreter::new(&m);
        assert!(vm.run("main", &[Value::I(21)]).is_err());
    }

    #[test]
    fn stack_released_between_calls() {
        let mut m = Module::new("t");
        let mut leaf = FunctionBuilder::new("leaf", vec![], Type::I32);
        let p = leaf.alloca(1024);
        leaf.store(Op::ci32(7), p);
        let v = leaf.load(Type::I32, p);
        leaf.ret(v);
        let leaf_id = m.add_func(leaf.finish());
        let mut main = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let cell = main.alloca(4);
        main.store(Op::ci32(0), cell);
        main.counted_loop("i", Op::ci32(0), Op::Arg(0), |b, _| {
            let r = b.call(leaf_id, vec![], Type::I32);
            let acc = b.load(Type::I32, cell);
            let acc2 = b.add(acc, r);
            b.store(acc2, cell);
        });
        let out = main.load(Type::I32, cell);
        main.ret(out);
        m.add_func(main.finish());
        let mut vm = Interpreter::new(&m);
        // 10_000 calls x 1 KiB would overflow a 1 MiB stack if frames leaked.
        let out = vm.run("main", &[Value::I(10_000)]).unwrap();
        assert_eq!(out.ret, Some(Value::I(70_000)));
    }
}
