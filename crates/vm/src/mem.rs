//! Linear memory.
//!
//! One flat byte-addressed memory per VM instance:
//!
//! ```text
//! 0x0000_0000  (null guard page, never mapped)
//! 0x0000_1000  globals, laid out in module order
//!      ...     stack (allocas), growing upward
//!      ...     top of memory
//! ```
//!
//! Loads and stores are bounds-checked; address 0 faults (null deref).

use crate::value::Value;
use jitise_base::{Error, Result};
use jitise_ir::{Module, Type};

/// Guard region below which no access is valid (catches null derefs).
const NULL_GUARD: u32 = 0x1000;

/// Flat memory with global segment and an upward-growing alloca stack.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    global_base: Vec<u32>,
    stack_base: u32,
    stack_ptr: u32,
}

impl Memory {
    /// Builds memory for a module: globals placed after the null guard,
    /// then `stack_bytes` of alloca space.
    pub fn for_module(m: &Module, stack_bytes: u32) -> Memory {
        let mut cursor = NULL_GUARD;
        let mut global_base = Vec::with_capacity(m.globals.len());
        for g in &m.globals {
            // 8-byte align each global.
            cursor = (cursor + 7) & !7;
            global_base.push(cursor);
            cursor += g.size.max(1);
        }
        cursor = (cursor + 15) & !15;
        let stack_base = cursor;
        let total = cursor + stack_bytes;
        let mut bytes = vec![0u8; total as usize];
        for (g, &base) in m.globals.iter().zip(&global_base) {
            bytes[base as usize..base as usize + g.init.len()].copy_from_slice(&g.init);
        }
        Memory {
            bytes,
            global_base,
            stack_base,
            stack_ptr: stack_base,
        }
    }

    /// Base address of global `idx`.
    pub fn global_addr(&self, idx: usize) -> u32 {
        self.global_base[idx]
    }

    /// Current stack pointer (for frame save/restore).
    pub fn stack_mark(&self) -> u32 {
        self.stack_ptr
    }

    /// Restores the stack pointer to a previous mark (function return).
    pub fn stack_release(&mut self, mark: u32) {
        debug_assert!(mark >= self.stack_base && mark <= self.stack_ptr);
        self.stack_ptr = mark;
    }

    /// Allocates `bytes` (8-byte aligned) on the stack; returns the address.
    pub fn alloca(&mut self, bytes: u32) -> Result<u32> {
        let addr = (self.stack_ptr + 7) & !7;
        let end = addr as u64 + bytes as u64;
        if end > self.bytes.len() as u64 {
            return Err(Error::Vm(format!(
                "stack overflow: alloca of {bytes} bytes at {addr:#x}"
            )));
        }
        self.stack_ptr = end as u32;
        Ok(addr)
    }

    fn check(&self, addr: u32, len: u32) -> Result<usize> {
        if addr < NULL_GUARD {
            return Err(Error::Vm(format!("null-page access at {addr:#x}")));
        }
        let end = addr as u64 + len as u64;
        if end > self.bytes.len() as u64 {
            return Err(Error::Vm(format!(
                "out-of-bounds access at {addr:#x}+{len} (mem size {:#x})",
                self.bytes.len()
            )));
        }
        Ok(addr as usize)
    }

    /// Fixed-width raw load for the fast tier: a compile-time `N` lets the
    /// copy lower to a single machine load instead of a variable-length
    /// `memcpy`. Same bounds/null checks and little-endian packing as
    /// [`Memory::load`].
    #[inline(always)]
    pub(crate) fn load_bytes<const N: usize>(&self, addr: u32) -> Result<u64> {
        let at = self.check(addr, N as u32)?;
        let mut buf = [0u8; 8];
        buf[..N].copy_from_slice(&self.bytes[at..at + N]);
        Ok(u64::from_le_bytes(buf))
    }

    /// Fixed-width raw store, the counterpart of [`Memory::load_bytes`].
    #[inline(always)]
    pub(crate) fn store_bytes<const N: usize>(&mut self, addr: u32, raw: u64) -> Result<()> {
        let at = self.check(addr, N as u32)?;
        self.bytes[at..at + N].copy_from_slice(&raw.to_le_bytes()[..N]);
        Ok(())
    }

    /// Typed load.
    pub fn load(&self, ty: Type, addr: u32) -> Result<Value> {
        let size = ty.byte_size().max(1);
        let at = self.check(addr, size)?;
        let raw = {
            let mut buf = [0u8; 8];
            buf[..size as usize].copy_from_slice(&self.bytes[at..at + size as usize]);
            u64::from_le_bytes(buf)
        };
        Ok(match ty {
            Type::F32 => Value::F(f32::from_bits(raw as u32) as f64),
            Type::F64 => Value::F(f64::from_bits(raw)),
            t => Value::I(t.sext(raw)),
        })
    }

    /// Typed store.
    pub fn store(&mut self, ty: Type, addr: u32, v: Value) -> Result<()> {
        let size = ty.byte_size().max(1);
        let at = self.check(addr, size)?;
        let raw: u64 = match (ty, v) {
            (Type::F32, Value::F(x)) => (x as f32).to_bits() as u64,
            (Type::F64, Value::F(x)) => x.to_bits(),
            (t, Value::I(x)) => t.trunc(x),
            (t, v) => {
                return Err(Error::Vm(format!("store type mismatch: {t} <- {v:?}")));
            }
        };
        self.bytes[at..at + size as usize].copy_from_slice(&raw.to_le_bytes()[..size as usize]);
        Ok(())
    }

    /// Total memory size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::Global;

    fn mem_with_globals() -> (Memory, Module) {
        let mut m = Module::new("t");
        m.add_global(Global::of_i32("a", &[10, 20, 30]));
        m.add_global(Global::of_f64("b", &[1.5]));
        (Memory::for_module(&m, 4096), m)
    }

    #[test]
    fn globals_initialized_and_aligned() {
        let (mem, _) = mem_with_globals();
        let a = mem.global_addr(0);
        let b = mem.global_addr(1);
        assert!(a >= NULL_GUARD);
        assert_eq!(b % 8, 0);
        assert_eq!(mem.load(Type::I32, a).unwrap(), Value::I(10));
        assert_eq!(mem.load(Type::I32, a + 8).unwrap(), Value::I(30));
        assert_eq!(mem.load(Type::F64, b).unwrap(), Value::F(1.5));
    }

    #[test]
    fn store_load_roundtrip_all_types() {
        let (mut mem, _) = mem_with_globals();
        let p = mem.alloca(64).unwrap();
        for (ty, v) in [
            (Type::I8, Value::I(-5)),
            (Type::I16, Value::I(1234)),
            (Type::I32, Value::I(-100_000)),
            (Type::I64, Value::I(i64::MIN / 3)),
            (Type::F32, Value::F(1.5)),
            (Type::F64, Value::F(-2.25e10)),
        ] {
            mem.store(ty, p, v).unwrap();
            assert_eq!(mem.load(ty, p).unwrap(), v, "type {ty}");
        }
    }

    #[test]
    fn narrow_store_sign_semantics() {
        let (mut mem, _) = mem_with_globals();
        let p = mem.alloca(8).unwrap();
        mem.store(Type::I8, p, Value::I(0x1ff)).unwrap();
        // Load back sign-extended: 0xff -> -1.
        assert_eq!(mem.load(Type::I8, p).unwrap(), Value::I(-1));
    }

    #[test]
    fn null_access_faults() {
        let (mem, _) = mem_with_globals();
        assert!(mem.load(Type::I32, 0).is_err());
        assert!(mem.load(Type::I32, 100).is_err());
    }

    #[test]
    fn out_of_bounds_faults() {
        let (mut mem, _) = mem_with_globals();
        let sz = mem.size() as u32;
        assert!(mem.load(Type::I64, sz - 4).is_err());
        assert!(mem.store(Type::I8, sz, Value::I(0)).is_err());
    }

    #[test]
    fn stack_frames_release() {
        let (mut mem, _) = mem_with_globals();
        let mark = mem.stack_mark();
        let p1 = mem.alloca(100).unwrap();
        let _p2 = mem.alloca(100).unwrap();
        mem.stack_release(mark);
        let p3 = mem.alloca(100).unwrap();
        assert_eq!(p1, p3, "stack space must be reused after release");
    }

    #[test]
    fn stack_overflow_detected() {
        let (mut mem, _) = mem_with_globals();
        assert!(mem.alloca(1 << 30).is_err());
    }
}
