//! Runtime values.

use jitise_ir::{Imm, Type};

/// A runtime value: a 64-bit integer (also used for pointers, which are
/// 32-bit addresses on the PPC405 target) or a double.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer / pointer / boolean payload.
    I(i64),
    /// Floating-point payload (f32 values are computed in f64 and rounded
    /// at store/trunc boundaries, like x87-style evaluation).
    F(f64),
}

impl Value {
    /// Integer payload; panics on a float (interpreter type errors are
    /// bugs, not recoverable conditions — the verifier rejects them).
    pub fn as_i(self) -> i64 {
        match self {
            Value::I(v) => v,
            Value::F(v) => panic!("expected int value, found float {v}"),
        }
    }

    /// Float payload.
    pub fn as_f(self) -> f64 {
        match self {
            Value::F(v) => v,
            Value::I(v) => panic!("expected float value, found int {v}"),
        }
    }

    /// Pointer payload (u32 address space).
    pub fn as_ptr(self) -> u32 {
        self.as_i() as u32
    }

    /// Truth value (`i1` semantics: low bit).
    pub fn as_bool(self) -> bool {
        self.as_i() & 1 != 0
    }

    /// Constructs a value from an immediate.
    pub fn from_imm(imm: Imm) -> Value {
        if imm.ty.is_float() {
            Value::F(imm.as_f64())
        } else {
            Value::I(imm.as_i64())
        }
    }

    /// Normalizes the value to a type's width (integers are wrapped and
    /// sign-extended; f32 values are rounded through f32 precision).
    pub fn normalize(self, ty: Type) -> Value {
        match self {
            Value::I(v) => Value::I(ty.sext(ty.trunc(v))),
            Value::F(v) => {
                if ty == Type::F32 {
                    Value::F(v as f32 as f64)
                } else {
                    Value::F(v)
                }
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::I(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::I(v as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::I(5).as_i(), 5);
        assert_eq!(Value::F(2.5).as_f(), 2.5);
        assert_eq!(Value::I(0x1_0000_0001).as_ptr(), 1);
        assert!(Value::I(1).as_bool());
        assert!(!Value::I(0).as_bool());
    }

    #[test]
    #[should_panic(expected = "expected int")]
    fn type_confusion_panics() {
        Value::F(1.0).as_i();
    }

    #[test]
    fn from_imm() {
        assert_eq!(Value::from_imm(Imm::i32(-3)), Value::I(-3));
        assert_eq!(Value::from_imm(Imm::f64(1.5)), Value::F(1.5));
        assert_eq!(Value::from_imm(Imm::bool(true)), Value::I(-1)); // i1 sext
    }

    #[test]
    fn normalize_wraps() {
        assert_eq!(Value::I(300).normalize(Type::I8), Value::I(44));
        assert_eq!(Value::I(-1).normalize(Type::I8), Value::I(-1));
        let v = Value::F(1.0000000001).normalize(Type::F32);
        assert_eq!(v, Value::F(1.0000000001f64 as f32 as f64));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7i32), Value::I(7));
        assert_eq!(Value::from(true), Value::I(1));
        assert_eq!(Value::from(2.0f64), Value::F(2.0));
    }
}
